//! Simulation statistics: coherence traffic, lock traces, finish times.
//!
//! Per-lock statistics are **tiered**. Lock indices below a configurable
//! bound ([`crate::MachineConfig::hot_locks`], default
//! [`DEFAULT_HOT_LOCKS`]) get a full [`LockTrace`] — wait/hold histograms
//! and a per-node acquire vector, ~1 KiB each, stored densely. Indices at
//! or above the bound get a compact [`LockTally`] — eight scalar counters
//! — in a sparse ordered map. A million-object lock service would need
//! ~1 GiB of dense traces; the tallies keep it to tens of megabytes while
//! preserving the counts and means every aggregate metric is built from.

use std::collections::BTreeMap;

use nuca_topology::NodeId;

use crate::metrics::Histogram;

/// Default dense/sparse boundary for per-lock statistics. Far above any
/// in-repo artifact's lock count, so runs that never set
/// [`crate::MachineConfig::hot_locks`] behave exactly as before.
pub const DEFAULT_HOT_LOCKS: usize = 4096;

/// Local/global coherence transaction counts (the paper's Tables 2 and 6
/// report these normalized).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCounts {
    /// Transactions confined to one node (snooping bus traffic).
    pub local: u64,
    /// Transactions crossing the interconnect.
    pub global: u64,
}

impl TrafficCounts {
    /// Total transactions.
    pub fn total(&self) -> u64 {
        self.local + self.global
    }
}

/// Per-lock acquisition trace: acquisition count, node handoffs, and
/// latency distributions.
#[derive(Debug, Clone, Default)]
pub struct LockTrace {
    /// Successful acquisitions recorded via [`crate::CpuCtx::record_acquire`].
    pub acquisitions: u64,
    /// Acquisitions whose node differed from the previous holder's.
    pub node_handoffs: u64,
    /// Time-to-acquire distribution (cycles from the first acquire step to
    /// success), recorded via [`crate::CpuCtx::record_acquire_latency`].
    pub wait: Histogram,
    /// Hold-time distribution (cycles from success to the start of the
    /// release), recorded via [`crate::CpuCtx::record_release`].
    pub hold: Histogram,
    /// Acquisitions per node (index = node id; grown on demand).
    pub node_acquires: Vec<u64>,
    last_node: Option<NodeId>,
}

impl LockTrace {
    /// Node handoffs per handover opportunity, or `None` before the second
    /// acquisition.
    pub fn handoff_ratio(&self) -> Option<f64> {
        if self.acquisitions < 2 {
            None
        } else {
            Some(self.node_handoffs as f64 / (self.acquisitions - 1) as f64)
        }
    }

    fn record(&mut self, node: NodeId) {
        self.acquisitions += 1;
        if let Some(prev) = self.last_node {
            if prev != node {
                self.node_handoffs += 1;
            }
        }
        self.last_node = Some(node);
        if self.node_acquires.len() <= node.index() {
            self.node_acquires.resize(node.index() + 1, 0);
        }
        self.node_acquires[node.index()] += 1;
    }

    /// The compact [`LockTally`] carrying the same scalar aggregates this
    /// trace would report. Used by tests to check the sparse tier agrees
    /// with the dense one, and by tools that want uniform per-lock rows
    /// regardless of tier.
    pub fn tally(&self) -> LockTally {
        LockTally {
            acquisitions: self.acquisitions,
            node_handoffs: self.node_handoffs,
            wait_count: self.wait.count(),
            wait_sum: self.wait.sum(),
            wait_max: self.wait.max(),
            hold_count: self.hold.count(),
            hold_sum: self.hold.sum(),
            hold_max: self.hold.max(),
            last_node: self.last_node,
        }
    }
}

/// Compact per-lock statistics for the sparse (cold) tier: everything a
/// [`LockTrace`] counts, minus the histograms and the per-node vector.
/// Eight words instead of ~1 KiB — cheap enough for millions of lock
/// indices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockTally {
    /// Successful acquisitions recorded for this index.
    pub acquisitions: u64,
    /// Acquisitions whose node differed from the previous holder's.
    pub node_handoffs: u64,
    /// Number of wait-latency samples.
    pub wait_count: u64,
    /// Sum of wait latencies, in cycles.
    pub wait_sum: u64,
    /// Largest wait latency, in cycles.
    pub wait_max: u64,
    /// Number of hold-time samples.
    pub hold_count: u64,
    /// Sum of hold times, in cycles.
    pub hold_sum: u64,
    /// Largest hold time, in cycles.
    pub hold_max: u64,
    last_node: Option<NodeId>,
}

impl LockTally {
    /// Node handoffs per handover opportunity, or `None` before the second
    /// acquisition.
    pub fn handoff_ratio(&self) -> Option<f64> {
        if self.acquisitions < 2 {
            None
        } else {
            Some(self.node_handoffs as f64 / (self.acquisitions - 1) as f64)
        }
    }

    /// Mean wait latency in cycles, or `None` with no samples.
    pub fn mean_wait(&self) -> Option<f64> {
        (self.wait_count > 0).then(|| self.wait_sum as f64 / self.wait_count as f64)
    }

    /// Mean hold time in cycles, or `None` with no samples.
    pub fn mean_hold(&self) -> Option<f64> {
        (self.hold_count > 0).then(|| self.hold_sum as f64 / self.hold_count as f64)
    }

    fn record(&mut self, node: NodeId) {
        self.acquisitions += 1;
        if let Some(prev) = self.last_node {
            if prev != node {
                self.node_handoffs += 1;
            }
        }
        self.last_node = Some(node);
    }

    fn record_wait(&mut self, cycles: u64) {
        self.wait_count += 1;
        self.wait_sum += cycles;
        self.wait_max = self.wait_max.max(cycles);
    }

    fn record_hold(&mut self, cycles: u64) {
        self.hold_count += 1;
        self.hold_sum += cycles;
        self.hold_max = self.hold_max.max(cycles);
    }

    /// Folds `other` into `self`. Merging is commutative and associative:
    /// every field is a sum or a max, and the holder-continuity marker is
    /// cleared — a handoff that straddles the merge seam is dropped rather
    /// than guessed, so `a.merge(b)` and `b.merge(a)` agree exactly.
    pub fn merge(&mut self, other: &LockTally) {
        self.acquisitions += other.acquisitions;
        self.node_handoffs += other.node_handoffs;
        self.wait_count += other.wait_count;
        self.wait_sum += other.wait_sum;
        self.wait_max = self.wait_max.max(other.wait_max);
        self.hold_count += other.hold_count;
        self.hold_sum += other.hold_sum;
        self.hold_max = self.hold_max.max(other.hold_max);
        self.last_node = None;
    }
}

/// All statistics gathered during a simulation run.
///
/// Traffic is recorded by the memory system; lock traces are recorded by
/// workloads through [`crate::CpuCtx::record_acquire`].
#[derive(Debug)]
pub struct SimStats {
    traffic: TrafficCounts,
    /// Traffic attributed per node (index = node id; grown on demand).
    node_traffic: Vec<TrafficCounts>,
    /// Dense (hot) tier: full traces for lock indices below `hot_limit`.
    locks: Vec<LockTrace>,
    /// Dense/sparse boundary; indices at or above it land in `cold`.
    hot_limit: usize,
    /// Sparse (cold) tier: compact tallies keyed by lock index. A
    /// `BTreeMap` so iteration — and thus every report built from it — is
    /// deterministic without a sort.
    cold: BTreeMap<usize, LockTally>,
    /// Total memory transactions that hit in the requester's cache.
    cache_hits: u64,
    /// Total preemption windows applied.
    preemptions: u64,
    /// Total injected thread migrations applied.
    migrations: u64,
    /// Total HBO_GT_SD anger episodes recorded.
    anger_episodes: u64,
    /// Total program-resume events the engine processed.
    events: u64,
}

impl Default for SimStats {
    fn default() -> SimStats {
        SimStats::with_hot_limit(DEFAULT_HOT_LOCKS)
    }
}

impl SimStats {
    /// Statistics with the default dense/sparse boundary
    /// ([`DEFAULT_HOT_LOCKS`]).
    pub fn new() -> SimStats {
        SimStats::default()
    }

    /// Builds statistics with an explicit dense/sparse boundary: lock
    /// indices `0..hot_limit` get full [`LockTrace`]s, the rest compact
    /// [`LockTally`]s. [`crate::Machine`] wires this from
    /// [`crate::MachineConfig::hot_locks`]; standalone drivers (tests,
    /// tools) can call it directly.
    pub fn with_hot_limit(hot_limit: usize) -> SimStats {
        SimStats {
            traffic: TrafficCounts::default(),
            node_traffic: Vec::new(),
            locks: Vec::new(),
            hot_limit,
            cold: BTreeMap::new(),
            cache_hits: 0,
            preemptions: 0,
            migrations: 0,
            anger_episodes: 0,
            events: 0,
        }
    }

    /// The dense/sparse boundary this run records with.
    pub fn hot_limit(&self) -> usize {
        self.hot_limit
    }

    /// Coherence traffic so far.
    pub fn traffic(&self) -> TrafficCounts {
        self.traffic
    }

    /// Per-node traffic attribution (index = node id). Fetches and refills
    /// are attributed to the requesting CPU's node; invalidations to the
    /// node whose copy was invalidated. Nodes past the last one with
    /// traffic are absent.
    pub fn node_traffic(&self) -> &[TrafficCounts] {
        &self.node_traffic
    }

    /// HBO_GT_SD anger episodes recorded so far (the paper's `GET_ANGRY`
    /// starvation countermeasure firing).
    pub fn anger_episodes(&self) -> u64 {
        self.anger_episodes
    }

    /// Cache hits (transactions that generated no coherence traffic).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Preemption windows the engine applied.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Injected thread migrations the engine applied.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Program-resume events processed by the engine.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Trace for lock index `lock`, if any acquisition was recorded.
    pub fn lock_trace(&self, lock: usize) -> Option<&LockTrace> {
        self.locks.get(lock)
    }

    /// Traces for all lock indices recorded so far.
    pub fn lock_traces(&self) -> &[LockTrace] {
        &self.locks
    }

    /// Compact tally for a cold-tier lock index, if any event was recorded
    /// for it.
    pub fn lock_tally(&self, lock: usize) -> Option<&LockTally> {
        self.cold.get(&lock)
    }

    /// The cold tier: tallies for every lock index at or above the hot
    /// limit with at least one recorded event, in index order.
    pub fn lock_tallies(&self) -> impl Iterator<Item = (usize, &LockTally)> + '_ {
        self.cold.iter().map(|(&i, t)| (i, t))
    }

    /// Aggregate acquisitions across both tiers.
    pub fn total_acquisitions(&self) -> u64 {
        self.locks.iter().map(|t| t.acquisitions).sum::<u64>()
            + self.cold.values().map(|t| t.acquisitions).sum::<u64>()
    }

    /// Aggregate handoff ratio across all locks in both tiers
    /// (acquisition-weighted).
    pub fn aggregate_handoff_ratio(&self) -> Option<f64> {
        let acq: u64 = self
            .locks
            .iter()
            .map(|t| (t.acquisitions, t.node_handoffs))
            .chain(self.cold.values().map(|t| (t.acquisitions, t.node_handoffs)))
            .filter(|&(a, _)| a >= 2)
            .map(|(a, _)| a - 1)
            .sum();
        if acq == 0 {
            return None;
        }
        let hand: u64 = self.locks.iter().map(|t| t.node_handoffs).sum::<u64>()
            + self.cold.values().map(|t| t.node_handoffs).sum::<u64>();
        Some(hand as f64 / acq as f64)
    }

    /// Approximate heap footprint of the per-lock statistics, both tiers.
    /// An estimate in the spirit of [`crate::Profile::approx_bytes`]: the
    /// memory regression gate compares it against a cap, so it only needs
    /// to scale correctly with lock count.
    pub fn approx_lock_bytes(&self) -> usize {
        use std::mem::size_of;
        let dense = self.locks.capacity() * size_of::<LockTrace>()
            + self
                .locks
                .iter()
                .map(|t| t.node_acquires.capacity() * size_of::<u64>())
                .sum::<usize>();
        // B-tree nodes hold up to 11 entries with some slack and pointer
        // overhead; 2x the payload is a fair upper bound.
        let cold = self.cold.len() * size_of::<(usize, LockTally)>() * 2;
        dense + cold
    }

    fn node_slot(&mut self, node: NodeId) -> &mut TrafficCounts {
        if self.node_traffic.len() <= node.index() {
            self.node_traffic
                .resize(node.index() + 1, TrafficCounts::default());
        }
        &mut self.node_traffic[node.index()]
    }

    pub(crate) fn count_local(&mut self, node: NodeId) {
        self.traffic.local += 1;
        self.node_slot(node).local += 1;
    }

    pub(crate) fn count_global(&mut self, node: NodeId) {
        self.traffic.global += 1;
        self.node_slot(node).global += 1;
    }

    pub(crate) fn count_anger(&mut self) {
        self.anger_episodes += 1;
    }

    pub(crate) fn count_hit(&mut self) {
        self.cache_hits += 1;
    }

    pub(crate) fn count_preemption(&mut self) {
        self.preemptions += 1;
    }

    pub(crate) fn count_migration(&mut self) {
        self.migrations += 1;
    }

    pub(crate) fn add_events(&mut self, n: u64) {
        self.events += n;
    }

    /// Moves the lock traces out, leaving an empty list behind (used when a
    /// finished machine is converted into a report, so traces are not
    /// cloned).
    pub(crate) fn take_locks(&mut self) -> Vec<LockTrace> {
        std::mem::take(&mut self.locks)
    }

    /// Moves the cold-tier tallies out as an index-sorted vector (the
    /// `BTreeMap` iterates in key order), leaving an empty map behind.
    pub(crate) fn take_tallies(&mut self) -> Vec<(usize, LockTally)> {
        std::mem::take(&mut self.cold).into_iter().collect()
    }

    fn lock_slot(&mut self, lock: usize) -> &mut LockTrace {
        if self.locks.len() <= lock {
            self.locks.resize_with(lock + 1, LockTrace::default);
        }
        &mut self.locks[lock]
    }

    pub(crate) fn record_acquire(&mut self, lock: usize, node: NodeId) {
        if lock < self.hot_limit {
            self.lock_slot(lock).record(node);
        } else {
            self.cold.entry(lock).or_default().record(node);
        }
    }

    pub(crate) fn record_wait(&mut self, lock: usize, cycles: u64) {
        if lock < self.hot_limit {
            self.lock_slot(lock).wait.record(cycles);
        } else {
            self.cold.entry(lock).or_default().record_wait(cycles);
        }
    }

    pub(crate) fn record_hold(&mut self, lock: usize, cycles: u64) {
        if lock < self.hot_limit {
            self.lock_slot(lock).hold.record(cycles);
        } else {
            self.cold.entry(lock).or_default().record_hold(cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_totals() {
        let mut s = SimStats::new();
        s.count_local(NodeId(0));
        s.count_local(NodeId(1));
        s.count_global(NodeId(1));
        assert_eq!(s.traffic(), TrafficCounts { local: 2, global: 1 });
        assert_eq!(s.traffic().total(), 3);
    }

    #[test]
    fn traffic_is_attributed_per_node() {
        let mut s = SimStats::new();
        s.count_local(NodeId(0));
        s.count_local(NodeId(1));
        s.count_global(NodeId(1));
        assert_eq!(
            s.node_traffic(),
            &[
                TrafficCounts { local: 1, global: 0 },
                TrafficCounts { local: 1, global: 1 },
            ]
        );
        // Per-node counts always sum to the aggregate.
        let sum: u64 = s.node_traffic().iter().map(TrafficCounts::total).sum();
        assert_eq!(sum, s.traffic().total());
    }

    #[test]
    fn lock_trace_handoffs() {
        let mut s = SimStats::new();
        for n in [0, 0, 1, 0] {
            s.record_acquire(0, NodeId(n));
        }
        let t = s.lock_trace(0).unwrap();
        assert_eq!(t.acquisitions, 4);
        assert_eq!(t.node_handoffs, 2);
        assert_eq!(t.handoff_ratio(), Some(2.0 / 3.0));
    }

    #[test]
    fn ratio_none_below_two() {
        let mut s = SimStats::new();
        s.record_acquire(0, NodeId(0));
        assert_eq!(s.lock_trace(0).unwrap().handoff_ratio(), None);
    }

    #[test]
    fn sparse_lock_indices() {
        let mut s = SimStats::new();
        s.record_acquire(5, NodeId(1));
        assert_eq!(s.lock_traces().len(), 6);
        assert_eq!(s.lock_trace(5).unwrap().acquisitions, 1);
        assert_eq!(s.lock_trace(0).unwrap().acquisitions, 0);
        assert_eq!(s.total_acquisitions(), 1);
    }

    #[test]
    fn aggregate_ratio_weights_by_acquisitions() {
        let mut s = SimStats::new();
        // Lock 0: 3 acquisitions, 2 handoffs.
        for n in [0, 1, 0] {
            s.record_acquire(0, NodeId(n));
        }
        // Lock 1: 2 acquisitions, 0 handoffs.
        for n in [1, 1] {
            s.record_acquire(1, NodeId(n));
        }
        assert_eq!(s.aggregate_handoff_ratio(), Some(2.0 / 3.0));
    }

    #[test]
    fn handoff_ratio_zero_acquisitions() {
        let t = LockTrace::default();
        assert_eq!(t.acquisitions, 0);
        assert_eq!(t.handoff_ratio(), None);
    }

    #[test]
    fn aggregate_ratio_none_when_empty_or_single() {
        let s = SimStats::new();
        assert_eq!(s.aggregate_handoff_ratio(), None, "no locks at all");

        let mut s = SimStats::new();
        s.record_acquire(0, NodeId(0));
        assert_eq!(
            s.aggregate_handoff_ratio(),
            None,
            "one acquisition has no handover opportunity"
        );
    }

    #[test]
    fn aggregate_ratio_single_lock_matches_per_lock() {
        let mut s = SimStats::new();
        for n in [0, 1, 1, 0] {
            s.record_acquire(0, NodeId(n));
        }
        assert_eq!(
            s.aggregate_handoff_ratio(),
            s.lock_trace(0).unwrap().handoff_ratio()
        );
    }

    #[test]
    fn aggregate_ratio_ignores_single_acquisition_locks() {
        let mut s = SimStats::new();
        // Lock 0: 1 acquisition — no handover opportunity, must not count
        // toward the denominator.
        s.record_acquire(0, NodeId(0));
        // Lock 1: 3 acquisitions, 2 handoffs.
        for n in [0, 1, 0] {
            s.record_acquire(1, NodeId(n));
        }
        assert_eq!(s.aggregate_handoff_ratio(), Some(1.0));
    }

    #[test]
    fn per_node_acquisitions_recorded() {
        let mut s = SimStats::new();
        for n in [0, 0, 1, 0] {
            s.record_acquire(0, NodeId(n));
        }
        assert_eq!(s.lock_trace(0).unwrap().node_acquires, vec![3, 1]);
    }

    #[test]
    fn wait_and_hold_histograms_accumulate() {
        let mut s = SimStats::new();
        s.record_wait(0, 100);
        s.record_wait(0, 200);
        s.record_hold(0, 50);
        let t = s.lock_trace(0).unwrap();
        assert_eq!(t.wait.count(), 2);
        assert_eq!(t.wait.max(), 200);
        assert_eq!(t.hold.count(), 1);
        assert_eq!(t.acquisitions, 0, "histograms do not imply acquisitions");
    }

    #[test]
    fn indices_above_the_hot_limit_land_in_the_cold_tier() {
        let mut s = SimStats::with_hot_limit(2);
        s.record_acquire(1, NodeId(0));
        s.record_acquire(2, NodeId(0));
        s.record_acquire(2, NodeId(1));
        s.record_wait(2, 100);
        s.record_hold(2, 40);
        // Hot index: full trace, no tally.
        assert_eq!(s.lock_trace(1).unwrap().acquisitions, 1);
        assert!(s.lock_tally(1).is_none());
        // Cold index: tally only; the dense vector never grows past the
        // hot limit.
        assert!(s.lock_traces().len() <= 2);
        let t = s.lock_tally(2).unwrap();
        assert_eq!(t.acquisitions, 2);
        assert_eq!(t.node_handoffs, 1);
        assert_eq!(t.wait_count, 1);
        assert_eq!(t.wait_sum, 100);
        assert_eq!(t.hold_max, 40);
        // Aggregates span both tiers.
        assert_eq!(s.total_acquisitions(), 3);
        assert_eq!(s.aggregate_handoff_ratio(), Some(1.0));
    }

    #[test]
    fn cold_tier_iterates_in_index_order() {
        let mut s = SimStats::with_hot_limit(0);
        for lock in [907, 3, 500_000, 42] {
            s.record_acquire(lock, NodeId(0));
        }
        let order: Vec<usize> = s.lock_tallies().map(|(i, _)| i).collect();
        assert_eq!(order, vec![3, 42, 907, 500_000]);
        assert_eq!(s.take_tallies().len(), 4);
        assert_eq!(s.lock_tallies().count(), 0, "take leaves the map empty");
    }

    #[test]
    fn tally_agrees_with_dense_trace_on_identical_input() {
        // Property: for random event sequences, a cold-tier tally reports
        // exactly the aggregates the dense trace would.
        for seed in 0..8u64 {
            let mut rng = crate::SplitMix64::new(0xC01D ^ seed);
            let mut hot = SimStats::with_hot_limit(usize::MAX);
            let mut cold = SimStats::with_hot_limit(0);
            for _ in 0..200 {
                let node = NodeId(rng.next_below(4) as usize);
                match rng.next_below(3) {
                    0 => {
                        hot.record_acquire(7, node);
                        cold.record_acquire(7, node);
                    }
                    1 => {
                        let c = rng.next_below(10_000);
                        hot.record_wait(7, c);
                        cold.record_wait(7, c);
                    }
                    _ => {
                        let c = rng.next_below(3_000);
                        hot.record_hold(7, c);
                        cold.record_hold(7, c);
                    }
                }
            }
            let dense = hot.lock_trace(7).unwrap().tally();
            let tally = *cold.lock_tally(7).unwrap();
            assert_eq!(dense, tally, "seed {seed}");
            assert_eq!(hot.total_acquisitions(), cold.total_acquisitions());
            assert_eq!(
                hot.aggregate_handoff_ratio(),
                cold.aggregate_handoff_ratio(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn tally_merge_commutes_and_associates() {
        // Property: merging per-shard tallies must not depend on shard
        // order, or multi-job runs would produce different reports than
        // single-job runs.
        let mk = |seed: u64| {
            let mut rng = crate::SplitMix64::new(seed);
            let mut t = LockTally::default();
            for _ in 0..50 {
                match rng.next_below(3) {
                    0 => t.record(NodeId(rng.next_below(4) as usize)),
                    1 => t.record_wait(rng.next_below(10_000)),
                    _ => t.record_hold(rng.next_below(3_000)),
                }
            }
            t
        };
        for seed in 0..8u64 {
            let (a, b, c) = (mk(seed), mk(seed ^ 0xAB), mk(seed ^ 0xCD));
            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            assert_eq!(ab, ba, "seed {seed}: merge must commute");

            let mut ab_c = ab;
            ab_c.merge(&c);
            let mut bc = b;
            bc.merge(&c);
            let mut a_bc = a;
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc, "seed {seed}: merge must associate");

            // Counts always sum exactly across the merge.
            assert_eq!(ab.acquisitions, a.acquisitions + b.acquisitions);
            assert_eq!(ab.wait_sum, a.wait_sum + b.wait_sum);
            assert_eq!(ab.wait_max, a.wait_max.max(b.wait_max));
        }
    }

    /// Release-mode memory regression for the tentpole scale target: a
    /// million cold-tier lock indices must stay far below the ~1 GiB the
    /// dense representation would need. Run via `ci.sh` with `--release`.
    #[test]
    #[ignore = "release-mode memory regression; run explicitly via ci.sh"]
    fn million_lock_indices_stay_bounded() {
        let mut s = SimStats::with_hot_limit(64);
        for i in 0..1_000_000usize {
            let node = NodeId(i % 4);
            s.record_acquire(64 + i, node);
            s.record_wait(64 + i, (i as u64) % 10_000);
            s.record_hold(64 + i, (i as u64) % 1_000);
        }
        assert_eq!(s.total_acquisitions(), 1_000_000);
        let bytes = s.approx_lock_bytes();
        let dense_estimate = 1_000_000 * std::mem::size_of::<LockTrace>();
        assert!(
            bytes < 256 * 1024 * 1024,
            "tiered per-lock stats use {bytes} bytes at 10^6 locks"
        );
        assert!(
            bytes * 4 < dense_estimate,
            "tiering saves {bytes} vs dense {dense_estimate}"
        );
    }

    #[test]
    fn anger_episodes_count() {
        let mut s = SimStats::new();
        assert_eq!(s.anger_episodes(), 0);
        s.count_anger();
        s.count_anger();
        assert_eq!(s.anger_episodes(), 2);
    }
}

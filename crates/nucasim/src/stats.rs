//! Simulation statistics: coherence traffic, lock traces, finish times.

use nuca_topology::NodeId;

use crate::metrics::Histogram;

/// Local/global coherence transaction counts (the paper's Tables 2 and 6
/// report these normalized).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCounts {
    /// Transactions confined to one node (snooping bus traffic).
    pub local: u64,
    /// Transactions crossing the interconnect.
    pub global: u64,
}

impl TrafficCounts {
    /// Total transactions.
    pub fn total(&self) -> u64 {
        self.local + self.global
    }
}

/// Per-lock acquisition trace: acquisition count, node handoffs, and
/// latency distributions.
#[derive(Debug, Clone, Default)]
pub struct LockTrace {
    /// Successful acquisitions recorded via [`crate::CpuCtx::record_acquire`].
    pub acquisitions: u64,
    /// Acquisitions whose node differed from the previous holder's.
    pub node_handoffs: u64,
    /// Time-to-acquire distribution (cycles from the first acquire step to
    /// success), recorded via [`crate::CpuCtx::record_acquire_latency`].
    pub wait: Histogram,
    /// Hold-time distribution (cycles from success to the start of the
    /// release), recorded via [`crate::CpuCtx::record_release`].
    pub hold: Histogram,
    /// Acquisitions per node (index = node id; grown on demand).
    pub node_acquires: Vec<u64>,
    last_node: Option<NodeId>,
}

impl LockTrace {
    /// Node handoffs per handover opportunity, or `None` before the second
    /// acquisition.
    pub fn handoff_ratio(&self) -> Option<f64> {
        if self.acquisitions < 2 {
            None
        } else {
            Some(self.node_handoffs as f64 / (self.acquisitions - 1) as f64)
        }
    }

    fn record(&mut self, node: NodeId) {
        self.acquisitions += 1;
        if let Some(prev) = self.last_node {
            if prev != node {
                self.node_handoffs += 1;
            }
        }
        self.last_node = Some(node);
        if self.node_acquires.len() <= node.index() {
            self.node_acquires.resize(node.index() + 1, 0);
        }
        self.node_acquires[node.index()] += 1;
    }
}

/// All statistics gathered during a simulation run.
///
/// Traffic is recorded by the memory system; lock traces are recorded by
/// workloads through [`crate::CpuCtx::record_acquire`].
#[derive(Debug, Default)]
pub struct SimStats {
    traffic: TrafficCounts,
    /// Traffic attributed per node (index = node id; grown on demand).
    node_traffic: Vec<TrafficCounts>,
    locks: Vec<LockTrace>,
    /// Total memory transactions that hit in the requester's cache.
    cache_hits: u64,
    /// Total preemption windows applied.
    preemptions: u64,
    /// Total injected thread migrations applied.
    migrations: u64,
    /// Total HBO_GT_SD anger episodes recorded.
    anger_episodes: u64,
    /// Total program-resume events the engine processed.
    events: u64,
}

impl SimStats {
    pub(crate) fn new() -> SimStats {
        SimStats::default()
    }

    /// Coherence traffic so far.
    pub fn traffic(&self) -> TrafficCounts {
        self.traffic
    }

    /// Per-node traffic attribution (index = node id). Fetches and refills
    /// are attributed to the requesting CPU's node; invalidations to the
    /// node whose copy was invalidated. Nodes past the last one with
    /// traffic are absent.
    pub fn node_traffic(&self) -> &[TrafficCounts] {
        &self.node_traffic
    }

    /// HBO_GT_SD anger episodes recorded so far (the paper's `GET_ANGRY`
    /// starvation countermeasure firing).
    pub fn anger_episodes(&self) -> u64 {
        self.anger_episodes
    }

    /// Cache hits (transactions that generated no coherence traffic).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Preemption windows the engine applied.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Injected thread migrations the engine applied.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Program-resume events processed by the engine.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Trace for lock index `lock`, if any acquisition was recorded.
    pub fn lock_trace(&self, lock: usize) -> Option<&LockTrace> {
        self.locks.get(lock)
    }

    /// Traces for all lock indices recorded so far.
    pub fn lock_traces(&self) -> &[LockTrace] {
        &self.locks
    }

    /// Aggregate acquisitions across all lock indices.
    pub fn total_acquisitions(&self) -> u64 {
        self.locks.iter().map(|t| t.acquisitions).sum()
    }

    /// Aggregate handoff ratio across all locks (acquisition-weighted).
    pub fn aggregate_handoff_ratio(&self) -> Option<f64> {
        let acq: u64 = self
            .locks
            .iter()
            .filter(|t| t.acquisitions >= 2)
            .map(|t| t.acquisitions - 1)
            .sum();
        if acq == 0 {
            return None;
        }
        let hand: u64 = self.locks.iter().map(|t| t.node_handoffs).sum();
        Some(hand as f64 / acq as f64)
    }

    fn node_slot(&mut self, node: NodeId) -> &mut TrafficCounts {
        if self.node_traffic.len() <= node.index() {
            self.node_traffic
                .resize(node.index() + 1, TrafficCounts::default());
        }
        &mut self.node_traffic[node.index()]
    }

    pub(crate) fn count_local(&mut self, node: NodeId) {
        self.traffic.local += 1;
        self.node_slot(node).local += 1;
    }

    pub(crate) fn count_global(&mut self, node: NodeId) {
        self.traffic.global += 1;
        self.node_slot(node).global += 1;
    }

    pub(crate) fn count_anger(&mut self) {
        self.anger_episodes += 1;
    }

    pub(crate) fn count_hit(&mut self) {
        self.cache_hits += 1;
    }

    pub(crate) fn count_preemption(&mut self) {
        self.preemptions += 1;
    }

    pub(crate) fn count_migration(&mut self) {
        self.migrations += 1;
    }

    pub(crate) fn add_events(&mut self, n: u64) {
        self.events += n;
    }

    /// Moves the lock traces out, leaving an empty list behind (used when a
    /// finished machine is converted into a report, so traces are not
    /// cloned).
    pub(crate) fn take_locks(&mut self) -> Vec<LockTrace> {
        std::mem::take(&mut self.locks)
    }

    fn lock_slot(&mut self, lock: usize) -> &mut LockTrace {
        if self.locks.len() <= lock {
            self.locks.resize_with(lock + 1, LockTrace::default);
        }
        &mut self.locks[lock]
    }

    pub(crate) fn record_acquire(&mut self, lock: usize, node: NodeId) {
        self.lock_slot(lock).record(node);
    }

    pub(crate) fn record_wait(&mut self, lock: usize, cycles: u64) {
        self.lock_slot(lock).wait.record(cycles);
    }

    pub(crate) fn record_hold(&mut self, lock: usize, cycles: u64) {
        self.lock_slot(lock).hold.record(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_totals() {
        let mut s = SimStats::new();
        s.count_local(NodeId(0));
        s.count_local(NodeId(1));
        s.count_global(NodeId(1));
        assert_eq!(s.traffic(), TrafficCounts { local: 2, global: 1 });
        assert_eq!(s.traffic().total(), 3);
    }

    #[test]
    fn traffic_is_attributed_per_node() {
        let mut s = SimStats::new();
        s.count_local(NodeId(0));
        s.count_local(NodeId(1));
        s.count_global(NodeId(1));
        assert_eq!(
            s.node_traffic(),
            &[
                TrafficCounts { local: 1, global: 0 },
                TrafficCounts { local: 1, global: 1 },
            ]
        );
        // Per-node counts always sum to the aggregate.
        let sum: u64 = s.node_traffic().iter().map(TrafficCounts::total).sum();
        assert_eq!(sum, s.traffic().total());
    }

    #[test]
    fn lock_trace_handoffs() {
        let mut s = SimStats::new();
        for n in [0, 0, 1, 0] {
            s.record_acquire(0, NodeId(n));
        }
        let t = s.lock_trace(0).unwrap();
        assert_eq!(t.acquisitions, 4);
        assert_eq!(t.node_handoffs, 2);
        assert_eq!(t.handoff_ratio(), Some(2.0 / 3.0));
    }

    #[test]
    fn ratio_none_below_two() {
        let mut s = SimStats::new();
        s.record_acquire(0, NodeId(0));
        assert_eq!(s.lock_trace(0).unwrap().handoff_ratio(), None);
    }

    #[test]
    fn sparse_lock_indices() {
        let mut s = SimStats::new();
        s.record_acquire(5, NodeId(1));
        assert_eq!(s.lock_traces().len(), 6);
        assert_eq!(s.lock_trace(5).unwrap().acquisitions, 1);
        assert_eq!(s.lock_trace(0).unwrap().acquisitions, 0);
        assert_eq!(s.total_acquisitions(), 1);
    }

    #[test]
    fn aggregate_ratio_weights_by_acquisitions() {
        let mut s = SimStats::new();
        // Lock 0: 3 acquisitions, 2 handoffs.
        for n in [0, 1, 0] {
            s.record_acquire(0, NodeId(n));
        }
        // Lock 1: 2 acquisitions, 0 handoffs.
        for n in [1, 1] {
            s.record_acquire(1, NodeId(n));
        }
        assert_eq!(s.aggregate_handoff_ratio(), Some(2.0 / 3.0));
    }

    #[test]
    fn handoff_ratio_zero_acquisitions() {
        let t = LockTrace::default();
        assert_eq!(t.acquisitions, 0);
        assert_eq!(t.handoff_ratio(), None);
    }

    #[test]
    fn aggregate_ratio_none_when_empty_or_single() {
        let s = SimStats::new();
        assert_eq!(s.aggregate_handoff_ratio(), None, "no locks at all");

        let mut s = SimStats::new();
        s.record_acquire(0, NodeId(0));
        assert_eq!(
            s.aggregate_handoff_ratio(),
            None,
            "one acquisition has no handover opportunity"
        );
    }

    #[test]
    fn aggregate_ratio_single_lock_matches_per_lock() {
        let mut s = SimStats::new();
        for n in [0, 1, 1, 0] {
            s.record_acquire(0, NodeId(n));
        }
        assert_eq!(
            s.aggregate_handoff_ratio(),
            s.lock_trace(0).unwrap().handoff_ratio()
        );
    }

    #[test]
    fn aggregate_ratio_ignores_single_acquisition_locks() {
        let mut s = SimStats::new();
        // Lock 0: 1 acquisition — no handover opportunity, must not count
        // toward the denominator.
        s.record_acquire(0, NodeId(0));
        // Lock 1: 3 acquisitions, 2 handoffs.
        for n in [0, 1, 0] {
            s.record_acquire(1, NodeId(n));
        }
        assert_eq!(s.aggregate_handoff_ratio(), Some(1.0));
    }

    #[test]
    fn per_node_acquisitions_recorded() {
        let mut s = SimStats::new();
        for n in [0, 0, 1, 0] {
            s.record_acquire(0, NodeId(n));
        }
        assert_eq!(s.lock_trace(0).unwrap().node_acquires, vec![3, 1]);
    }

    #[test]
    fn wait_and_hold_histograms_accumulate() {
        let mut s = SimStats::new();
        s.record_wait(0, 100);
        s.record_wait(0, 200);
        s.record_hold(0, 50);
        let t = s.lock_trace(0).unwrap();
        assert_eq!(t.wait.count(), 2);
        assert_eq!(t.wait.max(), 200);
        assert_eq!(t.hold.count(), 1);
        assert_eq!(t.acquisitions, 0, "histograms do not imply acquisitions");
    }

    #[test]
    fn anger_episodes_count() {
        let mut s = SimStats::new();
        assert_eq!(s.anger_episodes(), 0);
        s.count_anger();
        s.count_anger();
        assert_eq!(s.anger_episodes(), 2);
    }
}

//! Event schedulers: the pending-resume queue driving the engine.
//!
//! The engine's event set is tiny (at most one pending resume per CPU)
//! but churns at enormous rates — every simulated memory access, delay
//! and backoff sleep is one push/pop pair. The classic binary heap costs
//! O(log n) *and* a cache-missing sift per operation; because nucasim's
//! delay distribution is bounded (coherence latencies of tens to hundreds
//! of cycles, backoff caps of ≤ 51 200 cycles, private work of ~20 000),
//! nearly every insertion lands within a small known horizon of current
//! time — the textbook case for a hierarchical *time wheel* with O(1)
//! enqueue/dequeue and a heap-backed overflow for the rare far-future
//! event (preemption quanta, fault timers).
//!
//! # Tie-break contract
//!
//! The hard invariant of the whole simulator is byte-identical artifacts
//! regardless of scheduler or `--jobs` count. The reference order, pinned
//! by [`BinHeapQueue`], is lexicographic `(time, seq)` where `seq` is a
//! per-queue monotone insertion counter: **events at the same tick pop in
//! FIFO insertion order**. (The CPU id never participates: `seq` is
//! unique.) [`TimeWheel`] preserves exactly this order; [`CheckedQueue`]
//! runs both side by side and asserts every pop agrees — the cross-check
//! mode behind [`SchedKind::Check`](crate::SchedKind).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex};

/// The scheduler interface the engine drives.
///
/// Entries are `(time, cpu)`; insertion order is the tie-break (see the
/// [module docs](self)). `next_time` takes `&mut self` because the wheel
/// may need to cascade internal structure to locate its earliest entry.
pub trait EventQueue {
    /// Enqueues a resume of `cpu` at time `t`. `t` must not precede the
    /// time of the last popped event.
    fn push(&mut self, t: u64, cpu: u32);
    /// The time of the earliest pending event, if any.
    fn next_time(&mut self) -> Option<u64>;
    /// Removes and returns the earliest pending event.
    fn pop(&mut self) -> Option<(u64, u32)>;
    /// Pops the earliest event only if its time is ≤ `limit` — the
    /// engine's per-event peek-then-pop, fused so implementations can do
    /// a single find-min. Declining must leave the queue observably
    /// unchanged.
    fn pop_at_most(&mut self, limit: u64) -> Option<(u64, u32)> {
        match self.next_time() {
            Some(t) if t <= limit => self.pop(),
            _ => None,
        }
    }
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The reference scheduler: `BinaryHeap<Reverse<(time, seq, cpu)>>`,
/// exactly the engine's original event queue. O(log n) per operation.
#[derive(Debug, Default)]
pub struct BinHeapQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    seq: u64,
}

impl BinHeapQueue {
    /// An empty queue.
    pub fn new() -> BinHeapQueue {
        BinHeapQueue::default()
    }
}

impl EventQueue for BinHeapQueue {
    fn push(&mut self, t: u64, cpu: u32) {
        self.seq += 1;
        self.heap.push(Reverse((t, self.seq, cpu)));
    }

    fn next_time(&mut self) -> Option<u64> {
        self.heap.peek().map(|&Reverse((t, _, _))| t)
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        self.heap.pop().map(|Reverse((t, _, cpu))| (t, cpu))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Level-0 geometry: 1024 one-cycle slots — every event within the
/// current 1024-cycle block sits in the slot of its exact tick, so a slot
/// is a plain FIFO of arena nodes.
const L0_BITS: u32 = 10;
const L0_SLOTS: usize = 1 << L0_BITS;
const L0_MASK: u64 = (L0_SLOTS as u64) - 1;
/// Level-1 geometry: 64 slots of one 1024-cycle block each, covering the
/// rest of the current 2^16-cycle (≈262 µs simulated) superblock. Backoff
/// caps (≤ 51 200 cycles) and workload think-time (≤ ~40 000) land here
/// or closer; only preemption quanta and fault timers overflow.
const L1_BITS: u32 = 6;
const L1_SLOTS: usize = 1 << L1_BITS;
const L1_MASK: u64 = (L1_SLOTS as u64) - 1;
const HORIZON_BITS: u32 = L0_BITS + L1_BITS;
const HORIZON_MASK: u64 = (1u64 << HORIZON_BITS) - 1;
/// Null link / empty-slot sentinel for arena indices.
const NIL: u32 = u32::MAX;

/// One pending event in the wheel's node arena. Freed nodes chain through
/// `next` onto the freelist and are recycled most-recently-freed first,
/// so the handful of live nodes stays in the same few cache lines.
#[derive(Debug, Clone, Copy)]
struct Node {
    t: u64,
    cpu: u32,
    next: u32,
}

/// A slot's FIFO chain: head/tail arena indices (`NIL`/`NIL` when empty).
#[derive(Debug, Clone, Copy)]
struct Fifo {
    head: u32,
    tail: u32,
}

impl Fifo {
    const EMPTY: Fifo = Fifo { head: NIL, tail: NIL };
}

/// Hierarchical time wheel with a heap-backed overflow.
///
/// * **L0**: 1024 granularity-1 slots covering the block of current time.
///   Each in-window tick maps to exactly one slot, so per-slot FIFO order
///   *is* insertion order — the tie-break comes for free.
/// * **L1**: 64 slots of 1024 cycles covering the rest of the current
///   superblock; a slot's chain is relinked into L0 when time enters its
///   block.
/// * **Overflow**: a `(time, seq)`-keyed min-heap for events beyond the
///   superblock, drained into the wheels when time crosses into theirs.
///
/// Ordering correctness rests on the monotonicity of current time: the
/// structure an event lands in depends only on the horizon at push time,
/// horizons only advance, and a cascade/drain into a block always happens
/// *before* any direct insertion into that block — so every slot FIFO is
/// globally seq-ordered. Occupancy bitmaps (one bit per L0 slot plus a
/// one-word summary) make find-first-event a handful of word scans.
///
/// All storage is data-oriented: events are 16-byte nodes in one arena,
/// slots are 8-byte head/tail pairs, and cascades *relink* nodes instead
/// of copying them — the steady state allocates nothing and the whole
/// structure (arena + headers + bitmaps ≈ 10 KB, of which only the live
/// chains are touched) stays cache-resident under engine pressure, where
/// the simulation's own working set would evict anything bulkier.
#[derive(Debug)]
pub struct TimeWheel {
    /// Lower bound on the next event's time; advanced by pops/cascades.
    cur: u64,
    len: usize,
    /// Insertion counter for overflow ordering.
    seq: u64,
    /// Node arena; grows to the high-water mark of pending events and
    /// then recycles through the freelist.
    nodes: Vec<Node>,
    /// Freelist head (`NIL` when exhausted).
    free: u32,
    l0: Box<[Fifo; L0_SLOTS]>,
    /// One bit per L0 slot.
    l0_occ: [u64; L0_SLOTS / 64],
    /// One bit per `l0_occ` word.
    l0_sum: u64,
    l1: [Fifo; L1_SLOTS],
    l1_occ: u64,
    /// Earliest time in each occupied L1 slot, so peeking never has to
    /// restructure the wheel (see [`TimeWheel::next_time`]).
    l1_min: [u64; L1_SLOTS],
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
}

impl Default for TimeWheel {
    fn default() -> Self {
        TimeWheel::new()
    }
}

impl TimeWheel {
    /// An empty wheel starting at time 0.
    pub fn new() -> TimeWheel {
        TimeWheel {
            cur: 0,
            len: 0,
            seq: 0,
            nodes: Vec::new(),
            free: NIL,
            l0: Box::new([Fifo::EMPTY; L0_SLOTS]),
            l0_occ: [0; L0_SLOTS / 64],
            l0_sum: 0,
            l1: [Fifo::EMPTY; L1_SLOTS],
            l1_occ: 0,
            l1_min: [0; L1_SLOTS],
            overflow: BinaryHeap::new(),
        }
    }

    #[inline]
    fn alloc_node(&mut self, t: u64, cpu: u32) -> u32 {
        if self.free != NIL {
            let id = self.free;
            let n = &mut self.nodes[id as usize];
            self.free = n.next;
            *n = Node { t, cpu, next: NIL };
            id
        } else {
            let id = self.nodes.len() as u32;
            debug_assert_ne!(id, NIL, "wheel arena exhausted");
            self.nodes.push(Node { t, cpu, next: NIL });
            id
        }
    }

    #[inline]
    fn free_node(&mut self, id: u32) {
        self.nodes[id as usize].next = self.free;
        self.free = id;
    }

    /// Appends the (already detached) node `id` to the L0 slot of its
    /// tick.
    #[inline]
    fn link_l0(&mut self, id: u32) {
        let t = self.nodes[id as usize].t;
        debug_assert_eq!(t >> L0_BITS, self.cur >> L0_BITS);
        debug_assert_eq!(self.nodes[id as usize].next, NIL);
        let idx = (t & L0_MASK) as usize;
        let slot = &mut self.l0[idx];
        if slot.tail == NIL {
            slot.head = id;
        } else {
            self.nodes[slot.tail as usize].next = id;
        }
        slot.tail = id;
        self.l0_occ[idx >> 6] |= 1u64 << (idx & 63);
        self.l0_sum |= 1u64 << (idx >> 6);
    }

    /// Appends the (already detached) node `id` to the L1 slot of its
    /// block.
    #[inline]
    fn link_l1(&mut self, id: u32) {
        let t = self.nodes[id as usize].t;
        debug_assert_eq!(t >> HORIZON_BITS, self.cur >> HORIZON_BITS);
        debug_assert_eq!(self.nodes[id as usize].next, NIL);
        let j = ((t >> L0_BITS) & L1_MASK) as usize;
        let bit = 1u64 << j;
        if self.l1_occ & bit == 0 {
            self.l1_occ |= bit;
            self.l1_min[j] = t;
        } else if t < self.l1_min[j] {
            self.l1_min[j] = t;
        }
        let slot = &mut self.l1[j];
        if slot.tail == NIL {
            slot.head = id;
        } else {
            self.nodes[slot.tail as usize].next = id;
        }
        slot.tail = id;
    }

    /// First occupied L0 slot at or after bit `from`, via the summary.
    #[inline]
    fn scan_l0(&self, from: usize) -> Option<usize> {
        let wi = from >> 6;
        let w = self.l0_occ[wi] & (!0u64 << (from & 63));
        if w != 0 {
            return Some((wi << 6) | w.trailing_zeros() as usize);
        }
        let sum = if wi >= 63 {
            0
        } else {
            self.l0_sum & (!0u64 << (wi + 1))
        };
        if sum == 0 {
            return None;
        }
        let wj = sum.trailing_zeros() as usize;
        let w = self.l0_occ[wj];
        debug_assert_ne!(w, 0, "summary bit set for empty word");
        Some((wj << 6) | w.trailing_zeros() as usize)
    }

    /// The earliest pending time, *without* restructuring the wheel.
    ///
    /// Purity matters for correctness, not just cost: the engine peeks
    /// ahead while its inline-resume fast path is still simulating at
    /// earlier times, and pushes issued there must still classify against
    /// the last *popped* time. Only [`EventQueue::pop`] — where simulated
    /// time really does jump forward — may cascade and advance `cur`.
    ///
    /// The level order gives the minimum directly: L0 holds the current
    /// block, occupied L1 slots hold strictly later disjoint blocks (the
    /// earliest via `l1_min`), and the overflow never holds anything in
    /// the current superblock (it is fully drained on entry).
    fn peek_time(&self) -> Option<u64> {
        if let Some(idx) = self.scan_l0((self.cur & L0_MASK) as usize) {
            return Some((self.cur & !L0_MASK) | idx as u64);
        }
        if self.l1_occ != 0 {
            let j = self.l1_occ.trailing_zeros() as usize;
            debug_assert!(j as u64 > (self.cur >> L0_BITS) & L1_MASK);
            return Some(self.l1_min[j]);
        }
        self.overflow.peek().map(|&Reverse((t, _, _))| t)
    }

    /// Advances internal structure (cascades, overflow drains) until the
    /// earliest event sits in L0, and returns its time. Leaves `cur` at a
    /// value ≤ that time, so classification of later pushes stays valid.
    /// Called only from the pop paths.
    fn advance(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Fast path: an event within the current block.
            if let Some(idx) = self.scan_l0((self.cur & L0_MASK) as usize) {
                return Some((self.cur & !L0_MASK) | idx as u64);
            }
            // Cascade the next occupied L1 block of this superblock:
            // relink its chain into L0, preserving chain (= insertion)
            // order. Every occupied slot is strictly after the current
            // block — stale earlier slots cannot exist (cascades clear
            // them and superblock entry finds L1 empty).
            if self.l1_occ != 0 {
                let j = self.l1_occ.trailing_zeros() as usize;
                debug_assert!(j as u64 > (self.cur >> L0_BITS) & L1_MASK);
                self.l1_occ &= !(1u64 << j);
                self.cur = (self.cur & !HORIZON_MASK) | ((j as u64) << L0_BITS);
                let mut id = self.l1[j].head;
                self.l1[j] = Fifo::EMPTY;
                while id != NIL {
                    let next = self.nodes[id as usize].next;
                    self.nodes[id as usize].next = NIL;
                    self.link_l0(id);
                    id = next;
                }
                continue;
            }
            // Wheels empty: jump to the overflow's superblock and drain
            // everything it holds for that superblock. Entries pop from
            // the heap in (time, seq) order, so per-tick FIFO order is
            // preserved, and any *direct* insertion into the new window
            // necessarily happens later (with a larger seq).
            let Some(&Reverse((t0, _, _))) = self.overflow.peek() else {
                debug_assert!(false, "len={} but all structures empty", self.len);
                return None;
            };
            self.cur = t0;
            let sb = t0 >> HORIZON_BITS;
            while let Some(&Reverse((t, _, _))) = self.overflow.peek() {
                if t >> HORIZON_BITS != sb {
                    break;
                }
                let Reverse((t, _, cpu)) = self.overflow.pop().expect("peeked");
                let id = self.alloc_node(t, cpu);
                if t >> L0_BITS == self.cur >> L0_BITS {
                    self.link_l0(id);
                } else {
                    self.link_l1(id);
                }
            }
        }
    }

    /// Unlinks and returns the head of the L0 slot at tick `t` (which
    /// `advance` just located).
    #[inline]
    fn consume_at(&mut self, t: u64) -> (u64, u32) {
        self.cur = t;
        let idx = (t & L0_MASK) as usize;
        let slot = &mut self.l0[idx];
        let id = slot.head;
        debug_assert_ne!(id, NIL);
        let node = self.nodes[id as usize];
        debug_assert_eq!(node.t, t);
        let slot = &mut self.l0[idx];
        slot.head = node.next;
        if node.next == NIL {
            slot.tail = NIL;
            self.l0_occ[idx >> 6] &= !(1u64 << (idx & 63));
            if self.l0_occ[idx >> 6] == 0 {
                self.l0_sum &= !(1u64 << (idx >> 6));
            }
        }
        self.free_node(id);
        self.len -= 1;
        (t, node.cpu)
    }
}

impl EventQueue for TimeWheel {
    fn push(&mut self, t: u64, cpu: u32) {
        debug_assert!(t >= self.cur, "push into the past: t={t} cur={}", self.cur);
        let t = t.max(self.cur);
        self.len += 1;
        if t >> HORIZON_BITS == self.cur >> HORIZON_BITS {
            let id = self.alloc_node(t, cpu);
            if t >> L0_BITS == self.cur >> L0_BITS {
                self.link_l0(id);
            } else {
                self.link_l1(id);
            }
        } else {
            self.seq += 1;
            self.overflow.push(Reverse((t, self.seq, cpu)));
        }
    }

    fn next_time(&mut self) -> Option<u64> {
        self.peek_time()
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let t = self.advance()?;
        Some(self.consume_at(t))
    }

    fn pop_at_most(&mut self, limit: u64) -> Option<(u64, u32)> {
        // Fast path: an event in the current block needs no structural
        // work, so find-min and consume share one bitmap scan.
        if let Some(idx) = self.scan_l0((self.cur & L0_MASK) as usize) {
            let t = (self.cur & !L0_MASK) | idx as u64;
            if t > limit {
                return None;
            }
            return Some(self.consume_at(t));
        }
        // Otherwise peek *purely* first: declining to pop must not
        // cascade (`cur` may only advance when time really moves, else
        // later pushes at pre-advance times would be misclassified).
        let t = self.peek_time()?;
        if t > limit {
            return None;
        }
        let located = self.advance().expect("peeked");
        debug_assert_eq!(located, t);
        Some(self.consume_at(located))
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Cross-check scheduler: drives a [`TimeWheel`] and a [`BinHeapQueue`]
/// in lockstep and asserts every observation agrees. Selected via
/// [`SchedKind::Check`](crate::SchedKind); asserts are active in release
/// builds too — this mode exists to validate, not to be fast.
#[derive(Debug, Default)]
pub struct CheckedQueue {
    wheel: TimeWheel,
    heap: BinHeapQueue,
}

impl CheckedQueue {
    /// An empty cross-checking queue.
    pub fn new() -> CheckedQueue {
        CheckedQueue::default()
    }
}

impl EventQueue for CheckedQueue {
    fn push(&mut self, t: u64, cpu: u32) {
        self.wheel.push(t, cpu);
        self.heap.push(t, cpu);
    }

    fn next_time(&mut self) -> Option<u64> {
        let w = self.wheel.next_time();
        let h = self.heap.next_time();
        assert_eq!(w, h, "wheel/heap next_time diverge");
        w
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let w = self.wheel.pop();
        let h = self.heap.pop();
        assert_eq!(w, h, "wheel/heap pop order diverges");
        w
    }

    fn pop_at_most(&mut self, limit: u64) -> Option<(u64, u32)> {
        let w = self.wheel.pop_at_most(limit);
        let h = self.heap.pop_at_most(limit);
        assert_eq!(w, h, "wheel/heap pop_at_most diverges");
        w
    }

    fn len(&self) -> usize {
        let w = self.wheel.len();
        assert_eq!(w, self.heap.len(), "wheel/heap length diverges");
        w
    }
}

/// One recorded scheduler operation (for replay benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedOp {
    /// An enqueue of `cpu` at time `t`.
    Push {
        /// Event time.
        t: u64,
        /// CPU id.
        cpu: u32,
    },
    /// A dequeue of the earliest event.
    Pop,
}

/// Cloneable handle onto a recorded scheduler-operation stream, in the
/// style of [`crate::EventLog`]. Install with
/// [`Machine::record_sched_ops`](crate::Machine::record_sched_ops), run a
/// workload, then [`take`](SchedOpLog::take) the trace and replay it
/// against any [`EventQueue`] — this is how `crates/bench` measures the
/// schedulers in isolation on a real fig5 event mix.
#[derive(Debug, Clone, Default)]
pub struct SchedOpLog {
    ops: Arc<Mutex<Vec<SchedOp>>>,
}

impl SchedOpLog {
    /// An empty log.
    pub fn new() -> SchedOpLog {
        SchedOpLog::default()
    }

    /// Moves the recorded operations out, leaving the log empty.
    pub fn take(&self) -> Vec<SchedOp> {
        std::mem::take(&mut self.ops.lock().expect("sched log poisoned"))
    }
}

/// A [`TimeWheel`] that records every operation into a [`SchedOpLog`].
#[derive(Debug)]
pub struct RecordingQueue {
    inner: TimeWheel,
    log: SchedOpLog,
}

impl RecordingQueue {
    /// Wraps a fresh wheel, recording into `log`.
    pub fn new(log: SchedOpLog) -> RecordingQueue {
        RecordingQueue {
            inner: TimeWheel::new(),
            log,
        }
    }
}

impl EventQueue for RecordingQueue {
    fn push(&mut self, t: u64, cpu: u32) {
        self.log
            .ops
            .lock()
            .expect("sched log poisoned")
            .push(SchedOp::Push { t, cpu });
        self.inner.push(t, cpu);
    }

    fn next_time(&mut self) -> Option<u64> {
        self.inner.next_time()
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let out = self.inner.pop();
        if out.is_some() {
            self.log
                .ops
                .lock()
                .expect("sched log poisoned")
                .push(SchedOp::Pop);
        }
        out
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

/// The engine's queue: enum dispatch keeps the per-event scheduler call
/// a predictable branch instead of a virtual call.
#[derive(Debug)]
pub(crate) enum SchedQueue {
    Wheel(TimeWheel),
    Heap(BinHeapQueue),
    Check(CheckedQueue),
    Record(RecordingQueue),
}

impl SchedQueue {
    pub(crate) fn new(kind: crate::SchedKind) -> SchedQueue {
        match kind {
            crate::SchedKind::Wheel => SchedQueue::Wheel(TimeWheel::new()),
            crate::SchedKind::Heap => SchedQueue::Heap(BinHeapQueue::new()),
            crate::SchedKind::Check => SchedQueue::Check(CheckedQueue::new()),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, t: u64, cpu: u32) {
        match self {
            SchedQueue::Wheel(q) => q.push(t, cpu),
            SchedQueue::Heap(q) => q.push(t, cpu),
            SchedQueue::Check(q) => q.push(t, cpu),
            SchedQueue::Record(q) => q.push(t, cpu),
        }
    }

    #[inline]
    pub(crate) fn next_time(&mut self) -> Option<u64> {
        match self {
            SchedQueue::Wheel(q) => q.next_time(),
            SchedQueue::Heap(q) => q.next_time(),
            SchedQueue::Check(q) => q.next_time(),
            SchedQueue::Record(q) => q.next_time(),
        }
    }

    #[inline]
    pub(crate) fn pop_at_most(&mut self, limit: u64) -> Option<(u64, u32)> {
        match self {
            SchedQueue::Wheel(q) => q.pop_at_most(limit),
            SchedQueue::Heap(q) => q.pop_at_most(limit),
            SchedQueue::Check(q) => q.pop_at_most(limit),
            SchedQueue::Record(q) => q.pop_at_most(limit),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        match self {
            SchedQueue::Wheel(q) => q.len() == 0,
            SchedQueue::Heap(q) => q.len() == 0,
            SchedQueue::Check(q) => q.len() == 0,
            SchedQueue::Record(q) => q.len() == 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn fifo_tie_break_same_tick() {
        // Events on one tick pop in insertion order, whatever the cpu ids.
        for q in [
            &mut TimeWheel::new() as &mut dyn EventQueue,
            &mut BinHeapQueue::new(),
            &mut CheckedQueue::new(),
        ] {
            for cpu in [9u32, 3, 7, 3, 0] {
                q.push(100, cpu);
            }
            let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, c)| c).collect();
            assert_eq!(order, vec![9, 3, 7, 3, 0]);
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_fifo_per_tick() {
        let mut w = TimeWheel::new();
        let mut h = BinHeapQueue::new();
        // Push at a tick, consume part of it, push more at the same tick.
        for c in 0..3 {
            w.push(50, c);
            h.push(50, c);
        }
        assert_eq!(w.pop(), h.pop());
        for c in 10..13 {
            w.push(50, c);
            h.push(50, c);
        }
        while let Some(e) = h.pop() {
            assert_eq!(w.pop(), Some(e));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn overflow_entries_order_against_direct_inserts() {
        let mut w = TimeWheel::new();
        let mut h = BinHeapQueue::new();
        let far = 1u64 << 20; // beyond the 2^18 horizon: overflow
        w.push(far, 1);
        h.push(far, 1);
        w.push(far + 3, 2);
        h.push(far + 3, 2);
        // Something near keeps the wheel busy before the jump.
        w.push(5, 0);
        h.push(5, 0);
        assert_eq!(w.pop(), h.pop());
        // After time advances into the far superblock, direct pushes at
        // the same tick must pop *after* the older overflow entries.
        assert_eq!(w.next_time(), Some(far));
        w.push(far, 9);
        h.push(far, 9);
        while let Some(e) = h.pop() {
            assert_eq!(w.pop(), Some(e));
        }
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn cascade_preserves_order_across_blocks_and_laps() {
        let mut w = TimeWheel::new();
        let mut h = BinHeapQueue::new();
        // Straddle several L0 blocks and superblock wraps (the L0 block
        // is 1024 cycles, the superblock 65 536).
        let times = [
            0u64, 1, 1023, 1024, 1025, 4095, 4096, 4097, 8000, 65_535, 65_536, 131_071, 131_072,
            262_143, 262_144, 262_145, 300_000, 524_287, 524_288, 1 << 21,
        ];
        for (i, &t) in times.iter().enumerate() {
            w.push(t, i as u32);
            h.push(t, i as u32);
        }
        while let Some(e) = h.pop() {
            assert_eq!(w.pop(), Some(e));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn randomized_against_reference() {
        // Engine-shaped fuzz: pushes are always ≥ the last popped time,
        // with the engine's real delay mix (tiny latencies, backoff-sized
        // sleeps, rare preemption-sized jumps that hit the overflow).
        let mut rng = SplitMix64::new(0xC0FFEE);
        let mut w = TimeWheel::new();
        let mut h = BinHeapQueue::new();
        let mut now = 0u64;
        let mut pending = 0u32;
        for _ in 0..200_000 {
            let do_push = pending == 0 || rng.next_below(100) < 55;
            if do_push {
                let d = match rng.next_below(100) {
                    0..=59 => rng.next_below(500),           // coherence latencies
                    60..=89 => rng.next_below(60_000),       // backoff / think time
                    90..=97 => rng.next_below(400_000),      // preemption quanta
                    _ => rng.next_below(20_000_000),         // fault timers
                };
                let cpu = rng.next_below(28) as u32;
                w.push(now + d, cpu);
                h.push(now + d, cpu);
                pending += 1;
            } else {
                let (e, r) = (w.pop(), h.pop());
                assert_eq!(e, r);
                now = e.expect("pending > 0").0;
                pending -= 1;
            }
            assert_eq!(w.len(), h.len());
        }
        while let Some(e) = h.pop() {
            assert_eq!(w.pop(), Some(e));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn wheel_reports_len_and_empty() {
        let mut w = TimeWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.next_time(), None);
        w.push(10, 0);
        w.push(1 << 30, 1);
        assert_eq!(w.len(), 2);
        assert_eq!(w.next_time(), Some(10));
        w.pop();
        w.pop();
        assert!(w.is_empty());
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn pop_is_time_monotone() {
        let mut rng = SplitMix64::new(42);
        let mut w = TimeWheel::new();
        let mut now = 0;
        for _ in 0..10_000 {
            w.push(now + rng.next_below(100_000), rng.next_below(16) as u32);
            if rng.next_below(2) == 0 {
                if let Some((t, _)) = w.pop() {
                    assert!(t >= now, "time went backwards: {t} < {now}");
                    now = t;
                }
            }
        }
        let mut last = now;
        while let Some((t, _)) = w.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn recording_queue_captures_ops_and_replays() {
        let log = SchedOpLog::new();
        let mut q = RecordingQueue::new(log.clone());
        q.push(5, 1);
        q.push(3, 2);
        let first = q.pop();
        assert_eq!(first, Some((3, 2)));
        let ops = log.take();
        assert_eq!(
            ops,
            vec![
                SchedOp::Push { t: 5, cpu: 1 },
                SchedOp::Push { t: 3, cpu: 2 },
                SchedOp::Pop,
            ]
        );
        assert!(log.take().is_empty(), "take drains the log");
        // Replaying the ops against the reference gives the same pops.
        let mut h = BinHeapQueue::new();
        let mut pops = Vec::new();
        for op in &ops {
            match *op {
                SchedOp::Push { t, cpu } => h.push(t, cpu),
                SchedOp::Pop => pops.push(h.pop()),
            }
        }
        assert_eq!(pops, vec![first]);
    }

    #[test]
    #[should_panic(expected = "pop order diverges")]
    fn checked_queue_panics_on_divergence() {
        let mut q = CheckedQueue::new();
        q.push(10, 1);
        // Sabotage the heap side so the next pop disagrees.
        q.heap.push(5, 9);
        q.wheel.push(5, 8);
        let _ = q.pop();
    }
}

//! Pluggable coherence protocols over set-associative cache geometry.
//!
//! The flat model in [`crate::mem`] treats every word as its own
//! unbounded cache line — fast, and faithful to the paper's lock-word
//! behaviour, but blind to everything a real line does: false sharing
//! between a lock word and the data it guards, capacity evictions
//! bouncing a hot line, and the invalidate-vs-update policy split. The
//! [`CoherenceProtocol`] trait makes the protocol a per-machine choice
//! ([`crate::MachineConfig::protocol`], harness `--protocol`):
//!
//! * [`FlatProtocol`] — the original word-granular model, expressed as a
//!   trait object. Flat machines do not actually install it (the
//!   dispatcher short-circuits to the inline flat path so the hot path
//!   is untouched); it exists so the equivalence can be pinned by test.
//! * [`MesiProtocol`] — invalidate-based MESI over per-CPU
//!   set-associative caches ([`CacheGeometry`]). Writes to shared lines
//!   upgrade by invalidating every other copy; read misses with no other
//!   copies install exclusive-clean (E), making private data cheap.
//! * [`DragonProtocol`] — update-based Dragon over the same geometry.
//!   Writes broadcast the new value to every holder; copies stay valid,
//!   so false sharing costs one update per holder node instead of an
//!   invalidate-plus-refill stampede.
//!
//! # Geometry, directory and LRU
//!
//! Both set-associative protocols share [`SetAssoc`]: per-CPU tag arrays
//! (`sets × ways`, LRU-evicted by a monotone touch tick) plus a global
//! line directory (owner, sharer bitmap, dirty, busy horizon) indexed by
//! line id = `word >> log2(line_words)`. A line's home is the home node
//! of its first word. Timing reuses the flat model's machinery: latency
//! classes from [`crate::LatencyModel`], per-line occupancy, per-node
//! bus and shared link horizons, and the fault layers.
//!
//! # Watchers, evictions and false sharing
//!
//! Parked spinners ([`crate::Command::WaitWhile`]) stay in the memory
//! system's per-word chains. Under MESI, *any* write to a line refills
//! every watcher parked on *any* word of that line — watchers on
//! untouched words pay the full invalidate-and-refetch but stay parked,
//! which is exactly the false-sharing stampede. Under Dragon the write
//! delivers one update per holder node; watchers on other words keep
//! their copies and pay nothing. Evicting a line does not disturb
//! watcher chains: the subscription outlives the copy, and a watcher
//! whose copy was evicted is re-fetched on its next refill.
//!
//! # Determinism
//!
//! All protocol state (tags, ticks, directory) advances only from the
//! engine's deterministic event order, so MESI and Dragon runs are
//! byte-identical across `--jobs` and `--sched` exactly like flat runs.

use nuca_topology::{CpuId, NodeId};

use crate::config::{CacheGeometry, ProtocolKind};
use crate::mem::{AccessOutcome, Addr, MemOp, MemorySystem, WatchNode, NO_OWNER, WNIL};
use crate::stats::SimStats;
use crate::trace::{SimEvent, TraceSink};

/// A coherence protocol: the state machine that decides what each memory
/// access costs and how line state evolves. One boxed instance lives in
/// each [`MemorySystem`] built with a non-flat
/// [`crate::MachineConfig::protocol`].
pub(crate) trait CoherenceProtocol: std::fmt::Debug + Send {
    /// Which [`ProtocolKind`] this object implements.
    fn kind(&self) -> ProtocolKind;

    /// Performs `op` by `cpu` on `addr` starting at `now` — the protocol
    /// counterpart of the flat `MemorySystem::access` contract: the value
    /// effect applies immediately (event order is coherence order), the
    /// outcome carries completion time and old value, traffic lands in
    /// `stats`, and `woken` is cleared then filled with watchers this
    /// access released.
    #[allow(clippy::too_many_arguments)]
    fn access(
        &mut self,
        mem: &mut MemorySystem,
        now: u64,
        cpu: CpuId,
        addr: Addr,
        op: MemOp,
        stats: &mut SimStats,
        trace: Option<&mut (dyn TraceSink + 'static)>,
        woken: &mut Vec<(CpuId, u64, u64)>,
    ) -> AccessOutcome;

    /// Whether `cpu` currently holds a valid cached copy of `addr`'s line
    /// (drives the pre-park fetch in `MemorySystem::wait_while`).
    fn holds_copy(&self, mem: &MemorySystem, cpu: CpuId, addr: Addr) -> bool;
}

/// Builds the protocol object a fresh [`MemorySystem`] installs: `None`
/// for [`ProtocolKind::Flat`] (the inline flat path runs untouched — the
/// dispatcher is a single branch), a boxed state machine otherwise.
pub(crate) fn build_protocol(
    kind: ProtocolKind,
    geometry: CacheGeometry,
    num_cpus: usize,
) -> Option<Box<dyn CoherenceProtocol>> {
    match kind {
        ProtocolKind::Flat => None,
        ProtocolKind::Mesi => Some(Box::new(MesiProtocol::new(geometry, num_cpus))),
        ProtocolKind::Dragon => Some(Box::new(DragonProtocol::new(geometry, num_cpus))),
    }
}

/// The flat word-granular model as a trait object. Delegates to the
/// inline flat path, so installing it is observationally identical to
/// installing no protocol at all — pinned by test (flat machines never
/// actually construct it, hence the test-only allowance).
#[derive(Debug)]
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) struct FlatProtocol;

impl CoherenceProtocol for FlatProtocol {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Flat
    }

    fn access(
        &mut self,
        mem: &mut MemorySystem,
        now: u64,
        cpu: CpuId,
        addr: Addr,
        op: MemOp,
        stats: &mut SimStats,
        trace: Option<&mut (dyn TraceSink + 'static)>,
        woken: &mut Vec<(CpuId, u64, u64)>,
    ) -> AccessOutcome {
        mem.flat_access(now, cpu, addr, op, stats, trace, woken)
    }

    fn holds_copy(&self, mem: &MemorySystem, cpu: CpuId, addr: Addr) -> bool {
        mem.flat_holds_copy(cpu, addr)
    }
}

/// Empty-way sentinel in the tag arrays.
const EMPTY: u64 = u64::MAX;

/// Directory state of one cache line.
#[derive(Debug, Clone, Copy)]
struct LineDir {
    /// CPU holding the line modified/exclusive ([`NO_OWNER`] if none).
    /// Under Dragon an owner (the last writer) may coexist with sharers.
    owner: u32,
    /// CPUs holding valid non-owner copies.
    sharers: u128,
    /// Whether the owner's copy differs from memory (M vs E).
    dirty: bool,
    /// Line occupancy horizon, as in the flat model.
    busy_until: u64,
}

impl Default for LineDir {
    fn default() -> LineDir {
        LineDir { owner: NO_OWNER, sharers: 0, dirty: false, busy_until: 0 }
    }
}

/// Shared geometry plumbing of the set-associative protocols: per-CPU
/// tag/LRU arrays plus the line directory.
#[derive(Debug)]
struct SetAssoc {
    line_shift: u32,
    sets: usize,
    ways: usize,
    /// `[cpu][set][way]` line tags, [`EMPTY`] when the way is free.
    tags: Vec<u64>,
    /// Last-touch tick per way (monotone counter → deterministic LRU).
    ticks: Vec<u64>,
    tick: u64,
    dir: Vec<LineDir>,
}

impl SetAssoc {
    fn new(geom: CacheGeometry, num_cpus: usize) -> SetAssoc {
        assert!(geom.line_words.is_power_of_two() && geom.sets.is_power_of_two());
        assert!(geom.ways > 0);
        let slots = num_cpus * geom.sets * geom.ways;
        SetAssoc {
            line_shift: geom.line_words.trailing_zeros(),
            sets: geom.sets,
            ways: geom.ways,
            tags: vec![EMPTY; slots],
            ticks: vec![0; slots],
            tick: 0,
            dir: Vec::new(),
        }
    }

    fn line_of(&self, word: usize) -> usize {
        word >> self.line_shift
    }

    fn ensure_line(&mut self, line: usize) {
        if line >= self.dir.len() {
            self.dir.resize(line + 1, LineDir::default());
        }
    }

    fn slot_range(&self, cpu: usize, line: usize) -> std::ops::Range<usize> {
        let set = line & (self.sets - 1);
        let base = (cpu * self.sets + set) * self.ways;
        base..base + self.ways
    }

    fn contains(&self, cpu: usize, line: usize) -> bool {
        self.tags[self.slot_range(cpu, line)].contains(&(line as u64))
    }

    /// LRU-touches a line that must already be cached by `cpu`.
    fn touch(&mut self, cpu: usize, line: usize) {
        self.tick += 1;
        let tick = self.tick;
        for i in self.slot_range(cpu, line) {
            if self.tags[i] == line as u64 {
                self.ticks[i] = tick;
                return;
            }
        }
        debug_assert!(false, "touched a line that is not cached");
    }

    /// Inserts an absent line into `cpu`'s cache; returns the LRU victim
    /// line if the set was full.
    fn insert(&mut self, cpu: usize, line: usize) -> Option<usize> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.slot_range(cpu, line);
        let mut victim = range.start;
        for i in range {
            if self.tags[i] == EMPTY {
                self.tags[i] = line as u64;
                self.ticks[i] = tick;
                return None;
            }
            if self.ticks[i] < self.ticks[victim] {
                victim = i;
            }
        }
        let evicted = self.tags[victim] as usize;
        self.tags[victim] = line as u64;
        self.ticks[victim] = tick;
        Some(evicted)
    }

    /// Drops `line` from `cpu`'s cache if present (invalidation).
    fn remove(&mut self, cpu: usize, line: usize) {
        for i in self.slot_range(cpu, line) {
            if self.tags[i] == line as u64 {
                self.tags[i] = EMPTY;
                return;
            }
        }
    }
}

/// Home node of a line: the home of its first word (clamped to the
/// allocated range, for the tail line of the address space).
fn line_home(mem: &MemorySystem, line: usize, shift: u32) -> NodeId {
    let w = (line << shift).min(mem.values.len() - 1);
    mem.homes[w]
}

/// Latency class of a fetch served by CPU `server`'s cache, or by
/// `home`'s memory when `server` is `None`. Returns
/// `(base latency, serving node, on_chip, global)` — the same
/// classification the flat model applies.
fn classify(
    mem: &MemorySystem,
    cpu: CpuId,
    my_node: NodeId,
    server: Option<CpuId>,
    home: NodeId,
) -> (u64, NodeId, bool, bool) {
    let lat = mem.latency;
    match server {
        Some(o) => {
            let on = mem.node_of(o);
            if on == my_node {
                if !mem.migrated && mem.topo.extra_levels() > 0 && mem.topo.distance(cpu, o) <= 1 {
                    (lat.same_chip_transfer, on, true, false)
                } else {
                    (lat.same_node_transfer, on, false, false)
                }
            } else {
                (lat.remote_transfer, on, false, true)
            }
        }
        None => {
            if home == my_node {
                (lat.local_memory, home, false, false)
            } else {
                (lat.remote_memory, home, false, true)
            }
        }
    }
}

/// The CPU that serves a miss: the owner if another CPU owns the line,
/// else a deterministic sharer (lowest id on the requester's node,
/// falling back to the lowest id overall), else `None` (memory).
fn pick_server(d: &LineDir, mem: &MemorySystem, me: u32, my_node: NodeId) -> Option<CpuId> {
    if d.owner != NO_OWNER && d.owner != me {
        return Some(CpuId(d.owner as usize));
    }
    let others = d.sharers & !(1u128 << me);
    if others == 0 {
        return None;
    }
    let mut h = others;
    while h != 0 {
        let c = h.trailing_zeros() as usize;
        h &= h - 1;
        if mem.node_of(CpuId(c)) == my_node {
            return Some(CpuId(c));
        }
    }
    Some(CpuId(others.trailing_zeros() as usize))
}

/// Arbitrates one data-moving transaction (fetch, upgrade request or
/// update broadcast) for the line, the requester's bus and — cross-node —
/// the serving node's bus plus the shared link; charges traffic to the
/// requester's node and emits one `CoherenceTxn`. Mirrors phase 2 of the
/// flat slow path. Returns `(start, complete_at)` and advances `busy`,
/// the line's occupancy horizon.
#[allow(clippy::too_many_arguments)]
fn pay_txn(
    mem: &mut MemorySystem,
    busy: &mut u64,
    now: u64,
    cpu: CpuId,
    my_node: NodeId,
    served_by: NodeId,
    home: NodeId,
    base: u64,
    on_chip: bool,
    global: bool,
    atomic: bool,
    stats: &mut SimStats,
    trace: &mut Option<&mut (dyn TraceSink + 'static)>,
) -> (u64, u64) {
    let lat = mem.latency;
    let mut latency = mem.faulted_latency(base, served_by);
    if atomic {
        latency += lat.atomic_extra;
    }
    let start;
    if on_chip {
        stats.count_local(my_node);
        start = now.max(*busy);
        *busy = start + lat.local_occupancy;
        if let Some(t) = trace.as_deref_mut() {
            t.record(start, SimEvent::CoherenceTxn { cpu, node: my_node, home, global: false });
        }
    } else {
        if global {
            stats.count_global(my_node);
        } else {
            stats.count_local(my_node);
        }
        let mut s = now.max(*busy).max(mem.bus_until[my_node.index()]);
        if global {
            s = s.max(mem.link_until).max(mem.bus_until[served_by.index()]);
        }
        start = s;
        *busy = start + if global { lat.global_occupancy } else { lat.local_occupancy };
        let bus_occ = if atomic { lat.bus_occupancy * 2 } else { lat.bus_occupancy };
        mem.bus_until[my_node.index()] = start + bus_occ;
        if global {
            mem.bus_until[served_by.index()] = start + bus_occ;
            mem.link_until =
                start + if atomic { lat.link_occupancy * 2 } else { lat.link_occupancy };
        }
        if let Some(t) = trace.as_deref_mut() {
            t.record(start, SimEvent::CoherenceTxn { cpu, node: my_node, home, global });
        }
    }
    (start, start + latency)
}

/// Counts one secondary per-node transaction (invalidation or update
/// delivery) attributed to `target`, as the flat invalidation loop does.
fn count_node_txn(
    stats: &mut SimStats,
    trace: &mut Option<&mut (dyn TraceSink + 'static)>,
    at: u64,
    cpu: CpuId,
    target: NodeId,
    my_node: NodeId,
    home: NodeId,
) {
    let global = target != my_node;
    if global {
        stats.count_global(target);
    } else {
        stats.count_local(target);
    }
    if let Some(t) = trace.as_deref_mut() {
        t.record(at, SimEvent::CoherenceTxn { cpu, node: target, home, global });
    }
}

/// Inserts `line` into `cpu`'s cache (it must be absent), evicting the
/// LRU victim if the set is full. A victim the CPU owned dirty pays a
/// buffered writeback transaction to the victim's home (traffic only —
/// writebacks do not delay the access that triggered them); every
/// eviction clears the victim's directory state for this CPU and emits an
/// `Eviction` event. Watcher chains are untouched: the subscription
/// outlives the copy.
#[allow(clippy::too_many_arguments)]
fn insert_with_eviction(
    c: &mut SetAssoc,
    mem: &mut MemorySystem,
    cpu: CpuId,
    my_node: NodeId,
    line: usize,
    at: u64,
    stats: &mut SimStats,
    trace: &mut Option<&mut (dyn TraceSink + 'static)>,
) {
    let Some(victim) = c.insert(cpu.index(), line) else {
        return;
    };
    let me = cpu.index() as u32;
    let vd = c.dir[victim];
    let vhome = line_home(mem, victim, c.line_shift);
    let dirty = vd.owner == me && vd.dirty;
    if vd.owner == me {
        c.dir[victim].owner = NO_OWNER;
        c.dir[victim].dirty = false;
    } else {
        c.dir[victim].sharers &= !(1u128 << me);
    }
    if dirty {
        let global = vhome != my_node;
        if global {
            stats.count_global(my_node);
        } else {
            stats.count_local(my_node);
        }
        if let Some(t) = trace.as_deref_mut() {
            t.record(at, SimEvent::CoherenceTxn { cpu, node: my_node, home: vhome, global });
        }
    }
    if let Some(t) = trace.as_deref_mut() {
        t.record(at, SimEvent::Eviction { cpu, node: my_node, home: vhome, dirty });
    }
}

/// Invalidate-based MESI over [`SetAssoc`] geometry.
#[derive(Debug)]
pub(crate) struct MesiProtocol {
    c: SetAssoc,
}

impl MesiProtocol {
    pub(crate) fn new(geom: CacheGeometry, num_cpus: usize) -> MesiProtocol {
        MesiProtocol { c: SetAssoc::new(geom, num_cpus) }
    }

    /// Removes every other holder's copy of `line` (directory + tags) and
    /// counts one invalidation per holder node. Returns how many nodes
    /// were invalidated. Leaves the directory with no owner and no
    /// sharers — the caller installs the new exclusive state.
    #[allow(clippy::too_many_arguments)]
    fn invalidate_others(
        &mut self,
        mem: &mut MemorySystem,
        line: usize,
        cpu: CpuId,
        my_node: NodeId,
        home: NodeId,
        at: u64,
        stats: &mut SimStats,
        trace: &mut Option<&mut (dyn TraceSink + 'static)>,
    ) -> u32 {
        let me = cpu.index() as u32;
        let d = self.c.dir[line];
        let mut holders = d.sharers;
        if d.owner != NO_OWNER {
            holders |= 1u128 << d.owner;
        }
        holders &= !(1u128 << me);
        let mut node_mask = 0u64;
        let mut h = holders;
        while h != 0 {
            let cidx = h.trailing_zeros() as usize;
            h &= h - 1;
            self.c.remove(cidx, line);
            node_mask |= 1 << mem.node_of(CpuId(cidx)).index();
        }
        let mut invalidated = 0;
        while node_mask != 0 {
            let n = node_mask.trailing_zeros() as usize;
            node_mask &= node_mask - 1;
            invalidated += 1;
            count_node_txn(stats, trace, at, cpu, NodeId(n), my_node, home);
        }
        let dd = &mut self.c.dir[line];
        dd.sharers = 0;
        dd.owner = NO_OWNER;
        invalidated
    }

    /// Processes the watcher chains of *every word* of `line` after a
    /// write: each parked spinner pays an invalidate-and-refetch refill
    /// (traffic + serialization on the line, the false-sharing stampede),
    /// re-caches the line, and wakes only if its own word's value
    /// actually changed. Mirrors phase 4 of the flat slow path, widened
    /// from one word to the whole line.
    #[allow(clippy::too_many_arguments)]
    fn wake_line(
        &mut self,
        mem: &mut MemorySystem,
        line: usize,
        writer: CpuId,
        my_node: NodeId,
        home: NodeId,
        complete_at: u64,
        stats: &mut SimStats,
        trace: &mut Option<&mut (dyn TraceSink + 'static)>,
        woken: &mut Vec<(CpuId, u64, u64)>,
    ) {
        let lat = mem.latency;
        let first = line << self.c.line_shift;
        let last = (first + (1usize << self.c.line_shift)).min(mem.values.len());
        let mut busy = self.c.dir[line].busy_until.max(complete_at);
        let mut any = false;
        let mut new_sharers = 0u128;
        for w in first..last {
            if mem.watch_head[w] == WNIL {
                continue;
            }
            let mut id = mem.watch_head[w];
            let mut kept_head = WNIL;
            let mut kept_tail = WNIL;
            while id != WNIL {
                let WatchNode { equals, cpu: wc, next } = mem.wnodes[id as usize];
                any = true;
                let wcpu = CpuId(wc as usize);
                let w_node = mem.node_of(wcpu);
                let global = w_node != my_node;
                let (refill, occ) = if global {
                    stats.count_global(w_node);
                    (lat.remote_transfer, lat.global_occupancy)
                } else {
                    stats.count_local(w_node);
                    (lat.same_node_transfer, lat.local_occupancy)
                };
                let refill = mem.faulted_latency(refill, my_node);
                let mut s = busy.max(mem.bus_until[w_node.index()]);
                if global {
                    s = s.max(mem.link_until).max(mem.bus_until[my_node.index()]);
                }
                let wake_at = s + refill;
                busy = s + occ;
                if let Some(t) = trace.as_deref_mut() {
                    t.record(s, SimEvent::CoherenceTxn { cpu: wcpu, node: w_node, home, global });
                }
                mem.bus_until[w_node.index()] = s + lat.bus_occupancy;
                if global {
                    mem.bus_until[my_node.index()] = s + lat.bus_occupancy;
                    mem.link_until = s + lat.link_occupancy;
                }
                // The refill re-caches the line at the watcher.
                if !self.c.contains(wc as usize, line) {
                    insert_with_eviction(&mut self.c, mem, wcpu, w_node, line, s, stats, trace);
                }
                new_sharers |= 1u128 << wc;
                let val = mem.values[w];
                if val != equals {
                    woken.push((wcpu, wake_at, val));
                    mem.wnodes[id as usize].next = mem.wfree;
                    mem.wfree = id;
                } else {
                    mem.wnodes[id as usize].next = WNIL;
                    if kept_tail == WNIL {
                        kept_head = id;
                    } else {
                        mem.wnodes[kept_tail as usize].next = id;
                    }
                    kept_tail = id;
                }
                id = next;
            }
            mem.watch_head[w] = kept_head;
            mem.watch_tail[w] = kept_tail;
        }
        let dd = &mut self.c.dir[line];
        dd.busy_until = busy;
        if any {
            dd.sharers |= new_sharers;
            // Refilled watchers demote the writer's exclusive copy.
            if dd.owner == writer.index() as u32 {
                dd.sharers |= 1u128 << dd.owner;
                dd.owner = NO_OWNER;
                dd.dirty = false;
            }
        }
    }
}

impl CoherenceProtocol for MesiProtocol {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Mesi
    }

    fn access(
        &mut self,
        mem: &mut MemorySystem,
        now: u64,
        cpu: CpuId,
        addr: Addr,
        op: MemOp,
        stats: &mut SimStats,
        mut trace: Option<&mut (dyn TraceSink + 'static)>,
        woken: &mut Vec<(CpuId, u64, u64)>,
    ) -> AccessOutcome {
        woken.clear();
        let word = addr.index();
        let line = self.c.line_of(word);
        self.c.ensure_line(line);
        let me = cpu.index() as u32;
        let mebit = 1u128 << me;
        let my_node = mem.node_of(cpu);
        let home = line_home(mem, line, self.c.line_shift);
        let lat = mem.latency;
        let d = self.c.dir[line];
        let holds = d.owner == me || d.sharers & mebit != 0;

        if holds {
            self.c.touch(cpu.index(), line);
            if !op.is_write() {
                // Read hit: M, E and S all serve locally with no state
                // change (MESI keeps exclusivity across owner reads,
                // unlike the flat model's M→S demotion).
                stats.count_hit();
                return AccessOutcome {
                    complete_at: now + lat.l1_hit,
                    value: mem.values[word],
                };
            }
            if d.owner == me {
                // Write hit in M or E (E upgrades to M silently).
                stats.count_hit();
                self.c.dir[line].dirty = true;
                let old = MemorySystem::apply_op(&mut mem.values[word], op);
                let mut l = lat.l1_hit;
                if op.is_atomic() {
                    l += lat.atomic_extra;
                }
                let complete_at = now + l;
                self.wake_line(mem, line, cpu, my_node, home, complete_at, stats, &mut trace, woken);
                return AccessOutcome { complete_at, value: old };
            }
            // Write hit in S: upgrade. The request moves no data — one
            // bus round (or link round, if any copy is remote) — then
            // every other copy is invalidated.
            let mut others = d.sharers & !mebit;
            if d.owner != NO_OWNER {
                others |= 1u128 << d.owner;
            }
            let mut any_remote = false;
            let mut h = others;
            while h != 0 {
                let cidx = h.trailing_zeros() as usize;
                h &= h - 1;
                if mem.node_of(CpuId(cidx)) != my_node {
                    any_remote = true;
                }
            }
            let base = if any_remote { lat.remote_transfer } else { lat.same_node_transfer };
            let served_by = if any_remote { home } else { my_node };
            let mut busy = d.busy_until;
            let (start, complete_at) = pay_txn(
                mem, &mut busy, now, cpu, my_node, served_by, home, base, false, any_remote,
                op.is_atomic(), stats, &mut trace,
            );
            let invalidated =
                self.invalidate_others(mem, line, cpu, my_node, home, start, stats, &mut trace);
            if let Some(t) = trace.as_deref_mut() {
                t.record(start, SimEvent::Upgrade { cpu, node: my_node, home, invalidated });
            }
            let dd = &mut self.c.dir[line];
            dd.owner = me;
            dd.sharers = 0;
            dd.dirty = true;
            dd.busy_until = busy;
            let old = MemorySystem::apply_op(&mut mem.values[word], op);
            self.wake_line(mem, line, cpu, my_node, home, complete_at, stats, &mut trace, woken);
            return AccessOutcome { complete_at, value: old };
        }

        // Miss: fetch from the owner, a sharer, or home memory.
        let server = pick_server(&d, mem, me, my_node);
        let (base, served_by, on_chip, global) = classify(mem, cpu, my_node, server, home);
        let mut busy = d.busy_until;
        let (start, complete_at) = pay_txn(
            mem, &mut busy, now, cpu, my_node, served_by, home, base, on_chip, global,
            op.is_atomic(), stats, &mut trace,
        );
        self.c.dir[line].busy_until = busy;

        if op.is_write() {
            // Read-with-intent-to-modify: every other copy dies.
            let _ = self.invalidate_others(mem, line, cpu, my_node, home, start, stats, &mut trace);
            let dd = &mut self.c.dir[line];
            dd.owner = me;
            dd.sharers = 0;
            dd.dirty = true;
        } else {
            let dd = &mut self.c.dir[line];
            if dd.owner != NO_OWNER {
                // The previous owner demotes to sharer; its modified data
                // travels on the transfer (no separate writeback charged,
                // matching the flat model's accounting).
                dd.sharers |= 1u128 << dd.owner;
                dd.owner = NO_OWNER;
                dd.dirty = false;
                dd.sharers |= mebit;
            } else if dd.sharers == 0 {
                // No copies anywhere: exclusive-clean (the E state). The
                // next write by this CPU upgrades silently.
                dd.owner = me;
                dd.dirty = false;
            } else {
                dd.sharers |= mebit;
            }
        }
        insert_with_eviction(&mut self.c, mem, cpu, my_node, line, start, stats, &mut trace);
        let old = MemorySystem::apply_op(&mut mem.values[word], op);
        if op.is_write() {
            self.wake_line(mem, line, cpu, my_node, home, complete_at, stats, &mut trace, woken);
        }
        AccessOutcome { complete_at, value: old }
    }

    fn holds_copy(&self, _mem: &MemorySystem, cpu: CpuId, addr: Addr) -> bool {
        let line = self.c.line_of(addr.index());
        match self.c.dir.get(line) {
            Some(d) => d.owner == cpu.index() as u32 || d.sharers & (1u128 << cpu.index()) != 0,
            None => false,
        }
    }
}

/// Update-based Dragon over [`SetAssoc`] geometry.
#[derive(Debug)]
pub(crate) struct DragonProtocol {
    c: SetAssoc,
}

impl DragonProtocol {
    pub(crate) fn new(geom: CacheGeometry, num_cpus: usize) -> DragonProtocol {
        DragonProtocol { c: SetAssoc::new(geom, num_cpus) }
    }
}

impl CoherenceProtocol for DragonProtocol {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Dragon
    }

    fn access(
        &mut self,
        mem: &mut MemorySystem,
        now: u64,
        cpu: CpuId,
        addr: Addr,
        op: MemOp,
        stats: &mut SimStats,
        mut trace: Option<&mut (dyn TraceSink + 'static)>,
        woken: &mut Vec<(CpuId, u64, u64)>,
    ) -> AccessOutcome {
        woken.clear();
        let word = addr.index();
        let line = self.c.line_of(word);
        self.c.ensure_line(line);
        let me = cpu.index() as u32;
        let mebit = 1u128 << me;
        let my_node = mem.node_of(cpu);
        let home = line_home(mem, line, self.c.line_shift);
        let lat = mem.latency;
        let d = self.c.dir[line];
        let holds = d.owner == me || d.sharers & mebit != 0;

        if !op.is_write() {
            if holds {
                // Dragon copies are always up to date (updates are pushed
                // to them), so every held read is a plain hit.
                self.c.touch(cpu.index(), line);
                stats.count_hit();
                return AccessOutcome {
                    complete_at: now + lat.l1_hit,
                    value: mem.values[word],
                };
            }
            // Read miss: the owner (if any) serves and *keeps* ownership
            // (M → Sm); the requester joins the sharers.
            let server = pick_server(&d, mem, me, my_node);
            let (base, served_by, on_chip, global) = classify(mem, cpu, my_node, server, home);
            let mut busy = d.busy_until;
            let (start, complete_at) = pay_txn(
                mem, &mut busy, now, cpu, my_node, served_by, home, base, on_chip, global, false,
                stats, &mut trace,
            );
            let dd = &mut self.c.dir[line];
            dd.busy_until = busy;
            dd.sharers |= mebit;
            insert_with_eviction(&mut self.c, mem, cpu, my_node, line, start, stats, &mut trace);
            return AccessOutcome { complete_at, value: mem.values[word] };
        }

        // Write: ensure a copy (fetch on miss), then update in place.
        // Copies elsewhere stay valid — they receive the new value as one
        // broadcast transaction per holder node.
        let mut busy = d.busy_until;
        let mut after_fetch = now;
        let mut fetched = false;
        if holds {
            self.c.touch(cpu.index(), line);
        } else {
            let server = pick_server(&d, mem, me, my_node);
            let (base, served_by, on_chip, global) = classify(mem, cpu, my_node, server, home);
            let (start, complete_at) = pay_txn(
                mem, &mut busy, now, cpu, my_node, served_by, home, base, on_chip, global,
                op.is_atomic(), stats, &mut trace,
            );
            after_fetch = complete_at;
            fetched = true;
            self.c.dir[line].sharers |= mebit;
            insert_with_eviction(&mut self.c, mem, cpu, my_node, line, start, stats, &mut trace);
        }
        let d = self.c.dir[line];
        let mut others = d.sharers & !mebit;
        if d.owner != NO_OWNER && d.owner != me {
            others |= 1u128 << d.owner;
        }
        // Update targets: every node holding a copy, plus the nodes of
        // watchers parked on the written word (the subscription is
        // delivered with the same broadcast even if the watcher's copy
        // was evicted).
        let mut node_mask = 0u64;
        let mut h = others;
        while h != 0 {
            let cidx = h.trailing_zeros() as usize;
            h &= h - 1;
            node_mask |= 1 << mem.node_of(CpuId(cidx)).index();
        }
        let mut id = mem.watch_head[word];
        while id != WNIL {
            let n = mem.wnodes[id as usize];
            node_mask |= 1 << mem.node_of(CpuId(n.cpu as usize)).index();
            id = n.next;
        }

        let complete_at;
        let mut broadcast_start = after_fetch;
        if node_mask == 0 {
            // Exclusive write: a pure cache hit (or just the fetch).
            if fetched {
                complete_at = after_fetch;
            } else {
                stats.count_hit();
                let mut l = lat.l1_hit;
                if op.is_atomic() {
                    l += lat.atomic_extra;
                }
                complete_at = now + l;
            }
        } else {
            // Broadcast the update: one bus round locally, a link round
            // if any holder is remote; one counted transaction per
            // target node, as the flat invalidation loop does.
            let any_remote = node_mask & !(1 << my_node.index()) != 0;
            let base = if any_remote { lat.remote_transfer } else { lat.same_node_transfer };
            let mut latency = mem.faulted_latency(base, my_node);
            if !fetched && op.is_atomic() {
                latency += lat.atomic_extra;
            }
            let mut s = after_fetch.max(busy).max(mem.bus_until[my_node.index()]);
            if any_remote {
                s = s.max(mem.link_until);
            }
            broadcast_start = s;
            busy = s + if any_remote { lat.global_occupancy } else { lat.local_occupancy };
            mem.bus_until[my_node.index()] = s + lat.bus_occupancy;
            if any_remote {
                mem.link_until = s + lat.link_occupancy;
            }
            let mut nm = node_mask;
            let mut n_nodes = 0;
            while nm != 0 {
                let n = nm.trailing_zeros() as usize;
                nm &= nm - 1;
                n_nodes += 1;
                if NodeId(n) != my_node {
                    mem.bus_until[n] = s + lat.bus_occupancy;
                }
                count_node_txn(stats, &mut trace, s, cpu, NodeId(n), my_node, home);
            }
            if let Some(t) = &mut trace {
                t.record(
                    s,
                    SimEvent::UpdateBroadcast { cpu, node: my_node, home, sharers: n_nodes },
                );
            }
            complete_at = s + latency;
        }

        // State: the writer becomes the owner (Dragon's Sm/M); a previous
        // owner demotes to sharer but keeps its (updated) copy.
        let dd = &mut self.c.dir[line];
        dd.busy_until = busy;
        if dd.owner != NO_OWNER && dd.owner != me {
            dd.sharers |= 1u128 << dd.owner;
        }
        dd.owner = me;
        dd.sharers &= !mebit;
        dd.dirty = true;
        let old = MemorySystem::apply_op(&mut mem.values[word], op);
        let new_value = mem.values[word];

        // Wake watchers on the written word only: their copies were
        // updated in place by the broadcast, so spinners whose condition
        // still fails pay nothing — the Dragon advantage under false
        // sharing. Watchers on other words of the line are untouched.
        if mem.watch_head[word] != WNIL {
            let mut id = mem.watch_head[word];
            let mut kept_head = WNIL;
            let mut kept_tail = WNIL;
            while id != WNIL {
                let WatchNode { equals, cpu: wc, next } = mem.wnodes[id as usize];
                if new_value != equals {
                    let wcpu = CpuId(wc as usize);
                    let w_node = mem.node_of(wcpu);
                    let base = if w_node == my_node {
                        lat.same_node_transfer
                    } else {
                        lat.remote_transfer
                    };
                    let wake_at = broadcast_start + mem.faulted_latency(base, my_node);
                    woken.push((wcpu, wake_at, new_value));
                    mem.wnodes[id as usize].next = mem.wfree;
                    mem.wfree = id;
                } else {
                    mem.wnodes[id as usize].next = WNIL;
                    if kept_tail == WNIL {
                        kept_head = id;
                    } else {
                        mem.wnodes[kept_tail as usize].next = id;
                    }
                    kept_tail = id;
                }
                id = next;
            }
            mem.watch_head[word] = kept_head;
            mem.watch_tail[word] = kept_tail;
        }
        AccessOutcome { complete_at, value: old }
    }

    fn holds_copy(&self, _mem: &MemorySystem, cpu: CpuId, addr: Addr) -> bool {
        let line = self.c.line_of(addr.index());
        match self.c.dir.get(line) {
            Some(d) => d.owner == cpu.index() as u32 || d.sharers & (1u128 << cpu.index()) != 0,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Command, CpuCtx, Program};
    use crate::trace::EventLog;
    use crate::{Machine, MachineConfig};

    /// Runs `left` fetch-adds on `addr` then finishes.
    struct Incr {
        addr: Addr,
        left: u32,
    }

    impl Program for Incr {
        fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
            if self.left == 0 {
                return Command::Done;
            }
            self.left -= 1;
            Command::FetchAdd { addr: self.addr, delta: 1 }
        }
    }

    /// A spinlock loop: TAS until free, hold (delay), release, repeat.
    struct TasLoop {
        lock: Addr,
        iters: u32,
        state: u8,
    }

    impl Program for TasLoop {
        fn resume(&mut self, _ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command {
            match self.state {
                0 => {
                    if self.iters == 0 {
                        return Command::Done;
                    }
                    self.state = 1;
                    Command::Tas(self.lock)
                }
                1 => {
                    if last == Some(0) {
                        self.state = 2;
                        return Command::Delay(50);
                    }
                    self.state = 3;
                    Command::WaitWhile { addr: self.lock, equals: 1 }
                }
                2 => {
                    self.state = 0;
                    self.iters -= 1;
                    Command::Write(self.lock, 0)
                }
                3 => {
                    self.state = 1;
                    Command::Tas(self.lock)
                }
                _ => unreachable!(),
            }
        }
    }

    fn run_incrs(cfg: MachineConfig, cpus: usize, per_cpu: u32) -> (crate::SimReport, Addr) {
        let mut m = Machine::new(cfg);
        let a = m.mem_mut().alloc(NodeId(0));
        for cpu in 0..cpus {
            m.add_program(CpuId(cpu), Box::new(Incr { addr: a, left: per_cpu }));
        }
        let status = m.run(1_000_000_000);
        assert!(status.finished_all);
        (m.into_report(), a)
    }

    #[test]
    fn flat_protocol_object_matches_inline_flat_path() {
        // Installing the FlatProtocol trait object must be observationally
        // identical to the inline flat path (proto = None): same end time,
        // same traffic, same finish times, same final values.
        let mk = || MachineConfig::wildfire(2, 4).with_seed(7);
        let run = |boxed: bool| {
            let mut m = Machine::new(mk());
            if boxed {
                assert!(m.mem_mut().proto.is_none(), "flat installs no object");
                m.mem_mut().proto = Some(Box::new(FlatProtocol));
            }
            let a = m.mem_mut().alloc(NodeId(0));
            for cpu in 0..8 {
                m.add_program(CpuId(cpu), Box::new(TasLoop { lock: a, iters: 40, state: 0 }));
            }
            let status = m.run(1_000_000_000);
            assert!(status.finished_all);
            m.into_report()
        };
        let inline = run(false);
        let object = run(true);
        assert_eq!(inline.end_time, object.end_time);
        assert_eq!(inline.traffic, object.traffic);
        assert_eq!(inline.finish_times, object.finish_times);
        assert_eq!(inline.cache_hits, object.cache_hits);
    }

    #[test]
    fn protocols_agree_on_values() {
        // The protocol changes timing and traffic, never results: the same
        // program yields the same final memory under flat, MESI and Dragon.
        for kind in ProtocolKind::ALL {
            let cfg = MachineConfig::wildfire(2, 4).with_seed(3).with_protocol(kind);
            let (report, a) = run_incrs(cfg, 8, 50);
            assert_eq!(report.final_value(a), 8 * 50, "{kind} corrupted the counter");
        }
    }

    #[test]
    fn mesi_exclusive_read_then_write_stays_silent() {
        // One CPU alone: the first read misses to memory and installs E;
        // the following write upgrades silently (a cache hit), so the
        // whole run costs exactly one transaction.
        struct ReadThenWrite {
            addr: Addr,
            step: u8,
        }
        impl Program for ReadThenWrite {
            fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                self.step += 1;
                match self.step {
                    1 => Command::Read(self.addr),
                    2 => Command::Write(self.addr, 9),
                    _ => Command::Done,
                }
            }
        }
        let mut m = Machine::new(
            MachineConfig::wildfire(2, 2).with_protocol(ProtocolKind::Mesi),
        );
        let a = m.mem_mut().alloc(NodeId(0));
        m.add_program(CpuId(0), Box::new(ReadThenWrite { addr: a, step: 0 }));
        assert!(m.run(1_000_000).finished_all);
        let report = m.into_report();
        assert_eq!(report.traffic.total(), 1, "read miss only");
        assert_eq!(report.cache_hits, 1, "the E-state write hit");
        assert_eq!(report.final_value(a), 9);
    }

    #[test]
    fn mesi_false_sharing_is_invisible_to_flat() {
        // Two CPUs on different nodes each hammer their *own* word — but
        // the words share a line. Flat sees two independent words (cheap,
        // all hits after the first touch); MESI ping-pongs the line.
        fn run(kind: ProtocolKind) -> crate::SimReport {
            let mut m = Machine::new(
                MachineConfig::wildfire(2, 2).with_seed(5).with_protocol(kind),
            );
            let words = m.mem_mut().alloc_array(NodeId(0), 2);
            // Both words land in one 8-word line of the default geometry.
            m.add_program(CpuId(0), Box::new(Incr { addr: words[0], left: 100 }));
            m.add_program(CpuId(2), Box::new(Incr { addr: words[1], left: 100 }));
            let status = m.run(1_000_000_000);
            assert!(status.finished_all);
            m.into_report()
        }
        let flat = run(ProtocolKind::Flat);
        let mesi = run(ProtocolKind::Mesi);
        assert!(
            mesi.traffic.global > flat.traffic.global * 4,
            "MESI must ping-pong the falsely shared line (flat {} vs mesi {} global txns)",
            flat.traffic.global,
            mesi.traffic.global,
        );
        assert!(
            mesi.end_time > flat.end_time,
            "the stampede costs simulated time (flat {} vs mesi {})",
            flat.end_time,
            mesi.end_time,
        );
    }

    #[test]
    fn dragon_updates_beat_mesi_invalidations_under_false_sharing() {
        // Same false-sharing duel: Dragon's per-write update keeps both
        // copies valid, so it moves less traffic than MESI's
        // invalidate-and-refetch ping-pong.
        fn run(kind: ProtocolKind) -> crate::SimReport {
            let mut m = Machine::new(
                MachineConfig::wildfire(2, 2).with_seed(5).with_protocol(kind),
            );
            let words = m.mem_mut().alloc_array(NodeId(0), 2);
            m.add_program(CpuId(0), Box::new(Incr { addr: words[0], left: 100 }));
            m.add_program(CpuId(2), Box::new(Incr { addr: words[1], left: 100 }));
            assert!(m.run(1_000_000_000).finished_all);
            m.into_report()
        }
        let mesi = run(ProtocolKind::Mesi);
        let dragon = run(ProtocolKind::Dragon);
        assert!(
            dragon.traffic.total() < mesi.traffic.total(),
            "updates ({}) must cost fewer transactions than invalidations ({})",
            dragon.traffic.total(),
            mesi.traffic.total(),
        );
    }

    #[test]
    fn capacity_evictions_fire_and_write_back_dirty_lines() {
        // A 1-set × 2-way cache walking three distinct lines must evict;
        // dirty victims pay a writeback, observable as Eviction events.
        struct Walk {
            words: Vec<Addr>,
            step: usize,
        }
        impl Program for Walk {
            fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                if self.step >= self.words.len() {
                    return Command::Done;
                }
                let a = self.words[self.step];
                self.step += 1;
                Command::Write(a, 1)
            }
        }
        let geom = CacheGeometry { line_words: 8, sets: 1, ways: 2 };
        let mut m = Machine::new(
            MachineConfig::wildfire(2, 2)
                .with_protocol(ProtocolKind::Mesi)
                .with_geometry(geom),
        );
        let log = EventLog::new();
        m.set_trace_sink(Box::new(log.clone()));
        let words = m.mem_mut().alloc_array(NodeId(0), 40);
        // Words 0, 8, 16, 24, 32 are five distinct lines.
        let walk: Vec<Addr> = (0..5).map(|i| words[i * 8]).collect();
        m.add_program(CpuId(0), Box::new(Walk { words: walk, step: 0 }));
        assert!(m.run(1_000_000).finished_all);
        let records = log.take();
        let evictions: Vec<_> = records
            .iter()
            .filter_map(|r| match r.event {
                SimEvent::Eviction { dirty, .. } => Some(dirty),
                _ => None,
            })
            .collect();
        assert_eq!(evictions.len(), 3, "5 lines through 2 ways evicts thrice");
        assert!(evictions.iter().all(|&d| d), "all victims were written, hence dirty");
    }

    #[test]
    fn mesi_upgrade_emits_event_and_invalidation() {
        // CPU 1 reads a line CPU 0 also read (both sharers); CPU 0 then
        // writes it — a shared-line upgrade, which must emit an Upgrade
        // event counting one invalidated node.
        struct ReadWaitWrite {
            addr: Addr,
            write: bool,
            step: u8,
        }
        impl Program for ReadWaitWrite {
            fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                self.step += 1;
                match self.step {
                    1 => Command::Read(self.addr),
                    2 => Command::Delay(10_000),
                    3 if self.write => Command::Write(self.addr, 7),
                    _ => Command::Done,
                }
            }
        }
        let mut m = Machine::new(
            MachineConfig::wildfire(2, 2).with_protocol(ProtocolKind::Mesi),
        );
        let log = EventLog::new();
        m.set_trace_sink(Box::new(log.clone()));
        let a = m.mem_mut().alloc(NodeId(0));
        m.add_program(CpuId(0), Box::new(ReadWaitWrite { addr: a, write: true, step: 0 }));
        m.add_program(CpuId(2), Box::new(ReadWaitWrite { addr: a, write: false, step: 0 }));
        assert!(m.run(1_000_000).finished_all);
        let upgrades: Vec<_> = log
            .take()
            .into_iter()
            .filter_map(|r| match r.event {
                SimEvent::Upgrade { invalidated, .. } => Some(invalidated),
                _ => None,
            })
            .collect();
        assert_eq!(upgrades, vec![1], "one upgrade invalidating one remote node");
    }

    #[test]
    fn dragon_broadcast_emits_event_and_keeps_copies() {
        // Two sharers; the writer's update must reach the other node as
        // one UpdateBroadcast, after which the reader still hits locally.
        struct Writer {
            addr: Addr,
            step: u8,
        }
        impl Program for Writer {
            fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                self.step += 1;
                match self.step {
                    1 => Command::Read(self.addr),
                    2 => Command::Delay(5_000),
                    3 => Command::Write(self.addr, 7),
                    _ => Command::Done,
                }
            }
        }
        struct Reader {
            addr: Addr,
            step: u8,
        }
        impl Program for Reader {
            fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                self.step += 1;
                match self.step {
                    1 => Command::Read(self.addr),
                    2 => Command::Delay(20_000),
                    3 => Command::Read(self.addr),
                    _ => Command::Done,
                }
            }
        }
        let mut m = Machine::new(
            MachineConfig::wildfire(2, 2).with_protocol(ProtocolKind::Dragon),
        );
        let log = EventLog::new();
        m.set_trace_sink(Box::new(log.clone()));
        let a = m.mem_mut().alloc(NodeId(0));
        m.add_program(CpuId(0), Box::new(Writer { addr: a, step: 0 }));
        m.add_program(CpuId(2), Box::new(Reader { addr: a, step: 0 }));
        assert!(m.run(1_000_000).finished_all);
        let report_hits_before = log
            .take()
            .into_iter()
            .filter_map(|r| match r.event {
                SimEvent::UpdateBroadcast { sharers, .. } => Some(sharers),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert_eq!(report_hits_before, vec![1], "one broadcast to one remote node");
    }

    #[test]
    fn mesi_and_dragon_runs_are_deterministic() {
        for kind in [ProtocolKind::Mesi, ProtocolKind::Dragon] {
            let cfg = || MachineConfig::wildfire(2, 4).with_seed(11).with_protocol(kind);
            let (a, _) = run_incrs(cfg(), 8, 30);
            let (b, _) = run_incrs(cfg(), 8, 30);
            assert_eq!(a.end_time, b.end_time, "{kind} end time must be stable");
            assert_eq!(a.traffic, b.traffic, "{kind} traffic must be stable");
            assert_eq!(a.finish_times, b.finish_times);
        }
    }
}

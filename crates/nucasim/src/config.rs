//! Machine configuration: topology, latency model, scheduler, preemption,
//! seed.

use std::fmt;
use std::str::FromStr;

use nuca_topology::Topology;

use crate::faults::FaultConfig;
use crate::preempt::PreemptionConfig;

/// Which event scheduler the engine uses (see [`crate::sched`]).
///
/// All three produce byte-identical simulations; they differ only in
/// speed and in how much self-validation they do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedKind {
    /// Hierarchical time wheel with heap-backed overflow — O(1) per event,
    /// the production scheduler.
    #[default]
    Wheel,
    /// The reference `BinaryHeap` scheduler — O(log n) per event.
    Heap,
    /// Runs wheel and heap in lockstep, asserting every pop agrees
    /// (validation mode; slowest).
    Check,
}

impl SchedKind {
    /// Every scheduler kind, in CLI-listing order.
    pub const ALL: [SchedKind; 3] = [SchedKind::Wheel, SchedKind::Heap, SchedKind::Check];

    /// The CLI name (`wheel`, `heap`, `check`).
    pub fn name(self) -> &'static str {
        match self {
            SchedKind::Wheel => "wheel",
            SchedKind::Heap => "heap",
            SchedKind::Check => "check",
        }
    }
}

impl fmt::Display for SchedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SchedKind {
    type Err = String;

    fn from_str(s: &str) -> Result<SchedKind, String> {
        SchedKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown scheduler '{s}' (expected wheel, heap or check)"))
    }
}

/// Which coherence protocol the memory system models (see
/// [`crate::coherence`]).
///
/// Unlike [`SchedKind`], the protocol *does* change results: `flat` is the
/// original word-granular ownership model (every address its own line, no
/// capacity limits), while `mesi` and `dragon` model real set-associative
/// caches per CPU with line-granular state, so false sharing and evictions
/// become visible. Each protocol is individually deterministic — the same
/// config produces byte-identical output at any `--jobs`/`--sched`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtocolKind {
    /// Word-granular MOESI-flavoured ownership without geometry — the fast
    /// preset every pre-existing artifact uses. The default.
    #[default]
    Flat,
    /// Invalidate-based MESI over set-associative caches: writes to shared
    /// lines upgrade by invalidating every other copy.
    Mesi,
    /// Update-based Dragon over set-associative caches: writes broadcast
    /// the new value to sharers, which stay valid.
    Dragon,
}

impl ProtocolKind {
    /// Every protocol kind, in CLI-listing order.
    pub const ALL: [ProtocolKind; 3] =
        [ProtocolKind::Flat, ProtocolKind::Mesi, ProtocolKind::Dragon];

    /// The CLI name (`flat`, `mesi`, `dragon`).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Flat => "flat",
            ProtocolKind::Mesi => "mesi",
            ProtocolKind::Dragon => "dragon",
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ProtocolKind {
    type Err = String;

    fn from_str(s: &str) -> Result<ProtocolKind, String> {
        ProtocolKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown protocol '{s}' (expected flat, mesi or dragon)"))
    }
}

/// Per-CPU cache geometry for the set-associative protocols
/// ([`ProtocolKind::Mesi`], [`ProtocolKind::Dragon`]).
///
/// A cache holds `sets × ways` lines of `line_words` words each. The flat
/// protocol ignores geometry entirely (every word is its own unbounded
/// line). Line addresses map to sets by `line & (sets - 1)`, which is why
/// `sets` and `line_words` must be powers of two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Words per cache line (power of two). Words `k*line_words ..
    /// (k+1)*line_words` of the simulated address space share coherence
    /// state — the source of false sharing.
    pub line_words: usize,
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity: lines per set. Victims are chosen by LRU.
    pub ways: usize,
}

impl CacheGeometry {
    /// The default geometry: 8-word (64-byte) lines, 64 sets × 8 ways =
    /// 512 lines (4 KiB of simulated words) per CPU — small enough that
    /// artifact working sets exert real pressure.
    pub const fn default_geometry() -> CacheGeometry {
        CacheGeometry { line_words: 8, sets: 64, ways: 8 }
    }

    /// Builds a geometry from a total capacity in lines, deriving the
    /// associativity as `capacity_lines / sets`. A capacity smaller than
    /// one set yields zero ways, which [`MachineConfig::validate`]
    /// rejects.
    pub const fn from_capacity(
        line_words: usize,
        sets: usize,
        capacity_lines: usize,
    ) -> CacheGeometry {
        let sets_divisor = if sets == 0 { 1 } else { sets };
        CacheGeometry { line_words, sets, ways: capacity_lines / sets_divisor }
    }

    /// Total lines per CPU cache.
    pub const fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }
}

impl Default for CacheGeometry {
    fn default() -> Self {
        CacheGeometry::default_geometry()
    }
}

/// Unloaded latencies and occupancies of the simulated memory system, in
/// cycles (4 ns each at the 250 MHz clock).
///
/// The defining quantity is the **NUCA ratio**: remote cache-to-cache
/// transfer time over same-node cache-to-cache transfer time. The paper's
/// §2 table gives ratios of ~4.5 (Stanford DASH), ~10 (Sequent NUMA-Q),
/// ~6 (Sun WildFire), ~3.5 (Compaq DS-320) and 6–10 for CMP/SMT servers;
/// the presets below reproduce those machines.
///
/// # Example
///
/// ```
/// let m = nucasim::LatencyModel::wildfire();
/// assert!((m.nuca_ratio() - 6.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Load/store hit in the requester's own cache.
    pub l1_hit: u64,
    /// Cache-to-cache transfer from another CPU in the same node.
    pub same_node_transfer: u64,
    /// Cache-to-cache transfer from a CPU in the same *innermost group*
    /// (e.g. the same CMP chip) on machines with a hierarchy level below
    /// the node ([`nuca_topology::Topology::extra_levels`] > 0). Such
    /// transfers stay on-chip and skip the node's snooping bus. Ignored on
    /// flat topologies.
    pub same_chip_transfer: u64,
    /// Access to node-local memory (the paper's lmbench 330 ns).
    pub local_memory: u64,
    /// Cache-to-cache transfer from a CPU in a remote node (the paper's
    /// lmbench ~1700 ns on WildFire).
    pub remote_transfer: u64,
    /// Access to remote memory.
    pub remote_memory: u64,
    /// Extra cost of an atomic operation (`cas`/`swap`/`tas`) on top of
    /// the data access.
    pub atomic_extra: u64,
    /// How long a node-local coherence transaction keeps the target line
    /// busy (back-to-back transactions on one line serialize on this).
    pub local_occupancy: u64,
    /// How long a global (cross-node) transaction keeps the line busy.
    pub global_occupancy: u64,
    /// How long each coherence transaction occupies a node's snooping bus.
    /// This is what couples lock traffic with data traffic: a release
    /// stampede delays the very critical-section accesses the lock guards
    /// (E6000 Gigaplane: 2.7 GB/s ≈ 10 cycles per 64-byte transaction).
    pub bus_occupancy: u64,
    /// How long each global transaction occupies the inter-node link
    /// (WildFire: 800 MB/s per direction ≈ 25 cycles per transaction).
    pub link_occupancy: u64,
}

impl LatencyModel {
    /// The 2-node Sun WildFire prototype: 330 ns local memory, ~1700 ns
    /// remote, NUCA ratio ≈ 6 for CMR-cached data.
    pub const fn wildfire() -> LatencyModel {
        LatencyModel {
            l1_hit: 2,
            same_node_transfer: 70,
            same_chip_transfer: 70,
            local_memory: 82,
            remote_transfer: 420,
            remote_memory: 425,
            atomic_extra: 30,
            local_occupancy: 30,
            global_occupancy: 130,
            bus_occupancy: 25,
            link_occupancy: 50,
        }
    }

    /// A UMA Sun E6000 (single node): every transfer is "same node".
    pub const fn e6000() -> LatencyModel {
        LatencyModel {
            l1_hit: 2,
            same_node_transfer: 70,
            same_chip_transfer: 70,
            local_memory: 82,
            remote_transfer: 70,
            remote_memory: 82,
            atomic_extra: 30,
            local_occupancy: 30,
            global_occupancy: 30,
            bus_occupancy: 10,
            link_occupancy: 10,
        }
    }

    /// Stanford DASH: NUCA ratio ≈ 4.5.
    pub const fn dash() -> LatencyModel {
        LatencyModel {
            l1_hit: 2,
            same_node_transfer: 60,
            same_chip_transfer: 60,
            local_memory: 80,
            remote_transfer: 270,
            remote_memory: 280,
            atomic_extra: 30,
            local_occupancy: 28,
            global_occupancy: 90,
            bus_occupancy: 12,
            link_occupancy: 30,
        }
    }

    /// Sequent NUMA-Q: NUCA ratio ≈ 10.
    pub const fn numa_q() -> LatencyModel {
        LatencyModel {
            l1_hit: 2,
            same_node_transfer: 60,
            same_chip_transfer: 60,
            local_memory: 80,
            remote_transfer: 600,
            remote_memory: 620,
            atomic_extra: 30,
            local_occupancy: 28,
            global_occupancy: 180,
            bus_occupancy: 12,
            link_occupancy: 60,
        }
    }

    /// A future CMP-based server (paper §2: ratio 6–10, on-chip sharing):
    /// small absolute latencies, ratio 8.
    pub const fn cmp() -> LatencyModel {
        LatencyModel {
            l1_hit: 1,
            same_node_transfer: 20,
            same_chip_transfer: 20,
            local_memory: 100,
            remote_transfer: 160,
            remote_memory: 180,
            atomic_extra: 10,
            local_occupancy: 10,
            global_occupancy: 50,
            bus_occupancy: 4,
            link_occupancy: 12,
        }
    }

    /// A hierarchical NUCA: a NUMA machine populated with CMP processors
    /// (paper §2, "several levels of non-uniformity"). Three latency
    /// classes: on-chip (20), cross-chip within the node (90), and remote
    /// node (420).
    pub const fn cmp_numa() -> LatencyModel {
        LatencyModel {
            l1_hit: 2,
            same_node_transfer: 90,
            same_chip_transfer: 20,
            local_memory: 100,
            remote_transfer: 420,
            remote_memory: 430,
            atomic_extra: 20,
            local_occupancy: 30,
            global_occupancy: 130,
            bus_occupancy: 25,
            link_occupancy: 50,
        }
    }

    /// The ratio of remote to same-node cache-to-cache transfer latency.
    pub fn nuca_ratio(&self) -> f64 {
        self.remote_transfer as f64 / self.same_node_transfer as f64
    }

    /// Returns this model with the remote transfer scaled so the NUCA
    /// ratio becomes `ratio` (for sensitivity sweeps).
    #[must_use]
    pub fn with_nuca_ratio(mut self, ratio: f64) -> LatencyModel {
        assert!(ratio >= 1.0, "NUCA ratio below 1 is not a NUCA");
        self.remote_transfer = (self.same_node_transfer as f64 * ratio) as u64;
        self.remote_memory = self.remote_transfer + 5;
        self
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::wildfire()
    }
}

/// Full description of a simulated machine run.
///
/// # Example
///
/// ```
/// let cfg = nucasim::MachineConfig::wildfire(2, 14);
/// assert_eq!(cfg.topology.num_cpus(), 28);
/// ```
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Node/CPU shape.
    pub topology: Topology,
    /// Latency and occupancy parameters.
    pub latency: LatencyModel,
    /// OS preemption model; `None` simulates an otherwise-idle machine.
    pub preemption: Option<PreemptionConfig>,
    /// Injected fault layers; `None` (or [`FaultConfig::none`]) runs
    /// undisturbed.
    pub faults: Option<FaultConfig>,
    /// Event scheduler; `None` uses the process-wide default
    /// ([`crate::default_sched`], normally [`SchedKind::Wheel`]). The
    /// choice never affects results, only speed — the harness `--sched`
    /// flag flips the default for A/B runs.
    pub sched: Option<SchedKind>,
    /// Coherence protocol; `None` uses the process-wide default
    /// ([`crate::default_protocol`], normally [`ProtocolKind::Flat`]).
    /// Unlike `sched` this changes results — the harness `--protocol`
    /// flag flips the default for protocol-sensitivity runs.
    pub protocol: Option<ProtocolKind>,
    /// Per-CPU cache geometry for the set-associative protocols. Ignored
    /// by [`ProtocolKind::Flat`].
    pub geometry: CacheGeometry,
    /// Seed for all engine-internal randomness.
    pub seed: u64,
    /// Lock indices below this bound get full dense [`crate::LockTrace`]s
    /// (histograms, per-node acquire vectors); indices at or above it fall
    /// back to compact [`crate::LockTally`] counters in a sparse map.
    /// Workloads with huge lock index spaces (e.g. a lock service with
    /// 10^6 lockable objects) set this to their count of "real" locks so
    /// per-object statistics stay cheap. Defaults to
    /// [`crate::DEFAULT_HOT_LOCKS`], which is far above any in-repo
    /// artifact's lock count — existing runs are unaffected.
    pub hot_locks: usize,
}

impl MachineConfig {
    /// Checks machine-wide invariants that individual builder methods
    /// cannot see. Today that is the CPU-count ceiling: the memory
    /// system's sharer sets are `u128` bitmasks indexed by CPU id
    /// ([`crate::MAX_SIM_CPUS`]), so topologies beyond 128 CPUs would
    /// corrupt coherence state via wrapping shifts. [`crate::Machine::new`]
    /// calls this and panics with the message on error.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending CPU count when the topology
    /// exceeds the simulator's limit.
    pub fn validate(&self) -> Result<(), String> {
        let cpus = self.topology.num_cpus();
        if cpus > crate::MAX_SIM_CPUS {
            return Err(format!(
                "topology has {cpus} CPUs but the simulator supports at most {} \
                 (sharer sets are u128 bitmasks; shrink the topology or split \
                 the experiment across machines)",
                crate::MAX_SIM_CPUS
            ));
        }
        let g = &self.geometry;
        if g.line_words == 0 || !g.line_words.is_power_of_two() {
            return Err(format!(
                "cache line of {} words is not a non-zero power of two \
                 (line addresses are derived by shifting word indices)",
                g.line_words
            ));
        }
        if g.sets == 0 || !g.sets.is_power_of_two() {
            return Err(format!(
                "cache with {} sets is not a non-zero power of two \
                 (set indices are derived by masking line addresses)",
                g.sets
            ));
        }
        if g.ways == 0 {
            return Err(String::from(
                "cache has zero ways — its capacity is smaller than one \
                 set, so no line could ever be cached (raise the capacity \
                 or lower the set count)",
            ));
        }
        Ok(())
    }

    /// A WildFire-like machine with `nodes` × `cpus_per_node` processors.
    pub fn wildfire(nodes: usize, cpus_per_node: usize) -> MachineConfig {
        MachineConfig {
            topology: Topology::symmetric(nodes, cpus_per_node),
            latency: LatencyModel::wildfire(),
            preemption: None,
            faults: None,
            sched: None,
            protocol: None,
            geometry: CacheGeometry::default_geometry(),
            seed: 0x5EED,
            hot_locks: crate::DEFAULT_HOT_LOCKS,
        }
    }

    /// A single-node UMA E6000 with `cpus` processors.
    pub fn e6000(cpus: usize) -> MachineConfig {
        MachineConfig {
            topology: Topology::single_node(cpus),
            latency: LatencyModel::e6000(),
            preemption: None,
            faults: None,
            sched: None,
            protocol: None,
            geometry: CacheGeometry::default_geometry(),
            seed: 0x5EED,
            hot_locks: crate::DEFAULT_HOT_LOCKS,
        }
    }

    /// Replaces the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> MachineConfig {
        self.latency = latency;
        self
    }

    /// Enables the preemption model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero `mean_gap` or
    /// `quantum`) — see [`PreemptionConfig::validate`].
    #[must_use]
    pub fn with_preemption(mut self, p: PreemptionConfig) -> MachineConfig {
        if let Err(msg) = p.validate() {
            panic!("invalid preemption config: {msg}");
        }
        self.preemption = Some(p);
        self
    }

    /// Enables fault injection.
    ///
    /// # Panics
    ///
    /// Panics if any enabled layer is degenerate for this machine's
    /// topology — see [`FaultConfig::validate`].
    #[must_use]
    pub fn with_faults(mut self, f: FaultConfig) -> MachineConfig {
        if let Err(msg) = f.validate(self.topology.num_nodes()) {
            panic!("invalid fault config: {msg}");
        }
        self.faults = Some(f);
        self
    }

    /// Selects the event scheduler explicitly (overriding the process
    /// default for this machine only).
    #[must_use]
    pub fn with_sched(mut self, sched: SchedKind) -> MachineConfig {
        self.sched = Some(sched);
        self
    }

    /// Selects the coherence protocol explicitly (overriding the process
    /// default for this machine only).
    #[must_use]
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> MachineConfig {
        self.protocol = Some(protocol);
        self
    }

    /// Replaces the cache geometry (used by the set-associative
    /// protocols; the flat protocol ignores it). Degenerate geometries
    /// are rejected by [`MachineConfig::validate`] when the machine is
    /// built, not here — `from_capacity` legitimately produces zero-way
    /// geometries that callers may still inspect.
    #[must_use]
    pub fn with_geometry(mut self, geometry: CacheGeometry) -> MachineConfig {
        self.geometry = geometry;
        self
    }

    /// Replaces the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> MachineConfig {
        self.seed = seed;
        self
    }

    /// Sets the dense/sparse boundary for per-lock statistics (see the
    /// `hot_locks` field). Lock indices `0..n` keep full traces; the rest
    /// are tallied compactly.
    #[must_use]
    pub fn with_hot_locks(mut self, n: usize) -> MachineConfig {
        self.hot_locks = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_ratios_match_paper_table() {
        assert!((LatencyModel::wildfire().nuca_ratio() - 6.0).abs() < 0.5);
        assert!((LatencyModel::dash().nuca_ratio() - 4.5).abs() < 0.5);
        assert!((LatencyModel::numa_q().nuca_ratio() - 10.0).abs() < 0.5);
        assert!((LatencyModel::e6000().nuca_ratio() - 1.0).abs() < 0.01);
        let cmp = LatencyModel::cmp().nuca_ratio();
        assert!((6.0..=10.0).contains(&cmp));
    }

    #[test]
    fn with_nuca_ratio_rescales() {
        let m = LatencyModel::wildfire().with_nuca_ratio(3.0);
        assert!((m.nuca_ratio() - 3.0).abs() < 0.1);
        assert_eq!(m.same_node_transfer, LatencyModel::wildfire().same_node_transfer);
    }

    #[test]
    #[should_panic(expected = "not a NUCA")]
    fn sub_unity_ratio_rejected() {
        let _ = LatencyModel::wildfire().with_nuca_ratio(0.5);
    }

    #[test]
    fn cmp_numa_has_three_latency_classes() {
        let m = LatencyModel::cmp_numa();
        assert!(m.same_chip_transfer < m.same_node_transfer);
        assert!(m.same_node_transfer < m.remote_transfer);
        // Chip-to-remote gap is a full NUCA ratio class of its own.
        assert!(m.remote_transfer / m.same_chip_transfer >= 10);
    }

    #[test]
    fn builder_methods_chain() {
        let cfg = MachineConfig::wildfire(2, 4)
            .with_latency(LatencyModel::dash())
            .with_seed(99);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.latency, LatencyModel::dash());
        assert!(cfg.preemption.is_none());
        assert!(cfg.faults.is_none());
    }

    #[test]
    #[should_panic(expected = "invalid preemption config")]
    fn degenerate_preemption_rejected_at_build() {
        let _ = MachineConfig::wildfire(2, 2)
            .with_preemption(PreemptionConfig { mean_gap: 0, quantum: 100 });
    }

    #[test]
    #[should_panic(expected = "invalid fault config")]
    fn degenerate_faults_rejected_at_build() {
        use crate::faults::{FaultConfig, MigrationConfig};
        // Migration on a single-node machine can never change anything.
        let _ = MachineConfig::e6000(4)
            .with_faults(FaultConfig::none().with_migration(MigrationConfig {
                mean_gap: 1000,
                pause: 10,
            }));
    }

    #[test]
    fn cpu_ceiling_is_exactly_the_sharer_mask_width() {
        // 128 CPUs fill the u128 sharer bitmask exactly: still valid.
        assert!(MachineConfig::wildfire(2, 64).validate().is_ok());
        assert!(MachineConfig::e6000(128).validate().is_ok());
        // One more would shift past the mask (a wrapping shift in release,
        // i.e. silent sharer corruption): rejected with a clear message.
        let err = MachineConfig::wildfire(2, 65).validate().unwrap_err();
        assert!(err.contains("130"), "{err}");
        assert!(err.contains("128"), "{err}");
        let err = MachineConfig::e6000(129).validate().unwrap_err();
        assert!(err.contains("129"), "{err}");
    }

    #[test]
    fn protocol_kind_round_trips_through_names() {
        for k in ProtocolKind::ALL {
            assert_eq!(k.name().parse::<ProtocolKind>().unwrap(), k);
        }
        let err = "moesi".parse::<ProtocolKind>().unwrap_err();
        assert!(err.contains("moesi"), "{err}");
        assert!(err.contains("flat, mesi or dragon"), "{err}");
        assert_eq!(ProtocolKind::default(), ProtocolKind::Flat);
    }

    #[test]
    fn geometry_capacity_and_builders() {
        let g = CacheGeometry::default_geometry();
        assert_eq!(g.capacity_lines(), 512);
        let g = CacheGeometry::from_capacity(8, 64, 1024);
        assert_eq!(g.ways, 16);
        let cfg = MachineConfig::wildfire(2, 4)
            .with_protocol(ProtocolKind::Mesi)
            .with_geometry(CacheGeometry { line_words: 4, sets: 16, ways: 2 });
        assert_eq!(cfg.protocol, Some(ProtocolKind::Mesi));
        assert_eq!(cfg.geometry.capacity_lines(), 32);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn degenerate_geometries_rejected() {
        let base = MachineConfig::wildfire(2, 2);
        // Non-power-of-two line size.
        let err = base
            .clone()
            .with_geometry(CacheGeometry { line_words: 6, sets: 64, ways: 8 })
            .validate()
            .unwrap_err();
        assert!(err.contains("line of 6 words"), "{err}");
        // Zero line words.
        assert!(base
            .clone()
            .with_geometry(CacheGeometry { line_words: 0, sets: 64, ways: 8 })
            .validate()
            .is_err());
        // Non-power-of-two / zero sets.
        let err = base
            .clone()
            .with_geometry(CacheGeometry { line_words: 8, sets: 48, ways: 8 })
            .validate()
            .unwrap_err();
        assert!(err.contains("48 sets"), "{err}");
        assert!(base
            .clone()
            .with_geometry(CacheGeometry { line_words: 8, sets: 0, ways: 8 })
            .validate()
            .is_err());
        // Capacity smaller than one set → zero ways.
        let err = base
            .clone()
            .with_geometry(CacheGeometry::from_capacity(8, 64, 32))
            .validate()
            .unwrap_err();
        assert!(err.contains("zero ways"), "{err}");
        assert!(err.contains("smaller than one"), "{err}");
    }

    #[test]
    fn local_memory_matches_paper_lmbench() {
        // 330 ns at 4 ns/cycle ≈ 82 cycles.
        let m = LatencyModel::wildfire();
        assert_eq!(crate::cycles_to_ns(m.local_memory), 328);
        // ~1700 ns remote.
        assert!((1600..1800).contains(&crate::cycles_to_ns(m.remote_transfer)));
    }
}

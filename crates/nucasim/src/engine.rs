//! The discrete-event engine driving simulated CPUs.

use std::fmt;
use std::sync::Arc;

use nuca_topology::{CpuId, NodeId, Topology};

use crate::config::MachineConfig;
use crate::faults::{FaultConfig, FaultState};
use crate::mem::{Addr, MemOp, MemorySystem};
use crate::preempt::PreemptState;
use crate::program::{Command, CpuCtx, Program};
use crate::rng::SplitMix64;
use crate::sched::{RecordingQueue, SchedOpLog, SchedQueue};
use crate::stats::{LockTally, LockTrace, SimStats, TrafficCounts};
use crate::trace::{SimEvent, TraceSink};

/// Per-CPU scheduler/program state, struct-of-arrays: the hot loop
/// touches `pending` and `programs` on every event, `finished_at` only at
/// program exit — splitting them keeps the per-event working set dense.
struct CpuStates {
    programs: Vec<Option<Box<dyn Program>>>,
    /// Value to hand to each CPU's next `resume`.
    pending: Vec<Option<u64>>,
    /// Simulated time at which each CPU's program returned `Done`.
    finished_at: Vec<Option<u64>>,
}

impl CpuStates {
    fn new(n: usize) -> CpuStates {
        CpuStates {
            programs: (0..n).map(|_| None).collect(),
            pending: vec![None; n],
            finished_at: vec![None; n],
        }
    }

    fn all_done(&self) -> bool {
        self.programs.iter().all(|p| p.is_none())
    }
}

impl fmt::Debug for CpuStates {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpuStates")
            .field(
                "running",
                &self.programs.iter().filter(|p| p.is_some()).count(),
            )
            .field("finished_at", &self.finished_at)
            .finish()
    }
}

/// Outcome of one [`Machine::run`] call: how far simulated time advanced
/// and whether every program finished. Cheap to copy; ask the machine for
/// an [`Machine::into_report`] when the full statistics are needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStatus {
    /// Simulated time when the run stopped (cycles).
    pub end_time: u64,
    /// Whether every program reached `Done` before the limit.
    pub finished_all: bool,
}

impl RunStatus {
    /// End-to-end time in seconds of simulated execution.
    pub fn seconds(&self) -> f64 {
        crate::cycles_to_secs(self.end_time)
    }
}

/// Final outcome of a simulation: timing, statistics and final memory
/// values, decoupled from the machine so it can outlive it.
///
/// Produced by [`Machine::into_report`], which *moves* the accumulated
/// lock traces out of the machine and materializes memory values exactly
/// once — nothing on this path clones per-run data.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Simulated time when the run stopped (cycles).
    pub end_time: u64,
    /// Whether every program reached `Done` before the limit.
    pub finished_all: bool,
    /// Per-CPU completion times (index = CPU id).
    pub finish_times: Vec<Option<u64>>,
    /// Coherence traffic generated during the run.
    pub traffic: TrafficCounts,
    /// Traffic attributed per node (index = node id; may be shorter than
    /// the node count when trailing nodes generated no traffic).
    pub node_traffic: Vec<TrafficCounts>,
    /// Per-lock acquisition traces (dense tier: lock indices below
    /// [`crate::MachineConfig::hot_locks`]).
    pub lock_traces: Vec<LockTrace>,
    /// Compact tallies for cold-tier lock indices (at or above the hot
    /// limit), in index order. Empty unless a workload recorded past the
    /// limit.
    pub lock_tallies: Vec<(usize, LockTally)>,
    /// Final values of all allocated words.
    values: Vec<u64>,
    /// Preemption windows applied.
    pub preemptions: u64,
    /// Injected thread migrations applied.
    pub migrations: u64,
    /// HBO_GT_SD anger episodes recorded.
    pub anger_episodes: u64,
    /// Transactions served from the requester's own cache.
    pub cache_hits: u64,
    /// Program-resume events the engine processed.
    pub events: u64,
}

impl SimReport {
    /// The final value of `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` was not allocated in the machine that produced
    /// this report.
    pub fn final_value(&self, addr: Addr) -> u64 {
        self.values[addr.index()]
    }

    /// End-to-end time in seconds of simulated execution.
    pub fn seconds(&self) -> f64 {
        crate::cycles_to_secs(self.end_time)
    }

    /// Latest per-CPU finish time, or `None` if any CPU never finished.
    pub fn last_finish(&self) -> Option<u64> {
        self.finish_times
            .iter()
            .copied()
            .collect::<Option<Vec<u64>>>()
            .map(|v| v.into_iter().max().unwrap_or(0))
    }

    /// Spread between first and last finisher as a fraction of the last
    /// finish time — the paper's fairness metric (Fig. 8).
    pub fn finish_spread(&self) -> Option<f64> {
        let times: Vec<u64> = self.finish_times.iter().copied().collect::<Option<_>>()?;
        let (min, max) = (
            *times.iter().min()?,
            *times.iter().max()?,
        );
        if max == 0 {
            return Some(0.0);
        }
        Some((max - min) as f64 / max as f64)
    }
}

/// The simulated machine: topology + memory + CPUs + event queue.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Machine {
    topo: Arc<Topology>,
    mem: MemorySystem,
    stats: SimStats,
    cpus: CpuStates,
    /// Pending `(time, cpu)` resume events — time wheel by default, the
    /// reference heap or the cross-checking pair via
    /// [`MachineConfig::sched`] (see [`crate::sched`]).
    queue: SchedQueue,
    time: u64,
    preempt: Option<PreemptState>,
    /// Engine-side fault layers (holder-preempt bursts, migration).
    /// `None` whenever fault injection is off — the hot path then pays a
    /// single branch, like tracing.
    faults: Option<FaultState>,
    /// Recycled buffer for the watchers each write wakes (engine-owned so
    /// the hot path never allocates).
    woken_buf: Vec<(CpuId, u64, u64)>,
    /// Installed trace sink, if any. `None` (the default) keeps every
    /// emission site down to one branch.
    trace: Option<Box<dyn TraceSink>>,
    /// Label this machine's global profile merges under when process-wide
    /// profiling is on (see [`crate::profile::enable_global_profiling`]).
    profile_label: Option<String>,
}

impl Machine {
    /// Builds an idle machine from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.preemption` or `cfg.faults` is degenerate (the
    /// builders on [`MachineConfig`] reject these earlier with the same
    /// messages; this is the backstop for directly-assembled configs).
    pub fn new(cfg: MachineConfig) -> Machine {
        if let Err(msg) = cfg.validate() {
            panic!("invalid machine config: {msg}");
        }
        let topo = Arc::new(cfg.topology);
        let mut rng = SplitMix64::new(cfg.seed);
        let preempt = cfg.preemption.map(|p| {
            if let Err(msg) = p.validate() {
                panic!("invalid preemption config: {msg}");
            }
            PreemptState::new(p, topo.num_cpus(), &mut rng)
        });
        let mut mem = MemorySystem::new(
            Arc::clone(&topo),
            cfg.latency,
            cfg.protocol.unwrap_or_else(crate::default_protocol),
            cfg.geometry,
        );
        // FaultConfig::none() is exactly equivalent to no fault config:
        // no state, no extra rng draws, bit-identical runs.
        let faults = cfg.faults.filter(FaultConfig::is_active).map(|f| {
            if let Err(msg) = f.validate(topo.num_nodes()) {
                panic!("invalid fault config: {msg}");
            }
            if let Some(s) = f.slow_node {
                mem.set_slow_node(NodeId(s.node), s.factor);
            }
            if let Some(j) = f.jitter {
                mem.set_jitter(j.max_extra, rng.split());
            }
            FaultState::new(&f, topo.num_cpus(), &mut rng)
        });
        let cpus = CpuStates::new(topo.num_cpus());
        let queue = SchedQueue::new(cfg.sched.unwrap_or_else(crate::default_sched));
        Machine {
            mem,
            topo,
            stats: SimStats::with_hot_limit(cfg.hot_locks),
            cpus,
            queue,
            time: 0,
            preempt,
            faults,
            woken_buf: Vec::new(),
            trace: None,
            profile_label: None,
        }
    }

    /// Installs a trace sink; subsequent simulation emits [`SimEvent`]s
    /// into it. Tracing only observes — simulation results are identical
    /// with or without a sink.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Removes and returns the installed trace sink, if any.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Names this machine for the process-wide profiling registry: when
    /// [`crate::profile::enable_global_profiling`] is on and no explicit
    /// trace sink is installed, the machine's streaming profile merges into
    /// the global table under `label` (unlabeled machines merge under
    /// [`crate::profile::UNLABELED`]). Workload runners set this to the
    /// lock kind so `--profile` output is keyed the way Fig. 5 is.
    pub fn set_profile_label(&mut self, label: &str) {
        self.profile_label = Some(label.to_owned());
    }

    /// Replaces the scheduler with a recording wheel and returns the
    /// cloneable op log: every subsequent push/pop is captured as a
    /// [`crate::SchedOp`] for offline replay (the scheduler
    /// microbenchmarks). Must be called before any program is added.
    ///
    /// # Panics
    ///
    /// Panics if events are already queued.
    pub fn record_sched_ops(&mut self) -> SchedOpLog {
        let log = SchedOpLog::new();
        self.record_sched_ops_into(log.clone());
        log
    }

    /// Like [`record_sched_ops`](Machine::record_sched_ops), but appends
    /// into a caller-supplied log (so several runs can share one stream).
    ///
    /// # Panics
    ///
    /// Panics if events are already queued.
    pub fn record_sched_ops_into(&mut self, log: SchedOpLog) {
        assert!(
            self.queue.is_empty(),
            "install the scheduler recorder before adding programs"
        );
        self.queue = SchedQueue::Record(RecordingQueue::new(log));
    }

    /// The machine's topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Mutable access to simulated memory (allocate and initialize words
    /// before running).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Read access to simulated memory.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Installs `program` on `cpu`, scheduled to start at the current
    /// simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is outside the topology or already runs a program.
    pub fn add_program(&mut self, cpu: CpuId, program: Box<dyn Program>) {
        let i = cpu.index();
        assert!(self.cpus.programs[i].is_none(), "{cpu} already has a program");
        self.cpus.programs[i] = Some(program);
        self.cpus.pending[i] = None;
        self.cpus.finished_at[i] = None;
        self.queue.push(self.time, i as u32);
    }

    /// Slides `t` past any preemption window on `cpu`.
    fn adjust_preempt(&mut self, cpu: usize, t: u64) -> u64 {
        if let Some(p) = self.preempt.as_mut() {
            let (adj, applied) = p.adjust(cpu, t);
            for _ in 0..applied {
                self.stats.count_preemption();
            }
            if applied > 0 {
                if let Some(sink) = self.trace.as_deref_mut() {
                    sink.record(
                        t,
                        SimEvent::Preempt {
                            cpu: CpuId(cpu),
                            cycles: adj - t,
                        },
                    );
                }
            }
            adj
        } else {
            t
        }
    }

    /// Applies the engine-side fault layers to a resume of `cpu` at `t`:
    /// a pending holder-preemption burst delays the resume by its quantum,
    /// and due migrations re-home the CPU's thread (with an off-CPU
    /// pause). Returns the adjusted time. Every injected fault is counted
    /// and traced, mirroring [`Machine::adjust_preempt`].
    fn apply_faults(&mut self, cpu: usize, t: u64) -> u64 {
        let Some(f) = self.faults.as_mut() else {
            return t;
        };
        let mut t = t;
        if let Some(m) = f.migration.as_mut() {
            while m.next[cpu] <= t {
                let from = self.mem.node_of(CpuId(cpu));
                let to = NodeId((from.index() + 1) % self.topo.num_nodes());
                self.mem.migrate_cpu(CpuId(cpu), to);
                self.stats.count_migration();
                if let Some(sink) = self.trace.as_deref_mut() {
                    sink.record(t, SimEvent::Migrate { cpu: CpuId(cpu), from, to });
                }
                t = t.max(m.next[cpu] + m.pause);
                m.rearm(cpu);
            }
        }
        let burst = std::mem::take(&mut f.pending_delay[cpu]);
        if burst > 0 {
            self.stats.count_preemption();
            if let Some(sink) = self.trace.as_deref_mut() {
                sink.record(t, SimEvent::Preempt { cpu: CpuId(cpu), cycles: burst });
            }
            t += burst;
        }
        t
    }

    /// Schedules a resume at `t`, sliding past faults and preemption
    /// windows. Returns the time actually queued so the run loop can keep
    /// its cached view of the queue head current.
    fn schedule_resume(&mut self, cpu: usize, t: u64, value: Option<u64>) -> u64 {
        let t = self.apply_faults(cpu, t);
        let t = self.adjust_preempt(cpu, t);
        self.cpus.pending[cpu] = value;
        self.queue.push(t, cpu as u32);
        t
    }

    /// Runs until every program finishes or `limit` cycles elapse.
    /// Returns a [`RunStatus`]; the machine may be `run` again with a
    /// larger limit to continue an unfinished simulation, and
    /// [`Machine::into_report`] turns the finished machine into a full
    /// [`SimReport`].
    pub fn run(&mut self, limit: u64) -> RunStatus {
        // Global profiling observes machines that would otherwise run
        // untraced; an explicitly installed sink always wins (profiling
        // must never displace a capture the caller asked for).
        if self.trace.is_none() && crate::profile::global_profiling_enabled() {
            self.trace = Some(crate::profile::global_sink(self.profile_label.as_deref()));
        }
        self.run_with(limit, true)
    }

    /// `run` with the inline-resume fast path switchable, so tests can
    /// compare against the straightforward heap-everything reference.
    fn run_with(&mut self, limit: u64, inline_resume: bool) -> RunStatus {
        let mut events = 0u64;
        #[cfg(feature = "selftime")]
        let total0 = crate::selftime::now();
        'outer: loop {
            #[cfg(feature = "selftime")]
            let q0 = crate::selftime::now();
            let popped = self.queue.pop_at_most(limit);
            #[cfg(feature = "selftime")]
            crate::selftime::add(&crate::selftime::QUEUE, q0);
            let Some((mut t, cpu)) = popped else { break };
            let cpu = cpu as usize;
            // Queue head, cached across the inline-resume burst below. Only
            // watcher wakes push while the burst runs, and those go through
            // `schedule_resume`, whose return value keeps the cache exact.
            let mut head = self.queue.next_time();
            // Inline-resume fast path (classic DES lazy insertion): keep
            // driving this CPU without a queue round-trip for as long as
            // its next event *strictly* precedes everything queued. Ties
            // must go through the queue, where insertion order wins, so
            // event order is exactly the reference order.
            loop {
                self.time = t;
                let Some(mut program) = self.cpus.programs[cpu].take() else {
                    continue 'outer; // stale event for a finished CPU
                };
                let last = self.cpus.pending[cpu].take();
                events += 1;
                #[cfg(feature = "selftime")]
                let r0 = crate::selftime::now();
                let command = {
                    // The *current* node — an injected migration may have
                    // moved this thread off its topology home.
                    let node = self.mem.node_of(CpuId(cpu));
                    let mut ctx = CpuCtx {
                        cpu: CpuId(cpu),
                        node,
                        now: t,
                        stats: &mut self.stats,
                        trace: self.trace.as_deref_mut(),
                        faults: self.faults.as_mut(),
                    };
                    program.resume(&mut ctx, last)
                };
                #[cfg(feature = "selftime")]
                crate::selftime::add(&crate::selftime::RESUME, r0);
                let (next_at, next_value) = match command {
                    Command::Done => {
                        self.cpus.finished_at[cpu] = Some(t);
                        // program dropped
                        continue 'outer;
                    }
                    Command::Delay(d) => (t + d.max(1), None),
                    Command::WaitWhile { addr, equals } => {
                        #[cfg(feature = "selftime")]
                        let m0 = crate::selftime::now();
                        let res = self.mem.wait_while(
                            t,
                            CpuId(cpu),
                            addr,
                            equals,
                            &mut self.stats,
                            self.trace.as_deref_mut(),
                        );
                        #[cfg(feature = "selftime")]
                        crate::selftime::add(&crate::selftime::MEM, m0);
                        match res {
                            Some((done, v)) => (done, Some(v)),
                            None => {
                                // Parked: a future write wakes this CPU.
                                self.cpus.programs[cpu] = Some(program);
                                continue 'outer;
                            }
                        }
                    }
                    mem_cmd => {
                        let (addr, op) = match mem_cmd {
                            Command::Read(a) => (a, MemOp::Read),
                            Command::Write(a, v) => (a, MemOp::Write(v)),
                            Command::Cas {
                                addr,
                                expected,
                                new,
                            } => (addr, MemOp::Cas { expected, new }),
                            Command::Swap { addr, value } => (addr, MemOp::Swap(value)),
                            Command::Tas(a) => (a, MemOp::Tas),
                            Command::FetchAdd { addr, delta } => (addr, MemOp::FetchAdd(delta)),
                            _ => unreachable!("non-memory commands handled above"),
                        };
                        let mut woken = std::mem::take(&mut self.woken_buf);
                        #[cfg(feature = "selftime")]
                        let m0 = crate::selftime::now();
                        let out = self.mem.access(
                            t,
                            CpuId(cpu),
                            addr,
                            op,
                            &mut self.stats,
                            self.trace.as_deref_mut(),
                            &mut woken,
                        );
                        #[cfg(feature = "selftime")]
                        crate::selftime::add(&crate::selftime::MEM, m0);
                        // Wake any watchers first so their events are ordered.
                        for &(wcpu, wake_at, wval) in &woken {
                            let queued = self.schedule_resume(wcpu.index(), wake_at, Some(wval));
                            head = Some(head.map_or(queued, |h| h.min(queued)));
                        }
                        woken.clear();
                        self.woken_buf = woken;
                        (out.complete_at, Some(out.value))
                    }
                };
                self.cpus.programs[cpu] = Some(program);
                let faulted = self.apply_faults(cpu, next_at);
                let adj = self.adjust_preempt(cpu, faulted);
                if inline_resume && adj <= limit && head.is_none_or(|ht| adj < ht) {
                    // Nothing can run before this CPU's continuation:
                    // resume it directly.
                    self.cpus.pending[cpu] = next_value;
                    t = adj;
                    continue;
                }
                self.cpus.pending[cpu] = next_value;
                self.queue.push(adj, cpu as u32);
                continue 'outer;
            }
        }
        #[cfg(feature = "selftime")]
        crate::selftime::add(&crate::selftime::TOTAL, total0);
        self.stats.add_events(events);
        crate::add_sim_events(events);

        // A CPU still holding a program (running or parked) is unfinished;
        // CPUs that never received a program do not count against the run.
        RunStatus {
            end_time: self.time,
            finished_all: self.cpus.all_done(),
        }
    }

    /// Consumes the machine, producing the full [`SimReport`].
    ///
    /// Lock traces are moved (not cloned) out of the statistics and final
    /// memory values are materialized once, here — keeping repeated
    /// [`Machine::run`] continuations free of per-call copying.
    pub fn into_report(mut self) -> SimReport {
        let finish_times = self.cpus.finished_at.clone();
        let finished_all = self.cpus.all_done();
        SimReport {
            end_time: self.time,
            finished_all,
            finish_times,
            traffic: self.stats.traffic(),
            node_traffic: self.stats.node_traffic().to_vec(),
            lock_traces: self.stats.take_locks(),
            lock_tallies: self.stats.take_tallies(),
            values: self.mem.final_values(),
            preemptions: self.stats.preemptions(),
            migrations: self.stats.migrations(),
            anger_episodes: self.stats.anger_episodes(),
            cache_hits: self.stats.cache_hits(),
            events: self.stats.events(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use nuca_topology::NodeId;

    /// Writes `value` then finishes.
    struct WriteOnce {
        addr: Addr,
        value: u64,
        wrote: bool,
    }

    impl Program for WriteOnce {
        fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _last: Option<u64>) -> Command {
            if self.wrote {
                Command::Done
            } else {
                self.wrote = true;
                Command::Write(self.addr, self.value)
            }
        }
    }

    /// Waits for `addr` to stop being 0, records the observed value, done.
    struct Waiter {
        addr: Addr,
        observed: Addr,
        state: u8,
    }

    impl Program for Waiter {
        fn resume(&mut self, _ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command {
            match self.state {
                0 => {
                    self.state = 1;
                    Command::WaitWhile {
                        addr: self.addr,
                        equals: 0,
                    }
                }
                1 => {
                    self.state = 2;
                    Command::Write(self.observed, last.expect("wait returns value"))
                }
                _ => Command::Done,
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most 128")]
    fn oversized_topology_rejected_at_machine_build() {
        // Regression: >128 CPUs used to reach the memory system, where
        // `1u128 << cpu` panics in debug and wraps (corrupting sharer
        // state) in release. Now a clear config error at construction.
        let _ = Machine::new(MachineConfig::e6000(129));
    }

    #[test]
    fn full_width_topology_still_builds() {
        // Exactly 128 CPUs is the documented ceiling, not past it.
        let m = Machine::new(MachineConfig::wildfire(2, 64));
        assert_eq!(m.topology().num_cpus(), 128);
    }

    #[test]
    fn single_writer_finishes() {
        let mut m = Machine::new(MachineConfig::wildfire(2, 2));
        let a = m.mem_mut().alloc(NodeId(0));
        m.add_program(
            CpuId(0),
            Box::new(WriteOnce {
                addr: a,
                value: 42,
                wrote: false,
            }),
        );
        let status = m.run(10_000);
        assert!(status.finished_all);
        let r = m.into_report();
        assert_eq!(r.final_value(a), 42);
        assert!(r.finish_times[0].is_some());
        assert!(r.finish_times[1].is_none(), "idle CPU never finishes");
    }

    #[test]
    fn waiter_wakes_on_write() {
        let mut m = Machine::new(MachineConfig::wildfire(2, 2));
        let flag = m.mem_mut().alloc(NodeId(0));
        let obs = m.mem_mut().alloc(NodeId(1));
        // CPU 3 (node 1) waits; CPU 0 writes after a delay.
        m.add_program(
            CpuId(3),
            Box::new(Waiter {
                addr: flag,
                observed: obs,
                state: 0,
            }),
        );
        struct DelayedWrite {
            addr: Addr,
            step: u8,
        }
        impl Program for DelayedWrite {
            fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                self.step += 1;
                match self.step {
                    1 => Command::Delay(5_000),
                    2 => Command::Write(self.addr, 7),
                    _ => Command::Done,
                }
            }
        }
        m.add_program(CpuId(0), Box::new(DelayedWrite { addr: flag, step: 0 }));
        let status = m.run(1_000_000);
        assert!(status.finished_all);
        let r = m.into_report();
        assert_eq!(r.final_value(obs), 7, "waiter observed the woken value");
        // The waiter finished after the writer's store.
        assert!(r.finish_times[3].unwrap() > 5_000);
    }

    #[test]
    fn unfinished_run_reports_false_and_can_continue() {
        let mut m = Machine::new(MachineConfig::wildfire(1, 1));
        struct LongDelay {
            step: u8,
        }
        impl Program for LongDelay {
            fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                self.step += 1;
                match self.step {
                    1 => Command::Delay(1_000_000),
                    _ => Command::Done,
                }
            }
        }
        m.add_program(CpuId(0), Box::new(LongDelay { step: 0 }));
        let r = m.run(10);
        assert!(!r.finished_all);
        let r = m.run(2_000_000);
        assert!(r.finished_all);
    }

    #[test]
    fn deadlocked_waiters_reported_unfinished() {
        let mut m = Machine::new(MachineConfig::wildfire(1, 2));
        let flag = m.mem_mut().alloc(NodeId(0));
        m.add_program(
            CpuId(0),
            Box::new(Waiter {
                addr: flag,
                observed: flag,
                state: 0,
            }),
        );
        let r = m.run(1_000_000);
        assert!(!r.finished_all, "nobody ever writes the flag");
    }

    #[test]
    fn atomic_increments_from_all_cpus_sum_exactly() {
        let mut m = Machine::new(MachineConfig::wildfire(2, 4));
        let a = m.mem_mut().alloc(NodeId(0));
        struct Incr {
            addr: Addr,
            left: u32,
        }
        impl Program for Incr {
            fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                if self.left == 0 {
                    return Command::Done;
                }
                self.left -= 1;
                Command::FetchAdd {
                    addr: self.addr,
                    delta: 1,
                }
            }
        }
        for cpu in 0..8 {
            m.add_program(CpuId(cpu), Box::new(Incr { addr: a, left: 100 }));
        }
        let status = m.run(100_000_000);
        assert!(status.finished_all);
        let r = m.into_report();
        assert_eq!(r.final_value(a), 800);
        assert!(r.traffic.global > 0, "cross-node increments cross the wire");
        assert!(r.traffic.local > 0);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        fn run_once(seed: u64) -> (u64, TrafficCounts) {
            let mut m = Machine::new(MachineConfig::wildfire(2, 4).with_seed(seed));
            let a = m.mem_mut().alloc(NodeId(0));
            struct Incr {
                addr: Addr,
                left: u32,
            }
            impl Program for Incr {
                fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                    if self.left == 0 {
                        return Command::Done;
                    }
                    self.left -= 1;
                    Command::FetchAdd {
                        addr: self.addr,
                        delta: 1,
                    }
                }
            }
            for cpu in 0..8 {
                m.add_program(CpuId(cpu), Box::new(Incr { addr: a, left: 50 }));
            }
            m.run(100_000_000);
            let r = m.into_report();
            (r.end_time, r.traffic)
        }
        assert_eq!(run_once(11), run_once(11));
    }

    /// The inline-resume fast path must be observationally identical to
    /// the heap-everything reference on the contended-increment scenario:
    /// same end time, traffic, finish times, final values, and event count.
    #[test]
    fn inline_resume_matches_reference() {
        fn run_once(inline_resume: bool) -> SimReport {
            let mut m = Machine::new(MachineConfig::wildfire(2, 4).with_seed(7));
            let a = m.mem_mut().alloc(NodeId(0));
            struct Incr {
                addr: Addr,
                left: u32,
            }
            impl Program for Incr {
                fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                    if self.left == 0 {
                        return Command::Done;
                    }
                    self.left -= 1;
                    Command::FetchAdd {
                        addr: self.addr,
                        delta: 1,
                    }
                }
            }
            for cpu in 0..8 {
                m.add_program(CpuId(cpu), Box::new(Incr { addr: a, left: 100 }));
            }
            let status = m.run_with(100_000_000, inline_resume);
            assert!(status.finished_all);
            m.into_report()
        }
        let fast = run_once(true);
        let slow = run_once(false);
        assert_eq!(fast.end_time, slow.end_time);
        assert_eq!(fast.traffic, slow.traffic);
        assert_eq!(fast.finish_times, slow.finish_times);
        assert_eq!(fast.final_value(Addr(0)), slow.final_value(Addr(0)));
        assert_eq!(fast.cache_hits, slow.cache_hits);
        assert_eq!(fast.events, slow.events, "fast path skips no resumes");
        assert!(fast.events > 0);
    }

    /// Same check on a scenario that exercises watcher wakes (WaitWhile),
    /// where event *ordering* between woken CPUs and the writer matters.
    #[test]
    fn inline_resume_matches_reference_with_waiters() {
        fn run_once(inline_resume: bool) -> SimReport {
            let mut m = Machine::new(MachineConfig::wildfire(2, 2));
            let flag = m.mem_mut().alloc(NodeId(0));
            let obs = m.mem_mut().alloc(NodeId(1));
            m.add_program(
                CpuId(3),
                Box::new(Waiter {
                    addr: flag,
                    observed: obs,
                    state: 0,
                }),
            );
            m.add_program(
                CpuId(2),
                Box::new(Waiter {
                    addr: flag,
                    observed: obs,
                    state: 0,
                }),
            );
            struct DelayedWrite {
                addr: Addr,
                step: u8,
            }
            impl Program for DelayedWrite {
                fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                    self.step += 1;
                    match self.step {
                        1 => Command::Delay(5_000),
                        2 => Command::Write(self.addr, 7),
                        _ => Command::Done,
                    }
                }
            }
            m.add_program(CpuId(0), Box::new(DelayedWrite { addr: flag, step: 0 }));
            let status = m.run_with(1_000_000, inline_resume);
            assert!(status.finished_all);
            m.into_report()
        }
        let fast = run_once(true);
        let slow = run_once(false);
        assert_eq!(fast.end_time, slow.end_time);
        assert_eq!(fast.traffic, slow.traffic);
        assert_eq!(fast.finish_times, slow.finish_times);
        assert_eq!(fast.events, slow.events);
    }

    /// Tracing must only observe: a traced run produces the same report as
    /// an untraced one, every counted coherence transaction appears as one
    /// `CoherenceTxn` event, and per-CPU timestamps are monotone.
    #[test]
    fn tracing_only_observes() {
        use crate::trace::{EventLog, SimEvent, TraceRecord};

        fn run_once(traced: bool) -> (SimReport, Vec<TraceRecord>) {
            let mut m = Machine::new(MachineConfig::wildfire(2, 4).with_seed(3));
            let log = EventLog::new();
            if traced {
                m.set_trace_sink(Box::new(log.clone()));
            }
            let a = m.mem_mut().alloc(NodeId(0));
            struct Incr {
                addr: Addr,
                left: u32,
            }
            impl Program for Incr {
                fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                    if self.left == 0 {
                        return Command::Done;
                    }
                    self.left -= 1;
                    Command::FetchAdd {
                        addr: self.addr,
                        delta: 1,
                    }
                }
            }
            for cpu in 0..8 {
                m.add_program(CpuId(cpu), Box::new(Incr { addr: a, left: 50 }));
            }
            let status = m.run(100_000_000);
            assert!(status.finished_all);
            (m.into_report(), log.take())
        }

        let (plain, no_events) = run_once(false);
        let (traced, events) = run_once(true);
        assert!(no_events.is_empty());
        assert_eq!(plain.end_time, traced.end_time);
        assert_eq!(plain.traffic, traced.traffic);
        assert_eq!(plain.finish_times, traced.finish_times);
        assert_eq!(plain.events, traced.events);

        let txns = events
            .iter()
            .filter(|r| matches!(r.event, SimEvent::CoherenceTxn { .. }))
            .count() as u64;
        assert_eq!(txns, traced.traffic.total(), "one event per counted txn");

        let mut last_per_cpu = [0u64; 8];
        for r in &events {
            let cpu = match r.event {
                SimEvent::AcquireStart { cpu, .. }
                | SimEvent::LockAcquire { cpu, .. }
                | SimEvent::LockRelease { cpu, .. }
                | SimEvent::BackoffSleep { cpu, .. }
                | SimEvent::CoherenceTxn { cpu, .. }
                | SimEvent::Preempt { cpu, .. }
                | SimEvent::GotAngry { cpu, .. }
                | SimEvent::ThrottleSpin { cpu, .. }
                | SimEvent::Migrate { cpu, .. }
                | SimEvent::Upgrade { cpu, .. }
                | SimEvent::Eviction { cpu, .. }
                | SimEvent::UpdateBroadcast { cpu, .. } => cpu,
            };
            assert!(
                r.at >= last_per_cpu[cpu.index()],
                "per-CPU timestamps must be monotone"
            );
            last_per_cpu[cpu.index()] = r.at;
        }
    }

    #[test]
    fn preemption_slows_execution() {
        fn run_once(preempt: bool) -> u64 {
            let mut cfg = MachineConfig::wildfire(1, 2);
            if preempt {
                cfg = cfg.with_preemption(crate::PreemptionConfig {
                    mean_gap: 10_000,
                    quantum: 50_000,
                });
            }
            let mut m = Machine::new(cfg);
            struct Delays {
                left: u32,
            }
            impl Program for Delays {
                fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                    if self.left == 0 {
                        return Command::Done;
                    }
                    self.left -= 1;
                    Command::Delay(1_000)
                }
            }
            m.add_program(CpuId(0), Box::new(Delays { left: 100 }));
            let status = m.run(u64::MAX / 2);
            assert!(status.finished_all);
            status.end_time
        }
        assert!(run_once(true) > 2 * run_once(false));
    }

    /// One contended-counter report, with an arbitrary fault surface.
    fn faulted_report(faults: Option<crate::FaultConfig>) -> SimReport {
        faulted_report_sched(faults, None)
    }

    /// [`faulted_report`] under an explicit event scheduler.
    fn faulted_report_sched(
        faults: Option<crate::FaultConfig>,
        sched: Option<crate::SchedKind>,
    ) -> SimReport {
        let mut cfg = MachineConfig::wildfire(2, 4).with_seed(13);
        cfg.sched = sched;
        if let Some(f) = faults {
            cfg.faults = Some(f);
        }
        let mut m = Machine::new(cfg);
        let a = m.mem_mut().alloc(NodeId(0));
        struct LockedIncr {
            addr: Addr,
            left: u32,
            lock: bool,
        }
        impl Program for LockedIncr {
            fn resume(&mut self, ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                if self.left == 0 {
                    return Command::Done;
                }
                // Alternate "acquire" notifications with the increment so
                // the holder-preempt layer sees acquisitions.
                if self.lock {
                    self.lock = false;
                    ctx.record_acquire(0);
                    Command::Delay(50)
                } else {
                    self.lock = true;
                    self.left -= 1;
                    Command::FetchAdd { addr: self.addr, delta: 1 }
                }
            }
        }
        for cpu in 0..8 {
            m.add_program(
                CpuId(cpu),
                Box::new(LockedIncr { addr: a, left: 50, lock: true }),
            );
        }
        let status = m.run(u64::MAX / 2);
        assert!(status.finished_all);
        let r = m.into_report();
        assert_eq!(r.final_value(Addr(0)), 400, "no increments lost to faults");
        r
    }

    /// Tie-break regression under injected faults: holder-preempt bursts
    /// and migrations reschedule resumes at collision-prone times, so any
    /// wheel/heap ordering divergence shows up as a different timeline.
    /// `Check` additionally asserts pop-by-pop agreement.
    #[test]
    fn schedulers_agree_under_preempt_and_migration_faults() {
        let fcfg = || {
            crate::FaultConfig::none()
                .with_holder_preempt(crate::HolderPreemptConfig {
                    per_mille: 500,
                    quantum: 10_000,
                })
                .with_migration(crate::MigrationConfig { mean_gap: 50_000, pause: 1_000 })
        };
        let heap = faulted_report_sched(Some(fcfg()), Some(crate::SchedKind::Heap));
        let wheel = faulted_report_sched(Some(fcfg()), Some(crate::SchedKind::Wheel));
        let check = faulted_report_sched(Some(fcfg()), Some(crate::SchedKind::Check));
        assert!(heap.preemptions > 0 && heap.migrations > 0, "faults fired");
        for other in [&wheel, &check] {
            assert_eq!(heap.end_time, other.end_time);
            assert_eq!(heap.traffic, other.traffic);
            assert_eq!(heap.finish_times, other.finish_times);
            assert_eq!(heap.events, other.events);
            assert_eq!(heap.preemptions, other.preemptions);
            assert_eq!(heap.migrations, other.migrations);
        }
    }

    #[test]
    fn inactive_fault_config_is_bit_identical_to_none() {
        let plain = faulted_report(None);
        let gated = faulted_report(Some(crate::FaultConfig::none()));
        assert_eq!(plain.end_time, gated.end_time);
        assert_eq!(plain.traffic, gated.traffic);
        assert_eq!(plain.finish_times, gated.finish_times);
        assert_eq!(plain.events, gated.events);
        assert_eq!(plain.preemptions, 0);
        assert_eq!(plain.migrations, 0);
    }

    #[test]
    fn holder_preempt_bursts_fire_and_slow_the_run() {
        let plain = faulted_report(None);
        let faulted = faulted_report(Some(crate::FaultConfig::none().with_holder_preempt(
            crate::HolderPreemptConfig { per_mille: 500, quantum: 10_000 },
        )));
        assert!(faulted.preemptions > 0, "bursts fired");
        assert!(
            faulted.end_time > plain.end_time + 10_000,
            "losing quanta mid-critical-section costs time: {} vs {}",
            faulted.end_time,
            plain.end_time
        );
        // Reproducible: same seed, same faulted timeline.
        let again = faulted_report(Some(crate::FaultConfig::none().with_holder_preempt(
            crate::HolderPreemptConfig { per_mille: 500, quantum: 10_000 },
        )));
        assert_eq!(faulted.end_time, again.end_time);
        assert_eq!(faulted.preemptions, again.preemptions);
    }

    #[test]
    fn migrations_fire_are_counted_and_traced() {
        use crate::trace::EventLog;

        let fcfg = crate::FaultConfig::none()
            .with_migration(crate::MigrationConfig { mean_gap: 50_000, pause: 1_000 });
        let mut m = Machine::new(MachineConfig::wildfire(2, 4).with_seed(5).with_faults(fcfg));
        let log = EventLog::new();
        m.set_trace_sink(Box::new(log.clone()));
        let a = m.mem_mut().alloc(NodeId(0));
        struct Incr {
            addr: Addr,
            left: u32,
        }
        impl Program for Incr {
            fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                if self.left == 0 {
                    return Command::Done;
                }
                self.left -= 1;
                Command::FetchAdd { addr: self.addr, delta: 1 }
            }
        }
        for cpu in 0..8 {
            m.add_program(CpuId(cpu), Box::new(Incr { addr: a, left: 200 }));
        }
        let status = m.run(u64::MAX / 2);
        assert!(status.finished_all);
        let events = log.take();
        let r = m.into_report();
        assert_eq!(r.final_value(a), 1600, "migration loses no operations");
        assert!(r.migrations > 0, "migrations happened");
        let migrate_events = events
            .iter()
            .filter(|rec| {
                matches!(rec.event, SimEvent::Migrate { from, to, .. } if from != to)
            })
            .count() as u64;
        assert_eq!(migrate_events, r.migrations, "one event per counted migration");
    }

    #[test]
    fn finish_spread_metric() {
        let r = SimReport {
            end_time: 100,
            finished_all: true,
            finish_times: vec![Some(80), Some(100)],
            traffic: TrafficCounts::default(),
            node_traffic: Vec::new(),
            lock_traces: Vec::new(),
            lock_tallies: Vec::new(),
            values: Vec::new(),
            preemptions: 0,
            migrations: 0,
            anger_episodes: 0,
            cache_hits: 0,
            events: 0,
        };
        assert_eq!(r.finish_spread(), Some(0.2));
        assert_eq!(r.last_finish(), Some(100));
    }
}

//! Structured tracing: typed simulation events delivered to a sink.
//!
//! The engine, memory system and lock drivers emit [`SimEvent`]s with
//! simulated timestamps whenever a sink is installed on the machine
//! ([`crate::Machine::set_trace_sink`]). With no sink installed — the
//! default — every emission site is a single `Option` branch, so the hot
//! path cost is unmeasurable and simulation results are bit-identical
//! with tracing on or off (tracing only *observes*).

use nuca_topology::{CpuId, NodeId};

use std::fmt;
use std::sync::{Arc, Mutex};

/// Duration class of a backoff sleep, mirroring the HBO backoff pair: the
/// cheap class used when the lock is node-local, the expensive one when it
/// is held remotely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackoffClass {
    /// Backoff chosen because the lock was free or held within the
    /// spinner's own node (the paper's `BACKOFF_BASE/CAP`).
    Local,
    /// Backoff chosen because the lock was held on a remote node (the
    /// paper's `BACKOFF_REMOTE_BASE/CAP`).
    Remote,
}

/// One typed simulation event. All fields are simulated quantities;
/// timestamps travel separately (see [`TraceSink::record`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A CPU began a lock acquisition (the first acquire step). Everything
    /// between this event and the matching [`SimEvent::LockAcquire`] on the
    /// same CPU is acquire latency, which the streaming profiler
    /// ([`crate::profile`]) decomposes into spin, backoff and coherence
    /// phases.
    AcquireStart {
        /// Workload-chosen dense lock index.
        lock: usize,
        /// The acquiring CPU.
        cpu: CpuId,
        /// The acquiring CPU's node.
        node: NodeId,
    },
    /// A lock acquisition succeeded.
    LockAcquire {
        /// Workload-chosen dense lock index.
        lock: usize,
        /// The new holder.
        cpu: CpuId,
        /// The new holder's node.
        node: NodeId,
    },
    /// A lock holder began its release.
    LockRelease {
        /// Workload-chosen dense lock index.
        lock: usize,
        /// The releasing holder.
        cpu: CpuId,
        /// The releasing holder's node.
        node: NodeId,
    },
    /// A spinner went to sleep for a bounded backoff period.
    BackoffSleep {
        /// The sleeping CPU.
        cpu: CpuId,
        /// Its node.
        node: NodeId,
        /// Sleep length in cycles.
        cycles: u64,
        /// Which backoff class chose the delay.
        class: BackoffClass,
    },
    /// One coherence transaction (fetch, invalidation or refill).
    CoherenceTxn {
        /// The CPU on whose behalf the transaction ran.
        cpu: CpuId,
        /// The node the transaction is attributed to.
        node: NodeId,
        /// The accessed line's home node.
        home: NodeId,
        /// Whether the transaction crossed the interconnect.
        global: bool,
    },
    /// The OS preempted a CPU (its next resume slid past the window).
    Preempt {
        /// The preempted CPU.
        cpu: CpuId,
        /// How many cycles the resume was delayed.
        cycles: u64,
    },
    /// An HBO_GT_SD spinner's patience ran out: it reset its backoff to
    /// the cheap class and may have throttled a remote node (the paper's
    /// `GET_ANGRY` episode).
    GotAngry {
        /// The CPU that got angry.
        cpu: CpuId,
        /// Its node.
        node: NodeId,
    },
    /// An HBO_GT spinner announced itself as remotely spinning, making
    /// itself eligible for traffic throttling.
    ThrottleSpin {
        /// The announcing CPU.
        cpu: CpuId,
        /// Its node.
        node: NodeId,
    },
    /// An injected fault migrated a CPU's thread to another node
    /// ([`crate::MigrationConfig`]).
    Migrate {
        /// The migrated CPU.
        cpu: CpuId,
        /// Node it left.
        from: NodeId,
        /// Node it now runs on.
        to: NodeId,
    },
    /// A MESI writer already sharing a line upgraded it to exclusive by
    /// invalidating every other copy (only the set-associative protocols
    /// emit this; the flat model folds upgrades into plain writes).
    Upgrade {
        /// The upgrading writer.
        cpu: CpuId,
        /// Its node.
        node: NodeId,
        /// The line's home node.
        home: NodeId,
        /// How many other nodes held a copy that got invalidated.
        invalidated: u32,
    },
    /// A set-associative cache evicted a line to make room (LRU victim).
    Eviction {
        /// The CPU whose cache evicted.
        cpu: CpuId,
        /// Its node.
        node: NodeId,
        /// The *victim* line's home node (where a dirty line writes back).
        home: NodeId,
        /// Whether the victim was dirty (modified) and paid a writeback.
        dirty: bool,
    },
    /// A Dragon writer broadcast the new value to every sharer of the
    /// line (update-based coherence: copies stay valid instead of being
    /// invalidated).
    UpdateBroadcast {
        /// The writing CPU.
        cpu: CpuId,
        /// Its node.
        node: NodeId,
        /// The line's home node.
        home: NodeId,
        /// How many other nodes received the update.
        sharers: u32,
    },
}

/// Receives timestamped [`SimEvent`]s from a running machine.
///
/// Implementations must be cheap: the engine calls [`TraceSink::record`]
/// inline on the simulation path. `at` is the simulated time in cycles
/// (convert with [`crate::cycles_to_ns`]); events for one CPU arrive in
/// nondecreasing `at` order.
pub trait TraceSink {
    /// Records `event` observed at simulated cycle `at`.
    fn record(&mut self, at: u64, event: SimEvent);
}

impl fmt::Debug for dyn TraceSink + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("<trace sink>")
    }
}

/// One buffered event: the simulated cycle and the event itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the event, in cycles.
    pub at: u64,
    /// The event.
    pub event: SimEvent,
}

/// A [`TraceSink`] that buffers every event in memory.
///
/// The log is a shared handle: clone it, box one clone into the machine
/// with [`crate::Machine::set_trace_sink`], and read the records back from
/// the other clone after the run — no downcasting needed.
///
/// # Memory contract
///
/// The log grows by `size_of::<TraceRecord>()` bytes (a few tens of bytes)
/// **per event**, and a contended full-scale run emits millions of events
/// per simulated lock — buffering is only appropriate for runs whose trace
/// is about to be serialized whole (the `--trace` capture). Analyses that
/// only need aggregates should use the streaming [`crate::profile`] sinks,
/// whose footprint is bounded by machine shape instead of event count.
/// When buffering is required but the volume is unknown, cap the log with
/// [`EventLog::with_capacity_limit`]: past the cap, new records are
/// dropped and counted ([`EventLog::dropped`]) instead of growing the
/// buffer without bound.
///
/// ```
/// use nucasim::{EventLog, Machine, MachineConfig};
///
/// let log = EventLog::new();
/// let mut machine = Machine::new(MachineConfig::wildfire(2, 2));
/// machine.set_trace_sink(Box::new(log.clone()));
/// // ... add programs, run ...
/// let records = log.take();
/// assert!(records.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    records: Arc<Mutex<LogBuf>>,
}

/// Shared buffer behind an [`EventLog`]: the records plus the drop
/// bookkeeping of the optional capacity limit.
#[derive(Debug)]
struct LogBuf {
    records: Vec<TraceRecord>,
    /// Maximum records retained; extra events are dropped and counted.
    cap: usize,
    /// Events dropped because the buffer was at capacity.
    dropped: u64,
}

impl Default for LogBuf {
    fn default() -> LogBuf {
        LogBuf {
            records: Vec::new(),
            cap: usize::MAX,
            dropped: 0,
        }
    }
}

impl EventLog {
    /// An empty, unbounded log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// An empty log that retains at most `cap` records. Events recorded
    /// beyond the cap are dropped (newest-first) and counted in
    /// [`EventLog::dropped`], bounding the log's memory at
    /// `cap * size_of::<TraceRecord>()` bytes no matter how long the run.
    pub fn with_capacity_limit(cap: usize) -> EventLog {
        EventLog {
            records: Arc::new(Mutex::new(LogBuf {
                records: Vec::new(),
                cap,
                dropped: 0,
            })),
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.records.lock().expect("event log poisoned").records.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped so far because the log was at its capacity limit
    /// (always 0 for an unbounded log).
    pub fn dropped(&self) -> u64 {
        self.records.lock().expect("event log poisoned").dropped
    }

    /// Moves the buffered records out, leaving the log empty (the capacity
    /// limit and drop count are retained).
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records.lock().expect("event log poisoned").records)
    }
}

impl TraceSink for EventLog {
    fn record(&mut self, at: u64, event: SimEvent) {
        let mut buf = self.records.lock().expect("event log poisoned");
        if buf.records.len() >= buf.cap {
            buf.dropped += 1;
            return;
        }
        buf.records.push(TraceRecord { at, event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_log_buffers_in_order() {
        let log = EventLog::new();
        let mut sink: Box<dyn TraceSink> = Box::new(log.clone());
        sink.record(5, SimEvent::Preempt { cpu: CpuId(1), cycles: 100 });
        sink.record(
            9,
            SimEvent::LockAcquire {
                lock: 0,
                cpu: CpuId(1),
                node: NodeId(0),
            },
        );
        assert_eq!(log.len(), 2);
        let records = log.take();
        assert_eq!(records[0].at, 5);
        assert_eq!(
            records[1].event,
            SimEvent::LockAcquire {
                lock: 0,
                cpu: CpuId(1),
                node: NodeId(0),
            }
        );
        assert!(log.is_empty(), "take drains the shared buffer");
        assert_eq!(log.dropped(), 0, "unbounded log never drops");
    }

    #[test]
    fn capacity_limit_caps_and_counts_drops() {
        let log = EventLog::with_capacity_limit(3);
        let mut sink: Box<dyn TraceSink> = Box::new(log.clone());
        for i in 0..10 {
            sink.record(i, SimEvent::Preempt { cpu: CpuId(0), cycles: 1 });
        }
        assert_eq!(log.len(), 3, "buffer capped");
        assert_eq!(log.dropped(), 7, "overflow counted, not stored");
        // The retained records are the earliest ones, in order.
        let records = log.take();
        assert_eq!(
            records.iter().map(|r| r.at).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // The cap (and the drop count) survive a take.
        sink.record(99, SimEvent::Preempt { cpu: CpuId(0), cycles: 1 });
        assert_eq!(log.len(), 1);
        assert_eq!(log.dropped(), 7);
    }
}

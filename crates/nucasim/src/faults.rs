//! Composable fault injection: deterministic disturbances layered onto a
//! run.
//!
//! The OS preemption model ([`crate::PreemptionConfig`]) reproduces the
//! paper's *background* disturbance — daemons stealing quanta at random.
//! The fault layers here model sharper, adversarial conditions that real
//! NUCA deployments hit and that Table 4's queue-lock collapse hinges on:
//!
//! - **Lock-holder-targeted preemption** ([`HolderPreemptConfig`]): with a
//!   configurable probability, the CPU that just acquired a lock loses a
//!   scheduling quantum *while holding it* — the precise scenario that
//!   stalls every thread queued behind an MCS/CLH holder.
//! - **Thread migration** ([`MigrationConfig`]): a CPU's thread is
//!   re-homed to the next node mid-run, invalidating the node affinity
//!   HBO's node-id heuristic and `is_spinning` slots assume.
//! - **Asymmetric memory** ([`SlowNodeConfig`]): one node serves its
//!   transfers slower by a constant factor (a failed DIMM bank, a
//!   thermally throttled socket), skewing the NUCA ratio per node.
//! - **Latency jitter** ([`JitterConfig`]): bounded uniform noise on every
//!   coherence transaction, so backoff tunings cannot overfit exact
//!   latencies.
//!
//! All layers draw from [`SplitMix64`] streams derived from the machine
//! seed, so a faulted run is exactly reproducible — and when every layer
//! is disabled the engine takes no draw and produces bit-identical results
//! to a build without this module.

use nuca_topology::CpuId;

use crate::rng::SplitMix64;

/// Lock-holder-targeted preemption bursts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HolderPreemptConfig {
    /// Probability, in thousandths, that an acquisition marks the new
    /// holder for preemption (1..=1000).
    pub per_mille: u32,
    /// Cycles the marked holder stays off-CPU, applied at its next resume
    /// (while it still holds the lock).
    pub quantum: u64,
}

/// Thread-to-node migration events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationConfig {
    /// Mean cycles between migrations of one CPU (exponentially
    /// distributed, per-CPU stream).
    pub mean_gap: u64,
    /// Cycles the migrating thread is off-CPU while the OS moves it.
    pub pause: u64,
}

/// Per-node asymmetric memory latency: one slow node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowNodeConfig {
    /// Index of the slow node.
    pub node: usize,
    /// Multiplier applied to transfers served by that node (≥ 2 to be a
    /// disturbance; 1 is a no-op and rejected).
    pub factor: u64,
}

/// Bounded uniform jitter on coherence-transaction latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitterConfig {
    /// Maximum extra cycles added to each non-hit transaction (uniform in
    /// `[0, max_extra]`).
    pub max_extra: u64,
}

/// The full fault-injection surface of a run; every layer is optional and
/// independently composable.
///
/// # Example
///
/// ```
/// use nucasim::{FaultConfig, HolderPreemptConfig, MachineConfig};
///
/// let faults = FaultConfig::none()
///     .with_holder_preempt(HolderPreemptConfig { per_mille: 50, quantum: 100_000 });
/// let cfg = MachineConfig::wildfire(2, 4).with_faults(faults);
/// assert!(cfg.faults.unwrap().validate(2).is_ok());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// Preempt the lock holder with some probability per acquisition.
    pub holder_preempt: Option<HolderPreemptConfig>,
    /// Migrate threads between nodes mid-run.
    pub migration: Option<MigrationConfig>,
    /// Make one node's transfers uniformly slower.
    pub slow_node: Option<SlowNodeConfig>,
    /// Add bounded noise to every transaction latency.
    pub jitter: Option<JitterConfig>,
}

impl FaultConfig {
    /// No fault layers enabled (identical to running without faults).
    pub const fn none() -> FaultConfig {
        FaultConfig {
            holder_preempt: None,
            migration: None,
            slow_node: None,
            jitter: None,
        }
    }

    /// Whether any layer is enabled.
    pub fn is_active(&self) -> bool {
        self.holder_preempt.is_some()
            || self.migration.is_some()
            || self.slow_node.is_some()
            || self.jitter.is_some()
    }

    /// Enables lock-holder-targeted preemption.
    #[must_use]
    pub fn with_holder_preempt(mut self, c: HolderPreemptConfig) -> FaultConfig {
        self.holder_preempt = Some(c);
        self
    }

    /// Enables thread migration.
    #[must_use]
    pub fn with_migration(mut self, c: MigrationConfig) -> FaultConfig {
        self.migration = Some(c);
        self
    }

    /// Enables one slow node.
    #[must_use]
    pub fn with_slow_node(mut self, c: SlowNodeConfig) -> FaultConfig {
        self.slow_node = Some(c);
        self
    }

    /// Enables latency jitter.
    #[must_use]
    pub fn with_jitter(mut self, c: JitterConfig) -> FaultConfig {
        self.jitter = Some(c);
        self
    }

    /// Checks every enabled layer describes a real disturbance on a
    /// machine with `num_nodes` nodes. Degenerate parameters (zero gaps,
    /// zero quanta, factor-1 slowdowns, out-of-range nodes) are rejected
    /// with a message naming the offending field rather than silently
    /// doing nothing.
    pub fn validate(&self, num_nodes: usize) -> Result<(), String> {
        if let Some(h) = self.holder_preempt {
            if h.per_mille == 0 || h.per_mille > 1000 {
                return Err(format!(
                    "holder_preempt per_mille must be in 1..=1000 (got {})",
                    h.per_mille
                ));
            }
            if h.quantum == 0 {
                return Err("holder_preempt quantum must be positive (got 0)".to_owned());
            }
        }
        if let Some(m) = self.migration {
            if m.mean_gap == 0 {
                return Err("migration mean_gap must be positive (got 0)".to_owned());
            }
            if num_nodes < 2 {
                return Err(format!(
                    "migration needs at least 2 nodes (machine has {num_nodes})"
                ));
            }
        }
        if let Some(s) = self.slow_node {
            if s.factor < 2 {
                return Err(format!(
                    "slow_node factor must be at least 2 (got {}; 1 is a no-op)",
                    s.factor
                ));
            }
            if s.node >= num_nodes {
                return Err(format!(
                    "slow_node index {} outside the {num_nodes}-node machine",
                    s.node
                ));
            }
        }
        if let Some(j) = self.jitter {
            if j.max_extra == 0 {
                return Err("jitter max_extra must be positive (got 0)".to_owned());
            }
        }
        Ok(())
    }
}

/// Per-CPU migration schedule.
#[derive(Debug)]
pub(crate) struct MigrationState {
    pub(crate) mean_gap: u64,
    pub(crate) pause: u64,
    /// Time of the next migration per CPU.
    pub(crate) next: Vec<u64>,
    rngs: Vec<SplitMix64>,
}

impl MigrationState {
    /// Advances CPU `cpu` past its just-fired migration, drawing the next
    /// gap from that CPU's stream.
    pub(crate) fn rearm(&mut self, cpu: usize) {
        let gap = self.rngs[cpu].next_exp(self.mean_gap);
        self.next[cpu] = self.next[cpu] + self.pause + gap;
    }
}

/// Runtime state of the engine-side fault layers (holder preemption and
/// migration; the memory-side layers live in the memory system).
#[derive(Debug)]
pub(crate) struct FaultState {
    holder: Option<HolderPreemptConfig>,
    /// One shared stream for acquisition draws — acquisitions are totally
    /// ordered by the event order, so this is deterministic.
    holder_rng: SplitMix64,
    /// Cycles each CPU must lose at its next resume (holder bursts).
    pub(crate) pending_delay: Vec<u64>,
    pub(crate) migration: Option<MigrationState>,
}

impl FaultState {
    pub(crate) fn new(cfg: &FaultConfig, cpus: usize, seed: &mut SplitMix64) -> FaultState {
        let holder_rng = seed.split();
        let migration = cfg.migration.map(|m| {
            let mut rngs = Vec::with_capacity(cpus);
            let mut next = Vec::with_capacity(cpus);
            for _ in 0..cpus {
                let mut r = seed.split();
                next.push(r.next_exp(m.mean_gap));
                rngs.push(r);
            }
            MigrationState {
                mean_gap: m.mean_gap,
                pause: m.pause,
                next,
                rngs,
            }
        });
        FaultState {
            holder: cfg.holder_preempt,
            holder_rng,
            pending_delay: vec![0; cpus],
            migration,
        }
    }

    /// Called by [`crate::CpuCtx::record_acquire`]: with the configured
    /// probability, marks the new holder to lose a quantum at its next
    /// resume — i.e. mid-critical-section.
    pub(crate) fn on_acquire(&mut self, cpu: CpuId) {
        if let Some(h) = self.holder {
            if self.holder_rng.next_below(1000) < u64::from(h.per_mille) {
                self.pending_delay[cpu.index()] = h.quantum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_valid() {
        let f = FaultConfig::none();
        assert!(!f.is_active());
        assert_eq!(f, FaultConfig::default());
        assert!(f.validate(1).is_ok());
    }

    #[test]
    fn builders_compose() {
        let f = FaultConfig::none()
            .with_holder_preempt(HolderPreemptConfig { per_mille: 100, quantum: 10 })
            .with_migration(MigrationConfig { mean_gap: 1000, pause: 10 })
            .with_slow_node(SlowNodeConfig { node: 1, factor: 4 })
            .with_jitter(JitterConfig { max_extra: 20 });
        assert!(f.is_active());
        assert!(f.validate(2).is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_layers() {
        let bad = |f: FaultConfig, needle: &str| {
            let err = f.validate(2).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle}");
        };
        bad(
            FaultConfig::none()
                .with_holder_preempt(HolderPreemptConfig { per_mille: 0, quantum: 10 }),
            "per_mille",
        );
        bad(
            FaultConfig::none()
                .with_holder_preempt(HolderPreemptConfig { per_mille: 1001, quantum: 10 }),
            "per_mille",
        );
        bad(
            FaultConfig::none()
                .with_holder_preempt(HolderPreemptConfig { per_mille: 5, quantum: 0 }),
            "quantum",
        );
        bad(
            FaultConfig::none().with_migration(MigrationConfig { mean_gap: 0, pause: 1 }),
            "mean_gap",
        );
        bad(
            FaultConfig::none().with_slow_node(SlowNodeConfig { node: 0, factor: 1 }),
            "factor",
        );
        bad(
            FaultConfig::none().with_slow_node(SlowNodeConfig { node: 2, factor: 4 }),
            "outside",
        );
        bad(
            FaultConfig::none().with_jitter(JitterConfig { max_extra: 0 }),
            "max_extra",
        );
    }

    #[test]
    fn migration_rejected_on_single_node_machine() {
        let f = FaultConfig::none().with_migration(MigrationConfig { mean_gap: 100, pause: 1 });
        assert!(f.validate(2).is_ok());
        assert!(f.validate(1).unwrap_err().contains("2 nodes"));
    }

    #[test]
    fn holder_draws_mark_roughly_per_mille_fraction() {
        let cfg = FaultConfig::none()
            .with_holder_preempt(HolderPreemptConfig { per_mille: 250, quantum: 7 });
        let mut seed = SplitMix64::new(42);
        let mut st = FaultState::new(&cfg, 1, &mut seed);
        let mut hits = 0u32;
        for _ in 0..4000 {
            st.on_acquire(CpuId(0));
            if std::mem::take(&mut st.pending_delay[0]) > 0 {
                hits += 1;
            }
        }
        // ~25% of acquisitions marked; generous tolerance.
        assert!((800..1200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn migration_schedule_deterministic_and_advancing() {
        let cfg = FaultConfig::none().with_migration(MigrationConfig { mean_gap: 500, pause: 50 });
        let mut a = FaultState::new(&cfg, 4, &mut SplitMix64::new(9));
        let mut b = FaultState::new(&cfg, 4, &mut SplitMix64::new(9));
        for cpu in 0..4 {
            let (ma, mb) = (a.migration.as_mut().unwrap(), b.migration.as_mut().unwrap());
            assert_eq!(ma.next[cpu], mb.next[cpu]);
            let before = ma.next[cpu];
            ma.rearm(cpu);
            mb.rearm(cpu);
            assert_eq!(ma.next[cpu], mb.next[cpu]);
            assert!(ma.next[cpu] > before + 50, "pause + a positive gap");
        }
    }
}

//! Internal coarse section timers (rdtsc) for performance investigation.
//! Compiled only with the `selftime` feature; zero presence otherwise.
#![allow(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

pub static RESUME: AtomicU64 = AtomicU64::new(0);
pub static MEM: AtomicU64 = AtomicU64::new(0);
pub static QUEUE: AtomicU64 = AtomicU64::new(0);
pub static TOTAL: AtomicU64 = AtomicU64::new(0);

#[inline]
pub fn now() -> u64 {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    0
}

#[inline]
pub fn add(c: &AtomicU64, start: u64) {
    c.fetch_add(now().wrapping_sub(start), Ordering::Relaxed);
}

pub fn report() -> (u64, u64, u64, u64) {
    (
        RESUME.load(Ordering::Relaxed),
        MEM.load(Ordering::Relaxed),
        QUEUE.load(Ordering::Relaxed),
        TOTAL.load(Ordering::Relaxed),
    )
}

/// The section counters as named entries, in a fixed order, for
/// machine-readable export (the harness `--metrics-json` attribution
/// block). Ticks are rdtsc units: only ratios between sections are
/// meaningful, not absolute time.
pub fn sections() -> [(&'static str, u64); 4] {
    let (resume, mem, queue, total) = report();
    [
        ("resume_ticks", resume),
        ("mem_ticks", mem),
        ("queue_ticks", queue),
        ("total_ticks", total),
    ]
}

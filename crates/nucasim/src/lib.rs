//! A deterministic discrete-event simulator of nonuniform communication
//! architectures (NUCAs).
//!
//! The HPCA 2003 HBO-lock paper evaluates its algorithms on a 2-node Sun
//! WildFire (up to 30 UltraSPARC II processors, NUCA ratio ≈ 6). This crate
//! substitutes for that machine: it models exactly the mechanisms the
//! paper's results depend on —
//!
//! * **latency classes**: own cache hit, same-node cache-to-cache transfer,
//!   local memory, remote transfer (the NUCA ratio), parameterized by
//!   [`LatencyModel`] presets taken from the paper's published numbers;
//! * **line serialization**: concurrent coherence transactions on one cache
//!   line queue up ([`LatencyModel::local_occupancy`]), which is what makes
//!   lock handover degrade with contention;
//! * **invalidation-based spinning**: a simulated processor spinning on a
//!   cached word costs nothing until a writer invalidates it
//!   ([`Command::WaitWhile`]), then pays a refill transaction — the source
//!   of the TATAS release burst;
//! * **traffic accounting**: every coherence transaction is classified
//!   local (within the requester's node) or global (crossing the
//!   interconnect), regenerating the paper's Tables 2 and 6;
//! * **OS preemption** (optional): random multi-millisecond preemption
//!   windows per CPU, the mechanism behind the queue-lock collapse in the
//!   paper's 30-processor runs (Table 4);
//! * **fault injection** (optional): composable, seed-reproducible
//!   disturbance layers — lock-holder-targeted preemption, thread
//!   migration, a slow node, latency jitter — see [`FaultConfig`].
//!
//! Simulated processors run [`Program`]s — resumable state machines that
//! issue [`Command`]s (memory operations, delays). The engine is fully
//! deterministic for a given seed; one cycle is 4 ns (250 MHz, the paper's
//! E6000 clock).
//!
//! # Example
//!
//! ```
//! use nucasim::{Command, CpuCtx, Machine, MachineConfig, Program};
//!
//! /// Increments a shared counter 10 times with an atomic fetch-add.
//! struct Incr {
//!     addr: nucasim::Addr,
//!     left: u32,
//! }
//!
//! impl Program for Incr {
//!     fn resume(&mut self, _ctx: &mut CpuCtx<'_>, _last: Option<u64>) -> Command {
//!         if self.left == 0 {
//!             return Command::Done;
//!         }
//!         self.left -= 1;
//!         Command::FetchAdd { addr: self.addr, delta: 1 }
//!     }
//! }
//!
//! let cfg = MachineConfig::wildfire(2, 2);
//! let mut machine = Machine::new(cfg);
//! let counter = machine.mem_mut().alloc(nuca_topology::NodeId(0));
//! for cpu in machine.topology().cpus() {
//!     machine.add_program(cpu, Box::new(Incr { addr: counter, left: 10 }));
//! }
//! let status = machine.run(1_000_000);
//! assert!(status.finished_all);
//! let report = machine.into_report();
//! assert_eq!(report.final_value(counter), 40);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coherence;
mod config;
mod engine;
mod faults;
mod mem;
mod metrics;
mod preempt;
pub mod profile;
mod program;
mod rng;
pub mod sched;
#[cfg(feature = "selftime")]
pub mod selftime;
mod stats;
mod trace;

pub use config::{CacheGeometry, LatencyModel, MachineConfig, ProtocolKind, SchedKind};
pub use sched::{SchedOp, SchedOpLog};
pub use engine::{Machine, RunStatus, SimReport};
pub use faults::{
    FaultConfig, HolderPreemptConfig, JitterConfig, MigrationConfig, SlowNodeConfig,
};
pub use mem::{Addr, MemOp, MemorySystem, MAX_SIM_CPUS};
pub use metrics::Histogram;
pub use preempt::PreemptionConfig;
pub use profile::{LockProfile, Profile, ProfileCollector};
pub use program::{Command, CpuCtx, Program};
pub use rng::SplitMix64;
pub use stats::{LockTally, LockTrace, SimStats, TrafficCounts, DEFAULT_HOT_LOCKS};
pub use trace::{BackoffClass, EventLog, SimEvent, TraceRecord, TraceSink};

/// Cycles per second of the simulated processors (250 MHz, the paper's
/// UltraSPARC II clock). One cycle is 4 ns.
pub const CYCLES_PER_SECOND: u64 = 250_000_000;

/// Converts simulated cycles to nanoseconds.
///
/// # Example
///
/// ```
/// assert_eq!(nucasim::cycles_to_ns(250), 1000);
/// ```
pub fn cycles_to_ns(cycles: u64) -> u64 {
    cycles * 1_000_000_000 / CYCLES_PER_SECOND
}

/// Converts simulated cycles to seconds.
pub fn cycles_to_secs(cycles: u64) -> f64 {
    cycles as f64 / CYCLES_PER_SECOND as f64
}

/// Process-wide count of program-resume events simulated, across all
/// machines (monotone; never reset).
static SIM_EVENTS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Flushes one run's event count into [`sim_events_total`].
pub(crate) fn add_sim_events(n: u64) {
    SIM_EVENTS.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
}

/// Total program-resume events simulated by this process so far, across
/// all machines and threads. Sampling it before and after a workload gives
/// a simulated-events throughput figure (the experiment harness reports
/// events/sec from exactly this counter).
pub fn sim_events_total() -> u64 {
    SIM_EVENTS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Process-wide default event scheduler, used by every
/// [`MachineConfig`] whose `sched` field is `None`. Encoded as the index
/// into [`SchedKind::ALL`]; defaults to the wheel.
static DEFAULT_SCHED: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Sets the process-wide default scheduler (the harness `--sched` flag).
/// Machines built afterwards without an explicit `sched` use `kind`. The
/// choice never affects simulation results, only wall-clock speed.
pub fn set_default_sched(kind: SchedKind) {
    let idx = SchedKind::ALL.iter().position(|&k| k == kind).expect("in ALL") as u8;
    DEFAULT_SCHED.store(idx, std::sync::atomic::Ordering::Relaxed);
}

/// The current process-wide default scheduler.
pub fn default_sched() -> SchedKind {
    SchedKind::ALL[DEFAULT_SCHED.load(std::sync::atomic::Ordering::Relaxed) as usize]
}

/// Process-wide default coherence protocol, used by every
/// [`MachineConfig`] whose `protocol` field is `None`. Encoded as the
/// index into [`ProtocolKind::ALL`]; defaults to the flat model.
static DEFAULT_PROTOCOL: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Sets the process-wide default coherence protocol (the harness
/// `--protocol` flag). Machines built afterwards without an explicit
/// `protocol` use `kind`. Unlike [`set_default_sched`] this changes
/// simulation results: each protocol is its own deterministic model.
pub fn set_default_protocol(kind: ProtocolKind) {
    let idx = ProtocolKind::ALL.iter().position(|&k| k == kind).expect("in ALL") as u8;
    DEFAULT_PROTOCOL.store(idx, std::sync::atomic::Ordering::Relaxed);
}

/// The current process-wide default coherence protocol.
pub fn default_protocol() -> ProtocolKind {
    ProtocolKind::ALL[DEFAULT_PROTOCOL.load(std::sync::atomic::Ordering::Relaxed) as usize]
}

//! Fixed-footprint metrics: log2-bucketed latency histograms.
//!
//! The lock-behaviour questions the paper asks — how long does an acquire
//! wait, how long is the lock held, how fat is the starvation tail — need
//! distributions, not means. [`Histogram`] gives each lock a constant-size
//! (65 × u64) power-of-two-bucketed distribution that is cheap enough to
//! record on every acquisition, always on, with exact count/sum/max and
//! bucket-resolution percentiles.

/// A log2-bucketed histogram of `u64` samples (cycles).
///
/// Bucket 0 holds the value 0; bucket `b` (1 ≤ b ≤ 63) holds values in
/// `[2^(b-1), 2^b - 1]`; bucket 64 holds `[2^63, u64::MAX]`. Recording is
/// a few ALU ops, so it is unconditionally enabled on simulation paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index for `v`: 0 for 0, otherwise one past the position
    /// of the highest set bit.
    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// The largest value bucket `b` can hold.
    fn upper_bound(b: usize) -> u64 {
        match b {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << b) - 1,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// The `p`-th percentile (0 < p ≤ 100) at bucket resolution: the upper
    /// bound of the first bucket whose cumulative count covers `p`% of the
    /// samples, clamped to the observed maximum. `None` when empty or when
    /// `p` is out of range — NaN, zero, negative, or above 100 all used to
    /// fall through the bucket walk and silently report the max bucket.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        // Written as a positive range test so NaN (every comparison false)
        // is rejected by the same branch as 0.0 and 100.1.
        if !(p > 0.0 && p <= 100.0) {
            return None;
        }
        if self.count == 0 {
            return None;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return Some(Self::upper_bound(b).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Adds every sample of `other` into `self` (bucket-wise).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Nonempty buckets as `(bucket_upper_bound, count)` pairs, in
    /// ascending bucket order (for serialization).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(b, &n)| (Self::upper_bound(b), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // 0 | 1 | 2..3 | 4..7 | 8..15 | ...
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 15, 16] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (3, 2), (7, 2), (15, 2), (31, 1)]
        );
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 56);
        assert_eq!(h.max(), 16);
    }

    #[test]
    fn percentiles_hit_exact_buckets() {
        let mut h = Histogram::new();
        // 90 samples of 10 (bucket ..15), 9 of 100 (bucket ..127), 1 of
        // 1000 (bucket ..1023).
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..9 {
            h.record(100);
        }
        h.record(1000);
        assert_eq!(h.percentile(50.0), Some(15));
        assert_eq!(h.percentile(90.0), Some(15));
        assert_eq!(h.percentile(99.0), Some(127));
        assert_eq!(h.percentile(100.0), Some(1000), "p100 clamps to max");
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), Some((90 * 10 + 9 * 100 + 1000) as f64 / 100.0));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_sample_every_percentile_is_that_sample() {
        let mut h = Histogram::new();
        h.record(5);
        // Bucket upper bound is 7, but clamping to the observed max makes
        // every percentile exact for a single sample.
        assert_eq!(h.percentile(1.0), Some(5));
        assert_eq!(h.percentile(50.0), Some(5));
        assert_eq!(h.percentile(99.0), Some(5));
    }

    #[test]
    fn extreme_values_land_in_end_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (u64::MAX, 1)]);
        assert_eq!(h.percentile(50.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(u64::MAX));
    }

    #[test]
    fn out_of_range_percentiles_rejected() {
        let mut h = Histogram::new();
        for v in [10u64, 100, 1000] {
            h.record(v);
        }
        // In-range boundaries still work: p just above zero selects the
        // first nonempty bucket, p = 100 the max.
        assert_eq!(h.percentile(1.0), Some(15));
        assert_eq!(h.percentile(100.0), Some(1000));
        // Out of range: never "the max bucket by accident".
        assert_eq!(h.percentile(0.0), None, "p = 0 is not a percentile");
        assert_eq!(h.percentile(-5.0), None);
        assert_eq!(h.percentile(100.1), None);
        assert_eq!(h.percentile(f64::NAN), None);
        assert_eq!(h.percentile(f64::INFINITY), None);
        // The guard applies even to an empty histogram.
        assert_eq!(Histogram::new().percentile(f64::NAN), None);
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1020);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.percentile(50.0), Some(15));
    }
}

//! Programs: the resumable state machines simulated CPUs execute.

use std::fmt;

use nuca_topology::{CpuId, NodeId};

use crate::mem::Addr;
use crate::stats::SimStats;

/// One step a program asks the machine to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Load the word; the next `resume` receives the value.
    Read(Addr),
    /// Store `value`; the next `resume` receives the old value.
    Write(Addr, u64),
    /// Atomic compare-and-swap; the next `resume` receives the old value.
    Cas {
        /// Target word.
        addr: Addr,
        /// Value required for the swap to happen.
        expected: u64,
        /// Replacement value.
        new: u64,
    },
    /// Atomic swap; the next `resume` receives the old value.
    Swap {
        /// Target word.
        addr: Addr,
        /// Value to store.
        value: u64,
    },
    /// Atomic test-and-set (stores 1); the next `resume` receives the old
    /// value.
    Tas(Addr),
    /// Atomic fetch-and-add; the next `resume` receives the old value.
    FetchAdd {
        /// Target word.
        addr: Addr,
        /// Addend.
        delta: u64,
    },
    /// Compute (or back off) for the given number of cycles without
    /// touching memory.
    Delay(u64),
    /// Sleep until the word's value differs from `equals`, then receive
    /// the observed value. This models spinning on a locally cached copy:
    /// free until a writer invalidates it, then one refill transaction.
    WaitWhile {
        /// Watched word.
        addr: Addr,
        /// Sleep for as long as the word holds exactly this value.
        equals: u64,
    },
    /// The program is finished; the CPU goes idle.
    Done,
}

/// Per-CPU context handed to [`Program::resume`].
pub struct CpuCtx<'a> {
    /// The executing CPU.
    pub cpu: CpuId,
    /// Its NUCA node.
    pub node: NodeId,
    /// Current simulated time in cycles.
    pub now: u64,
    pub(crate) stats: &'a mut SimStats,
}

impl CpuCtx<'_> {
    /// Records a successful lock acquisition for the paper's node-handoff
    /// statistics (Figs. 3 and 5, right panels). `lock` is a workload-
    /// chosen dense index.
    pub fn record_acquire(&mut self, lock: usize) {
        self.stats.record_acquire(lock, self.node);
    }
}

impl fmt::Debug for CpuCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpuCtx")
            .field("cpu", &self.cpu)
            .field("node", &self.node)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

/// A resumable state machine executed by one simulated CPU.
///
/// The engine calls [`Program::resume`] with the result of the previously
/// issued command (`None` initially and after `Delay`); the program returns
/// the next command. Programs are sequential: one outstanding command per
/// CPU, like the in-order processors of the paper's machines.
pub trait Program {
    /// Produces the next command. `last` carries the value returned by the
    /// just-completed memory operation.
    fn resume(&mut self, ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command;
}

impl fmt::Debug for dyn Program + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("<program>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_are_comparable() {
        let a = Command::Delay(5);
        assert_eq!(a, Command::Delay(5));
        assert_ne!(a, Command::Done);
    }

    #[test]
    fn ctx_records_acquires() {
        let mut stats = SimStats::new();
        let mut ctx = CpuCtx {
            cpu: CpuId(3),
            node: NodeId(1),
            now: 42,
            stats: &mut stats,
        };
        ctx.record_acquire(0);
        ctx.record_acquire(0);
        assert_eq!(stats.lock_trace(0).unwrap().acquisitions, 2);
    }
}

//! Programs: the resumable state machines simulated CPUs execute.

use std::fmt;

use nuca_topology::{CpuId, NodeId};

use crate::faults::FaultState;
use crate::mem::Addr;
use crate::stats::SimStats;
use crate::trace::{BackoffClass, SimEvent, TraceSink};

/// One step a program asks the machine to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Load the word; the next `resume` receives the value.
    Read(Addr),
    /// Store `value`; the next `resume` receives the old value.
    Write(Addr, u64),
    /// Atomic compare-and-swap; the next `resume` receives the old value.
    Cas {
        /// Target word.
        addr: Addr,
        /// Value required for the swap to happen.
        expected: u64,
        /// Replacement value.
        new: u64,
    },
    /// Atomic swap; the next `resume` receives the old value.
    Swap {
        /// Target word.
        addr: Addr,
        /// Value to store.
        value: u64,
    },
    /// Atomic test-and-set (stores 1); the next `resume` receives the old
    /// value.
    Tas(Addr),
    /// Atomic fetch-and-add; the next `resume` receives the old value.
    FetchAdd {
        /// Target word.
        addr: Addr,
        /// Addend.
        delta: u64,
    },
    /// Compute (or back off) for the given number of cycles without
    /// touching memory.
    Delay(u64),
    /// Sleep until the word's value differs from `equals`, then receive
    /// the observed value. This models spinning on a locally cached copy:
    /// free until a writer invalidates it, then one refill transaction.
    WaitWhile {
        /// Watched word.
        addr: Addr,
        /// Sleep for as long as the word holds exactly this value.
        equals: u64,
    },
    /// The program is finished; the CPU goes idle.
    Done,
}

/// Per-CPU context handed to [`Program::resume`].
pub struct CpuCtx<'a> {
    /// The executing CPU.
    pub cpu: CpuId,
    /// Its NUCA node.
    pub node: NodeId,
    /// Current simulated time in cycles.
    pub now: u64,
    pub(crate) stats: &'a mut SimStats,
    /// Trace sink, if the machine has one installed. Every hook guards on
    /// this single `Option`, so untraced runs pay one branch per emission
    /// site and nothing else.
    pub(crate) trace: Option<&'a mut (dyn TraceSink + 'static)>,
    /// Engine-side fault state, if fault injection is on. Lock drivers
    /// notify it of acquisitions through [`CpuCtx::record_acquire`], which
    /// is how holder-targeted preemption knows who holds a lock.
    pub(crate) faults: Option<&'a mut FaultState>,
}

impl<'a> CpuCtx<'a> {
    /// Builds a standalone context (no trace sink), for driving lock
    /// sessions outside a [`crate::Machine`] — tests and examples.
    pub fn new(cpu: CpuId, node: NodeId, now: u64, stats: &'a mut SimStats) -> CpuCtx<'a> {
        CpuCtx {
            cpu,
            node,
            now,
            stats,
            trace: None,
            faults: None,
        }
    }

    /// Builds a standalone context with a trace sink installed, for
    /// replaying lock sessions through the trace layer outside a
    /// [`crate::Machine`] — e.g. the `nuca-mcheck` counterexample renderer.
    pub fn with_trace(
        cpu: CpuId,
        node: NodeId,
        now: u64,
        stats: &'a mut SimStats,
        trace: &'a mut (dyn TraceSink + 'static),
    ) -> CpuCtx<'a> {
        CpuCtx {
            cpu,
            node,
            now,
            stats,
            trace: Some(trace),
            faults: None,
        }
    }

    /// Traces the start of a lock acquisition (the first acquire step).
    /// Pure trace: no statistic is updated, so calling it is free when
    /// tracing is off. The streaming profiler ([`crate::profile`]) uses the
    /// window between this event and the matching `LockAcquire` to
    /// decompose acquire latency into phases.
    pub fn trace_acquire_start(&mut self, lock: usize) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.record(
                self.now,
                SimEvent::AcquireStart {
                    lock,
                    cpu: self.cpu,
                    node: self.node,
                },
            );
        }
    }

    /// Records a successful lock acquisition for the paper's node-handoff
    /// statistics (Figs. 3 and 5, right panels). `lock` is a workload-
    /// chosen dense index.
    pub fn record_acquire(&mut self, lock: usize) {
        self.stats.record_acquire(lock, self.node);
        // Holder-targeted preemption keys off this: the new holder may be
        // marked to lose a quantum at its next resume, mid-critical-section.
        if let Some(f) = self.faults.as_deref_mut() {
            f.on_acquire(self.cpu);
        }
        if let Some(t) = self.trace.as_deref_mut() {
            t.record(
                self.now,
                SimEvent::LockAcquire {
                    lock,
                    cpu: self.cpu,
                    node: self.node,
                },
            );
        }
    }

    /// Records a successful acquisition for `lock` into the statistics
    /// tiers **without** emitting a trace event or notifying the fault
    /// layer. Workloads with huge lock index spaces (the lockserver's
    /// per-object tallies) use this: tracing consumers size state by the
    /// largest lock index they observe — the streaming profiler keeps a
    /// dense `Vec` of ~1.7 KiB profiles — so sparse indices must never
    /// reach them.
    pub fn tally_acquire(&mut self, lock: usize) {
        self.stats.record_acquire(lock, self.node);
    }

    /// Records how long an acquisition waited (cycles from the first
    /// acquire step to success) into the lock's time-to-acquire histogram.
    pub fn record_acquire_latency(&mut self, lock: usize, cycles: u64) {
        self.stats.record_wait(lock, cycles);
    }

    /// Records the start of a release: `held` cycles go into the lock's
    /// hold-time histogram, and a `LockRelease` event is traced.
    pub fn record_release(&mut self, lock: usize, held: u64) {
        self.stats.record_hold(lock, held);
        if let Some(t) = self.trace.as_deref_mut() {
            t.record(
                self.now,
                SimEvent::LockRelease {
                    lock,
                    cpu: self.cpu,
                    node: self.node,
                },
            );
        }
    }

    /// Records an HBO_GT_SD anger episode (counted always; traced when a
    /// sink is installed).
    pub fn record_got_angry(&mut self) {
        self.stats.count_anger();
        if let Some(t) = self.trace.as_deref_mut() {
            t.record(
                self.now,
                SimEvent::GotAngry {
                    cpu: self.cpu,
                    node: self.node,
                },
            );
        }
    }

    /// Traces a backoff sleep of `cycles` in the given class. Pure trace:
    /// no statistic is updated, so calling it is free when tracing is off.
    pub fn trace_backoff(&mut self, cycles: u64, class: BackoffClass) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.record(
                self.now,
                SimEvent::BackoffSleep {
                    cpu: self.cpu,
                    node: self.node,
                    cycles,
                    class,
                },
            );
        }
    }

    /// Traces an HBO_GT spin announcement (the spinner publishing itself
    /// as eligible for throttling). Pure trace.
    pub fn trace_throttle_spin(&mut self) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.record(
                self.now,
                SimEvent::ThrottleSpin {
                    cpu: self.cpu,
                    node: self.node,
                },
            );
        }
    }
}

impl fmt::Debug for CpuCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpuCtx")
            .field("cpu", &self.cpu)
            .field("node", &self.node)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

/// A resumable state machine executed by one simulated CPU.
///
/// The engine calls [`Program::resume`] with the result of the previously
/// issued command (`None` initially and after `Delay`); the program returns
/// the next command. Programs are sequential: one outstanding command per
/// CPU, like the in-order processors of the paper's machines.
pub trait Program {
    /// Produces the next command. `last` carries the value returned by the
    /// just-completed memory operation.
    fn resume(&mut self, ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command;
}

impl fmt::Debug for dyn Program + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("<program>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_are_comparable() {
        let a = Command::Delay(5);
        assert_eq!(a, Command::Delay(5));
        assert_ne!(a, Command::Done);
    }

    #[test]
    fn ctx_records_acquires() {
        let mut stats = SimStats::new();
        let mut ctx = CpuCtx::new(CpuId(3), NodeId(1), 42, &mut stats);
        ctx.record_acquire(0);
        ctx.record_acquire(0);
        assert_eq!(stats.lock_trace(0).unwrap().acquisitions, 2);
    }

    #[test]
    fn ctx_hooks_reach_the_trace_sink() {
        use crate::trace::EventLog;

        let log = EventLog::new();
        let mut sink = log.clone();
        let mut stats = SimStats::new();
        let mut ctx = CpuCtx::new(CpuId(3), NodeId(1), 42, &mut stats);
        ctx.trace = Some(&mut sink);
        ctx.trace_acquire_start(0);
        ctx.record_acquire(0);
        ctx.record_release(0, 17);
        ctx.trace_backoff(100, BackoffClass::Remote);
        ctx.record_got_angry();
        ctx.trace_throttle_spin();
        let events: Vec<SimEvent> = log.take().into_iter().map(|r| r.event).collect();
        assert_eq!(
            events,
            vec![
                SimEvent::AcquireStart { lock: 0, cpu: CpuId(3), node: NodeId(1) },
                SimEvent::LockAcquire { lock: 0, cpu: CpuId(3), node: NodeId(1) },
                SimEvent::LockRelease { lock: 0, cpu: CpuId(3), node: NodeId(1) },
                SimEvent::BackoffSleep {
                    cpu: CpuId(3),
                    node: NodeId(1),
                    cycles: 100,
                    class: BackoffClass::Remote,
                },
                SimEvent::GotAngry { cpu: CpuId(3), node: NodeId(1) },
                SimEvent::ThrottleSpin { cpu: CpuId(3), node: NodeId(1) },
            ]
        );
        assert_eq!(stats.lock_trace(0).unwrap().hold.count(), 1);
        assert_eq!(stats.anger_episodes(), 1);
    }
}

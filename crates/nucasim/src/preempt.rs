//! The OS preemption model.
//!
//! The paper's 30-processor Raytrace runs show queue locks taking
//! "> 200 s" versus 0.7 s for the HBO family (Table 4): on a fully
//! populated machine the OS occasionally steals a CPU for a daemon, and a
//! preempted thread sitting in the middle of an MCS/CLH queue blocks every
//! thread behind it. This module reproduces that disturbance: each CPU
//! suffers preemption windows with exponentially distributed gaps and a
//! fixed quantum.

use crate::rng::SplitMix64;

/// Parameters of the preemption disturbance.
///
/// # Example
///
/// ```
/// let p = nucasim::PreemptionConfig::solaris_daemons();
/// assert!(p.mean_gap > p.quantum);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreemptionConfig {
    /// Mean cycles between preemptions of one CPU.
    pub mean_gap: u64,
    /// Cycles a preempted thread stays off-CPU (a scheduling quantum).
    pub quantum: u64,
}

impl PreemptionConfig {
    /// Background daemon activity on an otherwise-idle Solaris box: each
    /// CPU loses a 10 ms quantum roughly every 250 ms.
    pub const fn solaris_daemons() -> PreemptionConfig {
        PreemptionConfig {
            mean_gap: 62_500_000, // 250 ms at 250 MHz
            quantum: 2_500_000,   // 10 ms
        }
    }

    /// Heavier multiprogramming: a 10 ms quantum stolen every ~50 ms.
    pub const fn multiprogrammed() -> PreemptionConfig {
        PreemptionConfig {
            mean_gap: 12_500_000,
            quantum: 2_500_000,
        }
    }

    /// Checks the parameters describe a real disturbance. `mean_gap == 0`
    /// would pin every CPU in back-to-back windows and `quantum == 0`
    /// makes every window an invisible no-op; both were previously
    /// accepted silently.
    pub fn validate(&self) -> Result<(), String> {
        if self.mean_gap == 0 {
            return Err("preemption mean_gap must be positive (got 0)".to_owned());
        }
        if self.quantum == 0 {
            return Err("preemption quantum must be positive (got 0)".to_owned());
        }
        Ok(())
    }
}

/// Per-CPU stream of preemption windows.
#[derive(Debug)]
pub(crate) struct PreemptState {
    cfg: PreemptionConfig,
    /// Start of the next window per CPU.
    next_start: Vec<u64>,
    rngs: Vec<SplitMix64>,
}

impl PreemptState {
    pub(crate) fn new(cfg: PreemptionConfig, cpus: usize, seed: &mut SplitMix64) -> PreemptState {
        let mut rngs = Vec::with_capacity(cpus);
        let mut next_start = Vec::with_capacity(cpus);
        for _ in 0..cpus {
            let mut r = seed.split();
            // `next_exp` floors nonzero-mean draws at 1, so a window can
            // never start at cycle 0.
            next_start.push(r.next_exp(cfg.mean_gap));
            rngs.push(r);
        }
        PreemptState {
            cfg,
            next_start,
            rngs,
        }
    }

    /// Adjusts a wakeup scheduled at `t` for CPU `cpu`: if a preemption
    /// window *overlaps* `t`, the wakeup slides to the window's end (and
    /// may land in the next window, and so on). Windows that lie entirely
    /// in the past are skipped — a thread that slept through a window was
    /// not delayed by it. Returns `(adjusted_time, windows_applied)`.
    pub(crate) fn adjust(&mut self, cpu: usize, t: u64) -> (u64, u64) {
        let mut t = t;
        let mut applied = 0;
        loop {
            let start = self.next_start[cpu];
            if start > t {
                break;
            }
            let end = start + self.cfg.quantum;
            let gap = self.rngs[cpu].next_exp(self.cfg.mean_gap);
            self.next_start[cpu] = end + gap;
            if end > t {
                // The thread would run inside this window: it resumes
                // when the window closes.
                t = end;
                applied += 1;
            }
            // Otherwise the window fully predates the wakeup: no effect.
        }
        (t, applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(PreemptionConfig { mean_gap: 0, quantum: 10 }
            .validate()
            .unwrap_err()
            .contains("mean_gap"));
        assert!(PreemptionConfig { mean_gap: 10, quantum: 0 }
            .validate()
            .unwrap_err()
            .contains("quantum"));
        assert!(PreemptionConfig::solaris_daemons().validate().is_ok());
        assert!(PreemptionConfig::multiprogrammed().validate().is_ok());
    }

    #[test]
    fn no_window_before_first_start_leaves_time_alone() {
        let mut seed = SplitMix64::new(1);
        let mut p = PreemptState::new(
            PreemptionConfig {
                mean_gap: 1_000_000,
                quantum: 100,
            },
            1,
            &mut seed,
        );
        let (t, n) = p.adjust(0, 1);
        // The first window almost surely starts well after cycle 1.
        assert!(n == 0 || t > 1);
    }

    #[test]
    fn window_delays_wakeup_by_quantum() {
        let mut seed = SplitMix64::new(2);
        let mut p = PreemptState::new(
            PreemptionConfig {
                mean_gap: 10,
                quantum: 1000,
            },
            1,
            &mut seed,
        );
        let first = p.next_start[0];
        let (t, n) = p.adjust(0, first);
        assert!(n >= 1);
        assert!(t >= first + 1000);
    }

    #[test]
    fn deterministic_across_constructions() {
        let cfg = PreemptionConfig {
            mean_gap: 5000,
            quantum: 100,
        };
        let mut a = PreemptState::new(cfg, 4, &mut SplitMix64::new(9));
        let mut b = PreemptState::new(cfg, 4, &mut SplitMix64::new(9));
        for cpu in 0..4 {
            for step in 1..20u64 {
                assert_eq!(a.adjust(cpu, step * 10_000), b.adjust(cpu, step * 10_000));
            }
        }
    }

    #[test]
    fn windows_advance_monotonically() {
        let mut seed = SplitMix64::new(3);
        let mut p = PreemptState::new(
            PreemptionConfig {
                mean_gap: 100,
                quantum: 10,
            },
            1,
            &mut seed,
        );
        let mut last = 0;
        for i in 1..100 {
            let (t, _) = p.adjust(0, i * 50);
            assert!(t >= last.min(i * 50));
            last = t;
        }
    }
}

//! The simulated memory system: lines, coherence, latencies, watchers.
//!
//! Every allocated [`Addr`] is one cache-line-sized word with a home node.
//! A line tracks an exclusive owner (a CPU whose cache holds it modified)
//! or a set of sharers, plus a `busy_until` occupancy horizon — coherence
//! transactions targeting the same line serialize on it, which is the
//! mechanism behind lock-handover slowdown at high contention.
//!
//! Spinning is modeled with *watchers*: a CPU that would spin on a cached
//! value registers interest and sleeps; the next conflicting write wakes it
//! with a refill transaction (invalidate + re-fetch), exactly the cost
//! structure of test-and-test&set spinning on real coherent hardware.
//!
//! # Layout
//!
//! Per-line state is struct-of-arrays: one dense array per field, indexed
//! by [`Addr`]. The hot benchmark pattern — a critical section sweeping a
//! run of consecutively allocated lines — then walks each array
//! sequentially instead of striding over fat per-line structs, and the
//! fields an access never touches (watcher chains, homes) cost no cache
//! traffic. Watcher lists are FIFO chains through one shared node arena
//! with a freelist, so parking and waking spinners allocates nothing in
//! the steady state.

use std::fmt;
use std::sync::Arc;

use nuca_topology::{CpuId, NodeId, Topology};

use crate::coherence::{self, CoherenceProtocol};
use crate::config::{CacheGeometry, LatencyModel, ProtocolKind};
use crate::rng::SplitMix64;
use crate::stats::SimStats;
use crate::trace::{SimEvent, TraceSink};

/// Identifier of one simulated memory word (its own cache line).
///
/// `Addr`s are dense indices into the [`MemorySystem`]. The encoded form
/// ([`Addr::encode`]) is a nonzero `u64` suitable for storing *in* simulated
/// memory — queue locks store pointers to their queue nodes this way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub(crate) u32);

impl Addr {
    /// Nonzero `u64` form for storing this address in simulated memory.
    pub fn encode(self) -> u64 {
        u64::from(self.0) + 1
    }

    /// The address `n` words past this one — for indexing into a
    /// contiguous span from [`MemorySystem::alloc_span`]. The caller is
    /// responsible for staying inside the span; the result is only checked
    /// against arithmetic overflow, not allocation bounds.
    ///
    /// # Panics
    ///
    /// Panics if the offset overflows the address width.
    pub fn offset(self, n: usize) -> Addr {
        let n = u32::try_from(n).expect("span offset exceeds address width");
        Addr(self.0.checked_add(n).expect("span offset overflows"))
    }

    /// Inverse of [`Addr::encode`]; `None` for 0 (the null encoding).
    pub fn decode(v: u64) -> Option<Addr> {
        if v == 0 || v > u64::from(u32::MAX) {
            None
        } else {
            Some(Addr((v - 1) as u32))
        }
    }

    /// The dense index of this address.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "addr{}", self.0)
    }
}

/// One memory operation a program can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Plain load; returns the value.
    Read,
    /// Plain store; returns the *old* value.
    Write(u64),
    /// Atomic compare-and-swap; returns the old value.
    Cas {
        /// Value the word must hold for the swap to happen.
        expected: u64,
        /// Replacement value.
        new: u64,
    },
    /// Atomic swap; returns the old value.
    Swap(u64),
    /// Atomic test-and-set (write 1); returns the old value.
    Tas,
    /// Atomic fetch-and-add; returns the old value.
    FetchAdd(u64),
}

impl MemOp {
    /// Whether the operation needs exclusive ownership of the line.
    ///
    /// Atomics always fetch exclusive — even a failing `cas` steals the
    /// line from its owner, which is why undisciplined `cas` spinning is
    /// expensive and backoff matters.
    pub fn is_write(self) -> bool {
        !matches!(self, MemOp::Read)
    }

    /// Whether the operation is an atomic read-modify-write.
    pub fn is_atomic(self) -> bool {
        matches!(
            self,
            MemOp::Cas { .. } | MemOp::Swap(_) | MemOp::Tas | MemOp::FetchAdd(_)
        )
    }
}

/// Where a miss was served from, for latency selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    Hit,
    /// Same innermost group (CMP chip) — hierarchical topologies only.
    SameChipCache,
    SameNodeCache,
    LocalMemory,
    RemoteCache,
    RemoteMemory,
}

/// Largest CPU count one machine may simulate. Sharer sets are `u128`
/// bitmasks indexed by CPU id, so a 129th CPU would shift past the mask
/// width — a debug-build panic and silent sharer corruption (wrapping
/// shift) in release. [`crate::MachineConfig`] validation rejects bigger
/// topologies up front with a clear error instead.
pub const MAX_SIM_CPUS: usize = 128;

/// "No exclusive owner" sentinel in [`MemorySystem::owners`].
pub(crate) const NO_OWNER: u32 = u32::MAX;
/// Null link / empty-chain sentinel for watcher arena indices.
pub(crate) const WNIL: u32 = u32::MAX;

/// One parked spinner in the watcher arena. Freed nodes chain through
/// `next` onto the freelist.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WatchNode {
    /// Wake when the line's value differs from this.
    pub(crate) equals: u64,
    pub(crate) cpu: u32,
    pub(crate) next: u32,
}

/// A completed access: when it finishes and what it returned. Watchers it
/// woke are appended to the caller-provided buffer instead (so the hot
/// write path allocates nothing).
#[derive(Debug, Clone, Copy)]
pub(crate) struct AccessOutcome {
    pub complete_at: u64,
    pub value: u64,
}

/// The simulated memory: allocation, coherence state, and access costing.
///
/// Line state lives in parallel arrays indexed by [`Addr`] (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct MemorySystem {
    pub(crate) topo: Arc<Topology>,
    pub(crate) latency: LatencyModel,
    /// Current value of each word.
    pub(crate) values: Vec<u64>,
    /// CPU holding each line modified/exclusive ([`NO_OWNER`] if none).
    owners: Vec<u32>,
    /// CPUs holding shared copies (bitmask; the simulator supports up to
    /// 128 CPUs, more than the largest machine in the paper).
    sharers: Vec<u128>,
    /// Time until which each line's coherence agent is busy.
    busy_until: Vec<u64>,
    /// Home node of each word.
    pub(crate) homes: Vec<NodeId>,
    /// Head/tail of each line's watcher chain ([`WNIL`] when empty).
    /// CPUs sleeping until the line's value changes park here, in FIFO
    /// order — wake order is registration order.
    pub(crate) watch_head: Vec<u32>,
    pub(crate) watch_tail: Vec<u32>,
    /// Watcher node arena; `wfree` heads its freelist.
    pub(crate) wnodes: Vec<WatchNode>,
    pub(crate) wfree: u32,
    /// Per-node snooping-bus occupancy horizon: every coherence
    /// transaction touching a node serializes on its bus, so lock storms
    /// slow down unrelated data accesses (the paper's interference).
    pub(crate) bus_until: Vec<u64>,
    /// Inter-node link occupancy horizon (one shared resource, matching
    /// the WildFire's single interface).
    pub(crate) link_until: u64,
    /// Recycled wake buffer for the internal reads issued by
    /// [`MemorySystem::wait_while`] (reads never wake watchers, so it
    /// always comes back empty).
    read_scratch: Vec<(CpuId, u64, u64)>,
    /// Node each CPU's thread currently runs on (index = CPU id). Starts
    /// as the topology mapping; injected migrations rewrite entries.
    cpu_nodes: Vec<NodeId>,
    /// Whether any migration has happened. While false (the overwhelmingly
    /// common case) topology-derived shortcuts like the same-chip class
    /// stay valid.
    pub(crate) migrated: bool,
    /// One slow node: `(node, latency multiplier)` for transfers it serves.
    slow_node: Option<(NodeId, u64)>,
    /// Bounded uniform latency noise: `(max_extra, stream)`.
    jitter: Option<(u64, SplitMix64)>,
    /// Set-associative coherence protocol ([`crate::coherence`]), or
    /// `None` for the flat model. `None` keeps the flat hot path exactly
    /// as it was — one predictable branch at the top of
    /// [`MemorySystem::access`], no indirection.
    pub(crate) proto: Option<Box<dyn CoherenceProtocol>>,
}

impl MemorySystem {
    pub(crate) fn new(
        topo: Arc<Topology>,
        latency: LatencyModel,
        protocol: ProtocolKind,
        geometry: CacheGeometry,
    ) -> MemorySystem {
        // Backstop for the MachineConfig-level validation: a sharer bitmask
        // must have a bit for every CPU, in release builds too.
        assert!(
            topo.num_cpus() <= MAX_SIM_CPUS,
            "topology has {} CPUs but the memory system supports at most {} \
             (u128 sharer bitmask)",
            topo.num_cpus(),
            MAX_SIM_CPUS
        );
        let nodes = topo.num_nodes();
        let num_cpus = topo.num_cpus();
        let cpu_nodes = (0..topo.num_cpus()).map(|c| topo.node_of(CpuId(c))).collect();
        MemorySystem {
            topo,
            latency,
            values: Vec::new(),
            owners: Vec::new(),
            sharers: Vec::new(),
            busy_until: Vec::new(),
            homes: Vec::new(),
            watch_head: Vec::new(),
            watch_tail: Vec::new(),
            wnodes: Vec::new(),
            wfree: WNIL,
            bus_until: vec![0; nodes],
            link_until: 0,
            read_scratch: Vec::new(),
            cpu_nodes,
            migrated: false,
            slow_node: None,
            jitter: None,
            proto: coherence::build_protocol(protocol, geometry, num_cpus),
        }
    }

    /// The node `cpu`'s thread currently runs on — the topology's mapping
    /// until an injected migration moves it.
    pub fn node_of(&self, cpu: CpuId) -> NodeId {
        self.cpu_nodes[cpu.index()]
    }

    /// Re-homes `cpu`'s thread to `node` (injected migration). Subsequent
    /// accesses by that CPU pay latencies and traffic as from `node`.
    pub(crate) fn migrate_cpu(&mut self, cpu: CpuId, node: NodeId) {
        debug_assert!(node.index() < self.topo.num_nodes());
        self.cpu_nodes[cpu.index()] = node;
        self.migrated = true;
    }

    /// Enables the slow-node fault layer.
    pub(crate) fn set_slow_node(&mut self, node: NodeId, factor: u64) {
        self.slow_node = Some((node, factor));
    }

    /// Enables the latency-jitter fault layer.
    pub(crate) fn set_jitter(&mut self, max_extra: u64, rng: SplitMix64) {
        self.jitter = Some((max_extra, rng));
    }

    /// Fault-layer latency adjustment for a transfer served by
    /// `served_by`: the slow-node multiplier, then bounded jitter. Both
    /// disabled (the default) returns `base` untouched and draws nothing.
    pub(crate) fn faulted_latency(&mut self, base: u64, served_by: NodeId) -> u64 {
        let mut lat = base;
        if let Some((slow, factor)) = self.slow_node {
            if served_by == slow {
                lat *= factor;
            }
        }
        if let Some((max_extra, rng)) = self.jitter.as_mut() {
            lat += rng.next_below(*max_extra + 1);
        }
        lat
    }

    /// The coherence protocol this memory system models.
    pub fn protocol(&self) -> ProtocolKind {
        match &self.proto {
            Some(p) => p.kind(),
            None => ProtocolKind::Flat,
        }
    }

    /// Allocates a fresh zero-initialized word homed in `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the machine's topology.
    pub fn alloc(&mut self, node: NodeId) -> Addr {
        assert!(
            node.index() < self.topo.num_nodes(),
            "{node} outside topology"
        );
        let addr = Addr(u32::try_from(self.values.len()).expect("address space exhausted"));
        self.values.push(0);
        self.owners.push(NO_OWNER);
        self.sharers.push(0);
        self.busy_until.push(0);
        self.homes.push(node);
        self.watch_head.push(WNIL);
        self.watch_tail.push(WNIL);
        addr
    }

    /// Allocates `n` words homed in `node`.
    pub fn alloc_array(&mut self, node: NodeId, n: usize) -> Vec<Addr> {
        self.reserve(n);
        (0..n).map(|_| self.alloc(node)).collect()
    }

    /// Pre-sizes the backing arrays for `n` further allocations, so a bulk
    /// caller (a million-object lock table) pays one reallocation per
    /// parallel vector instead of a geometric growth series.
    pub fn reserve(&mut self, n: usize) {
        self.values.reserve(n);
        self.owners.reserve(n);
        self.sharers.reserve(n);
        self.busy_until.reserve(n);
        self.homes.reserve(n);
        self.watch_head.reserve(n);
        self.watch_tail.reserve(n);
    }

    /// Allocates `n` contiguous zero-initialized words homed in `node` and
    /// returns the first address; word `i` of the span is `Addr(base.0 +
    /// i)`. Unlike [`MemorySystem::alloc_array`] this materializes no
    /// `Vec<Addr>` — at 10^6+ words (the lockserver's object table) the
    /// handle vector alone would rival the words themselves.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the machine's topology or the address
    /// space would overflow.
    pub fn alloc_span(&mut self, node: NodeId, n: usize) -> Addr {
        assert!(
            node.index() < self.topo.num_nodes(),
            "{node} outside topology"
        );
        let end = self.values.len() + n;
        assert!(u32::try_from(end).is_ok(), "address space exhausted");
        let base = Addr(self.values.len() as u32);
        self.values.resize(end, 0);
        self.owners.resize(end, NO_OWNER);
        self.sharers.resize(end, 0);
        self.busy_until.resize(end, 0);
        self.homes.resize(end, node);
        self.watch_head.resize(end, WNIL);
        self.watch_tail.resize(end, WNIL);
        base
    }

    /// Number of allocated words.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no words have been allocated.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The current value of a word (debug/assertion use; does not model a
    /// coherence transaction).
    ///
    /// # Panics
    ///
    /// Panics if `addr` was not allocated.
    pub fn peek(&self, addr: Addr) -> u64 {
        self.values[addr.index()]
    }

    /// Directly sets a word's value without simulating an access (for
    /// initialization before the run starts).
    ///
    /// # Panics
    ///
    /// Panics if `addr` was not allocated.
    pub fn poke(&mut self, addr: Addr, value: u64) {
        self.values[addr.index()] = value;
    }

    /// The home node of a word.
    pub fn home(&self, addr: Addr) -> NodeId {
        self.homes[addr.index()]
    }

    fn source_latency(&self, src: Source) -> u64 {
        match src {
            Source::Hit => self.latency.l1_hit,
            Source::SameChipCache => self.latency.same_chip_transfer,
            Source::SameNodeCache => self.latency.same_node_transfer,
            Source::LocalMemory => self.latency.local_memory,
            Source::RemoteCache => self.latency.remote_transfer,
            Source::RemoteMemory => self.latency.remote_memory,
        }
    }

    pub(crate) fn apply_op(value: &mut u64, op: MemOp) -> u64 {
        let old = *value;
        match op {
            MemOp::Read => {}
            MemOp::Write(v) => *value = v,
            MemOp::Cas { expected, new } => {
                if old == expected {
                    *value = new;
                }
            }
            MemOp::Swap(v) => *value = v,
            MemOp::Tas => *value = 1,
            MemOp::FetchAdd(d) => *value = old.wrapping_add(d),
        }
        old
    }

    /// Appends `cpu` to the line's watcher chain (FIFO order).
    fn park_watcher(&mut self, i: usize, cpu: CpuId, equals: u64) {
        let id = if self.wfree != WNIL {
            let id = self.wfree;
            let n = &mut self.wnodes[id as usize];
            self.wfree = n.next;
            *n = WatchNode { equals, cpu: cpu.index() as u32, next: WNIL };
            id
        } else {
            let id = self.wnodes.len() as u32;
            debug_assert_ne!(id, WNIL, "watcher arena exhausted");
            self.wnodes.push(WatchNode { equals, cpu: cpu.index() as u32, next: WNIL });
            id
        };
        if self.watch_tail[i] == WNIL {
            self.watch_head[i] = id;
        } else {
            let tail = self.watch_tail[i] as usize;
            self.wnodes[tail].next = id;
        }
        self.watch_tail[i] = id;
    }

    /// Performs `op` by `cpu` on `addr`, starting at `now`.
    ///
    /// The value effect is applied immediately (transactions on one line
    /// are serialized by the event order, which is also the coherence
    /// order); the returned completion time reflects latency and line
    /// occupancy. Traffic is recorded into `stats`; every counted
    /// transaction additionally emits one `CoherenceTxn` event into
    /// `trace` when a sink is installed. `woken` is cleared and then
    /// filled with `(cpu, wake_time, observed_value)` for each watcher
    /// this access woke — a caller-owned buffer so the per-write wake
    /// burst never allocates.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn access(
        &mut self,
        now: u64,
        cpu: CpuId,
        addr: Addr,
        op: MemOp,
        stats: &mut SimStats,
        trace: Option<&mut (dyn TraceSink + 'static)>,
        woken: &mut Vec<(CpuId, u64, u64)>,
    ) -> AccessOutcome {
        if self.proto.is_some() {
            // Set-associative protocol installed: the protocol object owns
            // the whole access (state machine, geometry, timing). Taken out
            // and put back so it can borrow the rest of the memory system.
            let mut p = self.proto.take().expect("checked above");
            let out = p.access(self, now, cpu, addr, op, stats, trace, woken);
            self.proto = Some(p);
            return out;
        }
        self.flat_access(now, cpu, addr, op, stats, trace, woken)
    }

    /// The flat word-granular access path (every word its own line).
    /// Reached directly when no protocol object is installed, and via
    /// [`crate::coherence::FlatProtocol`] when one is — the two are
    /// pinned equivalent by test.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn flat_access(
        &mut self,
        now: u64,
        cpu: CpuId,
        addr: Addr,
        op: MemOp,
        stats: &mut SimStats,
        trace: Option<&mut (dyn TraceSink + 'static)>,
        woken: &mut Vec<(CpuId, u64, u64)>,
    ) -> AccessOutcome {
        woken.clear();
        // Cache-hit fast paths. Hits arbitrate for no shared resource,
        // draw no fault-layer latency, emit no trace event and count no
        // traffic, so none of the slow path's machinery applies. The
        // coherence-state transitions mirror phase 3 of the slow path.
        let i = addr.index();
        let me = cpu.index() as u32;
        if self.owners[i] == me {
            if !op.is_write() {
                // Owner read-hit: the modified copy demotes to shared.
                stats.count_hit();
                self.owners[i] = NO_OWNER;
                self.sharers[i] |= 1u128 << me;
                return AccessOutcome {
                    complete_at: now + self.latency.l1_hit,
                    value: self.values[i],
                };
            }
            if self.watch_head[i] == WNIL {
                // Owner write-hit with no parked spinners to refill.
                // Owner exclusive implies no sharers to invalidate.
                debug_assert_eq!(self.sharers[i], 0);
                stats.count_hit();
                let old = Self::apply_op(&mut self.values[i], op);
                let mut latency = self.latency.l1_hit;
                if op.is_atomic() {
                    latency += self.latency.atomic_extra;
                }
                return AccessOutcome { complete_at: now + latency, value: old };
            }
        } else if !op.is_write() && self.owners[i] == NO_OWNER && self.sharers[i] & (1u128 << me) != 0
        {
            // Shared read-hit: no state change at all.
            stats.count_hit();
            return AccessOutcome {
                complete_at: now + self.latency.l1_hit,
                value: self.values[i],
            };
        }
        self.access_slow(now, cpu, addr, op, stats, trace, woken)
    }

    /// The general access path: classification, timing/occupancy/traffic,
    /// invalidations, coherence update and watcher wake. (Still reached
    /// with `Source::Hit` for an owner write that must refill parked
    /// spinners.)
    #[allow(clippy::too_many_arguments)]
    fn access_slow(
        &mut self,
        now: u64,
        cpu: CpuId,
        addr: Addr,
        op: MemOp,
        stats: &mut SimStats,
        mut trace: Option<&mut (dyn TraceSink + 'static)>,
        woken: &mut Vec<(CpuId, u64, u64)>,
    ) -> AccessOutcome {
        let i = addr.index();
        let my_node = self.node_of(cpu);
        let home = self.homes[i];
        let lat = self.latency;

        // Phase 1: classify the access against current line state.
        let prev_owner = self.owners[i];
        let prev_sharers = self.sharers[i];
        let (src, src_node) = if prev_owner == cpu.index() as u32
            || (!op.is_write() && prev_owner == NO_OWNER && prev_sharers & (1 << cpu.index()) != 0)
        {
            (Source::Hit, my_node)
        } else if prev_owner != NO_OWNER {
            let owner = CpuId(prev_owner as usize);
            let on = self.node_of(owner);
            if on == my_node {
                // On hierarchical machines, a transfer within the
                // innermost group stays on-chip. Once any thread has
                // migrated, topology distance no longer describes
                // where threads run, so the shortcut is disabled.
                if !self.migrated
                    && self.topo.extra_levels() > 0
                    && self.topo.distance(cpu, owner) <= 1
                {
                    (Source::SameChipCache, on)
                } else {
                    (Source::SameNodeCache, on)
                }
            } else {
                (Source::RemoteCache, on)
            }
        } else if home == my_node {
            (Source::LocalMemory, home)
        } else {
            (Source::RemoteMemory, home)
        };

        let mut latency = self.source_latency(src);
        if src != Source::Hit {
            // Fault layers touch only real transfers; hits stay in-cache.
            latency = self.faulted_latency(latency, src_node);
        }
        if op.is_atomic() {
            latency += lat.atomic_extra;
        }

        // Phase 2: timing, occupancy and traffic. A missing transaction
        // arbitrates for the line, the requester's node bus, and — when it
        // crosses nodes — the source node's bus plus the inter-node link.
        let start;
        if src == Source::Hit {
            // Hits do not arbitrate for any shared resource.
            stats.count_hit();
            start = now;
        } else if src == Source::SameChipCache {
            // On-chip transfer: serializes on the line but stays off the
            // node's snooping bus and the interconnect.
            stats.count_local(my_node);
            start = now.max(self.busy_until[i]);
            self.busy_until[i] = start + lat.local_occupancy;
            if let Some(t) = trace.as_deref_mut() {
                t.record(
                    start,
                    SimEvent::CoherenceTxn {
                        cpu,
                        node: my_node,
                        home,
                        global: false,
                    },
                );
            }
        } else {
            let global = matches!(src, Source::RemoteCache | Source::RemoteMemory);
            if global {
                stats.count_global(my_node);
            } else {
                stats.count_local(my_node);
            }
            let line_busy = self.busy_until[i];
            let mut s = now.max(line_busy).max(self.bus_until[my_node.index()]);
            if global {
                s = s
                    .max(self.link_until)
                    .max(self.bus_until[src_node.index()]);
            }
            start = s;
            self.busy_until[i] = start
                + if global {
                    lat.global_occupancy
                } else {
                    lat.local_occupancy
                };
            // Atomic read-modify-writes cannot be split on a snooping bus:
            // they hold bus resources for several address slots.
            let bus_occ = if op.is_atomic() {
                lat.bus_occupancy * 2
            } else {
                lat.bus_occupancy
            };
            self.bus_until[my_node.index()] = start + bus_occ;
            if global {
                self.bus_until[src_node.index()] = start + bus_occ;
                self.link_until = start
                    + if op.is_atomic() {
                        lat.link_occupancy * 2
                    } else {
                        lat.link_occupancy
                    };
            }
            if let Some(t) = trace.as_deref_mut() {
                t.record(
                    start,
                    SimEvent::CoherenceTxn {
                        cpu,
                        node: my_node,
                        home,
                        global,
                    },
                );
            }
        }
        let complete_at = start + latency;

        // Invalidation traffic: a write that found the line *unowned* but
        // shared sends one invalidation per other node holding a copy (the
        // data fetch above already paid for reaching a modified owner).
        if op.is_write() && prev_owner == NO_OWNER {
            let mut inval_nodes = 0u64; // bitmask over nodes
            let mut sharers = prev_sharers;
            while sharers != 0 {
                let c = sharers.trailing_zeros() as usize;
                sharers &= sharers - 1;
                if c != cpu.index() {
                    inval_nodes |= 1 << self.node_of(CpuId(c)).index();
                }
            }
            while inval_nodes != 0 {
                let n = inval_nodes.trailing_zeros() as usize;
                inval_nodes &= inval_nodes - 1;
                let global = NodeId(n) != my_node;
                if global {
                    stats.count_global(NodeId(n));
                } else {
                    stats.count_local(NodeId(n));
                }
                if let Some(t) = trace.as_deref_mut() {
                    t.record(
                        start,
                        SimEvent::CoherenceTxn {
                            cpu,
                            node: NodeId(n),
                            home,
                            global,
                        },
                    );
                }
            }
        }

        // Phase 3: apply the value effect and update coherence state.
        let old = Self::apply_op(&mut self.values[i], op);
        let new_value = self.values[i];
        if op.is_write() {
            self.owners[i] = cpu.index() as u32;
            self.sharers[i] = 0;
        } else {
            // Read: a previous modified owner's data is now shared.
            if prev_owner != NO_OWNER {
                self.owners[i] = NO_OWNER;
                self.sharers[i] |= 1 << prev_owner;
            }
            self.sharers[i] |= 1 << cpu.index();
        }

        // Phase 4: wake watchers whose condition now holds. Each wake is a
        // refill — an invalidate-then-refetch transaction from the new
        // owner — and refills serialize on the line's occupancy. Watchers
        // that stay parked are relinked in place (the chain nodes are
        // reused), so the burst allocates nothing.
        if op.is_write() && self.watch_head[i] != WNIL {
            let mut id = self.watch_head[i];
            let mut kept_head = WNIL;
            let mut kept_tail = WNIL;
            let mut busy = self.busy_until[i].max(complete_at);
            let mut new_sharers = 0u128;
            while id != WNIL {
                let WatchNode { equals, cpu: wc, next } = self.wnodes[id as usize];
                // *Every* write invalidates every spinner's cached
                // copy; each refills (traffic + bus time) and
                // re-checks. Spinners whose condition still fails stay
                // parked but have already paid — this is the O(N²)
                // test-and-test&set stampede.
                let wcpu = CpuId(wc as usize);
                let w_node = self.node_of(wcpu);
                let global = w_node != my_node;
                let (refill, occ) = if global {
                    stats.count_global(w_node);
                    (lat.remote_transfer, lat.global_occupancy)
                } else {
                    stats.count_local(w_node);
                    (lat.same_node_transfer, lat.local_occupancy)
                };
                // Refills are served by the writer's cache.
                let refill = self.faulted_latency(refill, my_node);
                // The refill burst arbitrates for the same shared
                // resources as any other transaction.
                let mut s = busy.max(self.bus_until[w_node.index()]);
                if global {
                    s = s
                        .max(self.link_until)
                        .max(self.bus_until[my_node.index()]);
                }
                let wake_at = s + refill;
                busy = s + occ;
                if let Some(t) = trace.as_deref_mut() {
                    t.record(
                        s,
                        SimEvent::CoherenceTxn {
                            cpu: wcpu,
                            node: w_node,
                            home,
                            global,
                        },
                    );
                }
                self.bus_until[w_node.index()] = s + lat.bus_occupancy;
                if global {
                    self.bus_until[my_node.index()] = s + lat.bus_occupancy;
                    self.link_until = s + lat.link_occupancy;
                }
                new_sharers |= 1 << wc;
                if new_value != equals {
                    woken.push((wcpu, wake_at, new_value));
                    // Free the node.
                    self.wnodes[id as usize].next = self.wfree;
                    self.wfree = id;
                } else {
                    // Keep parked, preserving FIFO order.
                    self.wnodes[id as usize].next = WNIL;
                    if kept_tail == WNIL {
                        kept_head = id;
                    } else {
                        self.wnodes[kept_tail as usize].next = id;
                    }
                    kept_tail = id;
                }
                id = next;
            }
            self.watch_head[i] = kept_head;
            self.watch_tail[i] = kept_tail;
            self.busy_until[i] = busy;
            self.sharers[i] |= new_sharers;
            // Refilled watchers demote the writer's copy to shared.
            if !woken.is_empty() && self.owners[i] != NO_OWNER {
                self.sharers[i] |= 1 << self.owners[i];
                self.owners[i] = NO_OWNER;
            }
        }

        AccessOutcome {
            complete_at,
            value: old,
        }
    }

    /// Begins a `WaitWhile`: if the word already differs from `equals`,
    /// returns the read outcome; otherwise registers `cpu` as a watcher
    /// and returns `None` (the engine will be woken by a future write).
    ///
    /// A spinner that does not hold a valid copy of the line must fetch it
    /// to observe that the value has not changed — that read transaction
    /// is charged here even though the CPU then sleeps. This is the
    /// re-read a failed `tas` performs before resuming its load loop.
    pub(crate) fn wait_while(
        &mut self,
        now: u64,
        cpu: CpuId,
        addr: Addr,
        equals: u64,
        stats: &mut SimStats,
        trace: Option<&mut (dyn TraceSink + 'static)>,
    ) -> Option<(u64, u64)> {
        let i = addr.index();
        if self.values[i] != equals {
            let mut scratch = std::mem::take(&mut self.read_scratch);
            let out = self.access(now, cpu, addr, MemOp::Read, stats, trace, &mut scratch);
            debug_assert!(scratch.is_empty(), "reads wake no watchers");
            self.read_scratch = scratch;
            return Some((out.complete_at, out.value));
        }
        let holds_copy = match &self.proto {
            Some(p) => p.holds_copy(self, cpu, addr),
            None => self.flat_holds_copy(cpu, addr),
        };
        if !holds_copy {
            // Fetch the line (traffic + line/bus occupancy) before
            // sleeping on it.
            let mut scratch = std::mem::take(&mut self.read_scratch);
            let _ = self.access(now, cpu, addr, MemOp::Read, stats, trace, &mut scratch);
            debug_assert!(scratch.is_empty(), "reads wake no watchers");
            self.read_scratch = scratch;
        }
        self.park_watcher(i, cpu, equals);
        None
    }

    /// Whether `cpu` holds a valid copy of `addr` under the flat model
    /// (exclusive owner or sharer of the word).
    pub(crate) fn flat_holds_copy(&self, cpu: CpuId, addr: Addr) -> bool {
        let i = addr.index();
        self.owners[i] == cpu.index() as u32 || self.sharers[i] & (1 << cpu.index()) != 0
    }

    /// Materializes the final value of every allocated word, in address
    /// order (done once, when a finished machine is turned into a report).
    pub(crate) fn final_values(&self) -> Vec<u64> {
        self.values.clone()
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LatencyModel;
    use nuca_topology::Topology;

    fn mem2x2() -> (MemorySystem, SimStats) {
        let topo = Arc::new(Topology::symmetric(2, 2));
        (
            MemorySystem::new(topo, LatencyModel::wildfire(), ProtocolKind::Flat, CacheGeometry::default_geometry()),
            SimStats::new(),
        )
    }

    /// Test shim for the pre-buffer `access` signature: discards wakes,
    /// no tracing.
    fn access(
        mem: &mut MemorySystem,
        now: u64,
        cpu: CpuId,
        addr: Addr,
        op: MemOp,
        st: &mut SimStats,
    ) -> AccessOutcome {
        let mut woken = Vec::new();
        mem.access(now, cpu, addr, op, st, None, &mut woken)
    }

    /// Like [`access`] but returns the woken watchers too.
    #[allow(clippy::type_complexity)]
    fn access_w(
        mem: &mut MemorySystem,
        now: u64,
        cpu: CpuId,
        addr: Addr,
        op: MemOp,
        st: &mut SimStats,
    ) -> (AccessOutcome, Vec<(CpuId, u64, u64)>) {
        let mut woken = Vec::new();
        let out = mem.access(now, cpu, addr, op, st, None, &mut woken);
        (out, woken)
    }

    #[test]
    fn alloc_span_is_contiguous_and_usable() {
        let (mut mem, mut st) = mem2x2();
        let first = mem.alloc(NodeId(0));
        let base = mem.alloc_span(NodeId(1), 1000);
        assert_eq!(base.index(), first.index() + 1);
        assert_eq!(mem.len(), 1001);
        // Span words behave exactly like individually allocated ones.
        let mid = base.offset(500);
        assert_eq!(mem.home(mid), NodeId(1));
        assert_eq!(mem.peek(mid), 0);
        let _ = access(&mut mem, 0, CpuId(0), mid, MemOp::Write(7), &mut st);
        assert_eq!(mem.peek(mid), 7);
        assert_eq!(mem.peek(base.offset(499)), 0, "neighbours untouched");
        // Allocation continues cleanly past the span.
        let next = mem.alloc(NodeId(0));
        assert_eq!(next.index(), base.offset(999).index() + 1);
    }

    #[test]
    fn addr_encoding_roundtrip() {
        let a = Addr(0);
        assert_eq!(a.encode(), 1);
        assert_eq!(Addr::decode(1), Some(a));
        assert_eq!(Addr::decode(0), None);
        let b = Addr(41);
        assert_eq!(Addr::decode(b.encode()), Some(b));
    }

    #[test]
    fn ops_apply_correct_values() {
        let (mut mem, mut st) = mem2x2();
        let a = mem.alloc(NodeId(0));
        let cpu = CpuId(0);
        assert_eq!(access(&mut mem, 0, cpu, a, MemOp::Write(5), &mut st).value, 0);
        assert_eq!(mem.peek(a), 5);
        assert_eq!(
            access(&mut mem, 0, cpu, a, MemOp::Cas { expected: 5, new: 7 }, &mut st).value,
            5
        );
        assert_eq!(mem.peek(a), 7);
        assert_eq!(
            access(&mut mem, 0, cpu, a, MemOp::Cas { expected: 5, new: 9 }, &mut st).value,
            7,
            "failed cas returns old value"
        );
        assert_eq!(mem.peek(a), 7, "failed cas does not write");
        assert_eq!(access(&mut mem, 0, cpu, a, MemOp::Swap(1), &mut st).value, 7);
        assert_eq!(access(&mut mem, 0, cpu, a, MemOp::Tas, &mut st).value, 1);
        assert_eq!(access(&mut mem, 0, cpu, a, MemOp::FetchAdd(3), &mut st).value, 1);
        assert_eq!(mem.peek(a), 4);
        assert_eq!(access(&mut mem, 0, cpu, a, MemOp::Read, &mut st).value, 4);
    }

    #[test]
    fn latency_classes_ordered() {
        let (mut mem, mut st) = mem2x2();
        let a = mem.alloc(NodeId(0));
        // CPU 0 (node 0) writes: local memory fetch.
        let w0 = access(&mut mem, 0, CpuId(0), a, MemOp::Write(1), &mut st);
        let t_local_mem = w0.complete_at;
        // CPU 1 (node 0) writes: same-node cache-to-cache.
        let w1 = access(&mut mem, w0.complete_at, CpuId(1), a, MemOp::Write(2), &mut st);
        let t_same = w1.complete_at - w0.complete_at;
        // CPU 2 (node 1) writes: remote cache-to-cache.
        let w2 = access(&mut mem, w1.complete_at, CpuId(2), a, MemOp::Write(3), &mut st);
        let t_remote = w2.complete_at - w1.complete_at;
        assert!(t_same < t_local_mem + 10, "cache transfer beats memory+eps");
        assert!(
            t_remote > 4 * t_same,
            "NUCA ratio visible: remote {t_remote} vs same-node {t_same}"
        );
        // Re-write by the owner is a hit.
        let w3 = access(&mut mem, w2.complete_at, CpuId(2), a, MemOp::Write(4), &mut st);
        assert!(w3.complete_at - w2.complete_at <= LatencyModel::wildfire().l1_hit);
    }

    #[test]
    fn traffic_classification() {
        let (mut mem, mut st) = mem2x2();
        let a = mem.alloc(NodeId(0));
        access(&mut mem, 0, CpuId(0), a, MemOp::Write(1), &mut st); // local mem fetch
        assert_eq!(st.traffic().local, 1);
        assert_eq!(st.traffic().global, 0);
        access(&mut mem, 100, CpuId(2), a, MemOp::Write(2), &mut st); // remote cache fetch
        assert_eq!(st.traffic().global, 1);
        access(&mut mem, 200, CpuId(2), a, MemOp::Write(3), &mut st); // hit
        assert_eq!(st.traffic().total(), 2, "hits add no traffic");
        assert_eq!(st.cache_hits(), 1);
    }

    #[test]
    fn reads_share_then_write_invalidates() {
        let (mut mem, mut st) = mem2x2();
        let a = mem.alloc(NodeId(0));
        access(&mut mem, 0, CpuId(0), a, MemOp::Write(9), &mut st);
        // Two readers pull shared copies.
        access(&mut mem, 100, CpuId(1), a, MemOp::Read, &mut st);
        access(&mut mem, 200, CpuId(2), a, MemOp::Read, &mut st);
        // Re-read by the same CPU is free.
        let before = st.traffic().total();
        access(&mut mem, 300, CpuId(2), a, MemOp::Read, &mut st);
        assert_eq!(st.traffic().total(), before, "shared re-read is a hit");
        // A write invalidates the sharers (one local, one remote inval).
        let before = st.traffic();
        access(&mut mem, 400, CpuId(0), a, MemOp::Write(1), &mut st);
        let after = st.traffic();
        assert!(after.total() > before.total(), "invalidations counted");
        assert!(after.global > before.global, "remote sharer invalidated");
    }

    #[test]
    fn line_occupancy_serializes_contending_writers() {
        let (mut mem, mut st) = mem2x2();
        let a = mem.alloc(NodeId(0));
        access(&mut mem, 0, CpuId(0), a, MemOp::Write(1), &mut st);
        // Two foreign writers issue at the same instant: the second must
        // be pushed behind the first by the occupancy horizon.
        let w1 = access(&mut mem, 1000, CpuId(1), a, MemOp::Write(2), &mut st);
        let w2 = access(&mut mem, 1000, CpuId(2), a, MemOp::Write(3), &mut st);
        assert!(w2.complete_at > w1.complete_at);
    }

    #[test]
    fn wait_while_completes_immediately_when_value_differs() {
        let (mut mem, mut st) = mem2x2();
        let a = mem.alloc(NodeId(0));
        mem.poke(a, 7);
        let out = mem.wait_while(0, CpuId(0), a, 3, &mut st, None);
        assert!(matches!(out, Some((_, 7))));
    }

    #[test]
    fn wait_while_wakes_on_conflicting_write() {
        let (mut mem, mut st) = mem2x2();
        let a = mem.alloc(NodeId(0));
        // CPU 3 (node 1) waits for the value to stop being 0.
        assert!(mem.wait_while(0, CpuId(3), a, 0, &mut st, None).is_none());
        // A write of 0 does not wake it.
        let (_, woken) = access_w(&mut mem, 10, CpuId(0), a, MemOp::Write(0), &mut st);
        assert!(woken.is_empty());
        // A write of 5 wakes it, charging a (global) refill.
        let g_before = st.traffic().global;
        let (out, woken) = access_w(&mut mem, 20, CpuId(0), a, MemOp::Write(5), &mut st);
        assert_eq!(woken.len(), 1);
        let (cpu, wake_at, val) = woken[0];
        assert_eq!(cpu, CpuId(3));
        assert_eq!(val, 5);
        assert!(wake_at > out.complete_at, "refill happens after the write");
        assert!(st.traffic().global > g_before, "cross-node refill is global");
    }

    #[test]
    fn multiple_watchers_wake_staggered() {
        let (mut mem, mut st) = mem2x2();
        let a = mem.alloc(NodeId(0));
        assert!(mem.wait_while(0, CpuId(1), a, 0, &mut st, None).is_none());
        assert!(mem.wait_while(0, CpuId(2), a, 0, &mut st, None).is_none());
        assert!(mem.wait_while(0, CpuId(3), a, 0, &mut st, None).is_none());
        let (_, woken) = access_w(&mut mem, 10, CpuId(0), a, MemOp::Write(1), &mut st);
        assert_eq!(woken.len(), 3);
        let mut times: Vec<u64> = woken.iter().map(|w| w.1).collect();
        let sorted = {
            let mut t = times.clone();
            t.sort();
            t
        };
        times.sort();
        assert_eq!(times, sorted);
        // Strictly staggered: the burst serializes on the line.
        assert!(times[0] < times[1] && times[1] < times[2]);
    }

    #[test]
    fn watcher_list_spills_past_inline_capacity() {
        // More concurrent watchers than the inline buffer holds: all of
        // them must still be tracked and woken.
        let topo = Arc::new(Topology::symmetric(2, 4));
        let mut mem = MemorySystem::new(topo, LatencyModel::wildfire(), ProtocolKind::Flat, CacheGeometry::default_geometry());
        let mut st = SimStats::new();
        let a = mem.alloc(NodeId(0));
        for c in 1..8 {
            assert!(mem.wait_while(0, CpuId(c), a, 0, &mut st, None).is_none());
        }
        let (_, woken) = access_w(&mut mem, 10, CpuId(0), a, MemOp::Write(1), &mut st);
        assert_eq!(woken.len(), 7, "every spilled watcher wakes");
    }

    #[test]
    fn flat_topology_never_uses_chip_class() {
        // On a flat machine every same-node pair is "distance 1", but the
        // chip latency class must not apply (it would silently change all
        // of the paper's experiments).
        let topo = Arc::new(Topology::symmetric(2, 2));
        let mut lat = LatencyModel::wildfire();
        lat.same_chip_transfer = 1; // absurdly cheap — detectable if used
        let mut mem = MemorySystem::new(topo, lat, ProtocolKind::Flat, CacheGeometry::default_geometry());
        let mut st = SimStats::new();
        let a = mem.alloc(NodeId(0));
        access(&mut mem, 0, CpuId(0), a, MemOp::Write(1), &mut st);
        let w = access(&mut mem, 1000, CpuId(1), a, MemOp::Write(2), &mut st);
        assert!(
            w.complete_at - 1000 >= lat.same_node_transfer,
            "flat same-node transfer must pay the full node latency"
        );
    }

    #[test]
    fn hierarchical_topology_chip_transfers_cheap_and_busless() {
        let topo = Arc::new(
            Topology::builder()
                .hierarchical_node(&[2, 2])
                .hierarchical_node(&[2, 2])
                .build()
                .unwrap(),
        );
        let lat = LatencyModel::cmp_numa();
        let mut mem = MemorySystem::new(topo, lat, ProtocolKind::Flat, CacheGeometry::default_geometry());
        let mut st = SimStats::new();
        let a = mem.alloc(NodeId(0));
        access(&mut mem, 0, CpuId(0), a, MemOp::Write(1), &mut st);
        // cpu1 shares cpu0's chip; cpu2 is the other chip of node 0.
        let chip = access(&mut mem, 10_000, CpuId(1), a, MemOp::Write(2), &mut st);
        let cross = access(&mut mem, 20_000, CpuId(2), a, MemOp::Write(3), &mut st);
        assert_eq!(chip.complete_at - 10_000, lat.same_chip_transfer);
        assert!(cross.complete_at - 20_000 >= lat.same_node_transfer);
        // Both are local traffic.
        assert_eq!(st.traffic().global, 0);
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn alloc_foreign_node_rejected() {
        let (mut mem, _) = mem2x2();
        let _ = mem.alloc(NodeId(7));
    }

    #[test]
    fn migration_reclassifies_traffic() {
        let (mut mem, mut st) = mem2x2();
        assert_eq!(mem.node_of(CpuId(0)), NodeId(0));
        let a = mem.alloc(NodeId(0));
        // CPU 2 (node 1) owns the line; CPU 0 fetches it cross-node.
        access(&mut mem, 0, CpuId(2), a, MemOp::Write(1), &mut st);
        let g_before = st.traffic().global;
        access(&mut mem, 10_000, CpuId(0), a, MemOp::Write(2), &mut st);
        assert_eq!(st.traffic().global, g_before + 1, "cross-node fetch");
        // Migrate CPU 0 onto node 1: the same fetch is now node-local.
        mem.migrate_cpu(CpuId(0), NodeId(1));
        assert_eq!(mem.node_of(CpuId(0)), NodeId(1));
        access(&mut mem, 20_000, CpuId(2), a, MemOp::Write(3), &mut st);
        let g_mid = st.traffic().global;
        access(&mut mem, 30_000, CpuId(0), a, MemOp::Write(4), &mut st);
        assert_eq!(st.traffic().global, g_mid, "post-migration fetch is local");
    }

    #[test]
    fn slow_node_multiplies_served_transfers_only() {
        let t_from = |slow: bool| {
            let (mut mem, mut st) = mem2x2();
            if slow {
                mem.set_slow_node(NodeId(1), 4);
            }
            let a = mem.alloc(NodeId(0));
            // Owner on node 1; requester on node 0 → served by node 1.
            access(&mut mem, 0, CpuId(2), a, MemOp::Write(1), &mut st);
            let out = access(&mut mem, 100_000, CpuId(0), a, MemOp::Write(2), &mut st);
            let served_by_slow = out.complete_at - 100_000;
            // Now owner on node 0; requester on node 1 → served by node 0.
            let out = access(&mut mem, 200_000, CpuId(2), a, MemOp::Write(3), &mut st);
            let served_by_fast = out.complete_at - 200_000;
            (served_by_slow, served_by_fast)
        };
        let (base_slow, base_fast) = t_from(false);
        let (slow, fast) = t_from(true);
        assert!(slow > 3 * base_slow, "slow node's transfers pay the factor");
        assert_eq!(fast, base_fast, "the healthy node is untouched");
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let run = |jitter: bool| {
            let (mut mem, mut st) = mem2x2();
            if jitter {
                mem.set_jitter(50, SplitMix64::new(77));
            }
            let a = mem.alloc(NodeId(0));
            let mut times = Vec::new();
            let mut now = 0;
            for i in 0..20u64 {
                let cpu = CpuId((i % 4) as usize);
                let out = access(&mut mem, now, cpu, a, MemOp::Write(i), &mut st);
                times.push(out.complete_at - now);
                now = out.complete_at + 1_000;
            }
            times
        };
        let base = run(false);
        let j1 = run(true);
        let j2 = run(true);
        assert_eq!(j1, j2, "jitter is seed-reproducible");
        assert_ne!(base, j1, "jitter actually perturbs latencies");
        for (b, j) in base.iter().zip(&j1) {
            assert!(*j >= *b && *j <= *b + 50, "bounded: {b} -> {j}");
        }
    }
}

//! A tiny deterministic PRNG for the simulator's internal randomness.
//!
//! The engine must be bit-for-bit reproducible for a given seed across
//! library versions, so it uses SplitMix64 (Steele, Lea & Flood 2014)
//! rather than an external crate whose stream might change between
//! releases. Workload crates are free to use `rand`.

/// SplitMix64: a fast, full-period 64-bit generator.
///
/// # Example
///
/// ```
/// use nucasim::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift (Lemire); tiny bias is irrelevant here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Approximately exponentially distributed value with the given mean,
    /// for Poisson-style arrival processes (preemption windows, fault
    /// gaps). For a nonzero mean the result is never 0: a zero gap would
    /// let schedulers loop without advancing simulated time, so the floor
    /// lives here rather than at every call site.
    pub fn next_exp(&mut self, mean: u64) -> u64 {
        if mean == 0 {
            return 0;
        }
        // Inverse CDF on a uniform in (0,1]; clamp the tail at 20× mean to
        // keep event times bounded. The float truncation can round small
        // draws down to 0, hence the floor.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let x = -(1.0 - u).ln() * mean as f64;
        (x.min(mean as f64 * 20.0) as u64).max(1)
    }

    /// Derives an independent generator (for per-CPU streams).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut r = SplitMix64::new(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_rejected() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn exp_mean_roughly_right() {
        let mut r = SplitMix64::new(5);
        let n = 20_000u64;
        let sum: u64 = (0..n).map(|_| r.next_exp(1000)).sum();
        let mean = sum / n;
        assert!((800..1200).contains(&mean), "mean was {mean}");
    }

    #[test]
    fn exp_nonzero_mean_never_returns_zero() {
        // Regression: the inverse-CDF draw truncates to 0 for small
        // uniforms (a mean of 1 yields 0 about 63% of the time without the
        // floor), which let callers schedule zero-length gaps unless each
        // remembered its own `.max(1)`.
        for seed in 0..8u64 {
            let mut r = SplitMix64::new(seed);
            for _ in 0..10_000 {
                assert!(r.next_exp(1) >= 1);
                assert!(r.next_exp(1_000_000) >= 1);
            }
        }
        // A zero mean still means "no process": identity 0.
        assert_eq!(SplitMix64::new(1).next_exp(0), 0);
    }

    #[test]
    fn split_streams_independent() {
        let mut root = SplitMix64::new(9);
        let mut a = root.split();
        let mut b = root.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}

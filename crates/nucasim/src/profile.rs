//! nuca-prof: streaming trace analysis for the lock layer.
//!
//! The paper's whole argument rests on *where* each lock handoff goes
//! (same node vs. cross node) and *what* an acquire spends its latency on.
//! The [`crate::trace`] layer emits the raw [`SimEvent`] stream, but
//! buffering it (an [`crate::EventLog`]) costs tens of bytes per event —
//! millions of events per contended run. The analyzers here consume the
//! stream *incrementally* instead: every metric is an online fold over the
//! events, so memory is bounded by machine shape (CPUs × locks × nodes,
//! with fixed-size histograms), never by event count.
//!
//! Three layers:
//!
//! * [`LockProfile`] / [`Profile`] — the analysis results: per-lock
//!   handoff-chain reconstruction (local/remote handoff counts,
//!   node-residency run lengths, the paper's node-handoff rate) and
//!   per-acquire latency decomposition (spin vs. backoff sleep by
//!   [`BackoffClass`] vs. coherence transactions split local/global), plus
//!   hold times and machine-wide episode counters.
//! * [`ProfileCollector`] — a cloneable [`TraceSink`] handle for profiling
//!   one machine explicitly (the `handoff` artifact): clone it, box one
//!   clone into the machine, call [`ProfileCollector::finish`] after.
//! * the **global registry** — [`enable_global_profiling`] makes every
//!   subsequently-run [`crate::Machine`] without an explicit sink install
//!   a streaming profiler whose results merge, keyed by the machine's
//!   profile label, into a process-wide table ([`take_global_profiles`]).
//!   This is what the experiment harness's `--profile` flag turns on: the
//!   artifacts run unchanged (profiling only observes, so every TSV byte
//!   is identical) while the profiler aggregates across all of them.
//!
//! # Determinism contract
//!
//! A single machine's profile is a pure function of its event stream, and
//! the event stream is a pure function of the simulation — so per-machine
//! profiles are deterministic across schedulers and host thread counts.
//! Global aggregation happens in whatever order parallel jobs finish, so
//! every merged quantity is a commutative, associative integer fold
//! (counts, sums, bucket-wise histogram merges); ratios are derived only
//! at serialization time. Labels are reported in sorted order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use nuca_topology::NodeId;

use crate::metrics::Histogram;
use crate::trace::{BackoffClass, SimEvent, TraceSink};

/// Streaming per-lock analysis: handoff-chain reconstruction and acquire
/// latency decomposition, all counters merge-safe integers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockProfile {
    /// Successful acquisitions observed.
    pub acquires: u64,
    /// Handovers whose new holder was on the *same* node as the previous
    /// one (node-local runs — what HBO maximizes).
    pub local_handoffs: u64,
    /// Handovers that crossed to a different node (the paper's "node
    /// handoffs"; every one costs a remote lock-word transfer).
    pub remote_handoffs: u64,
    /// Handoff chains folded into this profile: one per event stream that
    /// acquired this lock at least once. A chain's first acquisition is
    /// not a handover, so the bookkeeping identity — which survives
    /// merging, unlike the per-machine `+ 1` form — is
    /// `local_handoffs + remote_handoffs + chains == acquires`.
    pub chains: u64,
    /// Acquisitions per node (index = node id; grown on demand).
    pub node_acquires: Vec<u64>,
    /// Acquisitions per CPU (index = cpu id; grown on demand). A zero for
    /// a contending CPU is the starvation tell: a lock can post a perfect
    /// remote-handoff rate simply by never granting some CPUs at all.
    pub cpu_acquires: Vec<u64>,
    /// Node-residency run lengths: each sample is how many consecutive
    /// acquisitions stayed on one node before the lock migrated. Longer
    /// runs mean better handoff locality.
    pub residency_runs: Histogram,
    /// Acquire-window lengths in cycles (first acquire step to grant).
    pub wait: Histogram,
    /// Acquire-window cycles not accounted to a backoff sleep: active
    /// spinning plus coherence stalls (the residual phase).
    pub spin_cycles: u64,
    /// Acquire windows whose recorded backoff exceeded the window length,
    /// forcing the spin residual to clamp at zero. Always zero for the
    /// in-repo lock state machines (every backoff sleep lies inside the
    /// window that recorded it); a nonzero count means a lock
    /// implementation is emitting backoff events outside its acquire
    /// window — an accounting bug this field surfaces instead of hiding.
    pub spin_clamped: u64,
    /// Acquire-window cycles slept in [`BackoffClass::Local`] backoff.
    pub backoff_local_cycles: u64,
    /// Acquire-window cycles slept in [`BackoffClass::Remote`] backoff.
    pub backoff_remote_cycles: u64,
    /// Node-local coherence transactions issued inside acquire windows.
    pub coh_local: u64,
    /// Global (interconnect-crossing) coherence transactions issued inside
    /// acquire windows.
    pub coh_global: u64,
    /// Completed hold intervals observed (acquire → release start).
    pub holds: u64,
    /// Total cycles the lock was held across those intervals.
    pub hold_cycles: u64,
    /// Node currently holding the handoff chain (streaming state; cleared
    /// when the profile is finished).
    cur_node: Option<usize>,
    /// Length of the current node-residency run (streaming state).
    cur_run: u64,
}

impl LockProfile {
    /// Remote handoffs per handover opportunity — the paper's node handoff
    /// rate, matching [`crate::LockTrace::handoff_ratio`]. `None` before
    /// the second acquisition.
    pub fn remote_handoff_rate(&self) -> Option<f64> {
        if self.acquires < 2 {
            None
        } else {
            Some(self.remote_handoffs as f64 / (self.acquires - 1) as f64)
        }
    }

    /// Fraction of handovers that stayed node-local (1 − remote rate).
    pub fn handoff_locality(&self) -> Option<f64> {
        self.remote_handoff_rate().map(|r| 1.0 - r)
    }

    /// Mean node-residency run length, or `None` before any run completed.
    pub fn mean_residency_run(&self) -> Option<f64> {
        self.residency_runs.mean()
    }

    /// Total acquire-window cycles (the denominator of the phase split).
    pub fn wait_cycles(&self) -> u64 {
        self.wait.sum()
    }

    /// The acquire-latency phase split as fractions of the total wait:
    /// `(spin, backoff_local, backoff_remote)`. `None` when no wait time
    /// was observed.
    pub fn phase_fractions(&self) -> Option<(f64, f64, f64)> {
        let total = self.wait_cycles();
        if total == 0 {
            return None;
        }
        let t = total as f64;
        Some((
            self.spin_cycles as f64 / t,
            self.backoff_local_cycles as f64 / t,
            self.backoff_remote_cycles as f64 / t,
        ))
    }

    /// The phase that dominates the acquire critical path: `"spin"`,
    /// `"backoff_local"` or `"backoff_remote"` (`"idle"` with no waits).
    pub fn critical_path(&self) -> &'static str {
        let phases = [
            (self.spin_cycles, "spin"),
            (self.backoff_local_cycles, "backoff_local"),
            (self.backoff_remote_cycles, "backoff_remote"),
        ];
        if self.wait_cycles() == 0 {
            return "idle";
        }
        phases
            .iter()
            .max_by_key(|(cycles, _)| *cycles)
            .map(|&(_, name)| name)
            .expect("phases is non-empty")
    }

    /// How many of the `cpus` contending CPUs never acquired at all —
    /// the starved-CPU count the `handoff` artifact prints next to the
    /// remote-handoff rate, so a "0.00 remote rate" earned by starving
    /// whole CPUs is visibly different from one earned by locality.
    pub fn starved_cpus(&self, cpus: usize) -> usize {
        (0..cpus)
            .filter(|&c| self.cpu_acquires.get(c).copied().unwrap_or(0) == 0)
            .count()
    }

    /// Mean hold time in cycles, or `None` before any release.
    pub fn mean_hold(&self) -> Option<f64> {
        if self.holds == 0 {
            None
        } else {
            Some(self.hold_cycles as f64 / self.holds as f64)
        }
    }

    /// Adds every count of `other` into `self` (commutative).
    pub fn merge(&mut self, other: &LockProfile) {
        debug_assert!(
            other.cur_node.is_none() && other.cur_run == 0,
            "merge a finished profile (open residency runs flushed)"
        );
        self.acquires += other.acquires;
        self.local_handoffs += other.local_handoffs;
        self.remote_handoffs += other.remote_handoffs;
        self.chains += other.chains;
        if self.node_acquires.len() < other.node_acquires.len() {
            self.node_acquires.resize(other.node_acquires.len(), 0);
        }
        for (a, b) in self.node_acquires.iter_mut().zip(&other.node_acquires) {
            *a += b;
        }
        if self.cpu_acquires.len() < other.cpu_acquires.len() {
            self.cpu_acquires.resize(other.cpu_acquires.len(), 0);
        }
        for (a, b) in self.cpu_acquires.iter_mut().zip(&other.cpu_acquires) {
            *a += b;
        }
        self.residency_runs.merge(&other.residency_runs);
        self.wait.merge(&other.wait);
        self.spin_cycles += other.spin_cycles;
        self.spin_clamped += other.spin_clamped;
        self.backoff_local_cycles += other.backoff_local_cycles;
        self.backoff_remote_cycles += other.backoff_remote_cycles;
        self.coh_local += other.coh_local;
        self.coh_global += other.coh_global;
        self.holds += other.holds;
        self.hold_cycles += other.hold_cycles;
    }

    fn on_acquire(&mut self, cpu: usize, node: NodeId) {
        self.acquires += 1;
        if self.node_acquires.len() <= node.index() {
            self.node_acquires.resize(node.index() + 1, 0);
        }
        self.node_acquires[node.index()] += 1;
        if self.cpu_acquires.len() <= cpu {
            self.cpu_acquires.resize(cpu + 1, 0);
        }
        self.cpu_acquires[cpu] += 1;
        match self.cur_node {
            Some(prev) if prev == node.index() => {
                self.local_handoffs += 1;
                self.cur_run += 1;
            }
            Some(_) => {
                self.remote_handoffs += 1;
                self.residency_runs.record(self.cur_run);
                self.cur_run = 1;
            }
            None => {
                self.chains += 1;
                self.cur_run = 1;
            }
        }
        self.cur_node = Some(node.index());
    }

    /// Flushes the open node-residency run (end of stream).
    fn flush(&mut self) {
        if self.cur_run > 0 {
            self.residency_runs.record(self.cur_run);
        }
        self.cur_run = 0;
        self.cur_node = None;
    }
}

/// A machine-level (or merged) streaming profile: per-lock analyses plus
/// machine-wide episode counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Per-lock profiles (index = workload-chosen dense lock index).
    pub locks: Vec<LockProfile>,
    /// HBO_GT_SD `GET_ANGRY` episodes observed.
    pub anger_episodes: u64,
    /// HBO_GT throttled-spin announcements observed.
    pub throttle_spins: u64,
    /// Preemption windows observed.
    pub preemptions: u64,
    /// Injected thread migrations observed.
    pub migrations: u64,
    /// MESI shared→exclusive upgrade invalidations observed.
    pub upgrades: u64,
    /// Set-associative cache evictions observed.
    pub evictions: u64,
    /// Dragon update broadcasts observed.
    pub update_broadcasts: u64,
    /// Total [`SimEvent`]s folded into this profile.
    pub events: u64,
}

impl Profile {
    /// Adds every count of `other` into `self` (commutative, associative —
    /// global aggregation relies on this, see the module docs).
    pub fn merge(&mut self, other: &Profile) {
        if self.locks.len() < other.locks.len() {
            self.locks.resize_with(other.locks.len(), LockProfile::default);
        }
        for (a, b) in self.locks.iter_mut().zip(&other.locks) {
            a.merge(b);
        }
        self.anger_episodes += other.anger_episodes;
        self.throttle_spins += other.throttle_spins;
        self.preemptions += other.preemptions;
        self.migrations += other.migrations;
        self.upgrades += other.upgrades;
        self.evictions += other.evictions;
        self.update_broadcasts += other.update_broadcasts;
        self.events += other.events;
    }

    /// Approximate heap + inline footprint in bytes. The point of the
    /// streaming design: this is `O(locks × nodes)` with two fixed-size
    /// histograms per lock — independent of `self.events`, which counts
    /// how many events were folded in.
    pub fn approx_bytes(&self) -> usize {
        let per_lock: usize = self
            .locks
            .iter()
            .map(|l| {
                std::mem::size_of::<LockProfile>()
                    + (l.node_acquires.len() + l.cpu_acquires.len()) * 8
            })
            .sum();
        std::mem::size_of::<Profile>() + per_lock
    }
}

/// Per-CPU streaming state: the open acquire window and held locks.
#[derive(Debug, Default)]
struct CpuState {
    /// Open acquire window, set by `AcquireStart`, consumed by the
    /// matching `LockAcquire`.
    window: Option<Window>,
    /// Locks this CPU currently holds, with acquisition times. A plain
    /// vec: programs hold at most a handful of locks at once.
    held: Vec<(usize, u64)>,
}

#[derive(Debug)]
struct Window {
    lock: usize,
    start: u64,
    backoff_local: u64,
    backoff_remote: u64,
    coh_local: u64,
    coh_global: u64,
}

/// The incremental analyzer: folds one event at a time into a [`Profile`].
#[derive(Debug, Default)]
struct ProfCore {
    profile: Profile,
    cpus: Vec<CpuState>,
}

impl ProfCore {
    fn cpu(&mut self, i: usize) -> &mut CpuState {
        if self.cpus.len() <= i {
            self.cpus.resize_with(i + 1, CpuState::default);
        }
        &mut self.cpus[i]
    }

    fn lock(&mut self, i: usize) -> &mut LockProfile {
        if self.profile.locks.len() <= i {
            self.profile.locks.resize_with(i + 1, LockProfile::default);
        }
        &mut self.profile.locks[i]
    }

    #[inline]
    fn on_event(&mut self, at: u64, event: SimEvent) {
        self.profile.events += 1;
        match event {
            SimEvent::AcquireStart { lock, cpu, .. } => {
                self.cpu(cpu.index()).window = Some(Window {
                    lock,
                    start: at,
                    backoff_local: 0,
                    backoff_remote: 0,
                    coh_local: 0,
                    coh_global: 0,
                });
            }
            // The two highest-volume events. `get_mut`, not `cpu()`: a CPU
            // without state yet cannot have an open window (`AcquireStart`
            // creates the state), so the grow-on-miss branch would only
            // cost — never fire — here.
            SimEvent::BackoffSleep { cpu, cycles, class, .. } => {
                if let Some(w) = self.cpus.get_mut(cpu.index()).and_then(|s| s.window.as_mut()) {
                    match class {
                        BackoffClass::Local => w.backoff_local += cycles,
                        BackoffClass::Remote => w.backoff_remote += cycles,
                    }
                }
            }
            SimEvent::CoherenceTxn { cpu, global, .. } => {
                // Only transactions inside an acquire window count toward
                // the acquire phase split; critical-section and private
                // traffic is not acquire latency.
                if let Some(w) = self.cpus.get_mut(cpu.index()).and_then(|s| s.window.as_mut()) {
                    if global {
                        w.coh_global += 1;
                    } else {
                        w.coh_local += 1;
                    }
                }
            }
            SimEvent::LockAcquire { lock, cpu, node } => {
                let state = self.cpu(cpu.index());
                let window = match state.window.take() {
                    Some(w) if w.lock == lock => Some(w),
                    other => {
                        // Window for a different lock: put it back (a
                        // nested workload may interleave lock indices).
                        state.window = other;
                        None
                    }
                };
                state.held.push((lock, at));
                let lp = self.lock(lock);
                lp.on_acquire(cpu.index(), node);
                if let Some(w) = window {
                    let wait = at - w.start;
                    let backoff = w.backoff_local + w.backoff_remote;
                    lp.wait.record(wait);
                    // The residual saturates at zero; count the windows
                    // where it actually clamped (recorded backoff longer
                    // than the window) rather than silently absorbing them.
                    if backoff > wait {
                        lp.spin_clamped += 1;
                    }
                    lp.spin_cycles += wait.saturating_sub(backoff);
                    lp.backoff_local_cycles += w.backoff_local;
                    lp.backoff_remote_cycles += w.backoff_remote;
                    lp.coh_local += w.coh_local;
                    lp.coh_global += w.coh_global;
                }
            }
            SimEvent::LockRelease { lock, cpu, .. } => {
                let state = self.cpu(cpu.index());
                if let Some(pos) = state.held.iter().rposition(|&(l, _)| l == lock) {
                    let (_, acquired_at) = state.held.swap_remove(pos);
                    let lp = self.lock(lock);
                    lp.holds += 1;
                    lp.hold_cycles += at - acquired_at;
                }
            }
            SimEvent::GotAngry { .. } => self.profile.anger_episodes += 1,
            SimEvent::ThrottleSpin { .. } => self.profile.throttle_spins += 1,
            SimEvent::Preempt { .. } => self.profile.preemptions += 1,
            SimEvent::Migrate { .. } => self.profile.migrations += 1,
            SimEvent::Upgrade { .. } => self.profile.upgrades += 1,
            SimEvent::Eviction { .. } => self.profile.evictions += 1,
            SimEvent::UpdateBroadcast { .. } => self.profile.update_broadcasts += 1,
        }
    }

    /// Ends the stream: flushes open residency runs and returns the
    /// profile, resetting the analyzer.
    fn finish(&mut self) -> Profile {
        for lock in &mut self.profile.locks {
            lock.flush();
        }
        self.cpus.clear();
        std::mem::take(&mut self.profile)
    }
}

/// A cloneable streaming-profiler handle, used like [`crate::EventLog`]:
/// clone it, box one clone into the machine with
/// [`crate::Machine::set_trace_sink`], and call
/// [`ProfileCollector::finish`] on the other clone after the run.
///
/// ```
/// use nucasim::{Machine, MachineConfig, ProfileCollector};
///
/// let prof = ProfileCollector::new();
/// let mut machine = Machine::new(MachineConfig::wildfire(2, 2));
/// machine.set_trace_sink(Box::new(prof.clone()));
/// // ... add programs, run ...
/// let profile = prof.finish();
/// assert_eq!(profile.events, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProfileCollector {
    inner: Arc<Mutex<ProfCore>>,
}

impl ProfileCollector {
    /// A fresh collector.
    pub fn new() -> ProfileCollector {
        ProfileCollector::default()
    }

    /// Ends the stream and moves the accumulated [`Profile`] out (open
    /// node-residency runs are flushed), leaving the collector empty.
    pub fn finish(&self) -> Profile {
        self.inner.lock().expect("profile collector poisoned").finish()
    }
}

impl TraceSink for ProfileCollector {
    fn record(&mut self, at: u64, event: SimEvent) {
        self.inner
            .lock()
            .expect("profile collector poisoned")
            .on_event(at, event);
    }
}

/// Whether [`enable_global_profiling`] has been called.
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);

/// Label-keyed merged profiles from every machine run since global
/// profiling was enabled.
static GLOBAL_PROFILES: Mutex<BTreeMap<String, Profile>> = Mutex::new(BTreeMap::new());

/// Label machines merge under when no profile label was set.
pub const UNLABELED: &str = "_other";

/// Turns on process-wide streaming profiling: every [`crate::Machine`]
/// subsequently run without an explicit trace sink installs a profiler
/// whose results merge into the global table under the machine's
/// [`crate::Machine::set_profile_label`] (or [`UNLABELED`]). Profiling
/// only observes — simulation results are bit-identical either way.
/// Idempotent; there is deliberately no way to turn it off mid-process
/// (runs would otherwise be profiled or not depending on timing).
pub fn enable_global_profiling() {
    GLOBAL_ENABLED.store(true, Ordering::Relaxed);
}

/// Whether global profiling is on.
pub fn global_profiling_enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed)
}

/// Moves the globally-aggregated profiles out, sorted by label. Merging
/// is commutative, so the result is deterministic no matter how many
/// threads the contributing runs were spread over.
pub fn take_global_profiles() -> Vec<(String, Profile)> {
    let mut table = GLOBAL_PROFILES.lock().expect("global profiles poisoned");
    std::mem::take(&mut *table).into_iter().collect()
}

/// The sink the engine installs on globally-profiled machines: a plain
/// analyzer that merges into the global table when the machine (and with
/// it the boxed sink) is dropped.
#[derive(Debug)]
struct GlobalSink {
    core: ProfCore,
    label: String,
}

impl TraceSink for GlobalSink {
    #[inline]
    fn record(&mut self, at: u64, event: SimEvent) {
        self.core.on_event(at, event);
    }
}

impl Drop for GlobalSink {
    fn drop(&mut self) {
        let profile = self.core.finish();
        if profile.events == 0 {
            return;
        }
        let mut table = GLOBAL_PROFILES.lock().expect("global profiles poisoned");
        table
            .entry(std::mem::take(&mut self.label))
            .or_default()
            .merge(&profile);
    }
}

/// Builds the engine-side global sink (see [`crate::Machine::run`]).
pub(crate) fn global_sink(label: Option<&str>) -> Box<dyn TraceSink> {
    Box::new(GlobalSink {
        core: ProfCore::default(),
        label: label.unwrap_or(UNLABELED).to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuca_topology::CpuId;

    fn acquire(lock: usize, cpu: usize, node: usize) -> SimEvent {
        SimEvent::LockAcquire {
            lock,
            cpu: CpuId(cpu),
            node: NodeId(node),
        }
    }

    fn start(lock: usize, cpu: usize, node: usize) -> SimEvent {
        SimEvent::AcquireStart {
            lock,
            cpu: CpuId(cpu),
            node: NodeId(node),
        }
    }

    #[test]
    fn handoff_chain_splits_local_and_remote() {
        let prof = ProfileCollector::new();
        let mut sink: Box<dyn TraceSink> = Box::new(prof.clone());
        // Nodes: 0, 0, 1, 1, 1, 0 → handoffs: local, remote, local, local,
        // remote; runs: 2, 3, then an open run of 1 flushed at finish.
        for (i, node) in [0usize, 0, 1, 1, 1, 0].iter().enumerate() {
            sink.record(i as u64 * 10, acquire(0, *node * 2, *node));
        }
        let p = prof.finish();
        let lock = &p.locks[0];
        assert_eq!(lock.acquires, 6);
        assert_eq!(lock.local_handoffs, 3);
        assert_eq!(lock.remote_handoffs, 2);
        assert_eq!(lock.remote_handoff_rate(), Some(2.0 / 5.0));
        assert_eq!(lock.handoff_locality(), Some(1.0 - 2.0 / 5.0));
        assert_eq!(lock.node_acquires, vec![3, 3]);
        // The two acquiring CPUs were 0 and 2; CPUs 1 and 3 never won.
        assert_eq!(lock.cpu_acquires, vec![3, 0, 3]);
        assert_eq!(lock.starved_cpus(4), 2);
        assert_eq!(lock.starved_cpus(2), 1);
        // Runs 2, 3 and the flushed tail run 1.
        assert_eq!(lock.residency_runs.count(), 3);
        assert_eq!(lock.residency_runs.sum(), 6);
        assert_eq!(lock.mean_residency_run(), Some(2.0));
    }

    #[test]
    fn acquire_window_decomposes_into_phases() {
        let prof = ProfileCollector::new();
        let mut sink: Box<dyn TraceSink> = Box::new(prof.clone());
        sink.record(100, start(0, 1, 0));
        sink.record(
            110,
            SimEvent::BackoffSleep {
                cpu: CpuId(1),
                node: NodeId(0),
                cycles: 40,
                class: BackoffClass::Local,
            },
        );
        sink.record(
            160,
            SimEvent::BackoffSleep {
                cpu: CpuId(1),
                node: NodeId(0),
                cycles: 100,
                class: BackoffClass::Remote,
            },
        );
        sink.record(
            270,
            SimEvent::CoherenceTxn {
                cpu: CpuId(1),
                node: NodeId(0),
                home: NodeId(1),
                global: true,
            },
        );
        sink.record(300, acquire(0, 1, 0));
        sink.record(350, SimEvent::LockRelease {
            lock: 0,
            cpu: CpuId(1),
            node: NodeId(0),
        });
        let p = prof.finish();
        let lock = &p.locks[0];
        // Window = 200 cycles: 40 local backoff + 100 remote backoff +
        // 60 residual spin.
        assert_eq!(lock.wait_cycles(), 200);
        assert_eq!(lock.backoff_local_cycles, 40);
        assert_eq!(lock.backoff_remote_cycles, 100);
        assert_eq!(lock.spin_cycles, 60);
        assert_eq!(lock.spin_clamped, 0, "well-formed window never clamps");
        assert_eq!(lock.coh_global, 1);
        assert_eq!(lock.coh_local, 0);
        assert_eq!(lock.critical_path(), "backoff_remote");
        let (spin, bl, br) = lock.phase_fractions().unwrap();
        assert!((spin - 0.3).abs() < 1e-12);
        assert!((bl - 0.2).abs() < 1e-12);
        assert!((br - 0.5).abs() < 1e-12);
        // Hold accounting: 300 → 350.
        assert_eq!(lock.holds, 1);
        assert_eq!(lock.hold_cycles, 50);
        assert_eq!(lock.mean_hold(), Some(50.0));
    }

    #[test]
    fn overlong_backoff_is_counted_not_hidden() {
        // A lock bug that records more backoff than the window is long
        // used to vanish into the saturating subtraction; now the clamp
        // is counted per window.
        let prof = ProfileCollector::new();
        let mut sink: Box<dyn TraceSink> = Box::new(prof.clone());
        sink.record(0, start(0, 0, 0));
        sink.record(
            10,
            SimEvent::BackoffSleep {
                cpu: CpuId(0),
                node: NodeId(0),
                cycles: 500,
                class: BackoffClass::Remote,
            },
        );
        sink.record(100, acquire(0, 0, 0));
        // A second, well-formed window on the same lock.
        sink.record(200, start(0, 0, 0));
        sink.record(250, acquire(0, 0, 0));
        let p = prof.finish();
        let lock = &p.locks[0];
        assert_eq!(lock.spin_clamped, 1, "exactly the overlong window");
        assert_eq!(lock.backoff_remote_cycles, 500, "backoff still recorded");
        assert_eq!(lock.spin_cycles, 50, "only the clean window's residual");

        // The counter survives a merge.
        let mut merged = LockProfile::default();
        merged.merge(lock);
        merged.merge(lock);
        assert_eq!(merged.spin_clamped, 2);
    }

    #[test]
    fn coherence_outside_windows_is_not_acquire_latency() {
        let prof = ProfileCollector::new();
        let mut sink: Box<dyn TraceSink> = Box::new(prof.clone());
        sink.record(
            5,
            SimEvent::CoherenceTxn {
                cpu: CpuId(0),
                node: NodeId(0),
                home: NodeId(0),
                global: false,
            },
        );
        sink.record(10, start(0, 0, 0));
        sink.record(20, acquire(0, 0, 0));
        let p = prof.finish();
        assert_eq!(p.locks[0].coh_local, 0);
        assert_eq!(p.locks[0].wait_cycles(), 10);
        assert_eq!(p.events, 3);
    }

    #[test]
    fn episode_counters_accumulate() {
        let prof = ProfileCollector::new();
        let mut sink: Box<dyn TraceSink> = Box::new(prof.clone());
        sink.record(1, SimEvent::GotAngry { cpu: CpuId(0), node: NodeId(0) });
        sink.record(2, SimEvent::ThrottleSpin { cpu: CpuId(1), node: NodeId(0) });
        sink.record(3, SimEvent::Preempt { cpu: CpuId(2), cycles: 99 });
        sink.record(
            4,
            SimEvent::Migrate {
                cpu: CpuId(3),
                from: NodeId(0),
                to: NodeId(1),
            },
        );
        let p = prof.finish();
        assert_eq!(
            (p.anger_episodes, p.throttle_spins, p.preemptions, p.migrations),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn merge_is_commutative() {
        let mk = |nodes: &[usize]| {
            let prof = ProfileCollector::new();
            let mut sink: Box<dyn TraceSink> = Box::new(prof.clone());
            for (i, &n) in nodes.iter().enumerate() {
                sink.record(i as u64, acquire(0, n, n));
            }
            prof.finish()
        };
        let a = mk(&[0, 0, 1]);
        let b = mk(&[1, 0, 0, 1]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.locks[0].acquires, 7);
    }

    #[test]
    fn footprint_is_independent_of_event_count() {
        let prof = ProfileCollector::new();
        let mut sink: Box<dyn TraceSink> = Box::new(prof.clone());
        for i in 0..100_000u64 {
            let node = (i % 2) as usize;
            sink.record(i * 3, start(0, node, node));
            sink.record(i * 3 + 1, acquire(0, node, node));
            sink.record(
                i * 3 + 2,
                SimEvent::LockRelease {
                    lock: 0,
                    cpu: CpuId(node),
                    node: NodeId(node),
                },
            );
        }
        let p = prof.finish();
        assert_eq!(p.events, 300_000);
        assert!(
            p.approx_bytes() < 4096,
            "streaming profile grew with events: {} bytes",
            p.approx_bytes()
        );
    }

    #[test]
    fn global_profiling_aggregates_by_label() {
        use crate::{Command, CpuCtx, Machine, MachineConfig, Program};

        struct OneAcquire(bool);
        impl Program for OneAcquire {
            fn resume(&mut self, ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                if self.0 {
                    return Command::Done;
                }
                self.0 = true;
                ctx.trace_acquire_start(0);
                ctx.record_acquire(0);
                Command::Delay(1)
            }
        }

        enable_global_profiling();
        assert!(global_profiling_enabled());
        let label = "test:profile-global";
        let mut m = Machine::new(MachineConfig::wildfire(1, 2));
        m.set_profile_label(label);
        m.add_program(nuca_topology::CpuId(0), Box::new(OneAcquire(false)));
        let status = m.run(1_000);
        assert!(status.finished_all);
        drop(m.into_report());
        let profiles = take_global_profiles();
        let (_, p) = profiles
            .iter()
            .find(|(l, _)| l == label)
            .expect("labeled profile registered");
        assert_eq!(p.locks[0].acquires, 1);
        // Other concurrently-running tests may have contributed profiles
        // under other labels; sorted order is all we assert about them.
        let labels: Vec<&String> = profiles.iter().map(|(l, _)| l).collect();
        let mut sorted = labels.clone();
        sorted.sort();
        assert_eq!(labels, sorted);
    }
}

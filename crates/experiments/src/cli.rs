//! Small, testable pieces of the command-line surface.
//!
//! The binary in `main.rs` is all I/O; value parsing lives here so the
//! rejection behavior (a bad `--jobs` is a usage error, exactly like an
//! unknown flag) is covered by unit tests.

/// Parses the operand of `--jobs`.
///
/// # Errors
///
/// Returns a message naming the offending value when the operand is
/// missing, not a number, negative, or zero — zero used to be silently
/// conflated with "unbounded" by callers that clamped, and a negative
/// value parsed as a huge unsigned one; both are plain usage errors now.
pub fn parse_jobs(value: Option<&str>) -> Result<usize, String> {
    let Some(raw) = value else {
        return Err("--jobs requires a positive integer".to_owned());
    };
    match raw.parse::<i128>() {
        Ok(n) if n >= 1 => usize::try_from(n)
            .map_err(|_| format!("--jobs {raw} exceeds this platform's job limit")),
        Ok(_) => Err(format!("--jobs must be a positive integer (got {raw})")),
        Err(_) => Err(format!("--jobs must be a positive integer (got `{raw}`)")),
    }
}

/// Parses the operand of `--sched`.
///
/// # Errors
///
/// Returns a usage message when the operand is missing or names no
/// scheduler (the valid names are `wheel`, `heap` and `check`).
pub fn parse_sched(value: Option<&str>) -> Result<nucasim::SchedKind, String> {
    let Some(raw) = value else {
        return Err("--sched requires a scheduler name (wheel, heap or check)".to_owned());
    };
    raw.parse::<nucasim::SchedKind>().map_err(|e| format!("--sched: {e}"))
}

/// Parses the operand of `--shards` (lockserver shard-lock count).
///
/// # Errors
///
/// Returns a usage message when the operand is missing, not a number, or
/// not positive — a zero-shard lock table has nowhere to hash keys.
pub fn parse_shards(value: Option<&str>) -> Result<usize, String> {
    let Some(raw) = value else {
        return Err("--shards requires a positive integer".to_owned());
    };
    match raw.parse::<i128>() {
        Ok(n) if n >= 1 => usize::try_from(n)
            .map_err(|_| format!("--shards {raw} exceeds this platform's limit")),
        Ok(_) => Err(format!("--shards must be a positive integer (got {raw})")),
        Err(_) => Err(format!("--shards must be a positive integer (got `{raw}`)")),
    }
}

/// Parses the operand of `--zipf` (lockserver key-skew exponent θ).
///
/// # Errors
///
/// Returns a usage message when the operand is missing, not a number, or
/// outside the open interval `(0, 1)` the constant-time Zipfian sampler
/// is defined on.
pub fn parse_zipf(value: Option<&str>) -> Result<f64, String> {
    let Some(raw) = value else {
        return Err("--zipf requires an exponent in (0, 1), e.g. 0.99".to_owned());
    };
    match raw.parse::<f64>() {
        Ok(theta) if theta > 0.0 && theta < 1.0 => Ok(theta),
        Ok(_) => Err(format!("--zipf must lie in (0, 1), got {raw}")),
        Err(_) => Err(format!("--zipf must be a number in (0, 1) (got `{raw}`)")),
    }
}

/// Parses the operand of `--kinds`: a comma-separated subset of the
/// registered lock names (case-insensitive), applied by
/// [`crate::kinds::select`] to the kind-sweeping artifacts.
///
/// # Errors
///
/// Returns a usage message — with the full catalog menu — when the
/// operand is missing, empty, or names an unregistered lock. An unknown
/// name is a hard error, not a skip: silently dropping a typo would run a
/// sweep that looks complete but is not.
pub fn parse_kinds(value: Option<&str>) -> Result<Vec<hbo_locks::LockKind>, String> {
    let menu = hbo_locks::LockCatalog::menu();
    let Some(raw) = value else {
        return Err(format!(
            "--kinds requires a comma-separated subset of: {menu}"
        ));
    };
    let mut kinds = Vec::new();
    for name in raw.split(',') {
        let name = name.trim();
        if name.is_empty() {
            return Err(format!(
                "--kinds has an empty entry in `{raw}`; expected names from: {menu}"
            ));
        }
        match hbo_locks::LockCatalog::parse(name) {
            Ok(kind) => {
                if !kinds.contains(&kind) {
                    kinds.push(kind);
                }
            }
            Err(_) => {
                return Err(format!(
                    "--kinds: unknown lock `{name}`; registered kinds: {menu}"
                ))
            }
        }
    }
    if kinds.is_empty() {
        return Err(format!(
            "--kinds selected nothing; expected names from: {menu}"
        ));
    }
    Ok(kinds)
}

/// Parses the operand of `--protocol` (the coherence model every machine
/// in the run simulates — see [`nucasim::ProtocolKind`]).
///
/// # Errors
///
/// Returns a usage message when the operand is missing or names no
/// protocol (the valid names are `flat`, `mesi` and `dragon`).
pub fn parse_protocol(value: Option<&str>) -> Result<nucasim::ProtocolKind, String> {
    let Some(raw) = value else {
        return Err("--protocol requires a protocol name (flat, mesi or dragon)".to_owned());
    };
    raw.parse::<nucasim::ProtocolKind>().map_err(|e| format!("--protocol: {e}"))
}

/// Parses the operand of `--binding` (how microbenchmark threads are
/// bound to CPUs — see [`nuca_workloads::modern::BindingKind`]).
///
/// # Errors
///
/// Returns a usage message when the operand is missing or names no
/// binding (the valid names are `rr` and `clustered`).
pub fn parse_binding(value: Option<&str>) -> Result<nuca_workloads::modern::BindingKind, String> {
    let Some(raw) = value else {
        return Err("--binding requires a binding name (rr or clustered)".to_owned());
    };
    raw.parse::<nuca_workloads::modern::BindingKind>()
        .map_err(|e| format!("--binding: {e}"))
}

/// Parses the operand of `--twa-slots` (TWA waiting-array length).
///
/// # Errors
///
/// Returns a usage message when the operand is missing, not a number, or
/// not positive — a zero-slot waiting array has nowhere to park waiters.
pub fn parse_twa_slots(value: Option<&str>) -> Result<usize, String> {
    let Some(raw) = value else {
        return Err("--twa-slots requires a positive integer".to_owned());
    };
    match raw.parse::<i128>() {
        Ok(n) if n >= 1 => usize::try_from(n)
            .map_err(|_| format!("--twa-slots {raw} exceeds this platform's limit")),
        Ok(_) => Err(format!("--twa-slots must be a positive integer (got {raw})")),
        Err(_) => Err(format!("--twa-slots must be a positive integer (got `{raw}`)")),
    }
}

/// Parses the operand of `--twa-hash` (TWA ticket→slot mapping).
///
/// # Errors
///
/// Returns a usage message when the operand is missing or names no hash
/// (the valid names are `mod` and `stride`).
pub fn parse_twa_hash(value: Option<&str>) -> Result<nucasim_locks::TwaHash, String> {
    let Some(raw) = value else {
        return Err("--twa-hash requires a hash name (mod or stride)".to_owned());
    };
    raw.parse::<nucasim_locks::TwaHash>().map_err(|e| format!("--twa-hash: {e}"))
}

/// Parses the operand of `--arrival-gap` (lockserver mean cycles between
/// request batches).
///
/// # Errors
///
/// Returns a usage message when the operand is missing, not a number, or
/// not positive — a zero mean gap would collapse the whole open-loop
/// schedule onto cycle zero.
pub fn parse_arrival_gap(value: Option<&str>) -> Result<u64, String> {
    let Some(raw) = value else {
        return Err("--arrival-gap requires a positive cycle count".to_owned());
    };
    match raw.parse::<i128>() {
        Ok(n) if n >= 1 => u64::try_from(n)
            .map_err(|_| format!("--arrival-gap {raw} exceeds the cycle range")),
        Ok(_) => Err(format!("--arrival-gap must be a positive cycle count (got {raw})")),
        Err(_) => Err(format!("--arrival-gap must be a positive cycle count (got `{raw}`)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_positive_integers() {
        assert_eq!(parse_jobs(Some("1")), Ok(1));
        assert_eq!(parse_jobs(Some("16")), Ok(16));
    }

    #[test]
    fn rejects_zero() {
        let err = parse_jobs(Some("0")).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        assert!(err.contains('0'), "{err}");
    }

    #[test]
    fn rejects_negative() {
        let err = parse_jobs(Some("-2")).unwrap_err();
        assert!(err.contains("-2"), "{err}");
    }

    #[test]
    fn rejects_non_numeric() {
        for bad in ["four", "", "4x", "1.5"] {
            let err = parse_jobs(Some(bad)).unwrap_err();
            assert!(err.contains("positive integer"), "{bad}: {err}");
        }
    }

    #[test]
    fn rejects_missing_operand() {
        assert!(parse_jobs(None).is_err());
    }

    #[test]
    fn accepts_every_scheduler_name() {
        for kind in nucasim::SchedKind::ALL {
            assert_eq!(parse_sched(Some(kind.name())), Ok(kind));
        }
    }

    #[test]
    fn rejects_unknown_scheduler() {
        let err = parse_sched(Some("splay")).unwrap_err();
        assert!(err.contains("splay"), "{err}");
        assert!(err.contains("wheel"), "{err}");
    }

    #[test]
    fn rejects_missing_scheduler_operand() {
        let err = parse_sched(None).unwrap_err();
        assert!(err.contains("--sched"), "{err}");
    }

    #[test]
    fn shards_accepts_positive_and_rejects_the_rest() {
        assert_eq!(parse_shards(Some("16")), Ok(16));
        for bad in ["0", "-3", "many", ""] {
            let err = parse_shards(Some(bad)).unwrap_err();
            assert!(err.contains("--shards"), "{bad}: {err}");
        }
        assert!(parse_shards(None).is_err());
    }

    #[test]
    fn zipf_accepts_open_unit_interval_only() {
        assert_eq!(parse_zipf(Some("0.99")), Ok(0.99));
        assert_eq!(parse_zipf(Some("0.5")), Ok(0.5));
        for bad in ["0", "0.0", "1", "1.0", "1.5", "-0.2", "NaN", "hot", ""] {
            let err = parse_zipf(Some(bad)).unwrap_err();
            assert!(err.contains("--zipf"), "{bad}: {err}");
        }
        assert!(parse_zipf(None).is_err());
    }

    #[test]
    fn kinds_parses_names_dedups_and_keeps_flag_order() {
        use hbo_locks::LockKind;
        assert_eq!(
            parse_kinds(Some("TATAS,MCS,CNA")),
            Ok(vec![LockKind::Tatas, LockKind::Mcs, LockKind::Cna])
        );
        // Case-insensitive, whitespace-tolerant, duplicate-collapsing.
        assert_eq!(
            parse_kinds(Some(" twa , TWA ,recip")),
            Ok(vec![LockKind::Twa, LockKind::Recip])
        );
    }

    #[test]
    fn kinds_rejects_unknown_names_with_the_catalog_menu() {
        let err = parse_kinds(Some("TATAS,QOLB")).unwrap_err();
        assert!(err.contains("QOLB"), "{err}");
        assert!(err.contains("TATAS") && err.contains("RECIP"), "{err}");
        for bad in ["", ",", "MCS,,CLH"] {
            let err = parse_kinds(Some(bad)).unwrap_err();
            assert!(err.contains("--kinds"), "`{bad}`: {err}");
        }
        assert!(parse_kinds(None).is_err());
    }

    #[test]
    fn protocol_accepts_every_name_and_rejects_the_rest() {
        for proto in nucasim::ProtocolKind::ALL {
            assert_eq!(parse_protocol(Some(proto.name())), Ok(proto));
        }
        let err = parse_protocol(Some("splay")).unwrap_err();
        assert!(err.contains("splay"), "{err}");
        assert!(err.contains("mesi"), "{err}");
        assert!(parse_protocol(None).is_err());
    }

    #[test]
    fn binding_accepts_every_name_and_rejects_the_rest() {
        for binding in nuca_workloads::modern::BindingKind::ALL {
            assert_eq!(parse_binding(Some(binding.name())), Ok(binding));
        }
        let err = parse_binding(Some("spread")).unwrap_err();
        assert!(err.contains("spread"), "{err}");
        assert!(err.contains("clustered"), "{err}");
        assert!(parse_binding(None).is_err());
    }

    #[test]
    fn twa_slots_accepts_positive_and_rejects_the_rest() {
        assert_eq!(parse_twa_slots(Some("64")), Ok(64));
        for bad in ["0", "-4", "lots", ""] {
            let err = parse_twa_slots(Some(bad)).unwrap_err();
            assert!(err.contains("--twa-slots"), "{bad}: {err}");
        }
        assert!(parse_twa_slots(None).is_err());
    }

    #[test]
    fn twa_hash_accepts_every_name_and_rejects_the_rest() {
        for hash in nucasim_locks::TwaHash::ALL {
            assert_eq!(parse_twa_hash(Some(hash.name())), Ok(hash));
        }
        let err = parse_twa_hash(Some("xor")).unwrap_err();
        assert!(err.contains("xor"), "{err}");
        assert!(err.contains("stride"), "{err}");
        assert!(parse_twa_hash(None).is_err());
    }

    #[test]
    fn arrival_gap_accepts_positive_cycles_only() {
        assert_eq!(parse_arrival_gap(Some("30000")), Ok(30_000));
        for bad in ["0", "-1", "soon", "2.5", ""] {
            let err = parse_arrival_gap(Some(bad)).unwrap_err();
            assert!(err.contains("--arrival-gap"), "{bad}: {err}");
        }
        assert!(parse_arrival_gap(None).is_err());
    }
}

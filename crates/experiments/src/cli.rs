//! Small, testable pieces of the command-line surface.
//!
//! The binary in `main.rs` is all I/O; value parsing lives here so the
//! rejection behavior (a bad `--jobs` is a usage error, exactly like an
//! unknown flag) is covered by unit tests.

/// Parses the operand of `--jobs`.
///
/// # Errors
///
/// Returns a message naming the offending value when the operand is
/// missing, not a number, negative, or zero — zero used to be silently
/// conflated with "unbounded" by callers that clamped, and a negative
/// value parsed as a huge unsigned one; both are plain usage errors now.
pub fn parse_jobs(value: Option<&str>) -> Result<usize, String> {
    let Some(raw) = value else {
        return Err("--jobs requires a positive integer".to_owned());
    };
    match raw.parse::<i128>() {
        Ok(n) if n >= 1 => usize::try_from(n)
            .map_err(|_| format!("--jobs {raw} exceeds this platform's job limit")),
        Ok(_) => Err(format!("--jobs must be a positive integer (got {raw})")),
        Err(_) => Err(format!("--jobs must be a positive integer (got `{raw}`)")),
    }
}

/// Parses the operand of `--sched`.
///
/// # Errors
///
/// Returns a usage message when the operand is missing or names no
/// scheduler (the valid names are `wheel`, `heap` and `check`).
pub fn parse_sched(value: Option<&str>) -> Result<nucasim::SchedKind, String> {
    let Some(raw) = value else {
        return Err("--sched requires a scheduler name (wheel, heap or check)".to_owned());
    };
    raw.parse::<nucasim::SchedKind>().map_err(|e| format!("--sched: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_positive_integers() {
        assert_eq!(parse_jobs(Some("1")), Ok(1));
        assert_eq!(parse_jobs(Some("16")), Ok(16));
    }

    #[test]
    fn rejects_zero() {
        let err = parse_jobs(Some("0")).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        assert!(err.contains('0'), "{err}");
    }

    #[test]
    fn rejects_negative() {
        let err = parse_jobs(Some("-2")).unwrap_err();
        assert!(err.contains("-2"), "{err}");
    }

    #[test]
    fn rejects_non_numeric() {
        for bad in ["four", "", "4x", "1.5"] {
            let err = parse_jobs(Some(bad)).unwrap_err();
            assert!(err.contains("positive integer"), "{bad}: {err}");
        }
    }

    #[test]
    fn rejects_missing_operand() {
        assert!(parse_jobs(None).is_err());
    }

    #[test]
    fn accepts_every_scheduler_name() {
        for kind in nucasim::SchedKind::ALL {
            assert_eq!(parse_sched(Some(kind.name())), Ok(kind));
        }
    }

    #[test]
    fn rejects_unknown_scheduler() {
        let err = parse_sched(Some("splay")).unwrap_err();
        assert!(err.contains("splay"), "{err}");
        assert!(err.contains("wheel"), "{err}");
    }

    #[test]
    fn rejects_missing_scheduler_operand() {
        let err = parse_sched(None).unwrap_err();
        assert!(err.contains("--sched"), "{err}");
    }
}

//! Robustness extension — lock behavior under injected disturbances.
//!
//! Sweeps disturbance intensity × lock kind × processor count on the
//! microbenchmark and reports completion time plus p99 time-to-acquire.
//! The headline is the Table 4 mechanism made systematic: random
//! preemption collapses the FIFO queue locks (a descheduled thread in the
//! middle of an MCS/CLH queue blocks everyone behind it) while the
//! backoff-based locks degrade only in proportion to the stolen cycles.
//! The heaviest level stacks the composable fault layers on top —
//! holder-targeted preemption, thread migration, a slow node, latency
//! jitter ([`nucasim::FaultConfig`]) — and the ordering survives.

use hbo_locks::LockKind;
use nuca_workloads::modern::{run_modern_raw, ModernConfig};
use nucasim::{
    cycles_to_ns, FaultConfig, HolderPreemptConfig, JitterConfig, MachineConfig, MigrationConfig,
    PreemptionConfig, SlowNodeConfig,
};

use crate::report::{fmt_secs, Report};
use crate::{kinds, runner, Scale};

/// One disturbance level of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Disturbance {
    /// Column label.
    pub name: &'static str,
    /// Random per-CPU OS preemption windows, if any.
    pub preemption: Option<PreemptionConfig>,
    /// Composable fault layers applied on top.
    pub faults: FaultConfig,
}

/// The swept disturbance levels, in column order: undisturbed, light
/// daemon activity, heavy multiprogramming, and heavy multiprogramming
/// with every fault layer enabled.
pub fn levels(scale: Scale) -> Vec<Disturbance> {
    // Fast runs are orders of magnitude shorter, so every disturbance
    // must arrive proportionally more often to land at all (the same
    // scaling rule as the Table 4 prototype machine).
    let light = scale.pick(
        PreemptionConfig::solaris_daemons(),
        PreemptionConfig {
            mean_gap: 1_200_000,
            quantum: 100_000,
        },
    );
    let heavy = scale.pick(
        PreemptionConfig::multiprogrammed(),
        PreemptionConfig {
            mean_gap: 120_000,
            quantum: 300_000,
        },
    );
    let faults = FaultConfig::none()
        .with_holder_preempt(HolderPreemptConfig {
            per_mille: 150,
            quantum: scale.pick(2_500_000, 40_000),
        })
        .with_migration(MigrationConfig {
            mean_gap: scale.pick(31_250_000, 150_000),
            pause: scale.pick(250_000, 10_000),
        })
        .with_slow_node(SlowNodeConfig { node: 1, factor: 3 })
        .with_jitter(JitterConfig { max_extra: 80 });
    vec![
        Disturbance {
            name: "none",
            preemption: None,
            faults: FaultConfig::none(),
        },
        Disturbance {
            name: "light",
            preemption: Some(light),
            faults: FaultConfig::none(),
        },
        Disturbance {
            name: "heavy",
            preemption: Some(heavy),
            faults: FaultConfig::none(),
        },
        Disturbance {
            name: "heavy+faults",
            preemption: Some(heavy),
            faults,
        },
    ]
}

/// One measured cell of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Disturbance level label.
    pub level: &'static str,
    /// Simulated completion time in seconds; an unfinished run reports
    /// its cycle budget (a lower bound).
    pub seconds: f64,
    /// Whether the run completed inside the cycle budget.
    pub finished: bool,
    /// 99th-percentile time-to-acquire, nanoseconds.
    pub p99_wait_ns: u64,
    /// Preemption windows applied (OS model plus holder-targeted bursts).
    pub preemptions: u64,
    /// Injected thread migrations applied.
    pub migrations: u64,
}

/// One sweep row: a lock kind at a processor count, measured at every
/// disturbance level.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Algorithm under test.
    pub kind: LockKind,
    /// Contending processors.
    pub cpus: usize,
    /// One cell per [`levels`] entry, in order.
    pub cells: Vec<Cell>,
}

impl SweepRow {
    /// Slowdown of the named level relative to the undisturbed run.
    /// Unfinished runs report their cycle budget, so collapsed locks
    /// yield a lower bound.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not one of the swept level names.
    pub fn degradation(&self, level: &str) -> f64 {
        let base = self.cells[0].seconds;
        let cell = self
            .cells
            .iter()
            .find(|c| c.level == level)
            .unwrap_or_else(|| panic!("no sweep level named `{level}`"));
        cell.seconds / base
    }
}

fn cell_cfg(scale: Scale, kind: LockKind, cpus: usize, d: &Disturbance) -> ModernConfig {
    let mut machine = MachineConfig::wildfire(2, cpus / 2);
    if let Some(p) = d.preemption {
        machine = machine.with_preemption(p);
    }
    if d.faults.is_active() {
        machine = machine.with_faults(d.faults);
    }
    ModernConfig {
        kind,
        machine,
        threads: cpus,
        iterations: scale.pick(200, 30),
        critical_work: 0,
        private_work: scale.pick(20_000, 2_000),
        // Generous but finite: collapsed queue locks print as "> N s",
        // the paper's "> 200 s" rows.
        cycle_limit: scale.pick(12_500_000_000, 3_000_000_000),
        ..ModernConfig::default()
    }
}

/// Runs the full sweep and returns structured rows (one per lock kind ×
/// processor count), each measured at every disturbance level. Leaf runs
/// go through [`runner::run_jobs`], so results are deterministic and
/// byte-identical for any `--jobs` setting.
pub fn sweep(scale: Scale) -> Vec<SweepRow> {
    let cpu_counts: Vec<usize> = scale.pick(vec![8, 28], vec![4, 8]);
    let lv = levels(scale);
    let grid: Vec<(LockKind, usize)> = kinds::selected()
        .iter()
        .flat_map(|&kind| cpu_counts.iter().map(move |&c| (kind, c)))
        .collect();
    let jobs: Vec<_> = grid
        .iter()
        .flat_map(|&(kind, cpus)| lv.iter().map(move |d| (kind, cpus, *d)))
        .map(|(kind, cpus, d)| {
            move || {
                let cfg = cell_cfg(scale, kind, cpus, &d);
                let (report, _) = run_modern_raw(&cfg);
                Cell {
                    level: d.name,
                    seconds: report.seconds(),
                    finished: report.finished_all,
                    p99_wait_ns: cycles_to_ns(
                        report.lock_traces[0].wait.percentile(99.0).unwrap_or(0),
                    ),
                    preemptions: report.preemptions,
                    migrations: report.migrations,
                }
            }
        })
        .collect();
    let cells = runner::run_jobs(jobs);
    grid.iter()
        .zip(cells.chunks(lv.len()))
        .map(|(&(kind, cpus), chunk)| SweepRow {
            kind,
            cpus,
            cells: chunk.to_vec(),
        })
        .collect()
}

/// The `robustness` artifact: completion time per disturbance level plus
/// the undisturbed and heaviest p99 time-to-acquire.
pub fn run(scale: Scale) -> Report {
    let lv = levels(scale);
    let mut header = vec!["Lock Type".to_owned(), "CPUs".to_owned()];
    header.extend(lv.iter().map(|d| format!("{} (s)", d.name)));
    header.push("p99 wait none (ns)".to_owned());
    header.push("p99 wait heavy+faults (ns)".to_owned());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new(
        "robustness",
        "Lock robustness under preemption and injected faults",
        &header_refs,
    );
    for row in sweep(scale) {
        let mut cells = vec![row.kind.as_str().to_owned(), row.cpus.to_string()];
        cells.extend(
            row.cells
                .iter()
                .map(|c| fmt_secs(c.seconds, c.finished)),
        );
        cells.push(row.cells[0].p99_wait_ns.to_string());
        cells.push(
            row.cells
                .last()
                .expect("at least one level")
                .p99_wait_ns
                .to_string(),
        );
        report.push_row(cells);
    }
    report.push_note(
        "Table 4 mechanism, systematically: under heavy preemption the FIFO \
         queue locks (MCS/CLH) degrade an order of magnitude more than the \
         backoff family; stacking holder-preemption, migration, slow-node \
         and jitter faults preserves the ordering",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_degradation(rows: &[SweepRow], kind: LockKind, level: &str) -> f64 {
        rows.iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.degradation(level))
            .fold(0.0, f64::max)
    }

    #[test]
    fn queue_locks_collapse_an_order_of_magnitude_harder() {
        let rows = sweep(Scale::Fast);
        for level in ["heavy", "heavy+faults"] {
            for queue in [LockKind::Mcs, LockKind::Clh] {
                let q = max_degradation(&rows, queue, level);
                for backoff in [LockKind::Hbo, LockKind::HboGt, LockKind::HboGtSd] {
                    let b = max_degradation(&rows, backoff, level);
                    assert!(
                        q >= 10.0 * b,
                        "{queue} degraded {q:.1}x at {level}, {backoff} {b:.1}x: \
                         expected an order-of-magnitude gap"
                    );
                }
            }
        }
    }

    #[test]
    fn fault_layers_fire_in_the_heaviest_level() {
        let rows = sweep(Scale::Fast);
        let faulted: Vec<&Cell> = rows
            .iter()
            .flat_map(|r| r.cells.iter().filter(|c| c.level == "heavy+faults"))
            .collect();
        assert!(faulted.iter().any(|c| c.migrations > 0), "no migration fired");
        assert!(faulted.iter().all(|c| c.preemptions > 0), "no preemption fired");
        let clean: Vec<&Cell> = rows
            .iter()
            .flat_map(|r| r.cells.iter().filter(|c| c.level == "none"))
            .collect();
        assert!(clean.iter().all(|c| c.preemptions == 0 && c.migrations == 0));
    }

    #[test]
    fn report_has_one_row_per_kind_and_cpu_count() {
        let r = run(Scale::Fast);
        assert_eq!(r.rows(), kinds::selected().len() * 2);
    }
}

//! Figure 10 — sensitivity of HBO_GT_SD to `GET_ANGRY_LIMIT`
//! (26-processor new-microbenchmark runs, HBO_GT for comparison).

use hbo_locks::LockKind;
use nuca_workloads::modern::{run_modern, ModernConfig};
use nucasim::MachineConfig;

use crate::report::Report;
use crate::{runner, Scale};

fn base_config(scale: Scale, kind: LockKind) -> ModernConfig {
    let (per_node, iters) = scale.pick((13, 40), (4, 20));
    ModernConfig {
        kind,
        machine: MachineConfig::wildfire(2, per_node),
        threads: per_node * 2,
        iterations: iters,
        critical_work: 1000,
        ..ModernConfig::default()
    }
}

/// Sweeps the anger threshold; values normalized to HBO_GT.
pub fn run(scale: Scale) -> Report {
    let limits: Vec<u32> = scale.pick(vec![2, 4, 8, 16, 32, 64, 128], vec![2, 16, 128]);
    let mut header = vec!["Lock Type".to_owned()];
    header.extend(limits.iter().map(|l| format!("limit={l}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new(
        "fig10",
        "Sensitivity of HBO_GT_SD to GET_ANGRY_LIMIT (normalized iteration time, 26 CPUs)",
        &header_refs,
    );

    // Jobs: [reference HBO_GT] + one per swept limit; normalization
    // happens at assembly against the shared reference run.
    let mut jobs: Vec<Box<dyn FnOnce() -> f64 + Send>> = vec![Box::new(move || {
        run_modern(&base_config(scale, LockKind::HboGt)).ns_per_iteration
    })];
    for &limit in &limits {
        jobs.push(Box::new(move || {
            let mut cfg = base_config(scale, LockKind::HboGtSd);
            cfg.params = cfg.params.with_get_angry_limit(limit);
            run_modern(&cfg).ns_per_iteration
        }));
    }
    let results = runner::run_jobs(jobs);

    // Reference: plain HBO_GT (no starvation detection).
    let reference = results[0];

    let mut sd_row = vec!["HBO_GT_SD".to_owned()];
    for ns in &results[1..] {
        sd_row.push(format!("{:.2}", ns / reference));
    }
    report.push_row(sd_row);

    let mut gt_row = vec!["HBO_GT".to_owned()];
    for _ in &limits {
        gt_row.push("1.00".to_owned());
    }
    report.push_row(gt_row);

    report.push_note(
        "paper: aggressive (small) GET_ANGRY_LIMIT costs throughput — \
         starvation protection trades against node affinity",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_present() {
        let r = run(Scale::Fast);
        assert_eq!(r.rows(), 2);
    }

    #[test]
    fn large_limit_approaches_hbo_gt() {
        let r = run(Scale::Fast);
        let sd = r.row_by_key("HBO_GT_SD").unwrap();
        let at_max: f64 = sd.last().unwrap().parse().unwrap();
        // With a huge limit, anger never triggers: within 40% of HBO_GT.
        assert!(at_max < 1.4, "limit=128 ratio {at_max}");
    }
}

//! Table 3 — the SPLASH-2 programs and their lock statistics.

use nuca_workloads::apps::table3;

use crate::report::Report;

/// Prints the application inventory (model parameters, no simulation).
pub fn run() -> Report {
    let mut report = Report::new(
        "table3",
        "The SPLASH-2 programs (▶ = studied further)",
        &["Program", "Problem Size", "Total Locks", "Lock Calls"],
    );
    for app in table3() {
        let name = if app.studied {
            format!("> {}", app.name)
        } else {
            app.name.to_owned()
        };
        report.push_row(vec![
            name,
            app.problem_size.to_owned(),
            app.total_locks.to_string(),
            app.lock_calls.to_string(),
        ]);
    }
    report.push_note("lock statistics are the paper's 32-processor counts (model inputs)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_programs_seven_studied() {
        let r = run();
        assert_eq!(r.rows(), 14);
        let studied = (0..r.rows())
            .filter(|i| r.cell(*i, 0).unwrap().starts_with("> "))
            .count();
        assert_eq!(studied, 7);
    }

    #[test]
    fn raytrace_row_matches_paper() {
        let r = run();
        let row = r.row_by_key("> Raytrace").unwrap();
        assert_eq!(row[2], "35");
        assert_eq!(row[3], "366450");
    }
}

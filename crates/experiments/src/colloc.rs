//! Extension experiment — collocation (paper §3).
//!
//! The paper's QOLB discussion notes that "effective *collocation*
//! (allocation of the protected data in the same cache line as the lock)
//! ... may reduce the lock hand-over time as well as the interference of
//! lock traffic with data access". Software locks can do this too for
//! small protected objects: the first line of the critical data rides the
//! lock line to the new holder.
//!
//! We run the new microbenchmark with and without collocation for HBO_GT
//! (a single-word lock, collocatable) and MCS (no single lock word, so
//! collocation is a no-op — it serves as the control).

use hbo_locks::LockKind;
use nuca_workloads::modern::{run_modern_raw, ModernConfig};
use nuca_workloads::MicroReport;
use nucasim::MachineConfig;

use crate::report::Report;
use crate::Scale;

fn cfg(scale: Scale, kind: LockKind, critical_work: u32, collocate: bool) -> ModernConfig {
    let (per_node, iters) = scale.pick((14, 40), (4, 15));
    ModernConfig {
        kind,
        machine: MachineConfig::wildfire(2, per_node),
        threads: per_node * 2,
        iterations: iters,
        critical_work,
        collocate,
        ..ModernConfig::default()
    }
}

/// Runs the collocation ablation across contention levels.
pub fn run(scale: Scale) -> Report {
    let cws = [8u32, 100, 1500];
    let mut header = vec!["Configuration".to_owned()];
    header.extend(cws.iter().map(|c| format!("cw={c} ns/iter")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new(
        "colloc",
        "Collocating the first protected line with the lock word",
        &header_refs,
    );

    for (label, kind, colloc) in [
        ("HBO_GT", LockKind::HboGt, false),
        ("HBO_GT+colloc", LockKind::HboGt, true),
        ("MCS (control)", LockKind::Mcs, false),
        ("MCS+colloc (no-op)", LockKind::Mcs, true),
    ] {
        let mut row = vec![label.to_owned()];
        for &cw in &cws {
            let c = cfg(scale, kind, cw, colloc);
            let (sim, _) = run_modern_raw(&c);
            let r = MicroReport::from_sim(kind, c.threads, &sim, 0);
            row.push(format!("{:.0}", r.ns_per_iteration));
        }
        report.push_row(row);
    }
    report.push_note(
        "collocation saves one data transfer per handover — largest in \
         relative terms for tiny critical sections",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_configurations() {
        let r = run(Scale::Fast);
        assert_eq!(r.rows(), 4);
    }

    #[test]
    fn collocation_helps_tiny_critical_sections() {
        let r = run(Scale::Fast);
        let ns = |k: &str| -> f64 { r.row_by_key(k).unwrap()[1].parse().unwrap() };
        assert!(
            ns("HBO_GT+colloc") <= ns("HBO_GT") * 1.05,
            "collocated {} vs plain {}",
            ns("HBO_GT+colloc"),
            ns("HBO_GT")
        );
    }

    #[test]
    fn collocation_is_noop_for_queue_locks() {
        let r = run(Scale::Fast);
        let ns = |k: &str| -> f64 { r.row_by_key(k).unwrap()[1].parse().unwrap() };
        let plain = ns("MCS (control)");
        let colloc = ns("MCS+colloc (no-op)");
        assert!(
            (plain - colloc).abs() < 1e-6,
            "MCS runs must be identical: {plain} vs {colloc}"
        );
    }
}

//! Extension experiment — ticket lock vs the list-based queue locks.
//!
//! The ticket lock is FIFO like MCS/CLH but its waiters all spin on one
//! shared `now_serving` word: every handover invalidates and refills
//! every waiter. The list-based queue locks exist precisely to avoid
//! that storm (each waiter spins on private storage). This experiment
//! quantifies the difference on the WildFire model and shows where HBO's
//! node affinity places relative to both.

use hbo_locks::LockKind;
use nuca_topology::NodeId;
use nuca_workloads::modern::{run_modern, run_modern_with, ModernConfig};
use nuca_workloads::MicroReport;
use nucasim::MachineConfig;
use nucasim_locks::SimTicket;

use crate::report::{fmt_ratio, Report};
use crate::Scale;

fn cfg(scale: Scale, kind: LockKind, critical_work: u32) -> ModernConfig {
    let (per_node, iters) = scale.pick((14, 40), (4, 15));
    ModernConfig {
        kind,
        machine: MachineConfig::wildfire(2, per_node),
        threads: per_node * 2,
        iterations: iters,
        critical_work,
        ..ModernConfig::default()
    }
}

/// Runs TICKET vs MCS vs TATAS_EXP vs HBO_GT on the new microbenchmark.
pub fn run(scale: Scale) -> Report {
    let cws = [100u32, 1500];
    let mut header = vec!["Lock".to_owned()];
    for cw in cws {
        header.push(format!("cw={cw} ns/iter"));
        header.push(format!("cw={cw} handoff"));
        header.push(format!("cw={cw} traffic"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new(
        "ticket",
        "Ticket lock (shared-counter FIFO) vs list-based queue locks",
        &header_refs,
    );

    for kind in [LockKind::TatasExp, LockKind::Mcs, LockKind::HboGt] {
        let mut row = vec![kind.as_str().to_owned()];
        for cw in cws {
            let r = run_modern(&cfg(scale, kind, cw));
            row.push(format!("{:.0}", r.ns_per_iteration));
            row.push(fmt_ratio(r.handoff_ratio));
            row.push(r.traffic.total().to_string());
        }
        report.push_row(row);
    }

    let mut row = vec!["TICKET".to_owned()];
    for cw in cws {
        let c = cfg(scale, LockKind::Mcs, cw);
        let (sim, _) =
            run_modern_with(&c, &|mem, _topo, _gt| Box::new(SimTicket::alloc(mem, NodeId(0))));
        let r = MicroReport::from_sim(LockKind::Mcs, c.threads, &sim, 0);
        row.push(format!("{:.0}", r.ns_per_iteration));
        row.push(fmt_ratio(r.handoff_ratio));
        row.push(r.traffic.total().to_string());
    }
    report.push_row(row);

    report.push_note(
        "TICKET is FIFO like MCS but wakes every waiter per handover; MCS \
         wakes exactly one — compare the traffic columns",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows() {
        let r = run(Scale::Fast);
        assert_eq!(r.rows(), 4);
    }

    #[test]
    fn ticket_behaves_like_a_fifo_lock() {
        // The per-handover storm needs many waiters to dominate, so the
        // traffic comparison is a full-scale result (see EXPERIMENTS.md);
        // at smoke scale we assert the FIFO signature both ways.
        let r = run(Scale::Fast);
        let handoff = |k: &str| -> f64 { r.row_by_key(k).unwrap()[2].parse().unwrap() };
        assert!(handoff("TICKET") > 0.3, "FIFO handoff expected");
        assert!(
            (handoff("TICKET") - handoff("MCS")).abs() < 0.3,
            "two FIFO locks should migrate nodes at a similar rate"
        );
    }
}

//! Trace and metrics capture for the `--trace` / `--metrics-json` flags.
//!
//! One traced run of the new microbenchmark per lock algorithm, at the
//! Fig. 5 high-contention point (`critical_work = 1500`, the same
//! configuration Table 2 reports traffic for). The capture is dispatched
//! through [`runner::run_jobs`], so the emitted files are byte-identical
//! at any `--jobs` level: jobs may *execute* in any order, but results are
//! reassembled in [`hbo_locks::LockCatalog::paper()`] order before a byte is written.
//!
//! `--trace` writes Chrome trace-event JSON (load it at
//! <https://ui.perfetto.dev>): one process track per lock algorithm, one
//! thread track per simulated CPU, instant events for acquisitions,
//! releases, coherence transactions, throttle announcements and anger
//! episodes, and duration slices for backoff sleeps and preemptions.
//!
//! `--metrics-json` writes the aggregate statistics of the same runs:
//! latency histograms (wait and hold) with percentiles, per-node traffic
//! and acquisition breakdowns, and anger-episode counts.

use std::io;
use std::path::Path;

use hbo_locks::LockKind;
use nucasim::{cycles_to_ns, BackoffClass, Histogram, SimEvent, SimReport, TraceRecord};

use nuca_workloads::modern::run_modern_traced;

use crate::json::JsonWriter;
use crate::{fig5, runner, Scale};

/// One traced benchmark run: the algorithm, its aggregate report, and the
/// full event stream.
#[derive(Debug)]
pub struct Capture {
    /// Algorithm that ran.
    pub kind: LockKind,
    /// Aggregate simulation report.
    pub report: SimReport,
    /// Every trace event of the run, in emission order.
    pub records: Vec<TraceRecord>,
}

/// The `critical_work` level captured (the Table 2 operating point).
pub const CAPTURE_CRITICAL_WORK: u32 = 1500;

/// Runs one traced capture per lock algorithm, in [`hbo_locks::LockCatalog::paper()`] order.
pub fn capture(scale: Scale) -> Vec<Capture> {
    let jobs: Vec<_> = hbo_locks::LockCatalog::paper()
        .iter()
        .map(|&kind| {
            move || {
                let cfg = fig5::config(scale, kind, CAPTURE_CRITICAL_WORK);
                let (report, records) = run_modern_traced(&cfg);
                Capture {
                    kind,
                    report,
                    records,
                }
            }
        })
        .collect();
    runner::run_jobs(jobs)
}

/// Simulated cycles rendered as a trace timestamp (microseconds, with
/// nanosecond precision).
fn ts_us(cycles: u64) -> String {
    format!("{:.3}", cycles_to_ns(cycles) as f64 / 1_000.0)
}

/// Serializes `captures` as Chrome trace-event JSON.
pub fn chrome_trace_json(captures: &[Capture]) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_str("displayTimeUnit", "ns");
    w.key("traceEvents");
    w.begin_array();
    for (ki, cap) in captures.iter().enumerate() {
        let pid = ki as u64 + 1;
        // Track naming: one "process" per algorithm, one "thread" per CPU.
        w.begin_object();
        w.field_str("name", "process_name");
        w.field_str("ph", "M");
        w.field_u64("pid", pid);
        w.key("args");
        w.begin_object();
        w.field_str("name", cap.kind.as_str());
        w.end_object();
        w.end_object();
        let cpus = cap.report.finish_times.len();
        for cpu in 0..cpus {
            w.begin_object();
            w.field_str("name", "thread_name");
            w.field_str("ph", "M");
            w.field_u64("pid", pid);
            w.field_u64("tid", cpu as u64);
            w.key("args");
            w.begin_object();
            w.field_str("name", &format!("cpu {cpu}"));
            w.end_object();
            w.end_object();
        }
        let mut counters = CounterTracks::default();
        for rec in &cap.records {
            write_event(&mut w, pid, rec);
            counters.observe(&mut w, pid, rec);
        }
        counters.finish(&mut w, pid);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Perfetto counter tracks derived from the event stream, so aggregate
/// trends line up with the instant/slice events on one timeline:
///
/// * **waiters** — a queue-depth proxy: CPUs between `AcquireStart` and
///   their `LockAcquire` (emitted on every change);
/// * **global txns** — cumulative interconnect-crossing transactions per
///   node (sampled every [`CounterTracks::TRAFFIC_SAMPLE`] global txns —
///   per-txn counter points would double the trace size);
/// * **anger** — cumulative HBO_GT_SD `GET_ANGRY` episodes (emitted per
///   episode; they are rare).
#[derive(Debug, Default)]
struct CounterTracks {
    waiters: u64,
    /// Cumulative global transactions per node (grown on demand).
    node_global: Vec<u64>,
    /// Global txns since the traffic track was last sampled.
    unsampled: u64,
    anger: u64,
    last_at: u64,
}

impl CounterTracks {
    const TRAFFIC_SAMPLE: u64 = 256;

    fn counter(w: &mut JsonWriter, pid: u64, name: &str, at: u64) {
        w.begin_object();
        w.field_str("name", name);
        w.field_str("ph", "C");
        w.field_raw("ts", &ts_us(at));
        w.field_u64("pid", pid);
        w.key("args");
        w.begin_object();
    }

    fn emit_waiters(&self, w: &mut JsonWriter, pid: u64, at: u64) {
        Self::counter(w, pid, "waiters", at);
        w.field_u64("waiting", self.waiters);
        w.end_object();
        w.end_object();
    }

    fn emit_traffic(&self, w: &mut JsonWriter, pid: u64, at: u64) {
        Self::counter(w, pid, "global txns", at);
        for (node, &n) in self.node_global.iter().enumerate() {
            w.field_u64(&format!("node{node}"), n);
        }
        w.end_object();
        w.end_object();
    }

    fn emit_anger(&self, w: &mut JsonWriter, pid: u64, at: u64) {
        Self::counter(w, pid, "anger", at);
        w.field_u64("episodes", self.anger);
        w.end_object();
        w.end_object();
    }

    fn observe(&mut self, w: &mut JsonWriter, pid: u64, rec: &TraceRecord) {
        self.last_at = rec.at;
        match rec.event {
            SimEvent::AcquireStart { .. } => {
                self.waiters += 1;
                self.emit_waiters(w, pid, rec.at);
            }
            SimEvent::LockAcquire { .. } => {
                // Acquisitions recorded outside a traced acquire window
                // (none today) would underflow; saturate defensively.
                self.waiters = self.waiters.saturating_sub(1);
                self.emit_waiters(w, pid, rec.at);
            }
            SimEvent::CoherenceTxn { node, global: true, .. } => {
                if self.node_global.len() <= node.index() {
                    self.node_global.resize(node.index() + 1, 0);
                }
                self.node_global[node.index()] += 1;
                self.unsampled += 1;
                if self.unsampled >= Self::TRAFFIC_SAMPLE {
                    self.unsampled = 0;
                    self.emit_traffic(w, pid, rec.at);
                }
            }
            SimEvent::GotAngry { .. } => {
                self.anger += 1;
                self.emit_anger(w, pid, rec.at);
            }
            _ => {}
        }
    }

    /// Emits the final counter values so every track ends at the run's
    /// last timestamp (and sub-sample traffic remainders are not lost).
    fn finish(&mut self, w: &mut JsonWriter, pid: u64) {
        if !self.node_global.is_empty() {
            self.emit_traffic(w, pid, self.last_at);
        }
        if self.anger > 0 {
            self.emit_anger(w, pid, self.last_at);
        }
    }
}

/// Writes one [`TraceRecord`] as a trace event object.
fn write_event(w: &mut JsonWriter, pid: u64, rec: &TraceRecord) {
    let instant = |w: &mut JsonWriter, name: &str, cpu: usize| {
        w.begin_object();
        w.field_str("name", name);
        w.field_str("ph", "i");
        w.field_str("s", "t");
        w.field_raw("ts", &ts_us(rec.at));
        w.field_u64("pid", pid);
        w.field_u64("tid", cpu as u64);
    };
    let span = |w: &mut JsonWriter, name: &str, cpu: usize, cycles: u64| {
        w.begin_object();
        w.field_str("name", name);
        w.field_str("ph", "X");
        w.field_raw("ts", &ts_us(rec.at));
        w.field_raw("dur", &ts_us(cycles));
        w.field_u64("pid", pid);
        w.field_u64("tid", cpu as u64);
    };
    match rec.event {
        SimEvent::AcquireStart { lock, cpu, node } => {
            instant(w, "AcquireStart", cpu.index());
            w.key("args");
            w.begin_object();
            w.field_u64("lock", lock as u64);
            w.field_u64("node", node.index() as u64);
            w.end_object();
        }
        SimEvent::LockAcquire { lock, cpu, node } => {
            instant(w, "LockAcquire", cpu.index());
            w.key("args");
            w.begin_object();
            w.field_u64("lock", lock as u64);
            w.field_u64("node", node.index() as u64);
            w.end_object();
        }
        SimEvent::LockRelease { lock, cpu, node } => {
            instant(w, "LockRelease", cpu.index());
            w.key("args");
            w.begin_object();
            w.field_u64("lock", lock as u64);
            w.field_u64("node", node.index() as u64);
            w.end_object();
        }
        SimEvent::BackoffSleep {
            cpu,
            node,
            cycles,
            class,
        } => {
            span(w, "BackoffSleep", cpu.index(), cycles);
            w.key("args");
            w.begin_object();
            w.field_str(
                "class",
                match class {
                    BackoffClass::Local => "local",
                    BackoffClass::Remote => "remote",
                },
            );
            w.field_u64("node", node.index() as u64);
            w.end_object();
        }
        SimEvent::CoherenceTxn {
            cpu,
            node,
            home,
            global,
        } => {
            instant(w, "CoherenceTxn", cpu.index());
            w.key("args");
            w.begin_object();
            w.field_u64("node", node.index() as u64);
            w.field_u64("home", home.index() as u64);
            w.key("global");
            w.boolean(global);
            w.end_object();
        }
        SimEvent::Preempt { cpu, cycles } => {
            span(w, "Preempt", cpu.index(), cycles);
        }
        SimEvent::Migrate { cpu, from, to } => {
            instant(w, "Migrate", cpu.index());
            w.key("args");
            w.begin_object();
            w.field_u64("from", from.index() as u64);
            w.field_u64("to", to.index() as u64);
            w.end_object();
        }
        SimEvent::GotAngry { cpu, node } => {
            instant(w, "GotAngry", cpu.index());
            w.key("args");
            w.begin_object();
            w.field_u64("node", node.index() as u64);
            w.end_object();
        }
        SimEvent::ThrottleSpin { cpu, node } => {
            instant(w, "ThrottleSpin", cpu.index());
            w.key("args");
            w.begin_object();
            w.field_u64("node", node.index() as u64);
            w.end_object();
        }
        SimEvent::Upgrade {
            cpu,
            node,
            home,
            invalidated,
        } => {
            instant(w, "Upgrade", cpu.index());
            w.key("args");
            w.begin_object();
            w.field_u64("node", node.index() as u64);
            w.field_u64("home", home.index() as u64);
            w.field_u64("invalidated", invalidated as u64);
            w.end_object();
        }
        SimEvent::Eviction {
            cpu,
            node,
            home,
            dirty,
        } => {
            instant(w, "Eviction", cpu.index());
            w.key("args");
            w.begin_object();
            w.field_u64("node", node.index() as u64);
            w.field_u64("home", home.index() as u64);
            w.key("dirty");
            w.boolean(dirty);
            w.end_object();
        }
        SimEvent::UpdateBroadcast {
            cpu,
            node,
            home,
            sharers,
        } => {
            instant(w, "UpdateBroadcast", cpu.index());
            w.key("args");
            w.begin_object();
            w.field_u64("node", node.index() as u64);
            w.field_u64("home", home.index() as u64);
            w.field_u64("sharers", sharers as u64);
            w.end_object();
        }
    }
    w.end_object();
}

/// Serializes a latency histogram (cycles in, nanoseconds out). Shared
/// with the profiler's `--profile` document (`crate::profiler`).
pub(crate) fn write_histogram(w: &mut JsonWriter, h: &Histogram) {
    w.begin_object();
    w.field_u64("count", h.count());
    w.field_u64("max_ns", cycles_to_ns(h.max()));
    if let Some(mean) = h.mean() {
        w.field_raw("mean_ns", &format!("{:.1}", mean * 4.0));
    }
    for (label, p) in [("p50_ns", 50.0), ("p90_ns", 90.0), ("p99_ns", 99.0)] {
        if let Some(v) = h.percentile(p) {
            w.field_u64(label, cycles_to_ns(v));
        }
    }
    w.key("buckets");
    w.begin_array();
    for (upper, n) in h.nonzero_buckets() {
        w.begin_array();
        // 1 cycle = 4 ns exactly; saturate for the open-ended top bucket.
        w.number_u64(upper.saturating_mul(4));
        w.number_u64(n);
        w.end_array();
    }
    w.end_array();
    w.end_object();
}

/// Serializes the aggregate metrics of `captures`.
pub fn metrics_json(scale: Scale, captures: &[Capture]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("scale", scale.pick("full", "fast"));
    w.field_u64("critical_work", u64::from(CAPTURE_CRITICAL_WORK));
    // Self-time attribution: the simulator's rdtsc section counters,
    // process-wide totals up to this capture. Only ratios between
    // sections are meaningful (ticks, not seconds).
    #[cfg(feature = "selftime")]
    {
        w.key("selftime");
        w.begin_object();
        for (name, ticks) in nucasim::selftime::sections() {
            w.field_u64(name, ticks);
        }
        w.end_object();
    }
    w.key("locks");
    w.begin_array();
    for cap in captures {
        let r = &cap.report;
        w.begin_object();
        w.field_str("kind", cap.kind.as_str());
        w.field_raw("simulated_seconds", &format!("{:.6}", r.seconds()));
        w.key("finished");
        w.boolean(r.finished_all);
        w.key("traffic");
        w.begin_object();
        w.field_u64("local", r.traffic.local);
        w.field_u64("global", r.traffic.global);
        w.end_object();
        w.key("node_traffic");
        w.begin_array();
        for t in &r.node_traffic {
            w.begin_object();
            w.field_u64("local", t.local);
            w.field_u64("global", t.global);
            w.end_object();
        }
        w.end_array();
        w.field_u64("anger_episodes", r.anger_episodes);
        w.field_u64("preemptions", r.preemptions);
        w.field_u64("migrations", r.migrations);
        // Protocol-level counters, tallied from the event stream (the
        // aggregate report predates the coherence layer and does not
        // carry them). All three are zero under the flat protocol.
        let (mut upgrades, mut evictions, mut update_broadcasts) = (0u64, 0u64, 0u64);
        for rec in &cap.records {
            match rec.event {
                SimEvent::Upgrade { .. } => upgrades += 1,
                SimEvent::Eviction { .. } => evictions += 1,
                SimEvent::UpdateBroadcast { .. } => update_broadcasts += 1,
                _ => {}
            }
        }
        w.field_u64("upgrades", upgrades);
        w.field_u64("evictions", evictions);
        w.field_u64("update_broadcasts", update_broadcasts);
        w.field_u64("trace_events", cap.records.len() as u64);
        w.key("locks");
        w.begin_array();
        for trace in &r.lock_traces {
            w.begin_object();
            w.field_u64("acquisitions", trace.acquisitions);
            w.field_u64("node_handoffs", trace.node_handoffs);
            if let Some(h) = trace.handoff_ratio() {
                w.field_raw("handoff_ratio", &format!("{h:.4}"));
            }
            w.key("node_acquires");
            w.begin_array();
            for &n in &trace.node_acquires {
                w.number_u64(n);
            }
            w.end_array();
            w.key("wait");
            write_histogram(&mut w, &trace.wait);
            w.key("hold");
            write_histogram(&mut w, &trace.hold);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Captures once and writes the requested artifacts.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_captures(
    scale: Scale,
    trace_path: Option<&Path>,
    metrics_path: Option<&Path>,
) -> io::Result<()> {
    let captures = capture(scale);
    if let Some(path) = trace_path {
        std::fs::write(path, chrome_trace_json(&captures))?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = metrics_path {
        std::fs::write(path, metrics_json(scale, &captures))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn fast_captures() -> Vec<Capture> {
        capture(Scale::Fast)
    }

    #[test]
    fn capture_covers_all_kinds_with_monotone_cpu_timestamps() {
        let caps = fast_captures();
        assert_eq!(caps.len(), hbo_locks::LockCatalog::paper().len());
        for cap in &caps {
            assert!(cap.report.finished_all, "{} did not finish", cap.kind);
            assert!(!cap.records.is_empty(), "{} traced nothing", cap.kind);
            let mut last_at: HashMap<usize, u64> = HashMap::new();
            for rec in &cap.records {
                let cpu = match rec.event {
                    SimEvent::AcquireStart { cpu, .. }
                    | SimEvent::LockAcquire { cpu, .. }
                    | SimEvent::LockRelease { cpu, .. }
                    | SimEvent::BackoffSleep { cpu, .. }
                    | SimEvent::CoherenceTxn { cpu, .. }
                    | SimEvent::Preempt { cpu, .. }
                    | SimEvent::Migrate { cpu, .. }
                    | SimEvent::GotAngry { cpu, .. }
                    | SimEvent::ThrottleSpin { cpu, .. }
                    | SimEvent::Upgrade { cpu, .. }
                    | SimEvent::Eviction { cpu, .. }
                    | SimEvent::UpdateBroadcast { cpu, .. } => cpu.index(),
                };
                let prev = last_at.entry(cpu).or_insert(0);
                assert!(
                    rec.at >= *prev,
                    "{}: cpu {cpu} time went backwards ({} < {prev})",
                    cap.kind,
                    rec.at
                );
                *prev = rec.at;
            }
        }
    }

    #[test]
    fn chrome_trace_has_expected_events() {
        let caps = fast_captures();
        let json = chrome_trace_json(&caps);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        for name in ["LockAcquire", "LockRelease", "CoherenceTxn", "BackoffSleep"] {
            assert!(
                json.contains(&format!("\"name\":\"{name}\"")),
                "missing {name} events"
            );
        }
        // The HBO_GT_SD capture produces anger episodes at this contention
        // level; HBO_GT announces throttled spinners.
        assert!(json.contains("\"name\":\"GotAngry\""), "no GotAngry events");
        assert!(
            json.contains("\"name\":\"ThrottleSpin\""),
            "no ThrottleSpin events"
        );
        // One process track per algorithm.
        for &kind in hbo_locks::LockCatalog::paper() {
            assert!(json.contains(&format!("\"name\":\"{}\"", kind.as_str())));
        }
        // Counter tracks ride along on the same timeline.
        assert!(json.contains("\"ph\":\"C\""), "no counter events");
        for track in ["waiters", "global txns", "anger"] {
            assert!(
                json.contains(&format!("\"name\":\"{track}\"")),
                "missing {track} counter track"
            );
        }
    }

    #[test]
    fn metrics_json_reports_percentiles_per_kind() {
        let caps = fast_captures();
        let json = metrics_json(Scale::Fast, &caps);
        for &kind in hbo_locks::LockCatalog::paper() {
            assert!(json.contains(&format!("\"kind\": \"{}\"", kind.as_str())));
        }
        assert!(json.contains("\"p50_ns\""));
        assert!(json.contains("\"p99_ns\""));
        assert!(json.contains("\"handoff_ratio\""));
        assert!(json.contains("\"anger_episodes\""));
    }

    #[test]
    fn tracing_does_not_change_results() {
        // The tentpole invariant: a traced run and an untraced run of the
        // same configuration produce identical simulation results.
        let cfg = fig5::config(Scale::Fast, LockKind::HboGtSd, CAPTURE_CRITICAL_WORK);
        let (traced, records) = run_modern_traced(&cfg);
        let (plain, _) = nuca_workloads::modern::run_modern_raw(&cfg);
        assert!(!records.is_empty());
        assert_eq!(traced.end_time, plain.end_time);
        assert_eq!(traced.traffic, plain.traffic);
        assert_eq!(
            traced.lock_traces[0].acquisitions,
            plain.lock_traces[0].acquisitions
        );
    }
}

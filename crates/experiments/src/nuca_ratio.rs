//! Extension experiment — how the HBO advantage scales with the NUCA
//! ratio (the paper's §2 table spans ratios from ~3.5 to ~10).
//!
//! This is the ablation DESIGN.md calls out: rerun the new microbenchmark
//! under the DASH, WildFire, NUMA-Q and CMP latency presets and report the
//! HBO_GT speedup over MCS and TATAS_EXP. The paper's thesis predicts the
//! advantage grows with the ratio and vanishes on a UMA machine.

use hbo_locks::LockKind;
use nuca_workloads::modern::{run_modern, ModernConfig};
use nucasim::{LatencyModel, MachineConfig};

use crate::report::Report;
use crate::{runner, Scale};

/// Runs the NUCA-ratio ablation.
pub fn run(scale: Scale) -> Report {
    let presets: [(&str, LatencyModel); 5] = [
        ("E6000 (UMA)", LatencyModel::e6000()),
        ("DS-320-like (3.5)", LatencyModel::wildfire().with_nuca_ratio(3.5)),
        ("DASH (4.5)", LatencyModel::dash()),
        ("WildFire (6)", LatencyModel::wildfire()),
        ("NUMA-Q (10)", LatencyModel::numa_q()),
    ];
    let (per_node, iters) = scale.pick((14, 30), (4, 15));
    let mut report = Report::new(
        "nuca_ratio",
        "HBO_GT advantage vs NUCA ratio (new microbenchmark, critical_work=1000)",
        &[
            "Machine",
            "NUCA ratio",
            "HBO_GT (ns/iter)",
            "MCS / HBO_GT",
            "TATAS_EXP / HBO_GT",
        ],
    );
    // One job per preset × lock cell, regrouped per preset at assembly.
    let kinds = [LockKind::HboGt, LockKind::Mcs, LockKind::TatasExp];
    let jobs: Vec<_> = presets
        .iter()
        .flat_map(|&(_, latency)| kinds.iter().map(move |&kind| (latency, kind)))
        .map(|(latency, kind)| {
            move || {
                run_modern(&ModernConfig {
                    kind,
                    machine: MachineConfig::wildfire(2, per_node).with_latency(latency),
                    threads: per_node * 2,
                    iterations: iters,
                    critical_work: 1000,
                    ..ModernConfig::default()
                })
            }
        })
        .collect();
    let results = runner::run_jobs(jobs);
    for (pi, (name, latency)) in presets.iter().enumerate() {
        let [hbo, mcs, exp] = &results[pi * kinds.len()..(pi + 1) * kinds.len()] else {
            unreachable!("three runs per preset");
        };
        report.push_row(vec![
            (*name).to_owned(),
            format!("{:.1}", latency.nuca_ratio()),
            format!("{:.0}", hbo.ns_per_iteration),
            format!("{:.2}", mcs.ns_per_iteration / hbo.ns_per_iteration),
            format!("{:.2}", exp.ns_per_iteration / hbo.ns_per_iteration),
        ]);
    }
    report.push_note("prediction: the HBO advantage grows with the NUCA ratio");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advantage_grows_with_ratio() {
        let r = run(Scale::Fast);
        assert_eq!(r.rows(), 5);
        let ratio = |row: usize| -> f64 { r.cell(row, 3).unwrap().parse().unwrap() };
        // NUMA-Q advantage must exceed the UMA advantage.
        assert!(
            ratio(4) > ratio(0),
            "NUMA-Q {} vs UMA {}",
            ratio(4),
            ratio(0)
        );
    }
}

//! Extension experiment — hierarchical HBO on a hierarchical NUCA.
//!
//! The paper (§2) anticipates machines with "several levels of
//! non-uniformity ... one of today's NUMA architectures populated with
//! CMP processors", and §4.1 notes the HBO scheme "can be expanded in a
//! hierarchical way, using more than two sets of constants". This
//! experiment builds exactly that machine — 2 NUMA nodes, each holding
//! CMP chips with on-chip sharing — and compares:
//!
//! * TATAS_EXP and MCS (hierarchy-blind baselines),
//! * flat HBO (node-aware only: it cannot tell same-chip from
//!   cross-chip neighbors),
//! * hierarchical HBO (three backoff classes: chip / node / remote).

use hbo_locks::{BackoffConfig, LevelBackoff, LockKind};
use nuca_topology::{NodeId, Topology};
use nuca_workloads::modern::{run_modern, run_modern_with, ModernConfig};
use nuca_workloads::MicroReport;
use nucasim::{LatencyModel, MachineConfig};
use nucasim_locks::SimHierHbo;

use crate::report::{fmt_ratio, Report};
use crate::Scale;

fn cmp_numa_machine(scale: Scale) -> (MachineConfig, usize) {
    let (chips, cpus) = scale.pick((2, 7), (2, 2));
    let mut b = Topology::builder();
    for _ in 0..2 {
        b = b.hierarchical_node(&[chips, cpus]);
    }
    let topology = b.build().expect("static shape");
    let threads = topology.num_cpus();
    (
        MachineConfig {
            topology,
            ..MachineConfig::wildfire(2, 2).with_latency(LatencyModel::cmp_numa())
        },
        threads,
    )
}

fn base_cfg(scale: Scale, kind: LockKind, critical_work: u32) -> ModernConfig {
    let (machine, threads) = cmp_numa_machine(scale);
    ModernConfig {
        kind,
        machine,
        threads,
        iterations: scale.pick(40, 15),
        critical_work,
        ..ModernConfig::default()
    }
}

/// Runs the hierarchy ablation across two contention levels.
pub fn run(scale: Scale) -> Report {
    let cws = [400u32, 1500];
    let mut header = vec!["Lock".to_owned()];
    for cw in cws {
        header.push(format!("cw={cw} ns/iter"));
        header.push(format!("cw={cw} handoff"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new(
        "hier",
        "Hierarchical HBO on a CMP-in-NUMA machine (2 nodes x chips x cpus)",
        &header_refs,
    );

    for kind in [LockKind::TatasExp, LockKind::Mcs, LockKind::Hbo] {
        let mut row = vec![kind.as_str().to_owned()];
        for cw in cws {
            let r = run_modern(&base_cfg(scale, kind, cw));
            row.push(format!("{:.0}", r.ns_per_iteration));
            row.push(fmt_ratio(r.handoff_ratio));
        }
        report.push_row(row);
    }

    // The hierarchical variant: three distance classes, each 4x lazier.
    let mut row = vec!["HBO_HIER".to_owned()];
    for cw in cws {
        let cfg = base_cfg(scale, LockKind::Hbo, cw);
        // Same node/remote constants as flat HBO, plus an extra-eager
        // on-chip class — the hierarchy only *adds* a distinction.
        let table = LevelBackoff::new(vec![
            BackoffConfig::new(40, 2, 400),
            cfg.params.local,
            cfg.params.remote,
        ]);
        let (sim, _) = run_modern_with(&cfg, &|mem, topo, _gt| {
            Box::new(SimHierHbo::alloc(
                mem,
                std::sync::Arc::new(topo.clone()),
                NodeId(0),
                table.clone(),
            ))
        });
        let r = MicroReport::from_sim(LockKind::Hbo, cfg.threads, &sim, 0);
        row.push(format!("{:.0}", r.ns_per_iteration));
        row.push(fmt_ratio(r.handoff_ratio));
    }
    report.push_row(row);

    report.push_note(
        "HBO_HIER distinguishes same-chip from cross-chip neighbors (3 \
         backoff classes); flat HBO only knows nodes",
    );
    report.push_note("prediction: HBO_HIER <= HBO < MCS/TATAS_EXP on this machine");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows_produced() {
        let r = run(Scale::Fast);
        assert_eq!(r.rows(), 4);
        assert!(r.row_by_key("HBO_HIER").is_some());
    }

    #[test]
    fn nuca_aware_beats_blind_baselines_at_high_cw() {
        let r = run(Scale::Fast);
        let ns = |k: &str| -> f64 { r.row_by_key(k).unwrap()[3].parse().unwrap() };
        assert!(ns("HBO_HIER") < ns("MCS"));
        assert!(ns("HBO") < ns("MCS"));
    }
}

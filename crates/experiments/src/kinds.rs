//! Process-global lock-kind selection — the `--kinds` flag.
//!
//! The kind-sweeping artifacts (`fig5`, `lat_hist`, `robustness`,
//! `handoff`, `lockserver`, `showdown`) iterate [`selected`] instead of a
//! hard-coded list: by default that is every kind registered in the
//! [`hbo_locks::LockCatalog`], and `--kinds TATAS,MCS,CNA` narrows it to
//! an ad-hoc subset for quick head-to-head runs. Paper-faithful artifacts
//! (Table 1/2, Fig. 3/8/9/10, the app studies) deliberately ignore the
//! selection and stay on [`hbo_locks::LockCatalog::paper`], so their
//! outputs keep reproducing the paper regardless of the flag.
//!
//! Selection order is normalized to registration order no matter how the
//! flag spells it, so `--kinds MCS,TATAS` and `--kinds TATAS,MCS` produce
//! byte-identical TSVs.

use std::sync::OnceLock;

use hbo_locks::{LockCatalog, LockKind};

static SELECTION: OnceLock<Vec<LockKind>> = OnceLock::new();

/// Applies the `--kinds` flag for the rest of the process. The first call
/// wins; later calls are ignored (the CLI parses flags once).
pub fn select(kinds: Vec<LockKind>) {
    let mut ordered: Vec<LockKind> = LockCatalog::kinds()
        .iter()
        .copied()
        .filter(|k| kinds.contains(k))
        .collect();
    if ordered.is_empty() {
        ordered = LockCatalog::kinds().to_vec();
    }
    let _ = SELECTION.set(ordered);
}

/// The kinds the kind-sweeping artifacts iterate, in registration order:
/// the `--kinds` selection if one was applied, otherwise every registered
/// kind.
pub fn selected() -> &'static [LockKind] {
    SELECTION
        .get()
        .map(Vec::as_slice)
        .unwrap_or_else(|| LockCatalog::kinds())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_selection_is_the_whole_catalog() {
        // `select` is process-global, so tests must not call it — every
        // artifact test in this crate relies on the full default.
        assert_eq!(selected(), LockCatalog::kinds());
        assert!(selected().len() >= 13);
    }
}

//! Extension experiment — false sharing between a lock word and the data
//! it guards, visible only under line-granular coherence.
//!
//! The paper's model (and this repo's default `flat` memory model) treats
//! every word as its own coherence unit, which is exactly right for lock
//! *words* but blind to a classic deployment bug: allocating the lock and
//! its protected data in the same cache line. Every critical-section
//! update then invalidates the spinners' cached copy of the lock word,
//! and every spin re-fetch steals the line back from the holder — the
//! false-sharing stampede.
//!
//! The workload makes the bug visible the way real code does: the holder
//! updates the protected word **repeatedly** inside the critical section
//! (a counter, a queue head — anything hot), while the other CPUs spin
//! toward their own acquire. Layout *colocated* allocates the data word
//! directly after the lock words — the historical default allocation
//! order, sharing the lock's cache line; *padded* aligns it onto its own
//! line. Under `flat` the two layouts are **identical by construction**:
//! padding only moves addresses, never word-level behavior. Under MESI
//! every spinner poll downgrades the holder's line and every data update
//! pays an upgrade + refetch storm — but only colocated. Dragon sits in
//! between: updates push words to sharers without killing their copies.
//!
//! A second table (`falsesharing_twa`) sweeps the TWA waiting-array
//! geometry under MESI: slot count × ticket→slot hash. With the published
//! `mod` hash, consecutive tickets park on *adjacent* array words — the
//! promote bump falsely shares its line with the neighbouring slots; the
//! `stride` hash scatters neighbours across lines at the same collision
//! rate.

use std::sync::Arc;

use hbo_locks::LockKind;
use nuca_topology::NodeId;
use nucasim::{Addr, Command, CpuCtx, Machine, MachineConfig, MemorySystem, Program, ProtocolKind};
use nucasim_locks::{build_lock, DriveResult, GtSlots, SessionDriver, SimLockParams, TwaHash};

use crate::report::Report;
use crate::Scale;

/// Data-word updates per critical section. One write would be a wash
/// (the QOLB effect — `colloc` — pays it back at handover); the storm
/// needs the alternation of holder updates with spinner polls.
const CS_UPDATES: u32 = 12;

/// Cycles between consecutive data updates — the "compute" part of the
/// critical section, long enough for spinner polls to interleave.
const CS_THINK: u64 = 40;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// Data word allocated directly after the lock words (shares the
    /// lock's cache line under the default geometry).
    Colocated,
    /// Data word pushed onto its own line by dead padding words.
    Padded,
}

impl Layout {
    const ALL: [Layout; 2] = [Layout::Colocated, Layout::Padded];

    fn name(self) -> &'static str {
        match self {
            Layout::Colocated => "colocated",
            Layout::Padded => "padded",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FsState {
    Stagger,
    Start,
    Acquiring,
    /// `left` data updates remain in this critical section; each is a
    /// write followed by [`CS_THINK`] cycles of compute.
    Update { left: u32, writing: bool },
    Releasing,
    Think,
}

/// { acquire; CS_UPDATES × (write data; compute); release; think }.
struct FsProgram {
    driver: SessionDriver,
    data: Addr,
    iters: u32,
    state: FsState,
}

impl FsProgram {
    fn drive(&mut self, r: DriveResult, ctx: &mut CpuCtx<'_>) -> Command {
        match r {
            DriveResult::Busy(cmd) => cmd,
            DriveResult::AcquireDone => {
                self.state = FsState::Update {
                    left: CS_UPDATES,
                    writing: true,
                };
                Command::Write(self.data, ctx.now)
            }
            DriveResult::ReleaseDone => {
                self.state = FsState::Think;
                // Deterministic per-CPU think time: breaks lockstep
                // without consuming machine randomness.
                Command::Delay(300 + 37 * (ctx.cpu.index() as u64 % 11))
            }
        }
    }
}

impl Program for FsProgram {
    fn resume(&mut self, ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command {
        loop {
            match self.state {
                FsState::Stagger => {
                    self.state = FsState::Start;
                    return Command::Delay(1 + 23 * ctx.cpu.index() as u64);
                }
                FsState::Start => {
                    if self.iters == 0 {
                        return Command::Done;
                    }
                    self.iters -= 1;
                    self.state = FsState::Acquiring;
                    let r = self.driver.start_acquire(ctx);
                    return self.drive(r, ctx);
                }
                FsState::Acquiring => {
                    let r = self.driver.on_result(ctx, last);
                    return self.drive(r, ctx);
                }
                FsState::Update { left, writing } => {
                    if writing {
                        self.state = FsState::Update {
                            left,
                            writing: false,
                        };
                        return Command::Delay(CS_THINK);
                    }
                    if left > 1 {
                        self.state = FsState::Update {
                            left: left - 1,
                            writing: true,
                        };
                        return Command::Write(self.data, ctx.now);
                    }
                    self.state = FsState::Releasing;
                    let r = self.driver.start_release(ctx);
                    return self.drive(r, ctx);
                }
                FsState::Releasing => {
                    let r = self.driver.on_result(ctx, last);
                    return self.drive(r, ctx);
                }
                FsState::Think => {
                    self.state = FsState::Start;
                    continue;
                }
            }
        }
    }
}

/// Advances the allocation cursor to a fresh cache line: the next
/// [`MemorySystem::alloc`] lands on a `line`-aligned index. The filler
/// words are never touched, so under the flat word-granular model this
/// is invisible.
fn align_to_line(mem: &mut MemorySystem, line: usize) {
    while !(mem.alloc(NodeId(0)).index() + 1).is_multiple_of(line) {}
}

struct FsOutcome {
    ns_per_acquire: f64,
    global: u64,
}

/// One cell of the sweep: `kind` × `layout` × `proto`.
fn run_fs(scale: Scale, kind: LockKind, layout: Layout, proto: ProtocolKind) -> FsOutcome {
    let (per_node, iters) = scale.pick((14, 24), (4, 8));
    let machine = MachineConfig::wildfire(2, per_node).with_protocol(proto);
    let line = machine.geometry.line_words;
    let mut m = Machine::new(machine);
    let topo = Arc::clone(m.topology());
    let gt = GtSlots::alloc(m.mem_mut(), &topo);
    // Line-align the lock so "directly after the lock" deterministically
    // means "on the lock's line" regardless of how many words the global
    // throttling slots consumed.
    align_to_line(m.mem_mut(), line);
    let lock = build_lock(
        kind,
        m.mem_mut(),
        &topo,
        &gt,
        NodeId(0),
        &SimLockParams::default(),
    );
    if layout == Layout::Padded {
        align_to_line(m.mem_mut(), line);
    }
    let data = m.mem_mut().alloc(NodeId(0));
    for cpu in topo.cpus() {
        let node = topo.node_of(cpu);
        m.add_program(
            cpu,
            Box::new(FsProgram {
                driver: SessionDriver::new(lock.session(cpu, node)),
                data,
                iters,
                state: FsState::Stagger,
            }),
        );
    }
    let status = m.run(50_000_000_000);
    assert!(status.finished_all, "{kind}/{}/{proto}: run stuck", layout.name());
    let report = m.into_report();
    let acquires = topo.num_cpus() as u64 * u64::from(iters);
    FsOutcome {
        ns_per_acquire: report.end_time as f64 / acquires as f64,
        global: report.traffic.global,
    }
}

/// Runs the layout × protocol sweep plus the TWA-geometry table.
pub fn run(scale: Scale) -> Vec<Report> {
    vec![run_layouts(scale), run_twa_geometry(scale)]
}

/// The main table: lock kind × layout rows, per-protocol columns.
fn run_layouts(scale: Scale) -> Report {
    let mut report = Report::new(
        "falsesharing",
        "Lock/data false sharing by layout and coherence protocol",
        &[
            "Configuration",
            "flat ns/acq",
            "flat gtxn",
            "mesi ns/acq",
            "mesi gtxn",
            "dragon ns/acq",
            "dragon gtxn",
        ],
    );
    for kind in [LockKind::TatasExp, LockKind::HboGt, LockKind::Mcs] {
        for layout in Layout::ALL {
            let mut row = vec![format!("{kind} {}", layout.name())];
            for proto in ProtocolKind::ALL {
                let r = run_fs(scale, kind, layout, proto);
                row.push(format!("{:.0}", r.ns_per_acquire));
                row.push(format!("{}", r.global));
            }
            report.push_row(row);
        }
    }
    report.push_note(
        "flat is word-granular: colocated and padded rows are identical by \
         construction — the layout bug is invisible without line-granular \
         coherence",
    );
    report.push_note(
        "under MESI every critical-section update invalidates the spinners' \
         copy of the lock line and every poll steals it back; padding the \
         data onto its own line removes the stampede",
    );
    report
}

/// The TWA waiting-array geometry sweep, under MESI where slot adjacency
/// is a line-sharing question.
fn run_twa_geometry(scale: Scale) -> Report {
    let mut report = Report::new(
        "falsesharing_twa",
        "TWA waiting-array geometry under MESI (slots x ticket hash)",
        &["Geometry", "ns/acq", "global txns"],
    );
    use nuca_workloads::modern::{run_modern, ModernConfig};
    let (per_node, iters) = scale.pick((14, 40), (4, 15));
    for slots in [4usize, 16, 64] {
        for hash in TwaHash::ALL {
            let cfg = ModernConfig {
                kind: LockKind::Twa,
                machine: MachineConfig::wildfire(2, per_node)
                    .with_protocol(ProtocolKind::Mesi),
                threads: per_node * 2,
                iterations: iters,
                critical_work: 8,
                params: SimLockParams::default().with_twa(slots, hash),
                ..ModernConfig::default()
            };
            let r = run_modern(&cfg);
            assert!(r.finished, "TWA slots={slots} {hash} hit the cycle limit");
            report.push_row(vec![
                format!("slots={slots} {hash}"),
                format!("{:.0}", r.ns_per_iteration),
                format!("{}", r.traffic.global),
            ]);
        }
    }
    report.push_note(
        "mod parks consecutive tickets on adjacent array words (one line \
         holds 8 slots); stride=7 scatters neighbours across lines at the \
         same collision rate",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(r: &Report, key: &str, col: usize) -> f64 {
        r.row_by_key(key).unwrap()[col].parse().unwrap()
    }

    #[test]
    fn both_tables_have_every_row() {
        let reports = run(Scale::Fast);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].rows(), 6, "3 kinds x 2 layouts");
        assert_eq!(reports[1].rows(), 6, "3 slot counts x 2 hashes");
    }

    #[test]
    fn flat_cannot_see_the_layout_but_mesi_pays_for_it() {
        let r = run_layouts(Scale::Fast);
        for kind in ["TATAS_EXP", "HBO_GT", "MCS"] {
            let colocated = format!("{kind} colocated");
            let padded = format!("{kind} padded");
            // flat: layout is invisible — identical ns/acq AND identical
            // global-transaction counts.
            assert_eq!(
                cell(&r, &colocated, 1),
                cell(&r, &padded, 1),
                "{kind}: flat ns/acq differs across layouts"
            );
            assert_eq!(
                cell(&r, &colocated, 2),
                cell(&r, &padded, 2),
                "{kind}: flat traffic differs across layouts"
            );
        }
        // MESI: colocating the hot data word with the TATAS_EXP lock word
        // turns every critical-section update into a spinner-visible
        // invalidation — the padded layout must be measurably cheaper in
        // both time and global transactions.
        let gap = cell(&r, "TATAS_EXP colocated", 3) / cell(&r, "TATAS_EXP padded", 3);
        assert!(
            gap > 1.03,
            "MESI colocated/padded ns ratio {gap:.3} shows no false-sharing cost"
        );
        assert!(
            cell(&r, "TATAS_EXP colocated", 4) > cell(&r, "TATAS_EXP padded", 4),
            "MESI colocation did not add global traffic"
        );
    }

    #[test]
    fn twa_geometry_changes_the_run() {
        let r = run_twa_geometry(Scale::Fast);
        // Not asserting a direction (collision vs line-sharing trade), only
        // that the knob is live: the 6 geometries cannot all agree.
        let all: Vec<String> =
            (0..r.rows()).map(|i| r.cell(i, 1).unwrap().to_owned()).collect();
        assert!(
            all.iter().any(|v| v != &all[0]),
            "every TWA geometry produced identical ns/acq: {all:?}"
        );
    }
}

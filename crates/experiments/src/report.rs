//! Tabular experiment reports: console rendering and TSV export.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A rendered experiment artifact: a titled table of rows.
#[derive(Debug, Clone)]
pub struct Report {
    id: String,
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    /// Starts an empty report for artifact `id`.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Report {
        Report {
            id: id.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Appends a free-form note shown under the table.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Artifact id (`table1`, `fig5`, ...).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Human title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Looks up a cell as text (for tests).
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row).and_then(|r| r.get(col)).map(|s| s.as_str())
    }

    /// Finds the first row whose first column equals `key`.
    pub fn row_by_key(&self, key: &str) -> Option<&[String]> {
        self.rows.iter().find(|r| r[0] == key).map(|r| r.as_slice())
    }

    /// Renders an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Serializes as tab-separated values (header + rows).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }

    /// Writes `<dir>/<id>.tsv`, creating `dir` if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_tsv(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.tsv", self.id));
        fs::write(&path, self.to_tsv())?;
        Ok(path)
    }
}

/// Formats nanoseconds compactly ("2010 ns" / "1.41 ms").
pub fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_owned()
    } else if ns < 10_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 10_000_000.0 {
        format!("{:.1} us", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Formats a ratio with two decimals, or "n/a".
pub fn fmt_ratio(r: Option<f64>) -> String {
    match r {
        Some(v) if v.is_finite() => format!("{v:.2}"),
        _ => "n/a".to_owned(),
    }
}

/// Formats simulated seconds; unfinished runs render as `> limit`.
pub fn fmt_secs(seconds: f64, finished: bool) -> String {
    if finished {
        format!("{seconds:.3}")
    } else {
        format!("> {seconds:.0} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("t", "sample", &["lock", "value"]);
        r.push_row(vec!["TATAS".into(), "1".into()]);
        r.push_row(vec!["MCS".into(), "22".into()]);
        r.push_note("hello");
        r
    }

    #[test]
    fn render_aligns_and_includes_notes() {
        let s = sample().render();
        assert!(s.contains("== t — sample =="));
        assert!(s.contains("TATAS"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn tsv_roundtrip() {
        let tsv = sample().to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "lock\tvalue");
        assert_eq!(lines[2], "MCS\t22");
    }

    #[test]
    fn write_tsv_creates_file() {
        let dir = std::env::temp_dir().join("hbo_repro_report_test");
        let path = sample().write_tsv(&dir).unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn row_lookup() {
        let r = sample();
        assert_eq!(r.row_by_key("MCS").unwrap()[1], "22");
        assert!(r.row_by_key("QOLB").is_none());
        assert_eq!(r.cell(0, 1), Some("1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut r = Report::new("t", "t", &["a", "b"]);
        r.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ns(2010.0), "2010 ns");
        assert_eq!(fmt_ns(150_000.0), "150.0 us");
        assert_eq!(fmt_ns(f64::NAN), "n/a");
        assert_eq!(fmt_ratio(Some(0.5)), "0.50");
        assert_eq!(fmt_ratio(None), "n/a");
        assert_eq!(fmt_secs(1.5, true), "1.500");
        assert!(fmt_secs(200.0, false).starts_with("> 200"));
    }
}

//! `showdown` — the 2003 field against the post-2003 contenders.
//!
//! The catalog's modern kinds (CNA, TWA, Reciprocating) were published
//! fifteen-plus years after the paper, each attacking the same NUCA
//! contention problem from a different angle: CNA reorders an MCS-style
//! queue for node locality, TWA splits the ticket lock's waiter herd
//! across a hashed array, Reciprocating admits arrivals in palindromic
//! batches. This artifact runs every selected kind head-to-head on the
//! Fig. 5 microbenchmark at the Table 2 operating point, undisturbed and
//! under the robustness artifact's heaviest disturbance level (heavy
//! multiprogramming plus the full fault stack), and reports per cell:
//! completion time, p99 time-to-acquire, undisturbed handoff locality,
//! and the fault-degradation factor — alongside each kind's catalog
//! family and year, so the table reads as a forty-year timeline.
//!
//! The headline question: does HBO_GT_SD's NUCA advantage survive CNA —
//! a lock that gets comparable handoff locality out of a FIFO-ish queue —
//! once preemption enters? (Spoiler, reproduced here: CNA inherits the
//! queue family's preemption fragility; the backoff family's anarchy is
//! what degrades gracefully.)
//!
//! Honors `--kinds`; leaf runs go through [`runner::run_jobs`], so the
//! TSV is byte-identical for any `--jobs` and `--sched` setting.

use hbo_locks::{LockCatalog, LockKind};
use nuca_workloads::modern::{run_modern_raw, ModernConfig};
use nucasim::{cycles_to_ns, MachineConfig};

use crate::report::{fmt_ratio, fmt_secs, Report};
use crate::robustness::{levels, Disturbance};
use crate::{kinds, runner, Scale};

/// The two showdown disturbance levels: undisturbed, and the robustness
/// sweep's heaviest (heavy multiprogramming + every fault layer).
fn disturbances(scale: Scale) -> Vec<Disturbance> {
    let lv = levels(scale);
    vec![lv[0], *lv.last().expect("robustness always has levels")]
}

/// One measured cell.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Disturbance level label.
    pub level: &'static str,
    /// Simulated completion time in seconds; an unfinished run reports
    /// its cycle budget (a lower bound).
    pub seconds: f64,
    /// Whether the run completed inside the cycle budget.
    pub finished: bool,
    /// 99th-percentile time-to-acquire, nanoseconds.
    pub p99_wait_ns: u64,
    /// Node-handoff ratio (remote handovers / opportunities).
    pub handoff_ratio: Option<f64>,
}

/// One sweep row: a lock kind at a processor count, measured at both
/// disturbance levels.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Algorithm under test.
    pub kind: LockKind,
    /// Contending processors.
    pub cpus: usize,
    /// One cell per [`disturbances`] entry, in order.
    pub cells: Vec<Cell>,
}

impl SweepRow {
    /// Completion-time factor of the disturbed cell over the undisturbed
    /// one. Unfinished runs report their cycle budget, so a collapsed
    /// lock yields a lower bound.
    pub fn degradation(&self) -> f64 {
        let base = self.cells[0].seconds;
        self.cells.last().expect("two levels").seconds / base
    }
}

fn cell_cfg(scale: Scale, kind: LockKind, cpus: usize, d: &Disturbance) -> ModernConfig {
    let mut machine = MachineConfig::wildfire(2, cpus / 2);
    if let Some(p) = d.preemption {
        machine = machine.with_preemption(p);
    }
    if d.faults.is_active() {
        machine = machine.with_faults(d.faults);
    }
    ModernConfig {
        kind,
        machine,
        threads: cpus,
        iterations: scale.pick(100, 20),
        // The Table 2 operating point: enough critical work that handoff
        // locality, not raw grant throughput, decides the ordering.
        critical_work: 1500,
        cycle_limit: scale.pick(12_500_000_000, 3_000_000_000),
        ..ModernConfig::default()
    }
}

/// Runs the full sweep over [`kinds::selected`] × processor count ×
/// disturbance level; deterministic for any `--jobs`/`--sched` setting.
pub fn sweep(scale: Scale) -> Vec<SweepRow> {
    let cpu_counts: Vec<usize> = scale.pick(vec![8, 28], vec![4, 8]);
    let dist = disturbances(scale);
    let grid: Vec<(LockKind, usize)> = kinds::selected()
        .iter()
        .flat_map(|&kind| cpu_counts.iter().map(move |&c| (kind, c)))
        .collect();
    let jobs: Vec<_> = grid
        .iter()
        .flat_map(|&(kind, cpus)| dist.iter().map(move |d| (kind, cpus, *d)))
        .map(|(kind, cpus, d)| {
            move || {
                let cfg = cell_cfg(scale, kind, cpus, &d);
                let (report, _) = run_modern_raw(&cfg);
                Cell {
                    level: d.name,
                    seconds: report.seconds(),
                    finished: report.finished_all,
                    p99_wait_ns: cycles_to_ns(
                        report.lock_traces[0].wait.percentile(99.0).unwrap_or(0),
                    ),
                    handoff_ratio: report.lock_traces[0].handoff_ratio(),
                }
            }
        })
        .collect();
    let cells = runner::run_jobs(jobs);
    grid.iter()
        .zip(cells.chunks(dist.len()))
        .map(|(&(kind, cpus), chunk)| SweepRow {
            kind,
            cpus,
            cells: chunk.to_vec(),
        })
        .collect()
}

/// The `showdown` artifact table.
pub fn run(scale: Scale) -> Report {
    let dist = disturbances(scale);
    let mut header = vec![
        "Lock Type".to_owned(),
        "Family".to_owned(),
        "Year".to_owned(),
        "CPUs".to_owned(),
    ];
    header.extend(dist.iter().map(|d| format!("{} (s)", d.name)));
    header.push("degradation".to_owned());
    for d in &dist {
        header.push(format!("p99 wait {} (ns)", d.name));
    }
    header.push("remote HO rate".to_owned());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new(
        "showdown",
        "Modern-lock showdown: 2003 field vs CNA/TWA/RECIP, undisturbed \
         and under the full fault stack (critical_work=1500)",
        &header_refs,
    );
    for row in sweep(scale) {
        let info = LockCatalog::info(row.kind);
        let mut cells = vec![
            info.name.to_owned(),
            info.family.as_str().to_owned(),
            info.year.to_string(),
            row.cpus.to_string(),
        ];
        cells.extend(row.cells.iter().map(|c| fmt_secs(c.seconds, c.finished)));
        cells.push(format!("{:.1}", row.degradation()));
        cells.extend(row.cells.iter().map(|c| c.p99_wait_ns.to_string()));
        // Locality from the undisturbed cell: the disturbed one measures
        // survival, not preference.
        cells.push(fmt_ratio(row.cells[0].handoff_ratio));
        report.push_row(cells);
    }
    report.push_note(
        "headline: CNA matches the HBO family's undisturbed handoff \
         locality from a queue, but inherits the queue family's collapse \
         under preemption — HBO_GT_SD's advantage in 2003 was robustness, \
         and it survives the 2019 contenders",
    );
    report.push_note(
        "degradation = heavy+faults time / undisturbed time; unfinished \
         runs report their cycle budget, so collapsed cells are lower \
         bounds",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_the_selected_grid_with_catalog_metadata() {
        let r = run(Scale::Fast);
        assert_eq!(r.rows(), kinds::selected().len() * 2);
        // Modern contenders ride alongside every 2003 kind, with their
        // catalog family/year in the row.
        let cna = r.row_by_key("CNA").unwrap();
        assert_eq!(cna[1], "hybrid");
        assert_eq!(cna[2], "2019");
        let hbo = r.row_by_key("HBO_GT_SD").unwrap();
        assert_eq!(hbo[1], "backoff");
        assert_eq!(hbo[2], "2003");
        let recip = r.row_by_key("RECIP").unwrap();
        assert_eq!(recip[2], "2025");
    }

    #[test]
    fn faults_never_speed_a_lock_up() {
        for row in sweep(Scale::Fast) {
            assert!(
                row.degradation() >= 1.0,
                "{} at {} cpus sped up under faults: {:.2}",
                row.kind,
                row.cpus,
                row.degradation()
            );
        }
    }

    #[test]
    fn cna_handoffs_are_node_clustered_twa_handoffs_are_fifo_blind() {
        // The tentpole physics, visible in the artifact itself: CNA's
        // secondary queue keeps handoffs node-local; TWA inherits the
        // ticket lock's node-blind FIFO order.
        let rows = sweep(Scale::Fast);
        let rate = |kind: LockKind| {
            rows.iter()
                .filter(|r| r.kind == kind)
                .filter_map(|r| r.cells[0].handoff_ratio)
                .fold(0.0f64, f64::max)
        };
        assert!(
            rate(LockKind::Cna) < rate(LockKind::Twa),
            "CNA {:.3} should hand off more locally than TWA {:.3}",
            rate(LockKind::Cna),
            rate(LockKind::Twa)
        );
    }
}

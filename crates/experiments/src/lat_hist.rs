//! `lat_hist` — acquire-latency distribution extension artifact.
//!
//! The paper reports *mean* iteration times (Fig. 5); the always-on
//! latency histograms let this reproduction also report the distribution
//! tail, which is where the starvation stories live: queue locks bound the
//! tail by FIFO order, backoff locks trade a fatter tail for better
//! throughput, and HBO_GT_SD's `GET_ANGRY` mechanism exists precisely to
//! clip that tail. Each cell shows `p50/p99/max` time-to-acquire in
//! nanoseconds at the Fig. 5 sweep points.

use hbo_locks::LockKind;
use nucasim::cycles_to_ns;

use nuca_workloads::modern::run_modern_raw;

use crate::report::Report;
use crate::{fig5, kinds, runner, Scale};

/// Runs the sweep and renders the percentile table.
pub fn run(scale: Scale) -> Report {
    let cws = fig5::sweep(scale);
    let mut header = vec!["Lock Type".to_owned()];
    header.extend(cws.iter().map(|c| format!("cw={c}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut report = Report::new(
        "lat_hist",
        "Time-to-acquire p50/p99/max (ns) vs critical_work, 28 processors",
        &header_refs,
    );

    // Same grid — and same TATAS dash rule — as Fig. 5.
    let sweep_kinds = kinds::selected();
    let jobs: Vec<_> = sweep_kinds
        .iter()
        .flat_map(|&kind| cws.iter().map(move |&cw| (kind, cw)))
        .map(|(kind, cw)| {
            move || {
                if kind == LockKind::Tatas && cw > 1300 {
                    None
                } else {
                    let (sim, _) = run_modern_raw(&fig5::config(scale, kind, cw));
                    Some(sim)
                }
            }
        })
        .collect();
    let results = runner::run_jobs(jobs);

    for (ki, kind) in sweep_kinds.iter().enumerate() {
        let mut row = vec![kind.as_str().to_owned()];
        for r in &results[ki * cws.len()..(ki + 1) * cws.len()] {
            row.push(match r {
                Some(sim) => {
                    let wait = &sim.lock_traces[0].wait;
                    match (wait.percentile(50.0), wait.percentile(99.0)) {
                        (Some(p50), Some(p99)) => format!(
                            "{}/{}/{}",
                            cycles_to_ns(p50),
                            cycles_to_ns(p99),
                            cycles_to_ns(wait.max())
                        ),
                        _ => "n/a".to_owned(),
                    }
                }
                None => "-".to_owned(),
            });
        }
        report.push_row(row);
    }
    report.push_note(
        "extension artifact (not in the paper): log2-bucket histogram \
         percentiles of the time from first acquire step to lock grant; \
         queue locks bound the tail, backoff locks trade tail for \
         throughput, GET_ANGRY clips the worst case",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_locks_with_percentile_cells() {
        let r = run(Scale::Fast);
        assert_eq!(r.rows(), kinds::selected().len());
        for &kind in kinds::selected() {
            let row = r.row_by_key(kind.as_str()).unwrap();
            // Every measured cell is "p50/p99/max".
            let measured: Vec<&String> =
                row[1..].iter().filter(|c| c.as_str() != "-").collect();
            assert!(!measured.is_empty(), "{kind} has no measured cells");
            for cell in measured {
                let parts: Vec<&str> = cell.split('/').collect();
                assert_eq!(parts.len(), 3, "{kind}: bad cell {cell}");
                let p50: u64 = parts[0].parse().unwrap();
                let p99: u64 = parts[1].parse().unwrap();
                let max: u64 = parts[2].parse().unwrap();
                assert!(p50 <= p99 && p99 <= max, "{kind}: unordered {cell}");
            }
        }
        // TATAS keeps the Fig. 5 dash rule beyond cw=1300.
        let tatas = r.row_by_key("TATAS").unwrap();
        assert_eq!(tatas.last().unwrap(), "-");
    }

    #[test]
    fn queue_lock_tail_is_bounded_vs_backoff() {
        // FIFO order bounds the p99/p50 spread; plain TATAS does not. A
        // shape check at the last column TATAS is still measured at.
        let r = run(Scale::Fast);
        let tatas = r.row_by_key("TATAS").unwrap();
        let col = tatas
            .iter()
            .rposition(|c| c != "-" && c != "TATAS")
            .expect("TATAS has a measured column");
        let spread = |key: &str| {
            let cell = &r.row_by_key(key).unwrap()[col];
            let parts: Vec<u64> = cell.split('/').map(|p| p.parse().unwrap()).collect();
            parts[1] as f64 / parts[0].max(1) as f64
        };
        assert!(
            spread("MCS") < spread("TATAS"),
            "MCS {:.1} vs TATAS {:.1}",
            spread("MCS"),
            spread("TATAS")
        );
    }
}

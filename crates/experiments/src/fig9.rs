//! Figure 9 — sensitivity of HBO_GT_SD to `REMOTE_BACKOFF_CAP`
//! (26-processor new-microbenchmark runs, normalized, MCS for
//! comparison).

use hbo_locks::LockKind;
use nuca_workloads::modern::{run_modern, ModernConfig};
use nucasim::MachineConfig;
use nucasim_locks::SimLockParams;

use crate::report::Report;
use crate::{runner, Scale};

fn base_config(scale: Scale, kind: LockKind) -> ModernConfig {
    let (per_node, iters) = scale.pick((13, 40), (4, 20));
    ModernConfig {
        kind,
        machine: MachineConfig::wildfire(2, per_node),
        threads: per_node * 2,
        iterations: iters,
        critical_work: 1000,
        ..ModernConfig::default()
    }
}

/// Sweeps the remote backoff cap; values normalized to the default cap.
pub fn run(scale: Scale) -> Report {
    let caps: Vec<u32> = scale.pick(
        vec![3_200, 6_400, 12_800, 25_600, 51_200, 102_400, 204_800],
        vec![6_400, 51_200, 204_800],
    );
    let default_cap = SimLockParams::default().remote.cap;
    let mut header = vec!["Lock Type".to_owned()];
    header.extend(caps.iter().map(|c| format!("cap={c}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new(
        "fig9",
        "Sensitivity of HBO_GT_SD to REMOTE_BACKOFF_CAP (normalized iteration time, 26 CPUs)",
        &header_refs,
    );

    // Jobs: [reference HBO_GT_SD at default cap] + one per swept cap +
    // [MCS comparison]; normalization happens at assembly so every cell
    // divides by the same reference run.
    let mut jobs: Vec<Box<dyn FnOnce() -> f64 + Send>> = vec![Box::new(move || {
        run_modern(&base_config(scale, LockKind::HboGtSd)).ns_per_iteration
    })];
    for &cap in &caps {
        jobs.push(Box::new(move || {
            let mut cfg = base_config(scale, LockKind::HboGtSd);
            cfg.params = cfg.params.with_remote_cap(cap);
            run_modern(&cfg).ns_per_iteration
        }));
    }
    jobs.push(Box::new(move || {
        run_modern(&base_config(scale, LockKind::Mcs)).ns_per_iteration
    }));
    let results = runner::run_jobs(jobs);

    // Reference point: HBO_GT_SD at its default cap.
    let reference = results[0];

    let mut sd_row = vec!["HBO_GT_SD".to_owned()];
    for ns in &results[1..=caps.len()] {
        sd_row.push(format!("{:.2}", ns / reference));
    }
    report.push_row(sd_row);

    // MCS comparison line (cap-independent — one value repeated).
    let mcs = results[caps.len() + 1];
    let mut mcs_row = vec!["MCS".to_owned()];
    for _ in &caps {
        mcs_row.push(format!("{:.2}", mcs / reference));
    }
    report.push_row(mcs_row);

    report.push_note(format!("normalized to HBO_GT_SD at its default cap ({default_cap})"));
    report.push_note(
        "paper: HBO_GT_SD stays below MCS across a wide cap range; very \
         small caps lose the traffic throttling benefit",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sd_and_mcs_rows_present() {
        let r = run(Scale::Fast);
        assert_eq!(r.rows(), 2);
        assert!(r.row_by_key("HBO_GT_SD").is_some());
        assert!(r.row_by_key("MCS").is_some());
    }

    #[test]
    fn sd_beats_mcs_at_default_cap() {
        let r = run(Scale::Fast);
        // Column for cap=51200 (the default) in the fast sweep.
        let sd: f64 = r.row_by_key("HBO_GT_SD").unwrap()[2].parse().unwrap();
        let mcs: f64 = r.row_by_key("MCS").unwrap()[2].parse().unwrap();
        assert!(sd < mcs, "HBO_GT_SD {sd} vs MCS {mcs}");
    }
}

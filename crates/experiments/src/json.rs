//! A minimal, escaping-correct JSON writer shared by every artifact that
//! emits JSON (the bench baseline, the Chrome trace, the metrics dump).
//!
//! The standard library has no JSON support and this crate takes no
//! external dependencies, so each writer used to hand-roll `format!`
//! strings — correct only until a value contains a quote or backslash.
//! [`JsonWriter`] centralizes the quoting/escaping/comma bookkeeping; the
//! caller just opens containers and emits fields.

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Streaming JSON writer with automatic comma placement and optional
/// two-space pretty-printing.
///
/// ```
/// use nuca_experiments::json::JsonWriter;
///
/// let mut w = JsonWriter::compact();
/// w.begin_object();
/// w.field_str("name", "fig5");
/// w.key("rows");
/// w.begin_array();
/// w.number_u64(28);
/// w.end_array();
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"name":"fig5","rows":[28]}"#);
/// ```
#[derive(Debug)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: whether it already holds an element.
    stack: Vec<bool>,
    pretty: bool,
    /// A key was just written; the next value continues the same line.
    pending_key: bool,
}

impl JsonWriter {
    /// A pretty-printing writer (two-space indent, one element per line).
    pub fn new() -> JsonWriter {
        JsonWriter {
            buf: String::new(),
            stack: Vec::new(),
            pretty: true,
            pending_key: false,
        }
    }

    /// A compact writer (no whitespace) — for large event streams.
    pub fn compact() -> JsonWriter {
        JsonWriter {
            pretty: false,
            ..JsonWriter::new()
        }
    }

    fn prepare_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has_elem) = self.stack.last_mut() {
            if *has_elem {
                self.buf.push(',');
            }
            *has_elem = true;
            if self.pretty {
                self.buf.push('\n');
                for _ in 0..self.stack.len() {
                    self.buf.push_str("  ");
                }
            }
        }
    }

    fn close(&mut self, c: char) {
        let had_elem = self.stack.pop().expect("close without open container");
        if self.pretty && had_elem {
            self.buf.push('\n');
            for _ in 0..self.stack.len() {
                self.buf.push_str("  ");
            }
        }
        self.buf.push(c);
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) {
        self.prepare_value();
        self.buf.push('{');
        self.stack.push(false);
    }

    /// Closes `}`.
    pub fn end_object(&mut self) {
        self.close('}');
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) {
        self.prepare_value();
        self.buf.push('[');
        self.stack.push(false);
    }

    /// Closes `]`.
    pub fn end_array(&mut self) {
        self.close(']');
    }

    /// Writes an object key; the next emission is its value.
    pub fn key(&mut self, k: &str) {
        self.prepare_value();
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str(if self.pretty { "\": " } else { "\":" });
        self.pending_key = true;
    }

    /// Writes a string value.
    pub fn string(&mut self, v: &str) {
        self.prepare_value();
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
    }

    /// Writes an integer value.
    pub fn number_u64(&mut self, v: u64) {
        self.prepare_value();
        let _ = write!(self.buf, "{v}");
    }

    /// Writes a pre-formatted numeric value (caller controls precision).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a plain JSON number (defends against `NaN`,
    /// `inf`, and accidental injection).
    pub fn number_raw(&mut self, v: &str) {
        assert!(
            v.bytes()
                .all(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')),
            "not a JSON number: {v}"
        );
        self.prepare_value();
        self.buf.push_str(v);
    }

    /// Writes a boolean value.
    pub fn boolean(&mut self, v: bool) {
        self.prepare_value();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Key + string value.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.string(v);
    }

    /// Key + integer value.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.number_u64(v);
    }

    /// Key + pre-formatted numeric value.
    pub fn field_raw(&mut self, k: &str, v: &str) {
        self.key(k);
        self.number_raw(v);
    }

    /// Finishes and returns the document (with a trailing newline when
    /// pretty).
    ///
    /// # Panics
    ///
    /// Panics if a container is still open.
    pub fn finish(mut self) -> String {
        assert!(self.stack.is_empty(), "unclosed JSON container");
        if self.pretty {
            self.buf.push('\n');
        }
        self.buf
    }
}

impl Default for JsonWriter {
    fn default() -> JsonWriter {
        JsonWriter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_every_special() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny\t"), "x\\ny\\t");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn compact_object_with_everything() {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.field_str("s", "a\"b");
        w.field_u64("n", 7);
        w.field_raw("f", "1.5");
        w.key("ok");
        w.boolean(true);
        w.key("list");
        w.begin_array();
        w.number_u64(1);
        w.number_u64(2);
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"s":"a\"b","n":7,"f":1.5,"ok":true,"list":[1,2]}"#
        );
    }

    #[test]
    fn pretty_indents_nested_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.begin_array();
        w.number_u64(1);
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), "{\n  \"a\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn empty_containers_close_inline() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.end_array();
        assert_eq!(w.finish(), "[]\n");
    }

    #[test]
    #[should_panic(expected = "not a JSON number")]
    fn raw_number_rejects_nan() {
        let mut w = JsonWriter::compact();
        w.number_raw("NaN");
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unbalanced_containers_panic() {
        let mut w = JsonWriter::compact();
        w.begin_object();
        let _ = w.finish();
    }
}

//! Lockserver extension — a sharded million-object lock service.
//!
//! Sweeps lock kind × shard count × disturbance level on the
//! [`nuca_workloads::lockserver`] workload: open-loop bursty arrivals over
//! a Zipfian key space, readers and writers mixed. Reported per cell:
//! request-latency percentiles (p50/p99/p999), goodput under the SLO,
//! requests served, and cross-node fairness. The offered load is set above
//! service capacity, so the sweep shows how each lock family sheds
//! overload — the paper's Fig. 5 contention story retold in service
//! metrics instead of iteration throughput.
//!
//! Full scale locks a million objects per cell (the sparse
//! [`nucasim::LockTally`] tier keeps that affordable); `--fast` shrinks
//! the table for CI. The `--shards`, `--zipf` and `--arrival-gap` flags
//! override the corresponding axes for ad-hoc capacity exploration.
//!
//! Leaf runs go through [`runner::run_jobs`], so the TSV is byte-identical
//! for any `--jobs` and `--sched` setting.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use hbo_locks::LockKind;
use nuca_workloads::lockserver::{run_lockserver, LockServerConfig};
use nucasim::MachineConfig;

use crate::report::{fmt_ratio, Report};
use crate::robustness::{levels, Disturbance};
use crate::{kinds, runner, Scale};

/// `--shards` override; 0 means "use the sweep's default axis".
static SHARDS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// `--zipf` override in millionths; 0 means default (0.99).
static ZIPF_MICRO_OVERRIDE: AtomicU64 = AtomicU64::new(0);
/// `--arrival-gap` override in cycles; 0 means the scale's default.
static GAP_OVERRIDE: AtomicU64 = AtomicU64::new(0);

/// Applies the `--shards` flag: replaces the shard-count axis with this
/// single value for the whole sweep.
pub fn set_shards(n: usize) {
    SHARDS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Applies the `--zipf` flag: Zipfian skew θ for the key distribution.
pub fn set_zipf_theta(theta: f64) {
    ZIPF_MICRO_OVERRIDE.store((theta * 1e6) as u64, Ordering::Relaxed);
}

/// Applies the `--arrival-gap` flag: mean cycles between request batches.
pub fn set_arrival_gap(cycles: u64) {
    GAP_OVERRIDE.store(cycles, Ordering::Relaxed);
}

/// The swept shard counts: a contended table (few shards) and a spread
/// one, or the single `--shards` override.
fn shard_axis(scale: Scale) -> Vec<usize> {
    match SHARDS_OVERRIDE.load(Ordering::Relaxed) {
        0 => scale.pick(vec![4, 64], vec![2, 8]),
        n => vec![n],
    }
}

fn zipf_theta() -> f64 {
    match ZIPF_MICRO_OVERRIDE.load(Ordering::Relaxed) {
        0 => 0.99,
        micro => micro as f64 / 1e6,
    }
}

fn mean_gap(scale: Scale) -> u64 {
    match GAP_OVERRIDE.load(Ordering::Relaxed) {
        // Default offered load sits above service capacity under
        // contention: each served request costs several thousand cycles
        // of lock traffic, each batch brings up to 4.
        0 => scale.pick(6_000, 4_000),
        gap => gap,
    }
}

/// The disturbance levels the service is swept under: undisturbed and the
/// full fault stack (reusing the robustness artifact's heaviest level).
fn disturbances(scale: Scale) -> Vec<Disturbance> {
    let lv = levels(scale);
    vec![lv[0], *lv.last().expect("robustness always has levels")]
}

fn cell_cfg(scale: Scale, kind: LockKind, shards: usize, d: &Disturbance) -> LockServerConfig {
    let mut machine = MachineConfig::wildfire(2, scale.pick(14, 4));
    if let Some(p) = d.preemption {
        machine = machine.with_preemption(p);
    }
    if d.faults.is_active() {
        machine = machine.with_faults(d.faults);
    }
    LockServerConfig {
        kind,
        machine,
        threads: scale.pick(28, 8),
        shards,
        objects: scale.pick(1_000_000, 4_096),
        zipf_theta: zipf_theta(),
        write_pct: 50,
        requests: scale.pick(120, 25),
        mean_gap: mean_gap(scale),
        burst: 4,
        slo: scale.pick(400_000, 200_000),
        cycle_limit: scale.pick(12_500_000_000, 3_000_000_000),
        ..LockServerConfig::default()
    }
}

/// One measured cell of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Disturbance level label.
    pub level: &'static str,
    /// Whether every thread served its quota inside the cycle budget.
    pub finished: bool,
    /// Median request latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile request latency, ns.
    pub p99_ns: u64,
    /// 99.9th-percentile request latency, ns.
    pub p999_ns: u64,
    /// Requests served within the SLO, percent.
    pub goodput_pct: f64,
    /// Requests served.
    pub served: u64,
    /// Cross-node fairness (min node share / max node share).
    pub fairness: f64,
    /// Distinct objects locked at least once.
    pub objects_touched: usize,
}

/// One sweep row: a lock kind at a shard count, measured at every
/// disturbance level.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Algorithm under test.
    pub kind: LockKind,
    /// Shard locks in the table.
    pub shards: usize,
    /// One cell per [`disturbances`] entry, in order.
    pub cells: Vec<Cell>,
}

/// Runs the full sweep; deterministic and byte-identical for any `--jobs`
/// and `--sched` setting.
pub fn sweep(scale: Scale) -> Vec<SweepRow> {
    let shard_counts = shard_axis(scale);
    let dist = disturbances(scale);
    let grid: Vec<(LockKind, usize)> = kinds::selected()
        .iter()
        .flat_map(|&kind| shard_counts.iter().map(move |&s| (kind, s)))
        .collect();
    let jobs: Vec<_> = grid
        .iter()
        .flat_map(|&(kind, shards)| dist.iter().map(move |d| (kind, shards, *d)))
        .map(|(kind, shards, d)| {
            move || {
                let cfg = cell_cfg(scale, kind, shards, &d);
                let r = run_lockserver(&cfg);
                Cell {
                    level: d.name,
                    finished: r.finished,
                    p50_ns: r.p50_ns,
                    p99_ns: r.p99_ns,
                    p999_ns: r.p999_ns,
                    goodput_pct: r.goodput_pct,
                    served: r.served,
                    fairness: r.fairness,
                    objects_touched: r.objects_touched,
                }
            }
        })
        .collect();
    let cells = runner::run_jobs(jobs);
    grid.iter()
        .zip(cells.chunks(dist.len()))
        .map(|(&(kind, shards), chunk)| SweepRow {
            kind,
            shards,
            cells: chunk.to_vec(),
        })
        .collect()
}

/// The `lockserver` artifact: request-latency tails, goodput and fairness
/// per lock kind × shard count × disturbance level.
pub fn run(scale: Scale) -> Report {
    let dist = disturbances(scale);
    let mut header = vec!["Lock Type".to_owned(), "Shards".to_owned()];
    for d in &dist {
        for col in ["p50", "p99", "p999"] {
            header.push(format!("{col} {} (ns)", d.name));
        }
        header.push(format!("goodput {} (%)", d.name));
        header.push(format!("fairness {}", d.name));
    }
    header.push("served".to_owned());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new(
        "lockserver",
        "Sharded lock service: latency tails, goodput and fairness under overload",
        &header_refs,
    );
    for row in sweep(scale) {
        let mut cells = vec![row.kind.as_str().to_owned(), row.shards.to_string()];
        for c in &row.cells {
            let mark = |v: u64| {
                if c.finished {
                    v.to_string()
                } else {
                    format!("> {v}")
                }
            };
            cells.push(mark(c.p50_ns));
            cells.push(mark(c.p99_ns));
            cells.push(mark(c.p999_ns));
            cells.push(format!("{:.1}", c.goodput_pct));
            cells.push(fmt_ratio(Some(c.fairness)));
        }
        cells.push(
            row.cells
                .first()
                .map(|c| c.served.to_string())
                .unwrap_or_default(),
        );
        report.push_row(cells);
    }
    report.push_note(
        "open-loop Zipfian request load over a sharded lock table at an \
         offered rate above service capacity: the backoff family sheds \
         overload with flatter p99/p999 tails than the FIFO queue locks, \
         and the gap widens once the fault stack (holder preemption, \
         migration, slow node, jitter) is switched on",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_the_grid() {
        let r = run(Scale::Fast);
        assert_eq!(r.rows(), kinds::selected().len() * 2);
    }

    #[test]
    fn sweep_metrics_are_sane() {
        for row in sweep(Scale::Fast) {
            for c in &row.cells {
                assert!(c.finished, "{} {} shards hit the budget", row.kind, row.shards);
                assert!(c.p50_ns > 0 && c.p50_ns <= c.p99_ns && c.p99_ns <= c.p999_ns);
                assert!((0.0..=100.0).contains(&c.goodput_pct));
                assert!((0.0..=1.0).contains(&c.fairness));
                assert!(c.objects_touched > 0);
                assert_eq!(c.served, 8 * 25);
            }
        }
    }

    #[test]
    fn fault_stack_never_improves_the_tail() {
        // Deterministic runs: the heaviest disturbance level must not
        // report a better p99 than the undisturbed one for any cell.
        for row in sweep(Scale::Fast) {
            let none = &row.cells[0];
            let faulted = row.cells.last().expect("two levels");
            assert!(
                faulted.p99_ns >= none.p99_ns,
                "{} {} shards: faulted p99 {} < undisturbed {}",
                row.kind,
                row.shards,
                faulted.p99_ns,
                none.p99_ns
            );
        }
    }
}

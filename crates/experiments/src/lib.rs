//! Regenerates every table and figure of the paper's evaluation (§5–§6).
//!
//! Each experiment has an id matching the paper artifact (`table1`,
//! `fig3`, ..., `fig10`); [`run_experiment`] dispatches on it, prints the
//! rows/series the paper reports, and writes a TSV next to the binary's
//! working directory under `target/experiments/`.
//!
//! ```bash
//! cargo run --release -p nuca-experiments -- all          # everything
//! cargo run --release -p nuca-experiments -- fig5         # one artifact
//! cargo run --release -p nuca-experiments -- table4 --fast # CI-scale
//! ```
//!
//! Absolute numbers come from the `nucasim` machine model, not the
//! authors' WildFire, so only the *shape* (orderings, ratios, crossovers)
//! is expected to match; `EXPERIMENTS.md` records paper-vs-measured for
//! every artifact.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps_exp;
pub mod cli;
pub mod colloc;
pub mod falsesharing;
pub mod fig10;
pub mod fig3;
pub mod fig5;
pub mod fig8;
pub mod fig9;
pub mod hier_exp;
pub mod json;
pub mod kinds;
pub mod lat_hist;
pub mod lockserver;
pub mod nuca_ratio;
pub mod profiler;
pub mod raytrace_exp;
pub mod report;
pub mod robustness;
pub mod runner;
pub mod showdown;
pub mod table1;
pub mod table3;
pub mod ticket_exp;
pub mod tracecap;

use std::error::Error;
use std::fmt;

pub use report::Report;

/// How big to run: `Full` approximates the paper's workload volume;
/// `Fast` is for tests and smoke runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale runs (tens of seconds per artifact).
    Full,
    /// Reduced iteration counts and sweeps (seconds total).
    Fast,
}

impl Scale {
    /// Picks `full` or `fast` depending on the scale.
    pub fn pick<T>(self, full: T, fast: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Fast => fast,
        }
    }
}

/// Error for an unknown experiment id.
#[derive(Debug, Clone)]
pub struct UnknownExperiment(pub String);

impl fmt::Display for UnknownExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown experiment `{}` (valid: {}, {}, all)",
            self.0,
            EXPERIMENTS.join(", "),
            EXTENSIONS.join(", ")
        )
    }
}

impl Error for UnknownExperiment {}

/// All experiment ids, in paper order.
pub const EXPERIMENTS: [&str; 13] = [
    "table1", "fig3", "fig5", "table2", "table3", "table4", "table5", "table6", "fig6", "fig7",
    "fig8", "fig9", "fig10",
];

/// Extension experiments beyond the paper.
pub const EXTENSIONS: [&str; 10] = [
    "nuca_ratio",
    "hier",
    "colloc",
    "falsesharing",
    "ticket",
    "lat_hist",
    "robustness",
    "handoff",
    "lockserver",
    "showdown",
];

/// Runs one experiment (or `all`) and returns its report(s).
///
/// # Errors
///
/// Returns [`UnknownExperiment`] if `id` is not a known artifact id.
pub fn run_experiment(id: &str, scale: Scale) -> Result<Vec<Report>, UnknownExperiment> {
    match id {
        "table1" => Ok(vec![table1::run(scale)]),
        "fig3" => Ok(fig3::run(scale)),
        "fig5" => Ok(fig5::run(scale)),
        "table2" => Ok(vec![fig5::run_table2(scale)]),
        "table3" => Ok(vec![table3::run()]),
        "table4" => Ok(vec![raytrace_exp::run_table4(scale)]),
        "table5" => Ok(vec![apps_exp::run_table5(scale)]),
        "table6" => Ok(vec![apps_exp::run_table6(scale)]),
        "fig6" => Ok(vec![apps_exp::run_fig6(scale)]),
        "fig7" => Ok(vec![raytrace_exp::run_fig7(scale)]),
        "fig8" => Ok(vec![fig8::run(scale)]),
        "fig9" => Ok(vec![fig9::run(scale)]),
        "fig10" => Ok(vec![fig10::run(scale)]),
        "nuca_ratio" => Ok(vec![nuca_ratio::run(scale)]),
        "hier" => Ok(vec![hier_exp::run(scale)]),
        "colloc" => Ok(vec![colloc::run(scale)]),
        "falsesharing" => Ok(falsesharing::run(scale)),
        "ticket" => Ok(vec![ticket_exp::run(scale)]),
        "lat_hist" => Ok(vec![lat_hist::run(scale)]),
        "robustness" => Ok(vec![robustness::run(scale)]),
        "handoff" => Ok(vec![profiler::run_handoff(scale)]),
        "lockserver" => Ok(vec![lockserver::run(scale)]),
        "showdown" => Ok(vec![showdown::run(scale)]),
        "all" => {
            // Fan the artifacts out across orchestration threads (their
            // leaf sim jobs share the global --jobs budget) and flatten
            // the reports in the fixed id order.
            let tasks: Vec<_> = EXPERIMENTS
                .iter()
                .chain(EXTENSIONS.iter())
                .map(|&id| move || run_experiment(id, scale))
                .collect();
            let mut out = Vec::new();
            for reports in runner::run_fanout(tasks) {
                out.extend(reports.expect("every fanned-out id is a known artifact"));
            }
            Ok(out)
        }
        other => Err(UnknownExperiment(other.to_owned())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_an_error() {
        let err = run_experiment("fig99", Scale::Fast).unwrap_err();
        assert!(err.to_string().contains("fig99"));
        assert!(err.to_string().contains("table1"));
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Full.pick(1, 2), 1);
        assert_eq!(Scale::Fast.pick(1, 2), 2);
    }

    #[test]
    fn table3_runs_instantly() {
        let reports = run_experiment("table3", Scale::Fast).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].rows() >= 14);
    }
}

//! Figure 5 — the new microbenchmark (28 processors): iteration time and
//! node handoffs vs `critical_work` — and Table 2, the normalized traffic
//! at `critical_work = 1500`.
//!
//! The sweep honors `--kinds` (default: every registered kind, so the
//! post-2003 contenders ride alongside the paper's eight); Table 2 stays
//! on the catalog's paper set, normalized to TATAS_EXP as published.

use hbo_locks::{LockCatalog, LockKind};
use nuca_workloads::modern::{run_modern, ModernConfig};
use nuca_workloads::MicroReport;
use nucasim::MachineConfig;

use crate::report::{fmt_ratio, Report};
use crate::{kinds, runner, Scale};

pub(crate) fn config(scale: Scale, kind: LockKind, critical_work: u32) -> ModernConfig {
    let (per_node, iters) = scale.pick((14, 60), (4, 20));
    ModernConfig {
        kind,
        machine: MachineConfig::wildfire(2, per_node),
        threads: per_node * 2,
        iterations: iters,
        critical_work,
        ..ModernConfig::default()
    }
}

pub(crate) fn sweep(scale: Scale) -> Vec<u32> {
    match scale {
        Scale::Full => vec![0, 300, 600, 900, 1200, 1500, 1800, 2100],
        Scale::Fast => vec![0, 700, 1500],
    }
}

/// Runs the `critical_work` sweep for all locks; returns the two panels.
///
/// Like the paper, TATAS is only measured up to `critical_work = 1300`
/// "because its performance is poor for higher levels of contention".
pub fn run(scale: Scale) -> Vec<Report> {
    let cws = sweep(scale);
    let mut header = vec!["Lock Type".to_owned()];
    header.extend(cws.iter().map(|c| format!("cw={c}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut time = Report::new(
        "fig5_time",
        "New microbenchmark: time per iteration (ns) vs critical_work, 28 processors",
        &header_refs,
    );
    let mut handoff = Report::new(
        "fig5_handoff",
        "New microbenchmark: node-handoff ratio vs critical_work",
        &header_refs,
    );

    // One job per (kind, critical_work) grid cell, reassembled in grid
    // order; TATAS cells beyond cw=1300 stay `None` and render as "-".
    let sweep_kinds = kinds::selected();
    let jobs: Vec<_> = sweep_kinds
        .iter()
        .flat_map(|&kind| cws.iter().map(move |&cw| (kind, cw)))
        .map(|(kind, cw)| {
            move || {
                if kind == LockKind::Tatas && cw > 1300 {
                    None
                } else {
                    Some(run_modern(&config(scale, kind, cw)))
                }
            }
        })
        .collect();
    let results = runner::run_jobs(jobs);

    for (ki, kind) in sweep_kinds.iter().enumerate() {
        let mut trow = vec![kind.as_str().to_owned()];
        let mut hrow = vec![kind.as_str().to_owned()];
        for r in &results[ki * cws.len()..(ki + 1) * cws.len()] {
            match r {
                Some(r) => {
                    trow.push(format!("{:.0}", r.ns_per_iteration));
                    hrow.push(fmt_ratio(r.handoff_ratio));
                }
                None => {
                    trow.push("-".to_owned());
                    hrow.push("-".to_owned());
                }
            }
        }
        time.push_row(trow);
        handoff.push_row(hrow);
    }
    time.push_note(
        "paper: queue locks perform almost identically; NUCA-aware locks \
         perform better the more contention there is",
    );
    vec![time, handoff]
}

/// Table 2 — local/global transactions at `critical_work = 1500`,
/// normalized to TATAS_EXP.
pub fn run_table2(scale: Scale) -> Report {
    let cw = 1500;
    let table_kinds = LockCatalog::paper();
    let results: Vec<MicroReport> = runner::run_jobs(
        table_kinds
            .iter()
            .map(|&kind| move || run_modern(&config(scale, kind, cw)))
            .collect(),
    );
    let baseline_idx = table_kinds
        .iter()
        .position(|&k| k == LockKind::TatasExp)
        .expect("TATAS_EXP is in the paper set");
    let baseline = &results[baseline_idx];
    let mut report = Report::new(
        "table2",
        "Normalized local and global traffic, new microbenchmark (critical_work=1500)",
        &["Lock Type", "Local Transactions", "Global Transactions"],
    );
    for (kind, r) in table_kinds.iter().zip(&results) {
        report.push_row(vec![
            kind.as_str().to_owned(),
            format!("{:.2}", r.traffic.local as f64 / baseline.traffic.local as f64),
            format!(
                "{:.2}",
                r.traffic.global as f64 / baseline.traffic.global as f64
            ),
        ]);
    }
    report.push_note(format!(
        "TATAS_EXP absolute: {} local, {} global transactions \
         (paper: 15.1M local, 8.9M global at full length)",
        baseline.traffic.local, baseline.traffic.global
    ));
    report.push_note(
        "paper: RH/HBO/HBO_GT/HBO_GT_SD global = 0.28-0.30; MCS/CLH = 0.63-0.65",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_cover_all_selected_locks() {
        let reports = run(Scale::Fast);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].rows(), kinds::selected().len());
        // The modern contenders ride alongside the paper's eight.
        assert!(reports[0].row_by_key("CNA").is_some());
        assert!(reports[0].row_by_key("RECIP").is_some());
        // TATAS is dashed out beyond cw=1300.
        let tatas = reports[0].row_by_key("TATAS").unwrap();
        assert_eq!(tatas.last().unwrap(), "-");
    }

    #[test]
    fn table2_normalizes_baseline_to_one() {
        let t = run_table2(Scale::Fast);
        let exp = t.row_by_key("TATAS_EXP").unwrap();
        assert_eq!(exp[1], "1.00");
        assert_eq!(exp[2], "1.00");
        // The headline: NUCA locks cut global traffic well below the
        // queue locks.
        let hbo_gt: f64 = t.row_by_key("HBO_GT").unwrap()[2].parse().unwrap();
        let mcs: f64 = t.row_by_key("MCS").unwrap()[2].parse().unwrap();
        assert!(hbo_gt < mcs, "HBO_GT {hbo_gt} vs MCS {mcs}");
        assert!(hbo_gt < 0.8);
    }
}

//! Deterministic parallel execution of independent simulation jobs.
//!
//! Every paper artifact is a sweep of self-contained, seeded simulations:
//! the jobs share no state, so they can run on any thread in any order as
//! long as their *results* are assembled in the fixed order of the job
//! list. [`run_jobs`] does exactly that — results land in an indexed slot
//! per job — which makes parallel output byte-identical to a serial run by
//! construction (a regression test in `tests/runner_determinism.rs` holds
//! this invariant down to the TSV bytes).
//!
//! Two levels of parallelism share one budget:
//!
//! * [`run_fanout`] — one thread per *artifact* (used by
//!   `run_experiment("all")`). These threads only orchestrate; they never
//!   take an execution permit, so they cannot starve the leaf jobs below
//!   them (taking a permit here could deadlock: all permits held by
//!   orchestrators waiting on gated leaf jobs that can never start).
//! * [`run_jobs`] — the leaf simulation jobs. Each job acquires one global
//!   permit while it executes, so total concurrent simulation work stays
//!   at [`max_jobs`] no matter how many artifacts fan out above.
//!
//! The budget defaults to the host's available parallelism and is set from
//! the CLI's `--jobs N` flag via [`set_max_jobs`]. With a budget of 1,
//! both entry points run strictly serially on the calling thread — that is
//! the reference ordering the determinism test compares against.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;

/// Configured job budget; 0 means "not set, use available parallelism".
static MAX_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the maximum number of simulation jobs that may execute
/// concurrently (the `--jobs N` flag). `0` resets to the default
/// (available parallelism).
pub fn set_max_jobs(n: usize) {
    MAX_JOBS.store(n, Ordering::Relaxed);
}

/// The current job budget: the value set by [`set_max_jobs`], defaulting
/// to the host's available parallelism (at least 1).
pub fn max_jobs() -> usize {
    match MAX_JOBS.load(Ordering::Relaxed) {
        0 => thread::available_parallelism().map_or(1, usize::from),
        n => n,
    }
}

/// Global execution gate: counts running leaf jobs, capacity [`max_jobs`].
struct Gate {
    running: Mutex<usize>,
    freed: Condvar,
}

static GATE: Gate = Gate {
    running: Mutex::new(0),
    freed: Condvar::new(),
};

/// RAII permit for one executing leaf job.
struct Permit;

impl Gate {
    fn acquire(&self) -> Permit {
        let mut running = self.running.lock().expect("gate poisoned");
        while *running >= max_jobs() {
            running = self.freed.wait(running).expect("gate poisoned");
        }
        *running += 1;
        Permit
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut running = GATE.running.lock().expect("gate poisoned");
        *running -= 1;
        drop(running);
        GATE.freed.notify_one();
    }
}

/// Runs `jobs` — independent, self-contained closures — and returns their
/// results **in job order**, regardless of which thread finished which job
/// when. Each executing job holds one global permit, bounding concurrent
/// simulation work at [`max_jobs`] across every simultaneous caller.
///
/// With a budget of 1 the jobs run serially on the calling thread.
pub fn run_jobs<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = max_jobs().min(n);
    if workers <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each job index is claimed once");
                let permit = GATE.acquire();
                let out = job();
                drop(permit);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran")
        })
        .collect()
}

/// Runs orchestration-level `tasks` (one thread each) and returns their
/// results in task order. Unlike [`run_jobs`], the tasks take **no**
/// execution permit — they are expected to spend their time inside nested
/// [`run_jobs`] calls, whose leaf jobs are what the global gate meters.
///
/// With a budget of 1 the tasks run serially on the calling thread.
pub fn run_fanout<T, F>(tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if max_jobs() <= 1 || tasks.len() <= 1 {
        return tasks.into_iter().map(|task| task()).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..tasks.len()).map(|_| Mutex::new(None)).collect();
    let slots_ref = &slots;
    thread::scope(|s| {
        for (i, task) in tasks.into_iter().enumerate() {
            s.spawn(move || {
                *slots_ref[i].lock().expect("result slot poisoned") = Some(task());
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    /// Serializes tests that reconfigure the global job budget.
    static BUDGET_LOCK: Mutex<()> = Mutex::new(());

    fn with_budget<T>(n: usize, f: impl FnOnce() -> T) -> T {
        let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_max_jobs(n);
        let out = f();
        set_max_jobs(0);
        out
    }

    #[test]
    fn results_come_back_in_job_order() {
        // Later jobs finish first (reverse sleeps); order must still hold.
        let out = with_budget(4, || {
            run_jobs(
                (0..8u64)
                    .map(|i| {
                        move || {
                            thread::sleep(Duration::from_millis(8 - i));
                            i * 10
                        }
                    })
                    .collect(),
            )
        });
        assert_eq!(out, (0..8).map(|i| i * 10).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_budget_runs_inline() {
        let out = with_budget(1, || {
            let main_thread = thread::current().id();
            run_jobs(
                (0..4)
                    .map(|i| {
                        move || {
                            assert_eq!(thread::current().id(), main_thread);
                            i
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn gate_bounds_concurrency() {
        static RUNNING: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        let budget = 2;
        with_budget(budget, || {
            run_jobs(
                (0..12)
                    .map(|_| {
                        || {
                            let now = RUNNING.fetch_add(1, Ordering::SeqCst) + 1;
                            PEAK.fetch_max(now, Ordering::SeqCst);
                            thread::sleep(Duration::from_millis(3));
                            RUNNING.fetch_sub(1, Ordering::SeqCst);
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        });
        let peak = PEAK.load(Ordering::SeqCst);
        assert!(peak <= budget, "peak {peak} exceeded budget {budget}");
    }

    #[test]
    fn fanout_preserves_order_and_nests() {
        // Orchestrators nesting run_jobs must not deadlock even when the
        // fanout width exceeds the budget.
        let out = with_budget(2, || {
            run_fanout(
                (0..5u64)
                    .map(|i| {
                        move || {
                            run_jobs((0..2).map(|j| move || i * 2 + j).collect::<Vec<_>>())
                        }
                    })
                    .collect(),
            )
        });
        assert_eq!(
            out,
            (0..5u64)
                .map(|i| vec![i * 2, i * 2 + 1])
                .collect::<Vec<_>>()
        );
    }
}

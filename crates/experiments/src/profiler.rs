//! nuca-prof, harness side: the `handoff` artifact and the `--profile`
//! JSON serialization.
//!
//! The `handoff` artifact sweeps the Fig. 5 configuration (the new
//! microbenchmark at the Table 2 operating point,
//! `critical_work = 1500`) across lock kind × CPU count, with the
//! streaming profiler ([`nucasim::profile`]) attached to every run, and
//! reports the metrics the paper argues from but never tabulates
//! directly: handoff locality (local vs. remote handovers, node-residency
//! run lengths, the node-handoff rate) and the acquire-latency phase
//! split (spin vs. backoff-by-class), with the dominant phase as a
//! critical-path label. Every cell also cross-checks the profiler's
//! event-stream-derived totals against the engine's independently
//! counted `SimStats` — two code paths, one truth.
//!
//! `--profile <out.json>` works on *any* artifact: it turns on the
//! process-global profiling registry
//! ([`nucasim::profile::enable_global_profiling`]) so every machine the
//! requested artifacts run is observed, and [`profile_json`] serializes
//! the label-keyed merged result. Profiling only observes, so artifact
//! TSVs are byte-identical with or without it.

use hbo_locks::LockKind;
use nuca_workloads::modern::{run_modern_profiled, ModernConfig};
use nucasim::{LockProfile, MachineConfig, Profile, SimReport};

use crate::json::JsonWriter;
use crate::report::{fmt_ratio, Report};
use crate::tracecap::CAPTURE_CRITICAL_WORK;
use crate::{kinds, runner, tracecap, Scale};

/// Version stamp of the `--profile` JSON document (bump on any
/// field/shape change; ci.sh validates against it). v2 added the
/// per-CPU acquisition counts behind the starved-CPU column.
pub const PROFILE_SCHEMA_VERSION: u64 = 2;

/// CPUs-per-node steps of the handoff sweep (×2 nodes = total CPUs; the
/// full sweep tops out at the paper's 28-processor WildFire).
fn per_node_sweep(scale: Scale) -> Vec<usize> {
    scale.pick(vec![2, 6, 10, 14], vec![2, 4])
}

/// The Fig. 5 configuration at `per_node` CPUs per node (cf.
/// [`crate::fig5::config`], which fixes `per_node` by scale).
fn config(scale: Scale, kind: LockKind, per_node: usize) -> ModernConfig {
    ModernConfig {
        kind,
        machine: MachineConfig::wildfire(2, per_node),
        threads: per_node * 2,
        iterations: scale.pick(60, 20),
        critical_work: CAPTURE_CRITICAL_WORK,
        ..ModernConfig::default()
    }
}

/// Asserts the profiler's per-lock totals — reconstructed from the event
/// stream — equal the engine's independently counted statistics. Runs
/// inside every `handoff` cell (so the full-scale artifact is itself the
/// full-scale assertion) and in the seed property test.
///
/// # Panics
///
/// Panics (with the kind and CPU count) on any divergence.
fn cross_check(kind: LockKind, cpus: usize, report: &SimReport, profile: &Profile) {
    let stats = &report.lock_traces[0];
    let prof = &profile.locks[0];
    let ctx = format!("{} @ {cpus} cpus", kind.as_str());
    assert_eq!(prof.acquires, stats.acquisitions, "{ctx}: acquire totals");
    assert_eq!(
        prof.remote_handoffs, stats.node_handoffs,
        "{ctx}: remote-handoff totals"
    );
    assert_eq!(prof.chains, 1, "{ctx}: one machine is one handoff chain");
    assert_eq!(
        prof.local_handoffs + prof.remote_handoffs + prof.chains,
        prof.acquires,
        "{ctx}: every handover is local or remote"
    );
    let pad = prof.node_acquires.len().max(stats.node_acquires.len());
    for node in 0..pad {
        assert_eq!(
            prof.node_acquires.get(node).copied().unwrap_or(0),
            stats.node_acquires.get(node).copied().unwrap_or(0),
            "{ctx}: node {node} acquires"
        );
    }
    assert_eq!(
        prof.wait.count(),
        prof.acquires,
        "{ctx}: every acquire got a decomposed window"
    );
    assert_eq!(
        prof.cpu_acquires.iter().sum::<u64>(),
        prof.acquires,
        "{ctx}: per-CPU acquire counts"
    );
}

/// One percentage cell, one decimal (integer-derived, so TSVs stay
/// byte-identical across job counts and schedulers).
fn pct(part: u64, total: u64) -> String {
    if total == 0 {
        "-".to_owned()
    } else {
        format!("{:.1}", part as f64 * 100.0 / total as f64)
    }
}

/// Runs the handoff-locality × phase-breakdown sweep.
pub fn run_handoff(scale: Scale) -> Report {
    let per_nodes = per_node_sweep(scale);
    let mut report = Report::new(
        "handoff",
        "Handoff locality and acquire-phase breakdown, new microbenchmark \
         (critical_work=1500)",
        &[
            "Lock Type",
            "CPUs",
            "Acquires",
            "Local HO",
            "Remote HO",
            "Remote Rate",
            "Starved CPUs",
            "Mean Run",
            "Spin %",
            "Backoff Local %",
            "Backoff Remote %",
            "Coh Local",
            "Coh Global",
            "Critical Path",
        ],
    );

    // One job per (kind, per_node) grid cell, reassembled in grid order
    // so the TSV is byte-identical at any --jobs level.
    let sweep_kinds = kinds::selected();
    let jobs: Vec<_> = sweep_kinds
        .iter()
        .flat_map(|&kind| per_nodes.iter().map(move |&pn| (kind, pn)))
        .map(|(kind, pn)| {
            move || {
                let (sim, profile) = run_modern_profiled(&config(scale, kind, pn));
                cross_check(kind, pn * 2, &sim, &profile);
                profile
            }
        })
        .collect();
    let results = runner::run_jobs(jobs);

    for ((kind, pn), profile) in sweep_kinds
        .iter()
        .flat_map(|&kind| per_nodes.iter().map(move |&pn| (kind, pn)))
        .zip(&results)
    {
        let lock: &LockProfile = &profile.locks[0];
        let wait = lock.wait_cycles();
        report.push_row(vec![
            kind.as_str().to_owned(),
            (pn * 2).to_string(),
            lock.acquires.to_string(),
            lock.local_handoffs.to_string(),
            lock.remote_handoffs.to_string(),
            fmt_ratio(lock.remote_handoff_rate()),
            lock.starved_cpus(pn * 2).to_string(),
            match lock.mean_residency_run() {
                Some(m) => format!("{m:.1}"),
                None => "-".to_owned(),
            },
            pct(lock.spin_cycles, wait),
            pct(lock.backoff_local_cycles, wait),
            pct(lock.backoff_remote_cycles, wait),
            lock.coh_local.to_string(),
            lock.coh_global.to_string(),
            lock.critical_path().to_owned(),
        ]);
    }
    report.push_note(
        "remote rate = node handoffs / handover opportunities (lower = more \
         node-local); mean run = consecutive same-node acquisitions",
    );
    report.push_note(
        "starved CPUs = contenders that never acquired once: a low remote \
         rate is only locality if this column is 0 — in a bounded window \
         TATAS posts near-0.00 rates by locking whole CPUs out; here every \
         thread has a fixed quota, so 0 certifies the starvation stayed \
         transient",
    );
    report.push_note(
        "paper: the HBO family trades longer backoff phases for node-local \
         handoff runs; queue locks hand off FIFO, blind to node locality",
    );
    report
}

/// Serializes label-keyed merged profiles (the `--profile` document).
pub fn profile_json(profiles: &[(String, Profile)]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("version", PROFILE_SCHEMA_VERSION);
    w.key("labels");
    w.begin_array();
    for (label, p) in profiles {
        w.begin_object();
        w.field_str("label", label);
        w.field_u64("events", p.events);
        w.field_u64("anger_episodes", p.anger_episodes);
        w.field_u64("throttle_spins", p.throttle_spins);
        w.field_u64("preemptions", p.preemptions);
        w.field_u64("migrations", p.migrations);
        w.field_u64("upgrades", p.upgrades);
        w.field_u64("evictions", p.evictions);
        w.field_u64("update_broadcasts", p.update_broadcasts);
        w.key("locks");
        w.begin_array();
        for lock in &p.locks {
            w.begin_object();
            w.field_u64("acquires", lock.acquires);
            w.field_u64("local_handoffs", lock.local_handoffs);
            w.field_u64("remote_handoffs", lock.remote_handoffs);
            w.field_u64("chains", lock.chains);
            if let Some(r) = lock.remote_handoff_rate() {
                w.field_raw("remote_handoff_rate", &format!("{r:.4}"));
            }
            w.key("node_acquires");
            w.begin_array();
            for &n in &lock.node_acquires {
                w.number_u64(n);
            }
            w.end_array();
            w.key("cpu_acquires");
            w.begin_array();
            for &n in &lock.cpu_acquires {
                w.number_u64(n);
            }
            w.end_array();
            w.key("residency_runs");
            write_run_histogram(&mut w, &lock.residency_runs);
            w.key("wait");
            tracecap::write_histogram(&mut w, &lock.wait);
            w.key("phases");
            w.begin_object();
            w.field_u64("wait_cycles", lock.wait_cycles());
            w.field_u64("spin_cycles", lock.spin_cycles);
            w.field_u64("spin_clamped", lock.spin_clamped);
            w.field_u64("backoff_local_cycles", lock.backoff_local_cycles);
            w.field_u64("backoff_remote_cycles", lock.backoff_remote_cycles);
            w.field_u64("coherence_local", lock.coh_local);
            w.field_u64("coherence_global", lock.coh_global);
            w.field_str("critical_path", lock.critical_path());
            w.end_object();
            w.field_u64("holds", lock.holds);
            w.field_u64("hold_cycles", lock.hold_cycles);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Serializes a run-length histogram (dimensionless counts, unlike the
/// latency histograms `tracecap` renders in nanoseconds).
fn write_run_histogram(w: &mut JsonWriter, h: &nucasim::Histogram) {
    w.begin_object();
    w.field_u64("count", h.count());
    w.field_u64("max", h.max());
    if let Some(mean) = h.mean() {
        w.field_raw("mean", &format!("{mean:.2}"));
    }
    for (label, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0)] {
        if let Some(v) = h.percentile(p) {
            w.field_u64(label, v);
        }
    }
    w.key("buckets");
    w.begin_array();
    for (upper, n) in h.nonzero_buckets() {
        w.begin_array();
        w.number_u64(upper);
        w.number_u64(n);
        w.end_array();
    }
    w.end_array();
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(kind: LockKind) -> (SimReport, Profile) {
        run_modern_profiled(&config(Scale::Fast, kind, 4))
    }

    #[test]
    fn handoff_grid_covers_all_kinds_and_cpu_counts() {
        let report = run_handoff(Scale::Fast);
        assert_eq!(report.rows(), kinds::selected().len() * 2);
        let hbo = report.row_by_key("HBO_GT_SD").unwrap();
        assert_ne!(hbo[5], "-", "HBO_GT_SD remote rate missing");
        // The starved-CPU column parses for every row, and the FIFO queue
        // locks — which structurally cannot starve — report zero.
        for key in ["MCS", "TICKET", "TWA"] {
            let row = report.row_by_key(key).unwrap();
            assert_eq!(row[6], "0", "{key} starved a CPU under FIFO order");
        }
    }

    #[test]
    fn hbo_family_is_more_node_local_than_queue_and_tatas_locks() {
        // The artifact's headline, checked at the sweep's top CPU count:
        // NUCA-aware backoff turns migratory handoffs into node-local
        // runs; FIFO queue locks and TATAS cannot.
        let rate = |kind| {
            let (sim, profile) = cell(kind);
            cross_check(kind, 8, &sim, &profile);
            profile.locks[0]
                .remote_handoff_rate()
                .expect("enough acquires for a rate")
        };
        let hbo_gt_sd = rate(LockKind::HboGtSd);
        let hbo = rate(LockKind::Hbo);
        let mcs = rate(LockKind::Mcs);
        let tatas = rate(LockKind::Tatas);
        assert!(
            hbo_gt_sd < mcs && hbo < mcs,
            "HBO_GT_SD {hbo_gt_sd:.3} / HBO {hbo:.3} vs MCS {mcs:.3}"
        );
        assert!(
            hbo_gt_sd < tatas && hbo < tatas,
            "HBO_GT_SD {hbo_gt_sd:.3} / HBO {hbo:.3} vs TATAS {tatas:.3}"
        );
    }

    #[test]
    fn cross_check_holds_across_seeds_and_kinds() {
        // Property test: the profiler's event-stream reconstruction must
        // agree with the engine's independent counters for any seed.
        for kind in [LockKind::Tatas, LockKind::Mcs, LockKind::HboGtSd] {
            for seed in [1, 7, 42] {
                let mut cfg = config(Scale::Fast, kind, 2);
                cfg.machine = cfg.machine.with_seed(seed);
                let (sim, profile) = run_modern_profiled(&cfg);
                cross_check(kind, 4, &sim, &profile);
            }
        }
    }

    #[test]
    fn phase_split_accounts_every_wait_cycle() {
        let (_, profile) = cell(LockKind::HboGtSd);
        let lock = &profile.locks[0];
        // spin is the per-window residual (wait − backoff, saturating), so
        // summed spin can never exceed summed wait.
        assert!(
            lock.spin_cycles <= lock.wait_cycles(),
            "residual spin exceeds the wait total"
        );
        assert!(lock.wait_cycles() > 0);
        assert!(
            lock.backoff_local_cycles + lock.backoff_remote_cycles > 0,
            "HBO_GT_SD never backed off under contention"
        );
    }

    #[test]
    fn profile_json_has_schema_fields() {
        let (_, profile) = cell(LockKind::HboGt);
        let json = profile_json(&[("HBO_GT".to_owned(), profile)]);
        for key in [
            "\"version\"",
            "\"labels\"",
            "\"label\"",
            "\"remote_handoffs\"",
            "\"cpu_acquires\"",
            "\"residency_runs\"",
            "\"phases\"",
            "\"critical_path\"",
        ] {
            assert!(json.contains(key), "profile JSON missing {key}");
        }
        assert!(json.contains(&format!("\"version\": {PROFILE_SCHEMA_VERSION}")));
    }

    /// Full-scale memory-budget regression (the satellite guarantee):
    /// profiling the Fig. 5 high-contention cell at paper scale folds
    /// millions of events into a profile whose footprint stays a few
    /// kilobytes. Slow in debug builds; ci.sh runs it in release via
    /// `cargo test --release -- --ignored`.
    #[test]
    #[ignore = "full-scale; ci.sh runs it in release"]
    fn full_scale_profile_memory_stays_bounded() {
        let (sim, profile) = run_modern_profiled(&config(Scale::Full, LockKind::HboGtSd, 14));
        cross_check(LockKind::HboGtSd, 28, &sim, &profile);
        assert!(
            profile.events > 500_000,
            "expected a full-scale event volume, got {}",
            profile.events
        );
        assert!(
            profile.approx_bytes() < 16 * 1024,
            "streaming profile footprint grew to {} bytes over {} events",
            profile.approx_bytes(),
            profile.events
        );
    }
}

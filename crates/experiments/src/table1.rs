//! Table 1 — uncontested performance of a single acquire-release pair.

use nuca_workloads::uncontested::run_uncontested;
use nucasim::MachineConfig;
use nucasim_locks::SimLockParams;

use crate::report::Report;
use crate::Scale;

/// Runs the three previous-owner scenarios for all eight locks.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "table1",
        "Uncontested performance for a single acquire-release operation",
        &["Lock Type", "Same Processor", "Same Node", "Remote Node"],
    );
    let cpus = scale.pick(14, 2);
    let machine = MachineConfig::wildfire(2, cpus);
    let params = SimLockParams::default();
    for &kind in hbo_locks::LockCatalog::paper() {
        let r = run_uncontested(kind, &machine, &params);
        report.push_row(vec![
            kind.as_str().to_owned(),
            format!("{} ns", r.same_processor_ns),
            format!("{} ns", r.same_node_ns),
            format!("{} ns", r.remote_node_ns),
        ]);
    }
    report.push_note(
        "paper (WildFire): TATAS 150/660/2050 ns, MCS 210/732/2120 ns, \
         RH 198/672/4480 ns, HBO 152/652/2010 ns",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_locks_in_paper_order() {
        let r = run(Scale::Fast);
        assert_eq!(r.rows(), 8);
        assert_eq!(r.cell(0, 0), Some("TATAS"));
        assert_eq!(r.cell(7, 0), Some("HBO_GT_SD"));
    }

    #[test]
    fn hbo_row_matches_tatas_class() {
        let r = run(Scale::Fast);
        let parse = |s: &str| s.trim_end_matches(" ns").parse::<u64>().unwrap();
        let tatas = parse(r.row_by_key("TATAS").unwrap()[1].as_str());
        let hbo = parse(r.row_by_key("HBO").unwrap()[1].as_str());
        assert!(hbo.abs_diff(tatas) < 60);
    }
}

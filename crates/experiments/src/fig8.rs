//! Figure 8 — fairness: the spread between the first and last thread to
//! finish the new microbenchmark.

use nuca_workloads::modern::{run_modern, ModernConfig};
use nucasim::MachineConfig;

use crate::report::Report;
use crate::{runner, Scale};

/// Runs the fairness study for all eight locks.
pub fn run(scale: Scale) -> Report {
    let (per_node, iters) = scale.pick((14, 250), (4, 25));
    let mut report = Report::new(
        "fig8",
        "Fairness: completion-time difference between first and last thread (%)",
        &["Lock Type", "Spread %"],
    );
    let results = runner::run_jobs(
        hbo_locks::LockCatalog::paper()
            .iter()
            .map(|&kind| {
                move || {
                    run_modern(&ModernConfig {
                        kind,
                        machine: MachineConfig::wildfire(2, per_node),
                        threads: per_node * 2,
                        iterations: iters,
                        critical_work: 700,
                        ..ModernConfig::default()
                    })
                }
            })
            .collect(),
    );
    for (kind, r) in hbo_locks::LockCatalog::paper().iter().zip(&results) {
        let spread = r.finish_spread.unwrap_or(f64::NAN) * 100.0;
        report.push_row(vec![kind.as_str().to_owned(), format!("{spread:.1}")]);
    }
    report.push_note(
        "paper: queue locks 2.1% (fairest), HBO_GT_SD 5.6%, TATAS_EXP 28.9% (most unfair)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_locks_fairer_than_backoff_locks() {
        // Paper Fig. 8: queue locks 2.1% spread (fairest); TATAS_EXP the
        // most unfair at 28.9%; HBO locks in between.
        let r = run(Scale::Fast);
        let get = |k: &str| -> f64 { r.row_by_key(k).unwrap()[1].parse().unwrap() };
        let mcs = get("MCS");
        assert!(
            mcs < get("TATAS_EXP"),
            "FIFO MCS spread {mcs}% must undercut TATAS_EXP"
        );
        assert!(
            mcs < get("HBO_GT"),
            "FIFO MCS spread {mcs}% must undercut HBO_GT"
        );
    }

    #[test]
    fn all_rows_present() {
        let r = run(Scale::Fast);
        assert_eq!(r.rows(), 8);
    }
}

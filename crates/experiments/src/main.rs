//! CLI for regenerating the paper's tables and figures.
//!
//! ```bash
//! experiments all                # every artifact, paper scale
//! experiments fig5 table2        # selected artifacts
//! experiments all --fast         # smoke-test scale
//! experiments --list             # artifact inventory
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use nuca_experiments::{run_experiment, Scale, EXPERIMENTS, EXTENSIONS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut out_dir = PathBuf::from("target/experiments");
    let mut ids: Vec<String> = Vec::new();

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--fast" => scale = Scale::Fast,
            "--out" => match iter.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                println!("paper artifacts: {}", EXPERIMENTS.join(", "));
                println!("extensions:      {}", EXTENSIONS.join(", "));
                println!("meta:            all");
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: experiments [--fast] [--out DIR] <id>... | all | --list");
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        ids.push("all".to_owned());
    }

    for id in &ids {
        let started = Instant::now();
        match run_experiment(id, scale) {
            Ok(reports) => {
                for report in reports {
                    println!("{}", report.render());
                    match report.write_tsv(&out_dir) {
                        Ok(path) => println!("wrote {}\n", path.display()),
                        Err(err) => eprintln!("could not write TSV: {err}"),
                    }
                }
                eprintln!("[{id} done in {:.1?}]", started.elapsed());
            }
            Err(err) => {
                eprintln!("{err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

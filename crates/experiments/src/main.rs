//! CLI for regenerating the paper's tables and figures.
//!
//! ```bash
//! experiments all                # every artifact, paper scale
//! experiments fig5 table2       # selected artifacts
//! experiments all --fast        # smoke-test scale
//! experiments all --jobs 4      # bound parallel simulation jobs
//! experiments all --sched heap  # reference scheduler (A/B vs wheel)
//! experiments all --bench-json BENCH_harness.json
//! experiments fig5 --trace t.json --metrics-json m.json  # observability
//! experiments --list            # artifact inventory
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use nuca_experiments::json::JsonWriter;
use nuca_experiments::{run_experiment, runner, tracecap, Report, Scale, EXPERIMENTS, EXTENSIONS};
use nuca_experiments::UnknownExperiment;

const USAGE: &str = "usage: experiments [--fast] [--out DIR] [--jobs N] \
     [--sched wheel|heap|check] [--protocol flat|mesi|dragon] \
     [--binding rr|clustered] [--kinds NAME,NAME,...] [--twa-slots N] \
     [--twa-hash mod|stride] [--bench-json PATH] [--trace PATH] \
     [--metrics-json PATH] [--profile PATH] [--shards N] [--zipf THETA] \
     [--arrival-gap CYCLES] <id>... | all | --list";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut out_dir = PathBuf::from("target/experiments");
    let mut bench_json: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut metrics_path: Option<PathBuf> = None;
    let mut profile_path: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--fast" => scale = Scale::Fast,
            "--out" => match iter.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match nuca_experiments::cli::parse_jobs(iter.next().as_deref()) {
                Ok(n) => runner::set_max_jobs(n),
                Err(msg) => {
                    eprintln!("{msg}");
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--sched" => match nuca_experiments::cli::parse_sched(iter.next().as_deref()) {
                Ok(kind) => nucasim::set_default_sched(kind),
                Err(msg) => {
                    eprintln!("{msg}");
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--protocol" => match nuca_experiments::cli::parse_protocol(iter.next().as_deref()) {
                Ok(proto) => nucasim::set_default_protocol(proto),
                Err(msg) => {
                    eprintln!("{msg}");
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--binding" => match nuca_experiments::cli::parse_binding(iter.next().as_deref()) {
                Ok(binding) => nuca_workloads::modern::set_default_binding(binding),
                Err(msg) => {
                    eprintln!("{msg}");
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--twa-slots" => match nuca_experiments::cli::parse_twa_slots(iter.next().as_deref()) {
                Ok(n) => nucasim_locks::set_default_twa_slots(n),
                Err(msg) => {
                    eprintln!("{msg}");
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--twa-hash" => match nuca_experiments::cli::parse_twa_hash(iter.next().as_deref()) {
                Ok(hash) => nucasim_locks::set_default_twa_hash(hash),
                Err(msg) => {
                    eprintln!("{msg}");
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--kinds" => match nuca_experiments::cli::parse_kinds(iter.next().as_deref()) {
                Ok(kinds) => nuca_experiments::kinds::select(kinds),
                Err(msg) => {
                    eprintln!("{msg}");
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match nuca_experiments::cli::parse_shards(iter.next().as_deref()) {
                Ok(n) => nuca_experiments::lockserver::set_shards(n),
                Err(msg) => {
                    eprintln!("{msg}");
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--zipf" => match nuca_experiments::cli::parse_zipf(iter.next().as_deref()) {
                Ok(theta) => nuca_experiments::lockserver::set_zipf_theta(theta),
                Err(msg) => {
                    eprintln!("{msg}");
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--arrival-gap" => {
                match nuca_experiments::cli::parse_arrival_gap(iter.next().as_deref()) {
                    Ok(cycles) => nuca_experiments::lockserver::set_arrival_gap(cycles),
                    Err(msg) => {
                        eprintln!("{msg}");
                        eprintln!("{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--bench-json" => match iter.next() {
                Some(path) => bench_json = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--bench-json requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match iter.next() {
                Some(path) => trace_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--trace requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics-json" => match iter.next() {
                Some(path) => metrics_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--metrics-json requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--profile" => match iter.next() {
                Some(path) => profile_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--profile requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                println!("paper artifacts: {}", EXPERIMENTS.join(", "));
                println!("extensions:      {}", EXTENSIONS.join(", "));
                println!("meta:            all");
                println!("lock kinds:      {}", hbo_locks::LockCatalog::menu());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("unrecognized flag `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        ids.push("all".to_owned());
    }

    // Expand `all` here (rather than deferring to `run_experiment`) so
    // each artifact gets its own wall-clock entry in the bench log.
    let ids: Vec<String> = ids
        .iter()
        .flat_map(|id| {
            if id == "all" {
                EXPERIMENTS
                    .iter()
                    .chain(EXTENSIONS.iter())
                    .map(|&s| s.to_owned())
                    .collect()
            } else {
                vec![id.clone()]
            }
        })
        .collect();

    // Validate every requested id before running anything: a typo at the
    // end of the list should not cost a full sweep first.
    let unknown: Vec<&str> = ids
        .iter()
        .map(String::as_str)
        .filter(|id| {
            !EXPERIMENTS.contains(id) && !EXTENSIONS.contains(id)
        })
        .collect();
    if !unknown.is_empty() {
        for id in unknown {
            eprintln!("{}", UnknownExperiment(id.to_owned()));
        }
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    // Streaming profiling observes every machine the artifacts below run
    // (observe-only, so TSV bytes are unchanged). Must be enabled before
    // the first run; results are collected at the end.
    if profile_path.is_some() {
        nucasim::profile::enable_global_profiling();
    }

    let harness_started = Instant::now();
    let events_before = nucasim::sim_events_total();

    // One orchestration task per artifact; leaf simulation jobs inside
    // each artifact share the global --jobs budget. Results come back in
    // request order, so rendering and TSV writes stay deterministic.
    type ArtifactRun = (Duration, Result<Vec<Report>, UnknownExperiment>);
    let tasks: Vec<_> = ids
        .iter()
        .map(|id| {
            let id = id.clone();
            move || -> ArtifactRun {
                let started = Instant::now();
                let result = run_experiment(&id, scale);
                (started.elapsed(), result)
            }
        })
        .collect();
    let results = runner::run_fanout(tasks);

    let mut artifact_times: Vec<(String, Duration)> = Vec::new();
    for (id, (elapsed, result)) in ids.iter().zip(results) {
        match result {
            Ok(reports) => {
                for report in reports {
                    println!("{}", report.render());
                    match report.write_tsv(&out_dir) {
                        Ok(path) => println!("wrote {}\n", path.display()),
                        Err(err) => eprintln!("could not write TSV: {err}"),
                    }
                }
                eprintln!("[{id} done in {elapsed:.1?}]");
                artifact_times.push((id.clone(), elapsed));
            }
            Err(err) => {
                eprintln!("{err}");
                return ExitCode::FAILURE;
            }
        }
    }

    let total = harness_started.elapsed();
    let events = nucasim::sim_events_total() - events_before;
    if let Some(path) = bench_json {
        let json = bench_report(scale, &artifact_times, total, events);
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(err) => {
                eprintln!("could not write bench JSON {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    // Observability capture: dedicated traced runs, after the artifacts so
    // their cost never pollutes the bench baseline above.
    if trace_path.is_some() || metrics_path.is_some() {
        if let Err(err) =
            tracecap::write_captures(scale, trace_path.as_deref(), metrics_path.as_deref())
        {
            eprintln!("could not write capture: {err}");
            return ExitCode::FAILURE;
        }
    }

    // nuca-prof output: the label-keyed merge of every profiled machine
    // above (one entry per lock kind, since workload runners label
    // machines by kind).
    if let Some(path) = profile_path {
        let profiles = nucasim::profile::take_global_profiles();
        let json = nuca_experiments::profiler::profile_json(&profiles);
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(err) => {
                eprintln!("could not write profile JSON {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Renders the perf-regression baseline: per-artifact wall-clock plus the
/// harness-wide simulated-event throughput.
fn bench_report(
    scale: Scale,
    artifact_times: &[(String, Duration)],
    total: Duration,
    events: u64,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("scale", scale.pick("full", "fast"));
    w.field_u64("jobs", runner::max_jobs() as u64);
    w.key("artifacts");
    w.begin_array();
    for (id, elapsed) in artifact_times {
        w.begin_object();
        w.field_str("id", id);
        w.field_raw("wall_ms", &format!("{:.1}", elapsed.as_secs_f64() * 1e3));
        w.end_object();
    }
    w.end_array();
    w.field_raw("total_wall_ms", &format!("{:.1}", total.as_secs_f64() * 1e3));
    w.field_u64("sim_events", events);
    w.field_raw(
        "sim_events_per_sec",
        &format!("{:.0}", events as f64 / total.as_secs_f64().max(1e-9)),
    );
    w.end_object();
    w.finish()
}

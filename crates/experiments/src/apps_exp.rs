//! Tables 5 and 6 and Figure 6 — the application study at 28 processors.

use hbo_locks::LockKind;
use nuca_workloads::apps::{run_app, studied_apps, AppModel, AppReport, AppRunConfig};
use nucasim::{MachineConfig, PreemptionConfig};

use crate::report::{fmt_secs, Report};
use crate::{runner, Scale};

pub(crate) fn app_cfg(scale: Scale, kind: LockKind, threads: usize) -> AppRunConfig {
    let per_node = scale.pick(14, 4);
    // 28-processor runs leave two of the prototype's 30 CPUs free for
    // Solaris daemons, so benchmark threads are never descheduled (which
    // is why the paper's queue locks survive 28p but collapse at 30p).
    let machine = MachineConfig::wildfire(2, per_node);
    let _ = PreemptionConfig::solaris_daemons;
    AppRunConfig {
        kind,
        machine,
        threads: threads.min(per_node * 2),
        scale: scale.pick(0.2, 0.004),
        ..AppRunConfig::default()
    }
}

fn run_all(scale: Scale, threads: usize) -> Vec<(AppModel, Vec<AppReport>)> {
    // Full app × lock grid as independent jobs, regrouped per app in
    // fixed grid order.
    let apps = studied_apps();
    let jobs: Vec<_> = apps
        .iter()
        .flat_map(|app| hbo_locks::LockCatalog::paper().iter().map(|&kind| (app.clone(), kind)))
        .map(|(app, kind)| move || run_app(&app, &app_cfg(scale, kind, threads)))
        .collect();
    let mut results = runner::run_jobs(jobs).into_iter();
    apps.into_iter()
        .map(|app| {
            let runs = hbo_locks::LockCatalog::paper()
                .iter()
                .map(|_| results.next().expect("one result per grid cell"))
                .collect();
            (app, runs)
        })
        .collect()
}

fn lock_header() -> Vec<&'static str> {
    let mut cols = vec!["Program"];
    cols.extend(hbo_locks::LockCatalog::paper().iter().map(|k| k.as_str()));
    cols
}

/// Table 5 — execution time in (simulated) seconds for 28-processor runs.
pub fn run_table5(scale: Scale) -> Report {
    let threads = scale.pick(28, 8);
    let mut report = Report::new(
        "table5",
        "Application execution time (s), 28-processor runs, 14 threads per node",
        &lock_header(),
    );
    let mut sums = vec![0.0f64; hbo_locks::LockCatalog::paper().len()];
    let all = run_all(scale, threads);
    for (app, runs) in &all {
        let mut row = vec![app.name.to_owned()];
        for (i, r) in runs.iter().enumerate() {
            sums[i] += r.seconds;
            row.push(fmt_secs(r.seconds, r.finished));
        }
        report.push_row(row);
    }
    let mut avg = vec!["Average".to_owned()];
    for s in &sums {
        avg.push(format!("{:.3}", s / all.len() as f64));
    }
    report.push_row(avg);
    report.push_note(
        "paper averages: TATAS 2.47, TATAS_EXP 2.13, MCS 2.22, CLH 2.31, \
         RH 1.99, HBO 2.00, HBO_GT 2.06, HBO_GT_SD 1.92 s",
    );
    report
}

/// Figure 6 — speedup (1-CPU time / 28-CPU time), normalized to
/// TATAS_EXP, for the five locks the paper plots.
pub fn run_fig6(scale: Scale) -> Report {
    let threads = scale.pick(28, 8);
    let kinds = [
        LockKind::Tatas,
        LockKind::TatasExp,
        LockKind::Mcs,
        LockKind::Clh,
        LockKind::HboGtSd,
    ];
    let mut cols = vec!["Program"];
    cols.extend(kinds.iter().map(|k| k.as_str()));
    let mut report = Report::new(
        "fig6",
        "Normalized speedup for 28-processor runs (TATAS_EXP = 1.0)",
        &cols,
    );
    // Per app: one sequential baseline (lock algorithm is irrelevant with
    // a single thread; use TATAS_EXP like the paper's baseline) plus the
    // five plotted locks — flattened into one job grid.
    let apps = studied_apps();
    let jobs: Vec<_> = apps
        .iter()
        .flat_map(|app| {
            let mut cells = vec![(app.clone(), LockKind::TatasExp, 1)];
            cells.extend(kinds.iter().map(|&kind| (app.clone(), kind, threads)));
            cells
        })
        .map(|(app, kind, th)| move || run_app(&app, &app_cfg(scale, kind, th)))
        .collect();
    let results = runner::run_jobs(jobs);
    let stride = 1 + kinds.len();
    for (ai, app) in apps.iter().enumerate() {
        let chunk = &results[ai * stride..(ai + 1) * stride];
        let seq = &chunk[0];
        let speedups: Vec<f64> = chunk[1..]
            .iter()
            .map(|par| seq.seconds / par.seconds)
            .collect();
        let base = speedups[1]; // TATAS_EXP
        let mut row = vec![app.name.to_owned()];
        for s in &speedups {
            row.push(format!("{:.2}", s / base));
        }
        report.push_row(row);
    }
    report.push_note(
        "paper: HBO_GT_SD normalized speedup above 1 for every program, \
         largest gain on Raytrace",
    );
    report
}

/// Table 6 — normalized local/global traffic per application.
pub fn run_table6(scale: Scale) -> Report {
    let threads = scale.pick(28, 8);
    let mut report = Report::new(
        "table6",
        "Normalized traffic (local/global) per application, 28-processor runs",
        &lock_header(),
    );
    for (app, runs) in run_all(scale, threads) {
        let base = &runs[1]; // TATAS_EXP
        let mut row = vec![app.name.to_owned()];
        for r in &runs {
            let l = r.traffic.local as f64 / base.traffic.local.max(1) as f64;
            let g = r.traffic.global as f64 / base.traffic.global.max(1) as f64;
            row.push(format!("{l:.2} / {g:.2}"));
        }
        report.push_row(row);
        let _ = app;
    }
    report.push_note(
        "paper averages (local/global): TATAS 1.05/1.04, MCS 0.98/0.88, \
         RH 0.98/0.81, HBO 0.95/0.81, HBO_GT 0.94/0.81, HBO_GT_SD 0.97/0.85",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_has_seven_apps_plus_average() {
        let r = run_table5(Scale::Fast);
        assert_eq!(r.rows(), 8);
        assert!(r.row_by_key("Average").is_some());
        assert!(r.row_by_key("Raytrace").is_some());
    }

    #[test]
    fn fig6_normalizes_tatas_exp_to_one() {
        let r = run_fig6(Scale::Fast);
        for i in 0..r.rows() {
            assert_eq!(r.cell(i, 2), Some("1.00"), "row {i}");
        }
    }

    #[test]
    fn table6_rows_have_local_global_pairs() {
        let r = run_table6(Scale::Fast);
        assert_eq!(r.rows(), 7);
        let cell = r.cell(0, 2).unwrap();
        assert_eq!(cell, "1.00 / 1.00", "TATAS_EXP column is the baseline");
    }
}

//! Figure 3 — the traditional microbenchmark on a 2-node WildFire:
//! iteration time (left panel) and node-handoff ratio (right panel) as the
//! processor count grows.

use nuca_workloads::traditional::{run_traditional, TraditionalConfig};
use nucasim::MachineConfig;

use crate::report::{fmt_ratio, Report};
use crate::{runner, Scale};

/// Runs the processor-count sweep for all eight locks; returns the two
/// panels as separate reports.
///
/// The sweep is a grid of independent simulations (lock kind × processor
/// count); each grid point is one self-contained job handed to
/// [`runner::run_jobs`] and the rows are assembled from the results in
/// fixed grid order, so the reports are identical however many threads ran
/// the jobs.
pub fn run(scale: Scale) -> Vec<Report> {
    let (max_per_node, iters, step) = scale.pick((14, 50, 2), (4, 15, 2));
    let proc_counts: Vec<usize> = (2..=2 * max_per_node).step_by(step).collect();

    let mut time = Report::new(
        "fig3_time",
        "Traditional microbenchmark: time per iteration (ns) vs processors",
        &header(&proc_counts),
    );
    let mut handoff = Report::new(
        "fig3_handoff",
        "Traditional microbenchmark: node-handoff ratio vs processors",
        &header(&proc_counts),
    );

    let jobs: Vec<_> = hbo_locks::LockCatalog::paper()
        .iter()
        .flat_map(|&kind| proc_counts.iter().map(move |&p| (kind, p)))
        .map(|(kind, p)| {
            move || {
                run_traditional(&TraditionalConfig {
                    kind,
                    machine: MachineConfig::wildfire(2, max_per_node),
                    threads: p,
                    iterations: iters,
                    ..TraditionalConfig::default()
                })
            }
        })
        .collect();
    let results = runner::run_jobs(jobs);

    for (ki, kind) in hbo_locks::LockCatalog::paper().iter().enumerate() {
        let mut trow = vec![kind.as_str().to_owned()];
        let mut hrow = vec![kind.as_str().to_owned()];
        for r in &results[ki * proc_counts.len()..(ki + 1) * proc_counts.len()] {
            trow.push(format!("{:.0}", r.ns_per_iteration));
            hrow.push(fmt_ratio(r.handoff_ratio));
        }
        time.push_row(trow);
        handoff.push_row(hrow);
    }
    time.push_note(
        "paper: NUCA-aware locks take about half the time of any other \
         software lock at 8-10+ processors",
    );
    handoff.push_note(
        "paper: NUCA-aware locks show consistently low handoffs; queue \
         locks approach (N/2)/(N-1)",
    );
    vec![time, handoff]
}

fn header(proc_counts: &[usize]) -> Vec<&'static str> {
    // Leak the small header strings: reports want &str and the sweep is
    // tiny and created once per process.
    let mut cols = vec!["Lock Type"];
    for p in proc_counts {
        cols.push(Box::leak(format!("{p}p").into_boxed_str()));
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_two_panels_with_all_locks() {
        let reports = run(Scale::Fast);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.rows(), 8);
        }
    }

    #[test]
    fn queue_lock_handoff_exceeds_nuca_handoff_at_max_procs() {
        let reports = run(Scale::Fast);
        let handoff = &reports[1];
        let last = handoff.row_by_key("MCS").unwrap().len() - 1;
        let mcs: f64 = handoff.row_by_key("MCS").unwrap()[last].parse().unwrap();
        let hbo: f64 = handoff.row_by_key("HBO_GT").unwrap()[last]
            .parse()
            .unwrap();
        assert!(mcs > hbo, "MCS {mcs} vs HBO_GT {hbo}");
    }
}

//! Table 4 and Figure 7 — the Raytrace deep-dive: execution time at 1, 28
//! and 30 processors (the 30-processor runs suffer OS preemption, which
//! collapses the queue locks), and the speedup curve.

use nuca_topology::Topology;
use nuca_workloads::apps::{app_by_name, run_app, AppReport, AppRunConfig};
use nucasim::{MachineConfig, PreemptionConfig};

use crate::apps_exp::app_cfg;
use crate::report::{fmt_secs, Report};
use crate::{runner, Scale};

/// The paper's 30-processor machine: the 16 + 14 WildFire prototype, with
/// daemon preemption enabled (a fully populated machine leaves the OS
/// nowhere idle to run).
fn prototype_30p(scale: Scale) -> MachineConfig {
    let topo = match scale {
        Scale::Full => Topology::builder().node(16).node(14).build().expect("static"),
        Scale::Fast => Topology::builder().node(5).node(4).build().expect("static"),
    };
    // Fast runs are orders of magnitude shorter, so the disturbance must
    // arrive proportionally more often to land at all.
    let preemption = match scale {
        Scale::Full => PreemptionConfig::multiprogrammed(),
        Scale::Fast => PreemptionConfig {
            mean_gap: 120_000,
            quantum: 300_000,
        },
    };
    MachineConfig {
        topology: topo,
        ..MachineConfig::wildfire(2, 2)
    }
    .with_preemption(preemption)
}

/// Table 4 — Raytrace execution time at 1, 28 and 30 CPUs.
pub fn run_table4(scale: Scale) -> Report {
    let ray = app_by_name("Raytrace").expect("raytrace is studied");
    let mut report = Report::new(
        "table4",
        "Raytrace performance (simulated seconds)",
        &["Lock Type", "1 CPU", "28 CPUs", "30 CPUs (preempted)"],
    );
    // Budget for the preempted runs: generous, but finite — queue locks
    // that exceed it print as "> N s", the paper's "> 200 s" rows.
    let budget = scale.pick(12_500_000_000u64, 1_500_000_000u64);
    // Three independent runs per lock (1p, 28p, 30p-preempted), flattened
    // into one job list and read back per lock in fixed order.
    let mut jobs: Vec<Box<dyn FnOnce() -> AppReport + Send>> = Vec::new();
    for &kind in hbo_locks::LockCatalog::paper() {
        let ray1 = ray.clone();
        jobs.push(Box::new(move || run_app(&ray1, &app_cfg(scale, kind, 1))));
        let ray28 = ray.clone();
        jobs.push(Box::new(move || run_app(&ray28, &app_cfg(scale, kind, 28))));
        let ray30 = ray.clone();
        jobs.push(Box::new(move || {
            let mut cfg30 = AppRunConfig {
                machine: prototype_30p(scale),
                cycle_limit: budget,
                ..app_cfg(scale, kind, 28)
            };
            cfg30.threads = cfg30.machine.topology.num_cpus();
            run_app(&ray30, &cfg30)
        }));
    }
    let results = runner::run_jobs(jobs);
    for (ki, kind) in hbo_locks::LockCatalog::paper().iter().enumerate() {
        let [one, twenty_eight, thirty] = &results[ki * 3..ki * 3 + 3] else {
            unreachable!("three runs per lock kind");
        };
        report.push_row(vec![
            kind.as_str().to_owned(),
            fmt_secs(one.seconds, one.finished),
            fmt_secs(twenty_eight.seconds, twenty_eight.finished),
            fmt_secs(thirty.seconds, thirty.finished),
        ]);
    }
    report.push_note(
        "paper: MCS/CLH 1.41/1.38 s at 28 CPUs but > 200 s at 30 CPUs; \
         RH/HBO family 0.62-0.80 s at both",
    );
    report
}

/// Figure 7 — Raytrace speedup vs processor count.
pub fn run_fig7(scale: Scale) -> Report {
    let ray = app_by_name("Raytrace").expect("raytrace is studied");
    let counts: Vec<usize> = scale.pick(vec![1, 4, 8, 12, 16, 20, 24, 28], vec![1, 4, 8]);
    let mut header = vec!["Lock Type".to_owned()];
    header.extend(counts.iter().map(|c| format!("{c}p")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new("fig7", "Speedup for Raytrace", &header_refs);

    // Per lock: the sequential baseline plus each swept processor count
    // (the p=1 sweep point reruns the baseline config, as the serial code
    // did, keeping the output byte-identical).
    let jobs: Vec<_> = hbo_locks::LockCatalog::paper()
        .iter()
        .flat_map(|&kind| {
            let mut cells = vec![(kind, 1usize)];
            cells.extend(counts.iter().map(|&p| (kind, p)));
            cells
        })
        .map(|(kind, p)| {
            let ray = ray.clone();
            move || run_app(&ray, &app_cfg(scale, kind, p))
        })
        .collect();
    let results = runner::run_jobs(jobs);
    let stride = 1 + counts.len();
    for (ki, kind) in hbo_locks::LockCatalog::paper().iter().enumerate() {
        let chunk = &results[ki * stride..(ki + 1) * stride];
        let seq = &chunk[0];
        let mut row = vec![kind.as_str().to_owned()];
        for r in &chunk[1..] {
            if r.finished {
                row.push(format!("{:.2}", seq.seconds / r.seconds));
            } else {
                row.push("stuck".to_owned());
            }
        }
        report.push_row(row);
    }
    report.push_note(
        "paper: all non-NUCA locks decline above 12 processors; the \
         NUCA-aware locks scale moderately up to 28",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_runs_all_locks() {
        let r = run_table4(Scale::Fast);
        assert_eq!(r.rows(), 8);
    }

    #[test]
    fn fig7_speedup_at_one_cpu_is_one() {
        let r = run_fig7(Scale::Fast);
        for i in 0..r.rows() {
            let s: f64 = r.cell(i, 1).unwrap().parse().unwrap();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }
}

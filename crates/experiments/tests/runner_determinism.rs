//! Regression test for the parallel runner's core guarantee: the TSV
//! bytes of an artifact are identical whether its simulation jobs ran
//! serially or on several threads.

use std::sync::Mutex;

use nuca_experiments::{run_experiment, runner, Scale};

/// Serializes the tests in this file: they reconfigure the process-global
/// job budget.
static BUDGET_LOCK: Mutex<()> = Mutex::new(());

/// Renders every report of `id` at fast scale under the given job budget.
fn tsv_bytes(id: &str, jobs: usize) -> Vec<String> {
    runner::set_max_jobs(jobs);
    let reports = run_experiment(id, Scale::Fast).expect("known artifact");
    runner::set_max_jobs(0);
    reports.iter().map(|r| r.to_tsv()).collect()
}

#[test]
fn fig3_tsv_identical_serial_vs_parallel() {
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert_eq!(tsv_bytes("fig3", 1), tsv_bytes("fig3", 2));
}

#[test]
fn fig5_tsv_identical_serial_vs_parallel() {
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert_eq!(tsv_bytes("fig5", 1), tsv_bytes("fig5", 2));
}

#[test]
fn table2_tsv_identical_serial_vs_parallel() {
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert_eq!(tsv_bytes("table2", 1), tsv_bytes("table2", 4));
}

#[test]
fn falsesharing_tsv_identical_serial_vs_parallel() {
    // The MESI/Dragon runs inside the sweep must be byte-identical across
    // job counts, exactly like the flat ones: protocol state is
    // per-machine, never shared between concurrent simulations.
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert_eq!(tsv_bytes("falsesharing", 1), tsv_bytes("falsesharing", 4));
}

#[test]
fn robustness_tsv_identical_serial_vs_parallel() {
    // The faulted sweep must stay deterministic too: fault-layer RNG
    // streams are seeded per run, never shared across jobs.
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert_eq!(tsv_bytes("robustness", 1), tsv_bytes("robustness", 4));
}

//! Regression test for the scheduler swap's core guarantee: every
//! artifact's TSV bytes are identical whichever event scheduler produced
//! them. The time wheel is a pure speed optimization — any divergence
//! from the reference heap is a tie-break bug, not a tuning choice.

use std::sync::Mutex;

use nuca_experiments::{run_experiment, Scale, EXPERIMENTS, EXTENSIONS};
use nucasim::SchedKind;

/// Serializes the tests in this file: they flip the process-global
/// scheduler default.
static SCHED_LOCK: Mutex<()> = Mutex::new(());

/// Renders every report of `id` at fast scale under `kind`.
fn tsv_bytes(id: &str, kind: SchedKind) -> Vec<String> {
    nucasim::set_default_sched(kind);
    let reports = run_experiment(id, Scale::Fast).expect("known artifact");
    nucasim::set_default_sched(SchedKind::default());
    reports.iter().map(|r| r.to_tsv()).collect()
}

/// One sweep (not one test per artifact): each artifact pair must run
/// back-to-back under the lock so no concurrent test flips the default.
#[test]
fn every_artifact_tsv_identical_across_schedulers() {
    let _guard = SCHED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for id in EXPERIMENTS.iter().chain(EXTENSIONS.iter()) {
        let heap = tsv_bytes(id, SchedKind::Heap);
        let wheel = tsv_bytes(id, SchedKind::Wheel);
        assert_eq!(heap, wheel, "{id}: wheel diverges from reference heap");
    }
}

/// The lockstep cross-check mode asserts pop-by-pop agreement internally;
/// running the two most scheduler-hostile artifacts through it (deep
/// backoff sweeps in fig5, preemption storms in table4) is the strongest
/// single determinism probe the harness has. `robustness` adds the
/// fault-injected sweep (holder preemption, migration, slow node, jitter).
#[test]
fn check_mode_passes_hostile_artifacts() {
    let _guard = SCHED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for id in ["fig5", "table4", "robustness"] {
        let checked = tsv_bytes(id, SchedKind::Check);
        let reference = tsv_bytes(id, SchedKind::Heap);
        assert_eq!(checked, reference, "{id}: check mode diverges");
    }
}

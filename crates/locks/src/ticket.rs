//! A ticket lock — the classic FIFO spin lock (Anderson 1990, which the
//! paper cites for backoff), provided as a library extension.
//!
//! Tickets sit between TATAS and the queue locks: FIFO-fair like MCS/CLH
//! but with TATAS-like storage (two words) and no queue nodes. All
//! waiters spin on one shared word (`now_serving`), so every handover
//! still invalidates every waiter — the traffic problem the paper's
//! queue-lock discussion starts from. Proportional backoff (spin roughly
//! `distance × slot` before re-checking) tempers the storm.

use std::sync::atomic::{AtomicUsize, Ordering};

use nuca_topology::NodeId;

use crate::backoff::spin_cycles;
use crate::lock::NucaLock;
use crate::pad::CachePadded;

/// Proof that a [`TicketLock`] is held.
#[derive(Debug)]
pub struct TicketToken {
    ticket: usize,
}

/// FIFO ticket lock with proportional backoff.
///
/// # Example
///
/// ```
/// use hbo_locks::{NucaLockExt, TicketLock};
/// let lock = TicketLock::new();
/// let g = lock.lock();
/// drop(g);
/// ```
#[derive(Debug, Default)]
pub struct TicketLock {
    next_ticket: CachePadded<AtomicUsize>,
    now_serving: CachePadded<AtomicUsize>,
    /// Spin-hint iterations per queue position when waiting.
    slot_cycles: u32,
}

impl TicketLock {
    /// Creates a free lock with a default proportional-backoff slot.
    pub fn new() -> TicketLock {
        TicketLock::with_slot(64)
    }

    /// Creates a free lock; waiters delay `distance × slot_cycles` spin
    /// hints between checks of `now_serving`.
    pub fn with_slot(slot_cycles: u32) -> TicketLock {
        TicketLock {
            next_ticket: CachePadded::new(AtomicUsize::new(0)),
            now_serving: CachePadded::new(AtomicUsize::new(0)),
            slot_cycles,
        }
    }

    /// Number of threads currently waiting or holding (0 = free).
    pub fn queue_depth(&self) -> usize {
        self.next_ticket
            .load(Ordering::Relaxed)
            .wrapping_sub(self.now_serving.load(Ordering::Relaxed))
    }
}

impl NucaLock for TicketLock {
    type Token = TicketToken;

    fn acquire(&self, _node: NodeId) -> TicketToken {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        loop {
            let serving = self.now_serving.load(Ordering::Acquire);
            let distance = ticket.wrapping_sub(serving);
            if distance == 0 {
                return TicketToken { ticket };
            }
            // Proportional backoff: a waiter k positions back has at
            // least k handovers to wait through; yield too so an
            // oversubscribed host keeps making progress.
            spin_cycles(self.slot_cycles.saturating_mul(distance.min(64) as u32));
            std::thread::yield_now();
        }
    }

    fn try_acquire(&self, _node: NodeId) -> Option<TicketToken> {
        let serving = self.now_serving.load(Ordering::Acquire);
        // Claim the next ticket only if it would be served immediately.
        match self.next_ticket.compare_exchange(
            serving,
            serving.wrapping_add(1),
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => Some(TicketToken { ticket: serving }),
            Err(_) => None,
        }
    }

    fn release(&self, token: TicketToken) {
        // Only the holder can advance the serving counter; a plain store
        // of ticket+1 is the classic release.
        self.now_serving
            .store(token.ticket.wrapping_add(1), Ordering::Release);
    }

    fn name(&self) -> &'static str {
        "TICKET"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::NucaLockExt;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn mutual_exclusion() {
        let lock = Arc::new(TicketLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        let g = lock.lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        drop(g);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 40_000);
    }

    #[test]
    fn try_acquire_semantics() {
        let lock = TicketLock::new();
        let t = lock.try_acquire(NodeId(0)).expect("free");
        assert!(lock.try_acquire(NodeId(0)).is_none());
        assert_eq!(lock.queue_depth(), 1);
        lock.release(t);
        assert_eq!(lock.queue_depth(), 0);
        let t2 = lock.try_acquire(NodeId(1)).expect("released");
        lock.release(t2);
    }

    #[test]
    fn fifo_order_two_waiters() {
        let lock = Arc::new(TicketLock::new());
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let t = lock.acquire(NodeId(0));
        std::thread::scope(|s| {
            for i in 0..2 {
                let lock = Arc::clone(&lock);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    let g = lock.lock();
                    order.lock().unwrap().push(i);
                    drop(g);
                });
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            lock.release(t);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1]);
    }

    #[test]
    fn ticket_wraparound_is_safe() {
        // Start the counters near the wrap point and keep going.
        let lock = TicketLock::new();
        lock.next_ticket.store(usize::MAX - 1, Ordering::Relaxed);
        lock.now_serving.store(usize::MAX - 1, Ordering::Relaxed);
        for _ in 0..5 {
            let t = lock.acquire(NodeId(0));
            lock.release(t);
        }
        assert_eq!(lock.queue_depth(), 0);
    }
}

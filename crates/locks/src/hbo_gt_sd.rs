//! HBO_GT_SD — HBO_GT with starvation detection (§4.3).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nuca_topology::NodeId;

use crate::backoff::{Backoff, BackoffConfig};
use crate::gt_ctx::GtContext;
use crate::hbo::{tag, FREE};
use crate::lock::NucaLock;
use crate::pad::CachePadded;

/// Tunables for the starvation-detection mechanism.
///
/// # Example
///
/// ```
/// use hbo_locks::HboGtSdConfig;
/// let cfg = HboGtSdConfig { get_angry_limit: 8, ..HboGtSdConfig::default() };
/// assert_eq!(cfg.get_angry_limit, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HboGtSdConfig {
    /// Number of failed remote attempts before a node's winning spinner
    /// "gets angry" (the paper's `GET_ANGRY_LIMIT`, studied in Fig. 10).
    pub get_angry_limit: u32,
    /// Local (same-node) backoff constants.
    pub local: BackoffConfig,
    /// Remote backoff constants (`REMOTE_BACKOFF_*`, studied in Fig. 9).
    pub remote: BackoffConfig,
    /// The paper's *thread-centric* measure (§4.3): total denied attempts
    /// (local or remote) after which a thread's priority is boosted — it
    /// "can start spinning without any backoff until the lock is
    /// obtained". `0` disables the boost (the node-centric mechanism
    /// alone, as in the paper's measured HBO_GT_SD).
    pub boost_limit: u32,
}

impl Default for HboGtSdConfig {
    fn default() -> Self {
        HboGtSdConfig {
            get_angry_limit: 16,
            local: BackoffConfig::local(),
            remote: BackoffConfig::remote(),
            boost_limit: 0,
        }
    }
}

/// Proof that an [`HboGtSdLock`] is held.
#[derive(Debug)]
pub struct HboGtSdToken(());

/// HBO_GT with *node-centric starvation detection* (the paper's HBO_GT_SD,
/// Figure 2).
///
/// The HBO family's node affinity is deliberately unfair; under adversarial
/// timing a remote node could be bypassed indefinitely. HBO_GT_SD bounds
/// this: a remote spinner that has failed `GET_ANGRY_LIMIT` times *gets
/// angry* and takes two measures (paper §4.3):
///
/// 1. it **spins more frequently** — its backoff resets to the eager local
///    constants; and
/// 2. it **stops other nodes** — it writes the lock address into the
///    `is_spinning` slot of the node it observes holding the lock, so no
///    *new* contender from that node may join the race. As the lock hops
///    between other nodes, each observed holder node is stopped in turn.
///
/// When the angry thread finally acquires the lock it releases every node
/// it stopped (Fig. 2 lines 44–48).
///
/// # Example
///
/// ```
/// use hbo_locks::{HboGtSdLock, NucaLock};
/// use nuca_topology::NodeId;
///
/// let lock = HboGtSdLock::with_nodes(4);
/// let t = lock.acquire(NodeId(2));
/// lock.release(t);
/// ```
#[derive(Debug)]
pub struct HboGtSdLock {
    word: CachePadded<AtomicUsize>,
    ctx: Arc<GtContext>,
    cfg: HboGtSdConfig,
}

impl HboGtSdLock {
    /// Creates a free lock on the process-global [`GtContext`].
    pub fn with_nodes(nodes: usize) -> HboGtSdLock {
        let _ = nodes;
        HboGtSdLock::with_context(Arc::clone(GtContext::global()))
    }

    /// Creates a free lock bound to a specific throttling context.
    pub fn with_context(ctx: Arc<GtContext>) -> HboGtSdLock {
        HboGtSdLock::with_config(ctx, HboGtSdConfig::default())
    }

    /// Creates a free lock with explicit tunables.
    pub fn with_config(ctx: Arc<GtContext>, cfg: HboGtSdConfig) -> HboGtSdLock {
        HboGtSdLock {
            word: CachePadded::new(AtomicUsize::new(FREE)),
            ctx,
            cfg,
        }
    }

    #[inline]
    fn addr(&self) -> usize {
        &*self.word as *const AtomicUsize as usize
    }

    #[inline]
    fn cas(&self, node_tag: usize) -> usize {
        match self
            .word
            .compare_exchange(FREE, node_tag, Ordering::Acquire, Ordering::Relaxed)
        {
            Ok(prev) | Err(prev) => prev,
        }
    }

    #[inline]
    fn gate(&self, node: NodeId) {
        let mut w = crate::backoff::SpinWait::new();
        while self.ctx.is_throttled(node, self.addr()) {
            w.spin();
        }
    }

    /// Releases every node recorded in `stopped` (a bitmask of node ids).
    fn release_stopped(&self, stopped: &mut u64) {
        let mut mask = *stopped;
        while mask != 0 {
            let n = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            self.ctx.release_node(NodeId(n), self.addr());
        }
        *stopped = 0;
    }

    /// Eager constants for a priority-boosted thread: effectively no
    /// backoff, bounded only by a minimal delay of one spin hint.
    const BOOSTED: BackoffConfig = BackoffConfig::new(1, 1, 1);

    #[cold]
    fn acquire_slowpath(&self, node: NodeId, mut tmp: usize) {
        let node_tag = tag(node);
        // Nodes this thread has stopped (bitmask over node ids < 64).
        let mut stopped: u64 = 0;
        let mut get_angry: u32 = 0;
        // Thread-centric denial count (boost measure).
        let mut denied: u32 = 0;
        loop {
            // `start:`
            if tmp == node_tag {
                // Local lock: identical to HBO_GT (plus the boost check).
                let mut b = Backoff::new(&self.cfg.local);
                let migrated = loop {
                    b.spin();
                    tmp = self.cas(node_tag);
                    if tmp == FREE {
                        self.release_stopped(&mut stopped);
                        return;
                    }
                    denied += 1;
                    if self.cfg.boost_limit > 0 && denied == self.cfg.boost_limit {
                        b.reset(&Self::BOOSTED);
                    }
                    if tmp != node_tag {
                        b.spin();
                        break true;
                    }
                };
                if migrated {
                    self.gate(node);
                    tmp = self.cas(node_tag);
                    if tmp == FREE {
                        self.release_stopped(&mut stopped);
                        return;
                    }
                }
            } else {
                // Remote lock: throttled spinning with anger accounting
                // (Fig. 2 replaces Fig. 1 lines 43–50).
                let mut b = Backoff::new(&self.cfg.remote);
                self.ctx.start_remote_spin(node, self.addr());
                loop {
                    b.spin();
                    tmp = self.cas(node_tag);
                    if tmp == FREE {
                        // Release the threads from our node, and from the
                        // stopped nodes, if any (Fig. 2 lines 43–49).
                        self.ctx.stop_remote_spin(node);
                        self.release_stopped(&mut stopped);
                        return;
                    }
                    if tmp == node_tag {
                        // Lock migrated into our node (Fig. 2 lines 51–56).
                        self.ctx.stop_remote_spin(node);
                        self.release_stopped(&mut stopped);
                        self.gate(node);
                        tmp = self.cas(node_tag);
                        if tmp == FREE {
                            return;
                        }
                        break;
                    }
                    // Still in some remote node (Fig. 2 lines 57–63).
                    get_angry += 1;
                    denied += 1;
                    if self.cfg.boost_limit > 0 && denied >= self.cfg.boost_limit {
                        b.reset(&Self::BOOSTED);
                    }
                    if get_angry >= self.cfg.get_angry_limit
                        && get_angry.is_multiple_of(self.cfg.get_angry_limit)
                    {
                        // Measure 1: spin more frequently from now on.
                        b.reset(&self.cfg.local);
                        // Measure 2: stop the node observed holding the
                        // lock (tag → node id), if not already stopped.
                        let holder = tmp - 1;
                        if holder < 64 && stopped & (1 << holder) == 0 {
                            stopped |= 1 << holder;
                            self.ctx.stop_node(NodeId(holder), self.addr());
                        }
                    }
                }
            }
        }
    }
}

impl NucaLock for HboGtSdLock {
    type Token = HboGtSdToken;

    fn acquire(&self, node: NodeId) -> HboGtSdToken {
        self.gate(node);
        let tmp = self.cas(tag(node));
        if tmp != FREE {
            self.acquire_slowpath(node, tmp);
        }
        HboGtSdToken(())
    }

    fn try_acquire(&self, node: NodeId) -> Option<HboGtSdToken> {
        if self.ctx.is_throttled(node, self.addr()) {
            return None;
        }
        if self.cas(tag(node)) == FREE {
            Some(HboGtSdToken(()))
        } else {
            None
        }
    }

    fn release(&self, _token: HboGtSdToken) {
        self.word.store(FREE, Ordering::Release);
    }

    fn name(&self) -> &'static str {
        "HBO_GT_SD"
    }
}

impl HboGtSdLock {
    /// Returns the node currently holding the lock, if any.
    pub fn holder(&self) -> Option<NodeId> {
        match self.word.load(Ordering::Relaxed) {
            FREE => None,
            t => Some(NodeId(t - 1)),
        }
    }

    /// The tunables this lock was built with.
    pub fn config(&self) -> &HboGtSdConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn small_cfg() -> HboGtSdConfig {
        HboGtSdConfig {
            get_angry_limit: 4,
            local: BackoffConfig::new(4, 2, 64),
            remote: BackoffConfig::new(8, 2, 128),
            boost_limit: 0,
        }
    }

    #[test]
    fn basic_roundtrip() {
        let lock = HboGtSdLock::with_nodes(2);
        let t = lock.acquire(NodeId(0));
        assert_eq!(lock.holder(), Some(NodeId(0)));
        lock.release(t);
        assert_eq!(lock.holder(), None);
    }

    #[test]
    fn mutual_exclusion_mixed_nodes() {
        let ctx = GtContext::new(4);
        let lock = Arc::new(HboGtSdLock::with_config(Arc::clone(&ctx), small_cfg()));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for i in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    let node = NodeId(i);
                    for _ in 0..20_000 {
                        let t = lock.acquire(node);
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.release(t);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
        // All throttling state must be clean afterwards: no node may still
        // be gated on this lock.
        for n in 0..4 {
            assert!(
                !ctx.is_throttled(NodeId(n), lock.addr()),
                "slots reset to DUMMY"
            );
        }
    }

    #[test]
    fn angry_thread_eventually_wins_against_greedy_node() {
        // Node 0 threads hammer the lock with zero think time; a single
        // node 1 thread must still get in thanks to starvation detection.
        let ctx = GtContext::new(2);
        let lock = Arc::new(HboGtSdLock::with_config(Arc::clone(&ctx), small_cfg()));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let lock = Arc::clone(&lock);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        let t = lock.acquire(NodeId(0));
                        crate::backoff::spin_cycles(50);
                        lock.release(t);
                    }
                });
            }
            let lock1 = Arc::clone(&lock);
            let done1 = Arc::clone(&done);
            let starved = s.spawn(move || {
                for _ in 0..50 {
                    let t = lock1.acquire(NodeId(1));
                    lock1.release(t);
                }
                done1.store(true, Ordering::Relaxed);
            });
            starved.join().unwrap();
        });
    }

    #[test]
    fn stopped_nodes_released_after_acquire() {
        // Simulate the anger path directly: stop node 1, then verify the
        // bookkeeping helper releases it.
        let ctx = GtContext::new(2);
        let lock = HboGtSdLock::with_config(Arc::clone(&ctx), small_cfg());
        let mut stopped: u64 = 0b10;
        ctx.stop_node(NodeId(1), lock.addr());
        assert!(ctx.is_throttled(NodeId(1), lock.addr()));
        lock.release_stopped(&mut stopped);
        assert!(!ctx.is_throttled(NodeId(1), lock.addr()));
        assert_eq!(stopped, 0);
    }

    #[test]
    fn thread_boost_starved_thread_completes() {
        // Thread-centric measure alone (huge node-centric limit): a
        // boosted remote thread must still get through a greedy node.
        let ctx = GtContext::new(2);
        let lock = Arc::new(HboGtSdLock::with_config(
            Arc::clone(&ctx),
            HboGtSdConfig {
                get_angry_limit: u32::MAX,
                boost_limit: 8,
                ..small_cfg()
            },
        ));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let lock = Arc::clone(&lock);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        let t = lock.acquire(NodeId(0));
                        crate::backoff::spin_cycles(50);
                        lock.release(t);
                    }
                });
            }
            let lock1 = Arc::clone(&lock);
            let done1 = Arc::clone(&done);
            s.spawn(move || {
                for _ in 0..50 {
                    let t = lock1.acquire(NodeId(1));
                    lock1.release(t);
                }
                done1.store(true, Ordering::Relaxed);
            })
            .join()
            .unwrap();
        });
    }

    #[test]
    fn boost_disabled_by_default() {
        assert_eq!(HboGtSdConfig::default().boost_limit, 0);
    }

    #[test]
    fn config_accessible() {
        let lock = HboGtSdLock::with_config(GtContext::new(2), small_cfg());
        assert_eq!(lock.config().get_angry_limit, 4);
        assert_eq!(lock.name(), "HBO_GT_SD");
    }
}

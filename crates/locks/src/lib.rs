//! Hierarchical backoff locks for nonuniform communication architectures.
//!
//! This crate is a production-oriented implementation of the lock algorithms
//! from *"Hierarchical Backoff Locks for Nonuniform Communication
//! Architectures"* (Zoran Radović and Erik Hagersten, HPCA 2003), together
//! with every baseline the paper compares against:
//!
//! | Type | Paper name | Idea |
//! |------|-----------|------|
//! | [`TatasLock`] | TATAS | test-and-test&set |
//! | [`TatasExpLock`] | TATAS_EXP | TATAS with exponential backoff |
//! | [`McsLock`] | MCS | queue lock of Mellor-Crummey & Scott |
//! | [`ClhLock`] | CLH | queue lock of Craig, Landin & Hagersten |
//! | [`RhLock`] | RH | the authors' 2-node proof-of-concept NUCA lock |
//! | [`HboLock`] | HBO | node-id-in-lock-word + hierarchical backoff |
//! | [`HboGtLock`] | HBO_GT | HBO + per-node global-traffic throttling |
//! | [`HboGtSdLock`] | HBO_GT_SD | HBO_GT + node-centric starvation detection |
//! | [`HierHboLock`] | HIER | the paper's "expand hierarchically" remark, realized |
//! | [`ReactiveLock`] | — | §3's reactive synchronization (Lim & Agarwal), as an extension |
//! | [`TicketLock`] | TICKET | FIFO ticket lock with proportional backoff, as an extension |
//! | [`CnaLock`] | CNA | compact NUMA-aware MCS variant (Dice & Kogan 2019) |
//! | [`TwaLock`] | TWA | ticket lock + hashed waiting array (Dice & Kogan 2019) |
//! | [`RecipLock`] | RECIP | reciprocating lock, palindromic admission (Dice & Kogan 2025) |
//!
//! Every named kind is registered in the [`LockCatalog`], the single
//! enumeration point for sweeps, CLIs and checkers.
//!
//! # The idea
//!
//! On a NUCA machine (a CC-NUMA built from a few large nodes, or a server
//! built from chip multiprocessors), handing a contended lock to a waiting
//! *neighbor* is much cheaper than handing it to a remote node: both the
//! lock word and the critical-section data are already in the node. The HBO
//! lock gets this node affinity with an embarrassingly simple trick: the
//! lock word holds the **node id of the holder**. A contender whose `cas`
//! fails learns *where* the lock is; same-node contenders retry eagerly
//! (small backoff) while remote contenders retry lazily (large backoff), so
//! when the lock is released a neighbor almost always wins the race.
//!
//! # Quick start
//!
//! ```
//! use hbo_locks::{HboGtSdLock, NucaLockExt, NucaMutex};
//! use nuca_topology::{register_thread, Topology};
//! use std::sync::Arc;
//!
//! let topo = Topology::symmetric(2, 2);
//! let counter = Arc::new(NucaMutex::new(HboGtSdLock::with_nodes(2), 0u64));
//!
//! std::thread::scope(|s| {
//!     for cpu in topo.round_robin_binding(4) {
//!         let counter = Arc::clone(&counter);
//!         let node = topo.node_of(cpu);
//!         s.spawn(move || {
//!             let _reg = register_thread(node);
//!             for _ in 0..1000 {
//!                 *counter.lock() += 1;
//!             }
//!         });
//!     }
//! });
//! assert_eq!(*counter.lock(), 4000);
//! ```
//!
//! # Thread-to-node mapping
//!
//! The NUCA-aware locks need the caller's node id. The [`NucaLock`] trait
//! takes it explicitly ([`NucaLock::acquire`]); the ergonomic wrappers
//! ([`NucaMutex`], [`NucaLockExt::lock`]) read the calling thread's
//! registration from [`nuca_topology::register_thread`], falling back to
//! node 0. The node id is only an *affinity hint*: a wrong node id can cost
//! performance, never correctness.
//!
//! # Fairness
//!
//! HBO locks deliberately trade short-term fairness for throughput: they
//! keep a contended lock inside one node for stretches of time. The
//! starvation-detection variant ([`HboGtSdLock`]) bounds how long a remote
//! node can be bypassed. The queue locks ([`McsLock`], [`ClhLock`]) are
//! strictly FIFO. See the paper's §6 and the `fig8` experiment.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod any;
mod backoff;
mod clh;
mod cna;
mod gt_ctx;
mod hbo;
mod hbo_gt;
mod hbo_gt_sd;
mod hier;
mod instrument;
mod lock;
mod mcs;
mod pad;
mod reactive;
mod recip;
mod registry;
mod rh;
mod tatas;
mod ticket;
mod twa;

pub use any::{AnyLock, AnyToken, LockKind, ParseLockKindError};
pub use backoff::{spin_cycles, Backoff, BackoffConfig, SpinWait};
pub use clh::{ClhLock, ClhToken};
pub use cna::{CnaLock, CnaToken};
pub use gt_ctx::{GtContext, MAX_NODES};
pub use hbo::{HboLock, HboToken};
pub use hbo_gt::{HboGtLock, HboGtToken};
pub use hbo_gt_sd::{HboGtSdConfig, HboGtSdLock, HboGtSdToken};
pub use hier::{HierHboLock, HierHboToken, LevelBackoff};
pub use instrument::{Instrumented, LockStats};
pub use lock::{NucaLock, NucaLockExt, NucaLockGuard, NucaMutex, NucaMutexGuard};
pub use mcs::{McsLock, McsToken};
pub use pad::CachePadded;
pub use reactive::{ReactiveConfig, ReactiveLock, ReactiveToken};
pub use recip::{RecipLock, RecipToken};
pub use registry::{LockCatalog, LockFamily, LockInfo};
pub use rh::{RhLock, RhToken};
pub use tatas::{TatasExpLock, TatasLock, TatasToken};
pub use ticket::{TicketLock, TicketToken};
pub use twa::{TwaLock, TwaToken};

//! Compact NUMA-aware lock (CNA) — Dice & Kogan, EuroSys 2019
//! (arXiv:1810.05600).
//!
//! CNA is an MCS variant that gets HBO-like node locality *without*
//! giving up the queue: the releaser scans the main queue for the first
//! waiter on its own socket, detaches the skipped remote prefix into a
//! **secondary queue** (threaded through the very same queue nodes, so
//! the lock stays one word — "compact"), and hands the lock over
//! locally. When a bounded local streak expires, or no local waiter
//! exists, the secondary queue is spliced back ahead of the main queue
//! so remote waiters make progress.
//!
//! The published algorithm flushes the secondary queue with a small
//! random probability; this implementation uses a deterministic
//! consecutive-local-handoff threshold instead, which bounds unfairness
//! identically and keeps runs reproducible.

use std::cell::RefCell;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicUsize, Ordering};

use nuca_topology::NodeId;

use crate::lock::NucaLock;
use crate::pad::CachePadded;

/// Granted with an empty secondary queue. Distinguishable from a
/// secondary-queue head because node pointers are ≥128-aligned.
const GRANTED: usize = 1;

#[repr(align(128))]
struct CnaNode {
    /// 0 while waiting; [`GRANTED`] or the address of the secondary-queue
    /// head once the lock (plus the secondary queue) is handed over.
    spin: AtomicUsize,
    /// The waiter's NUCA node, stable while queued.
    socket: AtomicUsize,
    /// When this node heads a secondary queue: that queue's tail.
    sec_tail: AtomicPtr<CnaNode>,
    /// Link to the successor in whichever queue the node is on.
    next: AtomicPtr<CnaNode>,
}

impl CnaNode {
    fn new() -> CnaNode {
        CnaNode {
            spin: AtomicUsize::new(0),
            socket: AtomicUsize::new(0),
            sec_tail: AtomicPtr::new(ptr::null_mut()),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

thread_local! {
    /// Per-thread freelist, same discipline as the MCS pool: a node is
    /// recycled only once it has fully left both queues.
    #[allow(clippy::vec_box)]
    static CNA_POOL: RefCell<Vec<Box<CnaNode>>> = const { RefCell::new(Vec::new()) };
}

fn pool_take() -> Box<CnaNode> {
    CNA_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_else(|| Box::new(CnaNode::new()))
}

fn pool_put(node: Box<CnaNode>) {
    CNA_POOL.with(|p| p.borrow_mut().push(node));
}

/// Proof that a [`CnaLock`] is held. Carries the holder's queue node.
#[derive(Debug)]
pub struct CnaToken {
    node: *mut CnaNode,
}

// SAFETY: same argument as `McsToken` — the pointer is the holder's own
// queue node, touched only through the lock protocol.
unsafe impl Send for CnaToken {}

/// The compact NUMA-aware queue lock.
///
/// # Example
///
/// ```
/// use hbo_locks::{CnaLock, NucaLockExt};
/// let lock = CnaLock::new();
/// let g = lock.lock();
/// drop(g);
/// ```
#[derive(Debug)]
pub struct CnaLock {
    tail: CachePadded<AtomicPtr<CnaNode>>,
    /// Consecutive same-socket handoffs since the last splice. Written
    /// only by the current holder, so plain relaxed accesses suffice.
    local_streak: CachePadded<AtomicU32>,
    splice_threshold: u32,
}

impl Default for CnaLock {
    fn default() -> Self {
        CnaLock::new()
    }
}

impl CnaLock {
    /// Creates a free lock with the default local-streak bound.
    pub fn new() -> CnaLock {
        CnaLock::with_threshold(64)
    }

    /// Creates a free lock that splices the secondary (remote) queue back
    /// after at most `splice_threshold` consecutive local handoffs.
    pub fn with_threshold(splice_threshold: u32) -> CnaLock {
        CnaLock {
            tail: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            local_streak: CachePadded::new(AtomicU32::new(0)),
            splice_threshold: splice_threshold.max(1),
        }
    }

    /// Finds the first waiter on `socket` in the main queue after `me`,
    /// detaching any skipped remote prefix onto the secondary queue
    /// (whose head, if any, `sv` encodes). Returns `None` — with nothing
    /// detached — when every linked waiter is remote or a waiter has
    /// swapped the tail but not linked yet.
    ///
    /// # Safety
    ///
    /// Caller must hold the lock with `me` as its queue node.
    unsafe fn find_successor(
        &self,
        me: *mut CnaNode,
        sv: &mut usize,
    ) -> Option<*mut CnaNode> {
        let my_socket = (*me).socket.load(Ordering::Relaxed);
        let head = (*me).next.load(Ordering::Acquire);
        debug_assert!(!head.is_null());
        if (*head).socket.load(Ordering::Relaxed) == my_socket {
            return Some(head);
        }
        let mut sec_last = head;
        let mut cur = (*head).next.load(Ordering::Acquire);
        while !cur.is_null() {
            if (*cur).socket.load(Ordering::Relaxed) == my_socket {
                // Detach the remote prefix [head ..= sec_last] onto the
                // secondary queue. The grant's release-store publishes
                // these plain stores to the next holder.
                (*sec_last).next.store(ptr::null_mut(), Ordering::Relaxed);
                if *sv == GRANTED {
                    (*head).sec_tail.store(sec_last, Ordering::Relaxed);
                    *sv = head as usize;
                } else {
                    let old_head = *sv as *mut CnaNode;
                    let old_tail = (*old_head).sec_tail.load(Ordering::Relaxed);
                    (*old_tail).next.store(head, Ordering::Relaxed);
                    (*old_head).sec_tail.store(sec_last, Ordering::Relaxed);
                }
                return Some(cur);
            }
            sec_last = cur;
            cur = (*cur).next.load(Ordering::Acquire);
        }
        None
    }
}

impl NucaLock for CnaLock {
    type Token = CnaToken;

    fn acquire(&self, node: NodeId) -> CnaToken {
        let n = Box::into_raw(pool_take());
        // SAFETY: exclusively owned until published by the tail swap.
        unsafe {
            (*n).spin.store(0, Ordering::Relaxed);
            (*n).socket.store(node.index(), Ordering::Relaxed);
            (*n).sec_tail.store(ptr::null_mut(), Ordering::Relaxed);
            (*n).next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        let prev = self.tail.swap(n, Ordering::AcqRel);
        if prev.is_null() {
            // Uncontended: we hold with an empty secondary queue.
            // SAFETY: we own the node; nobody grants us, so we set the
            // holder's spin value ourselves.
            unsafe { (*n).spin.store(GRANTED, Ordering::Relaxed) };
        } else {
            // SAFETY: `prev` stays valid until its owner's release, which
            // cannot complete before observing this link.
            unsafe {
                (*prev).next.store(n, Ordering::Release);
                let mut w = crate::backoff::SpinWait::new();
                while (*n).spin.load(Ordering::Acquire) == 0 {
                    w.spin();
                }
            }
        }
        CnaToken { node: n }
    }

    fn try_acquire(&self, node: NodeId) -> Option<CnaToken> {
        let n = Box::into_raw(pool_take());
        // SAFETY: exclusively owned until published.
        unsafe {
            (*n).spin.store(GRANTED, Ordering::Relaxed);
            (*n).socket.store(node.index(), Ordering::Relaxed);
            (*n).sec_tail.store(ptr::null_mut(), Ordering::Relaxed);
            (*n).next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        match self
            .tail
            .compare_exchange(ptr::null_mut(), n, Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => Some(CnaToken { node: n }),
            Err(_) => {
                // SAFETY: never published; still exclusively ours.
                pool_put(unsafe { Box::from_raw(n) });
                None
            }
        }
    }

    fn release(&self, token: CnaToken) {
        let me = token.node;
        // SAFETY: `me` is the holder's queue node; every dereference below
        // follows the CNA protocol (waiters' nodes stay valid until their
        // owners are granted, which only this release can trigger).
        unsafe {
            // The holder's spin word carries the secondary queue it was
            // handed (GRANTED = empty). Only granters wrote it, before we
            // were granted, so a relaxed re-read is exact.
            let mut sv = (*me).spin.load(Ordering::Relaxed);
            let mut next = (*me).next.load(Ordering::Acquire);
            if next.is_null() {
                let done = if sv == GRANTED {
                    // Nobody visible anywhere: free the lock.
                    self.tail
                        .compare_exchange(
                            me,
                            ptr::null_mut(),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                } else {
                    // Main queue drained but remote waiters are parked on
                    // the secondary queue: promote it to be the main queue.
                    let sec = sv as *mut CnaNode;
                    let sec_tail = (*sec).sec_tail.load(Ordering::Relaxed);
                    if self
                        .tail
                        .compare_exchange(me, sec_tail, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.local_streak.store(0, Ordering::Relaxed);
                        (*sec).spin.store(GRANTED, Ordering::Release);
                        true
                    } else {
                        false
                    }
                };
                if done {
                    pool_put(Box::from_raw(me));
                    return;
                }
                // A contender swapped itself behind us but has not linked
                // yet; wait for the link.
                let mut w = crate::backoff::SpinWait::new();
                while (*me).next.load(Ordering::Acquire).is_null() {
                    w.spin();
                }
                next = (*me).next.load(Ordering::Acquire);
            }

            let streak = self.local_streak.load(Ordering::Relaxed);
            if streak < self.splice_threshold {
                if let Some(succ) = self.find_successor(me, &mut sv) {
                    self.local_streak.store(streak + 1, Ordering::Relaxed);
                    (*succ).spin.store(sv, Ordering::Release);
                    pool_put(Box::from_raw(me));
                    return;
                }
            }

            // Local streak expired or no local waiter: serve the remote
            // side. Splice the secondary queue (if any) ahead of the main
            // successor so the longest-bypassed waiters go first.
            self.local_streak.store(0, Ordering::Relaxed);
            if sv == GRANTED {
                (*next).spin.store(GRANTED, Ordering::Release);
            } else {
                let sec = sv as *mut CnaNode;
                let sec_tail = (*sec).sec_tail.load(Ordering::Relaxed);
                (*sec_tail).next.store(next, Ordering::Relaxed);
                (*sec).spin.store(GRANTED, Ordering::Release);
            }
            pool_put(Box::from_raw(me));
        }
    }

    fn name(&self) -> &'static str {
        "CNA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn mutual_exclusion_across_sockets() {
        let lock = Arc::new(CnaLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for i in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..20_000 {
                        let t = lock.acquire(NodeId(i % 2));
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.release(t);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
    }

    #[test]
    fn tiny_splice_threshold_still_excludes() {
        // Threshold 1 exercises the splice path on almost every handoff.
        let lock = Arc::new(CnaLock::with_threshold(1));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for i in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        let t = lock.acquire(NodeId(i % 2));
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.release(t);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 40_000);
    }

    #[test]
    fn try_acquire_only_when_free() {
        let lock = CnaLock::new();
        let t = lock.try_acquire(NodeId(0)).expect("free");
        assert!(lock.try_acquire(NodeId(1)).is_none());
        lock.release(t);
        let t2 = lock.try_acquire(NodeId(1)).expect("released");
        lock.release(t2);
    }

    #[test]
    fn sequential_reacquire() {
        let lock = CnaLock::new();
        for i in 0..10_000 {
            let t = lock.acquire(NodeId(i % 2));
            lock.release(t);
        }
    }

    #[test]
    fn token_moves_across_threads() {
        let lock = Arc::new(CnaLock::new());
        let t = lock.acquire(NodeId(0));
        let l2 = Arc::clone(&lock);
        std::thread::spawn(move || l2.release(t)).join().unwrap();
        let t2 = lock.try_acquire(NodeId(0)).expect("released remotely");
        lock.release(t2);
    }
}

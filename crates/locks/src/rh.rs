//! The RH lock — the authors' 2-node proof-of-concept NUCA lock (§3).
//!
//! # Faithfulness note
//!
//! The HPCA 2003 paper describes RH only qualitatively (the full listing is
//! in the authors' SC 2002 paper, "Efficient Synchronization for Nonuniform
//! Communication Architectures"). This module reconstructs a 2-node RH from
//! the HPCA description:
//!
//! * every node holds a *copy* of the lock (storage cost 2× the simple
//!   locks);
//! * a copy reads `FREE` (globally free), `L_FREE` (freed for neighbors
//!   only — the local-handover tag), `REMOTE` (the lock currently lives in
//!   the other node), or a *held* marker;
//! * the first thread in a node to observe `REMOTE` becomes the **node
//!   winner** and spins — with the large remote backoff — on the *other*
//!   node's copy until it captures the global lock, migrating it;
//! * release prefers the `L_FREE` local handover, bounded by a consecutive-
//!   handover budget after which the releaser writes `FREE` so remote
//!   captures can succeed.
//!
//! Two liveness details absent from the paper's prose are made explicit
//! here: node-winner election uses a `FISHING` tag so only one thread per
//! node spins remotely, and a patient remote winner may also capture an
//! `L_FREE` copy after exhausting its patience (otherwise an `L_FREE` with
//! no local taker would strand the lock). The lock remains starvation-
//! *prone* — the paper says as much — but is deadlock- and livelock-free.

use std::sync::atomic::{AtomicUsize, Ordering};

use nuca_topology::NodeId;

use crate::backoff::{Backoff, BackoffConfig};
use crate::lock::NucaLock;
use crate::pad::CachePadded;

const FREE: usize = 0;
const L_FREE: usize = 1;
const REMOTE: usize = 2;
const FISHING: usize = 3;
const HELD: usize = 4;

/// Failed remote captures tolerated before the winner may take `L_FREE`.
const REMOTE_PATIENCE: u32 = 2;

/// Proof that an [`RhLock`] is held; remembers the holder's node.
#[derive(Debug)]
pub struct RhToken {
    node: NodeId,
}

/// The RH lock (2 nodes).
///
/// # Example
///
/// ```
/// use hbo_locks::{NucaLock, RhLock};
/// use nuca_topology::NodeId;
///
/// let lock = RhLock::new();
/// let t = lock.acquire(NodeId(1));
/// lock.release(t);
/// ```
///
/// # Panics
///
/// [`RhLock::acquire`] panics if called with a node id other than 0 or 1 —
/// RH is inherently a two-node design (use the HBO family for more nodes).
#[derive(Debug)]
pub struct RhLock {
    /// One padded lock copy per node. `copies[0]` starts `FREE`,
    /// `copies[1]` starts `REMOTE`.
    copies: [CachePadded<AtomicUsize>; 2],
    /// Consecutive local handovers since the last node migration.
    handovers: CachePadded<AtomicUsize>,
    /// Local-handover budget before release publishes `FREE`.
    max_handovers: usize,
    local: BackoffConfig,
    remote: BackoffConfig,
}

impl Default for RhLock {
    fn default() -> Self {
        RhLock::new()
    }
}

impl RhLock {
    /// Creates a free lock, logically placed in node 0, with default
    /// backoff constants and a local-handover budget of 64.
    pub fn new() -> RhLock {
        RhLock::with_config(BackoffConfig::local(), BackoffConfig::remote(), 64)
    }

    /// Creates a free lock with explicit tunables.
    ///
    /// # Panics
    ///
    /// Panics if `max_handovers == 0` (the lock could never hand over
    /// locally, defeating its purpose).
    pub fn with_config(local: BackoffConfig, remote: BackoffConfig, max_handovers: usize) -> RhLock {
        assert!(max_handovers > 0, "handover budget must be positive");
        RhLock {
            copies: [
                CachePadded::new(AtomicUsize::new(FREE)),
                CachePadded::new(AtomicUsize::new(REMOTE)),
            ],
            handovers: CachePadded::new(AtomicUsize::new(0)),
            max_handovers,
            local,
            remote,
        }
    }

    fn copy(&self, node: NodeId) -> &AtomicUsize {
        &self.copies[node.index()]
    }

    /// Attempts to capture the *local* copy; returns the observed value.
    fn try_local(&self, node: NodeId) -> usize {
        let c = self.copy(node);
        // cas FREE→HELD, else cas L_FREE→HELD.
        match c.compare_exchange(FREE, HELD, Ordering::Acquire, Ordering::Relaxed) {
            Ok(_) => FREE,
            Err(v) if v == L_FREE => {
                match c.compare_exchange(L_FREE, HELD, Ordering::Acquire, Ordering::Relaxed) {
                    Ok(_) => L_FREE,
                    Err(v) => v,
                }
            }
            Err(v) => v,
        }
    }

    /// The node winner's remote capture loop: spin on the other node's copy
    /// until it can be claimed, then migrate the lock here.
    fn capture_remote(&self, node: NodeId) {
        let other = NodeId(1 - node.index());
        let mut b = Backoff::new(&self.remote);
        let mut failures: u32 = 0;
        loop {
            let oc = self.copy(other);
            let observed = match oc.compare_exchange(FREE, REMOTE, Ordering::Acquire, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(v) => v,
            };
            // A fisher that *observes* the local-handover tag — or has
            // exhausted its patience — may take L_FREE too; see the
            // module docs.
            if (observed == L_FREE || failures >= REMOTE_PATIENCE)
                && oc
                    .compare_exchange(L_FREE, REMOTE, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            failures = failures.saturating_add(1);
            b.spin();
        }
        // The global lock migrated into our node: our copy goes from
        // FISHING to HELD and the handover budget restarts.
        self.handovers.store(0, Ordering::Relaxed);
        self.copy(node).store(HELD, Ordering::Release);
    }
}

impl NucaLock for RhLock {
    type Token = RhToken;

    fn acquire(&self, node: NodeId) -> RhToken {
        assert!(node.index() < 2, "RH lock supports exactly two nodes");
        let mut b = Backoff::new(&self.local);
        loop {
            match self.try_local(node) {
                FREE => {
                    // Fresh global capture: restart the handover budget.
                    self.handovers.store(0, Ordering::Relaxed);
                    return RhToken { node };
                }
                L_FREE => {
                    // Local handover: one more unit of budget consumed.
                    self.handovers.fetch_add(1, Ordering::Relaxed);
                    return RhToken { node };
                }
                REMOTE => {
                    // Node-winner election: exactly one thread goes
                    // remote-fishing.
                    if self
                        .copy(node)
                        .compare_exchange(REMOTE, FISHING, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                    {
                        self.capture_remote(node);
                        return RhToken { node };
                    }
                }
                // HELD or FISHING: a neighbor owns or is fetching the
                // lock; spin locally.
                _ => b.spin(),
            }
        }
    }

    fn try_acquire(&self, node: NodeId) -> Option<RhToken> {
        assert!(node.index() < 2, "RH lock supports exactly two nodes");
        match self.try_local(node) {
            FREE => {
                self.handovers.store(0, Ordering::Relaxed);
                Some(RhToken { node })
            }
            L_FREE => {
                self.handovers.fetch_add(1, Ordering::Relaxed);
                Some(RhToken { node })
            }
            _ => None,
        }
    }

    fn release(&self, token: RhToken) {
        let budget_left = self.handovers.load(Ordering::Relaxed) < self.max_handovers;
        if budget_left {
            // Prefer the neighbor: local-free tag.
            self.copy(token.node).store(L_FREE, Ordering::Release);
        } else {
            // Budget exhausted: publish globally so a remote winner's
            // FREE-capture can succeed.
            self.copy(token.node).store(FREE, Ordering::Release);
        }
    }

    fn name(&self) -> &'static str {
        "RH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn fast() -> RhLock {
        RhLock::with_config(
            BackoffConfig::new(4, 2, 64),
            BackoffConfig::new(8, 2, 128),
            8,
        )
    }

    #[test]
    fn same_node_roundtrip() {
        let lock = RhLock::new();
        let t = lock.acquire(NodeId(0));
        lock.release(t);
        let t = lock.acquire(NodeId(0));
        lock.release(t);
    }

    #[test]
    fn remote_node_migration() {
        let lock = fast();
        // Lock starts in node 0; node 1 must fish it over.
        let t = lock.acquire(NodeId(1));
        lock.release(t);
        // And node 0 must be able to fish it back.
        let t = lock.acquire(NodeId(0));
        lock.release(t);
    }

    #[test]
    fn try_acquire_does_not_fish() {
        let lock = fast();
        // Node 1's copy reads REMOTE: try_acquire must fail fast, not
        // migrate the lock.
        assert!(lock.try_acquire(NodeId(1)).is_none());
        // Node 0's copy is FREE.
        let t = lock.try_acquire(NodeId(0)).expect("locally free");
        lock.release(t);
    }

    #[test]
    #[should_panic(expected = "exactly two nodes")]
    fn third_node_rejected() {
        let lock = RhLock::new();
        let _ = lock.acquire(NodeId(2));
    }

    #[test]
    fn mutual_exclusion_two_nodes() {
        let lock = Arc::new(fast());
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for i in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    let node = NodeId(i % 2);
                    for _ in 0..20_000 {
                        let t = lock.acquire(node);
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.release(t);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
    }

    #[test]
    fn handover_budget_bounds_local_streak() {
        let lock = RhLock::with_config(
            BackoffConfig::new(4, 2, 64),
            BackoffConfig::new(8, 2, 128),
            3,
        );
        // Burn the budget with same-node reacquires; afterwards the copy
        // must read FREE (not L_FREE) so remote captures can proceed.
        let t = lock.acquire(NodeId(0));
        lock.release(t);
        for _ in 0..3 {
            let t = lock.acquire(NodeId(0));
            lock.release(t);
        }
        assert_eq!(lock.copies[0].load(Ordering::Relaxed), FREE);
    }

    #[test]
    fn starved_remote_thread_eventually_enters() {
        let lock = Arc::new(RhLock::with_config(
            BackoffConfig::new(4, 2, 64),
            BackoffConfig::new(8, 2, 128),
            4,
        ));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let lock = Arc::clone(&lock);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        let t = lock.acquire(NodeId(0));
                        crate::backoff::spin_cycles(20);
                        lock.release(t);
                    }
                });
            }
            let lock1 = Arc::clone(&lock);
            let done1 = Arc::clone(&done);
            s.spawn(move || {
                for _ in 0..20 {
                    let t = lock1.acquire(NodeId(1));
                    lock1.release(t);
                }
                done1.store(true, Ordering::Relaxed);
            })
            .join()
            .unwrap();
        });
    }
}

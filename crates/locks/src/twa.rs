//! TWA — a ticket lock augmented with a waiting array (Dice & Kogan,
//! ICPP 2019; arXiv:1810.01573).
//!
//! The classic ticket lock's weakness is the handover storm: every
//! release invalidates *every* waiter, because they all spin on
//! `now_serving`. TWA keeps the ticket lock's tiny footprint and FIFO
//! order but moves all **long-term** waiters (distance > 1) off to a
//! process-global hashed waiting array: each spins on the array slot its
//! ticket hashes to. A release advances `now_serving` (waking only the
//! immediate successor, which spins there short-term) and then bumps the
//! slot of the ticket that just became distance-1, promoting exactly one
//! long-term waiter to short-term spinning. Hash collisions cause
//! spurious wakeups — waiters re-check their distance — never missed
//! ones.

use std::sync::atomic::{AtomicUsize, Ordering};

use nuca_topology::NodeId;

use crate::lock::NucaLock;
use crate::pad::CachePadded;

/// Size of the process-global waiting array (a power of two). The
/// published design shares one array across all TWA locks; collisions
/// between locks are benign for the same reason collisions between
/// tickets are.
const WA_SIZE: usize = 4096;

#[allow(clippy::declare_interior_mutable_const)]
const WA_ZERO: AtomicUsize = AtomicUsize::new(0);
static WAITING_ARRAY: [AtomicUsize; WA_SIZE] = [WA_ZERO; WA_SIZE];

/// Waiters at distance ≤ this spin on `now_serving` directly; everyone
/// further back parks on the waiting array. The paper's threshold: 1.
const LONG_TERM: usize = 1;

/// Proof that a [`TwaLock`] is held.
#[derive(Debug)]
pub struct TwaToken {
    ticket: usize,
}

/// The ticket lock with a waiting array.
///
/// # Example
///
/// ```
/// use hbo_locks::{NucaLockExt, TwaLock};
/// let lock = TwaLock::new();
/// let g = lock.lock();
/// drop(g);
/// ```
#[derive(Debug, Default)]
pub struct TwaLock {
    next_ticket: CachePadded<AtomicUsize>,
    now_serving: CachePadded<AtomicUsize>,
}

impl TwaLock {
    /// Creates a free lock.
    pub fn new() -> TwaLock {
        TwaLock {
            next_ticket: CachePadded::new(AtomicUsize::new(0)),
            now_serving: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// The waiting-array slot for `ticket` of *this* lock instance
    /// (Fibonacci hash over the lock address and the ticket).
    fn slot(&self, ticket: usize) -> &'static AtomicUsize {
        let addr = self as *const TwaLock as u64 >> 7;
        let h = addr
            .wrapping_add(ticket as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &WAITING_ARRAY[(h >> (64 - 12)) as usize & (WA_SIZE - 1)]
    }

    /// Number of threads currently waiting or holding (0 = free).
    pub fn queue_depth(&self) -> usize {
        self.next_ticket
            .load(Ordering::Relaxed)
            .wrapping_sub(self.now_serving.load(Ordering::Relaxed))
    }
}

impl NucaLock for TwaLock {
    type Token = TwaToken;

    fn acquire(&self, _node: NodeId) -> TwaToken {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        loop {
            let serving = self.now_serving.load(Ordering::Acquire);
            let distance = ticket.wrapping_sub(serving);
            if distance == 0 {
                return TwaToken { ticket };
            }
            if distance > LONG_TERM {
                // Long-term: park on the waiting array. Read the slot
                // *then* re-check the distance — the promoting bump may
                // already have fired, and this order guarantees we either
                // see it in the slot or in `now_serving`.
                let slot = self.slot(ticket);
                let seen = slot.load(Ordering::Acquire);
                let serving = self.now_serving.load(Ordering::Acquire);
                if ticket.wrapping_sub(serving) <= LONG_TERM {
                    continue;
                }
                let mut w = crate::backoff::SpinWait::new();
                while slot.load(Ordering::Acquire) == seen {
                    w.spin();
                }
            } else {
                // Short-term: we are next; spin on `now_serving` itself.
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
    }

    fn try_acquire(&self, _node: NodeId) -> Option<TwaToken> {
        let serving = self.now_serving.load(Ordering::Acquire);
        match self.next_ticket.compare_exchange(
            serving,
            serving.wrapping_add(1),
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => Some(TwaToken { ticket: serving }),
            Err(_) => None,
        }
    }

    fn release(&self, token: TwaToken) {
        let next = token.ticket.wrapping_add(1);
        self.now_serving.store(next, Ordering::Release);
        // Promote the waiter that just became distance-LONG_TERM from
        // long-term (array) to short-term (`now_serving`) spinning. If no
        // such ticket has been issued the bump hits an empty slot — or a
        // colliding one, which merely wakes someone early.
        self.slot(next.wrapping_add(LONG_TERM))
            .fetch_add(1, Ordering::Release);
    }

    fn name(&self) -> &'static str {
        "TWA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::NucaLockExt;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn mutual_exclusion_deep_queue() {
        // 6 threads so several waiters sit in long-term (array) waiting.
        let lock = Arc::new(TwaLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..6 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        let g = lock.lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        drop(g);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 60_000);
    }

    #[test]
    fn try_acquire_semantics() {
        let lock = TwaLock::new();
        let t = lock.try_acquire(NodeId(0)).expect("free");
        assert!(lock.try_acquire(NodeId(0)).is_none());
        assert_eq!(lock.queue_depth(), 1);
        lock.release(t);
        assert_eq!(lock.queue_depth(), 0);
        let t2 = lock.try_acquire(NodeId(1)).expect("released");
        lock.release(t2);
    }

    #[test]
    fn fifo_order_two_waiters() {
        let lock = Arc::new(TwaLock::new());
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let t = lock.acquire(NodeId(0));
        std::thread::scope(|s| {
            for i in 0..2 {
                let lock = Arc::clone(&lock);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    let g = lock.lock();
                    order.lock().unwrap().push(i);
                    drop(g);
                });
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            lock.release(t);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1]);
    }

    #[test]
    fn wraparound_is_safe() {
        let lock = TwaLock::new();
        lock.next_ticket.store(usize::MAX - 1, Ordering::Relaxed);
        lock.now_serving.store(usize::MAX - 1, Ordering::Relaxed);
        for _ in 0..5 {
            let t = lock.acquire(NodeId(0));
            lock.release(t);
        }
        assert_eq!(lock.queue_depth(), 0);
    }

    #[test]
    fn two_locks_share_the_array_without_interference() {
        let a = Arc::new(TwaLock::new());
        let b = Arc::new(TwaLock::new());
        // One counter per lock: holders of different locks run
        // concurrently, so a counter shared across both would race.
        let counter_a = Arc::new(AtomicU64::new(0));
        let counter_b = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for i in 0..4 {
                let (lock, counter) = if i % 2 == 0 {
                    (Arc::clone(&a), Arc::clone(&counter_a))
                } else {
                    (Arc::clone(&b), Arc::clone(&counter_b))
                };
                s.spawn(move || {
                    for _ in 0..10_000 {
                        let g = lock.lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        drop(g);
                    }
                });
            }
        });
        assert_eq!(counter_a.load(Ordering::Relaxed), 20_000);
        assert_eq!(counter_b.load(Ordering::Relaxed), 20_000);
    }
}

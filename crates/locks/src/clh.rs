//! The CLH queue lock (Craig; Landin & Hagersten, 1993/1994).
//!
//! Like MCS, contenders queue and each spins on a single flag — but a CLH
//! waiter spins on its *predecessor's* node, so no explicit `next` link is
//! needed. Queue nodes are recycled by handing ownership down the queue:
//! after release, a thread adopts its predecessor's (now quiescent) node
//! for its next acquisition.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use nuca_topology::NodeId;

use crate::lock::NucaLock;
use crate::pad::CachePadded;

#[repr(align(128))]
struct ClhNode {
    /// True while the owner of this node holds (or waits for) the lock.
    locked: AtomicBool,
}

impl ClhNode {
    fn new(locked: bool) -> ClhNode {
        ClhNode {
            locked: AtomicBool::new(locked),
        }
    }
}

/// Overflow pool receiving the nodes of exiting threads.
///
/// CLH nodes are *never deallocated* while they might be reachable:
/// `try_acquire` peeks at the node behind a lock's `tail` pointer, and that
/// node's ownership may concurrently move down the queue into some other
/// thread's freelist. Deallocating freelists at thread exit would turn that
/// peek into a use-after-free, so exiting threads spill their nodes here
/// for reuse instead.
// Boxes are load-bearing: queue nodes need stable addresses while other
// threads hold raw pointers to them.
#[allow(clippy::vec_box)]
static GLOBAL_CLH_POOL: std::sync::Mutex<Vec<Box<ClhNode>>> = std::sync::Mutex::new(Vec::new());

#[allow(clippy::vec_box)]
struct LocalPool(Vec<Box<ClhNode>>);

impl Drop for LocalPool {
    fn drop(&mut self) {
        let nodes = std::mem::take(&mut self.0);
        match GLOBAL_CLH_POOL.lock() {
            Ok(mut global) => global.extend(nodes),
            // If the global pool is poisoned the nodes leak, which is safe.
            Err(_) => std::mem::forget(nodes),
        }
    }
}

thread_local! {
    /// Per-thread freelist of CLH nodes, shared across all `ClhLock`s.
    ///
    /// Nodes enter the pool only once quiescent (see `release`), so reuse
    /// is sound. Nodes currently threaded through some lock's queue are
    /// *not* in any pool — their ownership moves down the queue.
    static CLH_POOL: RefCell<LocalPool> = const { RefCell::new(LocalPool(Vec::new())) };
}

fn pool_take(locked: bool) -> *mut ClhNode {
    let node = CLH_POOL
        .with(|p| p.borrow_mut().0.pop())
        .or_else(|| GLOBAL_CLH_POOL.lock().ok().and_then(|mut g| g.pop()))
        .unwrap_or_else(|| Box::new(ClhNode::new(locked)));
    node.locked.store(locked, Ordering::Relaxed);
    Box::into_raw(node)
}

/// # Safety
///
/// `node` must be a quiescent node the caller exclusively owns.
unsafe fn pool_put(node: *mut ClhNode) {
    // SAFETY: per function contract.
    let boxed = unsafe { Box::from_raw(node) };
    let mut boxed = Some(boxed);
    let pushed = CLH_POOL.try_with(|p| p.borrow_mut().0.push(boxed.take().expect("unconsumed")));
    if pushed.is_err() {
        // Thread tear-down: the node must not be deallocated (see
        // GLOBAL_CLH_POOL); leaking it is safe.
        if let Some(b) = boxed {
            std::mem::forget(b);
        }
    }
}

/// Proof that a [`ClhLock`] is held; carries the holder's queue node and
/// its predecessor's node (which the holder adopts at release).
#[derive(Debug)]
pub struct ClhToken {
    mine: *mut ClhNode,
    pred: *mut ClhNode,
}

// SAFETY: the pointers are queue nodes owned by the token holder under the
// CLH protocol; moving the token moves that ownership.
unsafe impl Send for ClhToken {}

/// The CLH implicit-queue lock.
///
/// # Example
///
/// ```
/// use hbo_locks::{ClhLock, NucaLockExt};
/// let lock = ClhLock::new();
/// let g = lock.lock();
/// drop(g);
/// ```
#[derive(Debug)]
pub struct ClhLock {
    /// Points at the most recent contender's node; initially a dummy
    /// unlocked node.
    tail: CachePadded<AtomicPtr<ClhNode>>,
}

impl Default for ClhLock {
    fn default() -> Self {
        ClhLock::new()
    }
}

impl ClhLock {
    /// Creates a free lock.
    pub fn new() -> ClhLock {
        let dummy = Box::into_raw(Box::new(ClhNode::new(false)));
        ClhLock {
            tail: CachePadded::new(AtomicPtr::new(dummy)),
        }
    }
}

impl Drop for ClhLock {
    fn drop(&mut self) {
        // `&mut self` proves no thread is queued, so the node in `tail` is
        // quiescent and exclusively ours.
        let tail = self.tail.load(Ordering::Relaxed);
        // SAFETY: see above; every queue leaves exactly one node behind.
        drop(unsafe { Box::from_raw(tail) });
    }
}

impl NucaLock for ClhLock {
    type Token = ClhToken;

    fn acquire(&self, _node: NodeId) -> ClhToken {
        let mine = pool_take(true);
        let pred = self.tail.swap(mine, Ordering::AcqRel);
        // SAFETY: `pred` stays valid until *we* release it into a pool —
        // its previous owner handed it to us via the tail swap.
        unsafe {
            let mut w = crate::backoff::SpinWait::new();
            while (*pred).locked.load(Ordering::Acquire) {
                w.spin();
            }
        }
        ClhToken { mine, pred }
    }

    fn try_acquire(&self, _node: NodeId) -> Option<ClhToken> {
        // Peek: if the current tail node is locked, the lock is busy.
        let pred = self.tail.load(Ordering::Acquire);
        // SAFETY: CLH nodes are never deallocated while any lock is live
        // (freelists spill to GLOBAL_CLH_POOL instead of freeing, and
        // `Drop` runs under `&mut self`), so this peek may read a stale or
        // recycled node's flag but never freed memory. Staleness is
        // harmless: the CAS below only succeeds if `tail` has not moved.
        if unsafe { (*pred).locked.load(Ordering::Acquire) } {
            return None;
        }
        let mine = pool_take(true);
        // Only enqueue if the tail has not moved; otherwise someone beat us
        // and we would have to wait.
        match self
            .tail
            .compare_exchange(pred, mine, Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => {
                // CAS win: `pred` was unlocked when we checked, and only
                // the thread that enqueues after `pred` may adopt it — that
                // is us. We hold the lock.
                Some(ClhToken { mine, pred })
            }
            Err(_) => {
                // SAFETY: never published.
                unsafe { pool_put(mine) };
                None
            }
        }
    }

    fn release(&self, token: ClhToken) {
        // SAFETY: `mine` is ours while we hold the lock; the successor (if
        // any) spins on it and takes ownership of it after observing the
        // store below. `pred` became exclusively ours when our acquire
        // completed, and is quiescent — recycle it.
        unsafe {
            (*token.mine).locked.store(false, Ordering::Release);
            pool_put(token.pred);
        }
    }

    fn name(&self) -> &'static str {
        "CLH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::NucaLockExt;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn mutual_exclusion_under_contention() {
        let lock = Arc::new(ClhLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..20_000 {
                        let g = lock.lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        drop(g);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
    }

    #[test]
    fn sequential_reacquire_recycles_nodes() {
        let lock = ClhLock::new();
        for _ in 0..10_000 {
            let t = lock.acquire(NodeId(0));
            lock.release(t);
        }
    }

    #[test]
    fn try_acquire_fails_while_held() {
        let lock = ClhLock::new();
        let t = lock.try_acquire(NodeId(1)).expect("free");
        assert!(lock.try_acquire(NodeId(0)).is_none());
        lock.release(t);
        let t2 = lock.try_acquire(NodeId(0)).expect("released");
        lock.release(t2);
    }

    #[test]
    fn token_moves_across_threads() {
        let lock = Arc::new(ClhLock::new());
        let t = lock.acquire(NodeId(0));
        let l2 = Arc::clone(&lock);
        std::thread::spawn(move || l2.release(t)).join().unwrap();
        let t2 = lock.try_acquire(NodeId(0)).expect("released remotely");
        lock.release(t2);
    }

    #[test]
    fn drop_frees_final_node() {
        // Exercised under the address sanitizer / leak checks in CI-like
        // runs; here we just make sure drop after use does not crash.
        let lock = ClhLock::new();
        let t = lock.acquire(NodeId(0));
        lock.release(t);
        drop(lock);
    }

    #[test]
    fn fifo_order_two_waiters() {
        let lock = Arc::new(ClhLock::new());
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let t = lock.acquire(NodeId(0));
        std::thread::scope(|s| {
            for i in 0..2 {
                let lock = Arc::clone(&lock);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    let g = lock.lock();
                    order.lock().unwrap().push(i);
                    drop(g);
                });
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            lock.release(t);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1]);
    }
}

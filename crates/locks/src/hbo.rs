//! The HBO lock — hierarchical backoff on a single lock word (§4.1).

use std::sync::atomic::{AtomicUsize, Ordering};

use nuca_topology::NodeId;

use crate::backoff::{Backoff, BackoffConfig};
use crate::lock::NucaLock;
use crate::pad::CachePadded;

/// The lock word's free value. Node tags are `node_id + 1` so that node 0
/// is distinguishable from FREE.
pub(crate) const FREE: usize = 0;

#[inline]
pub(crate) fn tag(node: NodeId) -> usize {
    node.index() + 1
}

/// Proof that an [`HboLock`] is held.
#[derive(Debug)]
pub struct HboToken(());

/// The hierarchical backoff lock (paper §4.1, Figure 1 without the
/// emphasized lines).
///
/// When the lock is acquired, the *node id* of the acquiring thread is
/// `cas`-ed into the lock word. A contender whose `cas` fails therefore
/// learns which node holds the lock:
///
/// * same node → spin with the small local backoff (the TATAS_EXP
///   constants), so a neighbor is poised to grab the lock the moment it is
///   freed;
/// * different node → spin with a much larger backoff, staying off the
///   global interconnect and ceding the handover race to the holder's
///   neighbors.
///
/// The critical path for an uncontested lock is a single `cas` — the
/// paper's low-latency design goal (Table 1).
///
/// The storage cost is one word, independent of the number of processors.
///
/// # Example
///
/// ```
/// use hbo_locks::{HboLock, NucaLock};
/// use nuca_topology::NodeId;
///
/// let lock = HboLock::new();
/// let t = lock.acquire(NodeId(1));
/// lock.release(t);
/// ```
#[derive(Debug)]
pub struct HboLock {
    word: CachePadded<AtomicUsize>,
    local: BackoffConfig,
    remote: BackoffConfig,
}

impl Default for HboLock {
    fn default() -> Self {
        HboLock::new()
    }
}

impl HboLock {
    /// Creates a free lock with the default local/remote backoff constants.
    pub fn new() -> HboLock {
        HboLock::with_config(BackoffConfig::local(), BackoffConfig::remote())
    }

    /// Creates a free lock with explicit backoff constants.
    pub fn with_config(local: BackoffConfig, remote: BackoffConfig) -> HboLock {
        HboLock {
            word: CachePadded::new(AtomicUsize::new(FREE)),
            local,
            remote,
        }
    }

    #[inline]
    fn cas(&self, node_tag: usize) -> usize {
        match self
            .word
            .compare_exchange(FREE, node_tag, Ordering::Acquire, Ordering::Relaxed)
        {
            Ok(prev) | Err(prev) => prev,
        }
    }

    /// The paper's `hbo_acquire_slowpath` (Fig. 1 lines 17–61, HBO lines
    /// only).
    #[cold]
    fn acquire_slowpath(&self, node_tag: usize, mut tmp: usize) {
        loop {
            // `start:`
            if tmp == node_tag {
                // Lock held in our own node: eager local spinning.
                let mut b = Backoff::new(&self.local);
                loop {
                    b.spin();
                    tmp = self.cas(node_tag);
                    if tmp == FREE {
                        return;
                    }
                    if tmp != node_tag {
                        // The lock migrated to a remote node while we were
                        // spinning locally; back off once more and
                        // re-classify (`goto restart` → `goto start`).
                        b.spin();
                        break;
                    }
                }
            } else {
                // Lock held remotely: lazy spinning.
                let mut b = Backoff::new(&self.remote);
                loop {
                    b.spin();
                    tmp = self.cas(node_tag);
                    if tmp == FREE {
                        return;
                    }
                    if tmp == node_tag {
                        // The lock migrated *into* our node: switch to the
                        // eager local loop.
                        break;
                    }
                }
            }
        }
    }
}

impl NucaLock for HboLock {
    type Token = HboToken;

    fn acquire(&self, node: NodeId) -> HboToken {
        let t = tag(node);
        // The "critical path" (Fig. 1 lines 6–9): one cas, no other work.
        let tmp = self.cas(t);
        if tmp != FREE {
            self.acquire_slowpath(t, tmp);
        }
        HboToken(())
    }

    fn try_acquire(&self, node: NodeId) -> Option<HboToken> {
        if self.cas(tag(node)) == FREE {
            Some(HboToken(()))
        } else {
            None
        }
    }

    fn release(&self, _token: HboToken) {
        self.word.store(FREE, Ordering::Release);
    }

    fn name(&self) -> &'static str {
        "HBO"
    }
}

/// Exposes the raw holder tag for instrumentation and tests.
impl HboLock {
    /// Returns the node currently holding the lock, if any.
    pub fn holder(&self) -> Option<NodeId> {
        match self.word.load(Ordering::Relaxed) {
            FREE => None,
            t => Some(NodeId(t - 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::NucaLockExt;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn lock_word_records_holder_node() {
        let lock = HboLock::new();
        assert_eq!(lock.holder(), None);
        let t = lock.acquire(NodeId(3));
        assert_eq!(lock.holder(), Some(NodeId(3)));
        lock.release(t);
        assert_eq!(lock.holder(), None);
    }

    #[test]
    fn node_zero_distinguishable_from_free() {
        let lock = HboLock::new();
        let t = lock.acquire(NodeId(0));
        assert_eq!(lock.holder(), Some(NodeId(0)));
        assert!(lock.try_acquire(NodeId(0)).is_none());
        lock.release(t);
    }

    #[test]
    fn mutual_exclusion_mixed_nodes() {
        let lock = Arc::new(HboLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for i in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    let node = NodeId(i % 2);
                    for _ in 0..20_000 {
                        let t = lock.acquire(node);
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.release(t);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
    }

    #[test]
    fn guard_api_uses_thread_registration() {
        let lock = HboLock::new();
        let _reg = nuca_topology::register_thread(NodeId(1));
        let g = lock.lock();
        assert_eq!(lock.holder(), Some(NodeId(1)));
        drop(g);
    }

    #[test]
    fn slowpath_survives_migration_between_nodes() {
        // Two nodes trade the lock while a third-party thread contends;
        // exercises both the local→remote and remote→local transitions.
        let lock = Arc::new(HboLock::with_config(
            BackoffConfig::new(4, 2, 64),
            BackoffConfig::new(16, 2, 256),
        ));
        std::thread::scope(|s| {
            for i in 0..3 {
                let lock = Arc::clone(&lock);
                s.spawn(move || {
                    for _ in 0..5_000 {
                        let t = lock.acquire(NodeId(i));
                        lock.release(t);
                    }
                });
            }
        });
        assert_eq!(lock.holder(), None);
    }
}

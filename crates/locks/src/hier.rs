//! Multi-level hierarchical HBO — the paper's "expanded in a hierarchical
//! way, using more than two sets of constants, for a hierarchical NUCA"
//! (§4.1), realized.
//!
//! On a machine with several levels of nonuniformity (e.g. a NUMA system
//! populated with CMP processors), the right backoff for a contender
//! depends on its *communication distance* to the holder: same chip —
//! eager; same node, other chip — lazier; other node — lazier still. The
//! lock word therefore stores the holder's **CPU id** rather than its node
//! id, and each contender picks its backoff from a per-distance table.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nuca_topology::{CpuId, NodeId, Topology};

use crate::backoff::{Backoff, BackoffConfig};
use crate::lock::NucaLock;
use crate::pad::CachePadded;

const FREE: usize = 0;

#[inline]
fn tag(cpu: CpuId) -> usize {
    cpu.index() + 1
}

/// Per-distance backoff table for [`HierHboLock`].
///
/// Index `d - 1` holds the constants used when the holder is at
/// communication distance `d` (see [`Topology::distance`]): distance 1 is
/// the innermost group, the last entry is "different NUCA node".
///
/// # Example
///
/// ```
/// use hbo_locks::LevelBackoff;
/// // 3 distance classes (e.g. same chip / same node / remote node),
/// // each 4× lazier than the previous.
/// let lb = LevelBackoff::geometric(3, 32, 1024, 4);
/// assert_eq!(lb.levels(), 3);
/// assert!(lb.config(3).base > lb.config(1).base);
/// ```
#[derive(Debug, Clone)]
pub struct LevelBackoff {
    configs: Vec<BackoffConfig>,
}

impl LevelBackoff {
    /// Builds a table from explicit per-distance configurations
    /// (innermost first).
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn new(configs: Vec<BackoffConfig>) -> LevelBackoff {
        assert!(!configs.is_empty(), "need at least one distance class");
        LevelBackoff { configs }
    }

    /// Builds `levels` distance classes where class `d+1` starts `scale`×
    /// lazier than class `d`, beginning from `(base, cap)`.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0` or `scale == 0`.
    pub fn geometric(levels: usize, base: u32, cap: u32, scale: u32) -> LevelBackoff {
        assert!(levels > 0, "need at least one distance class");
        assert!(scale > 0, "scale must be positive");
        let mut configs = Vec::with_capacity(levels);
        let mut b = base;
        let mut c = cap;
        for _ in 0..levels {
            configs.push(BackoffConfig::new(b.max(1), 2, c.max(b.max(1))));
            b = b.saturating_mul(scale);
            c = c.saturating_mul(scale);
        }
        LevelBackoff { configs }
    }

    /// Number of distance classes.
    pub fn levels(&self) -> usize {
        self.configs.len()
    }

    /// The constants for communication distance `d` (≥ 1); distances past
    /// the table clamp to the last (laziest) entry.
    pub fn config(&self, d: usize) -> &BackoffConfig {
        let idx = d.saturating_sub(1).min(self.configs.len() - 1);
        &self.configs[idx]
    }
}

/// Proof that a [`HierHboLock`] is held.
#[derive(Debug)]
pub struct HierHboToken(());

/// HBO generalized to arbitrarily deep NUCA hierarchies.
///
/// # Example
///
/// ```
/// use hbo_locks::{HierHboLock, LevelBackoff, NucaLock};
/// use nuca_topology::{CpuId, Topology};
/// use std::sync::Arc;
///
/// // 2 NUMA nodes × (2 chips × 4 threads): three distance classes.
/// let topo = Arc::new(
///     Topology::builder()
///         .hierarchical_node(&[2, 4])
///         .hierarchical_node(&[2, 4])
///         .build()?,
/// );
/// let lock = HierHboLock::new(Arc::clone(&topo), LevelBackoff::geometric(3, 16, 512, 4));
/// let t = lock.acquire_from(CpuId(5));
/// lock.release(t);
/// # Ok::<(), nuca_topology::TopologyError>(())
/// ```
#[derive(Debug)]
pub struct HierHboLock {
    word: CachePadded<AtomicUsize>,
    topo: Arc<Topology>,
    backoff: LevelBackoff,
}

impl HierHboLock {
    /// Creates a free lock for the given machine shape and backoff table.
    pub fn new(topo: Arc<Topology>, backoff: LevelBackoff) -> HierHboLock {
        HierHboLock {
            word: CachePadded::new(AtomicUsize::new(FREE)),
            topo,
            backoff,
        }
    }

    #[inline]
    fn cas(&self, cpu_tag: usize) -> usize {
        match self
            .word
            .compare_exchange(FREE, cpu_tag, Ordering::Acquire, Ordering::Relaxed)
        {
            Ok(prev) | Err(prev) => prev,
        }
    }

    /// Acquires from an explicit CPU (the precise, hierarchical API).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is outside the lock's topology.
    pub fn acquire_from(&self, cpu: CpuId) -> HierHboToken {
        assert!(
            cpu.index() < self.topo.num_cpus(),
            "{cpu} outside topology ({} cpus)",
            self.topo.num_cpus()
        );
        let my_tag = tag(cpu);
        let mut tmp = self.cas(my_tag);
        if tmp == FREE {
            return HierHboToken(());
        }
        // Slow path: spin with the backoff class for the holder's distance,
        // re-classifying whenever the holder moves to a different distance.
        loop {
            let holder = CpuId(tmp - 1);
            let d = self.topo.distance(cpu, holder);
            let mut b = Backoff::new(self.backoff.config(d));
            loop {
                b.spin();
                tmp = self.cas(my_tag);
                if tmp == FREE {
                    return HierHboToken(());
                }
                let nd = self.topo.distance(cpu, CpuId(tmp - 1));
                if nd != d {
                    break; // holder distance changed: re-classify
                }
            }
        }
    }

    /// The CPU currently holding the lock, if any.
    pub fn holder(&self) -> Option<CpuId> {
        match self.word.load(Ordering::Relaxed) {
            FREE => None,
            t => Some(CpuId(t - 1)),
        }
    }

    /// The machine shape this lock was built for.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }
}

impl NucaLock for HierHboLock {
    type Token = HierHboToken;

    /// Acquires using the *first CPU of `node`* as the caller's position —
    /// correct but coarse; prefer [`HierHboLock::acquire_from`] when the
    /// exact CPU is known.
    fn acquire(&self, node: NodeId) -> HierHboToken {
        let cpu = self
            .topo
            .cpus_of(NodeId(node.index() % self.topo.num_nodes()))
            .next()
            .expect("topology nodes are non-empty");
        self.acquire_from(cpu)
    }

    fn try_acquire(&self, node: NodeId) -> Option<HierHboToken> {
        let cpu = self
            .topo
            .cpus_of(NodeId(node.index() % self.topo.num_nodes()))
            .next()
            .expect("topology nodes are non-empty");
        if self.cas(tag(cpu)) == FREE {
            Some(HierHboToken(()))
        } else {
            None
        }
    }

    fn release(&self, _token: HierHboToken) {
        self.word.store(FREE, Ordering::Release);
    }

    fn name(&self) -> &'static str {
        "HBO_HIER"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn cmp_machine() -> Arc<Topology> {
        Arc::new(
            Topology::builder()
                .hierarchical_node(&[2, 2])
                .hierarchical_node(&[2, 2])
                .build()
                .unwrap(),
        )
    }

    fn fast_lock(topo: Arc<Topology>) -> HierHboLock {
        HierHboLock::new(topo, LevelBackoff::geometric(3, 4, 64, 2))
    }

    #[test]
    fn records_holder_cpu() {
        let lock = fast_lock(cmp_machine());
        assert_eq!(lock.holder(), None);
        let t = lock.acquire_from(CpuId(5));
        assert_eq!(lock.holder(), Some(CpuId(5)));
        lock.release(t);
        assert_eq!(lock.holder(), None);
    }

    #[test]
    fn level_backoff_clamps() {
        let lb = LevelBackoff::geometric(2, 8, 64, 4);
        assert_eq!(lb.config(1).base, 8);
        assert_eq!(lb.config(2).base, 32);
        assert_eq!(lb.config(99).base, 32, "distances past table clamp");
    }

    #[test]
    fn geometric_is_monotone() {
        let lb = LevelBackoff::geometric(4, 16, 256, 4);
        for d in 1..4 {
            assert!(lb.config(d + 1).base >= lb.config(d).base);
            assert!(lb.config(d + 1).cap >= lb.config(d).cap);
        }
    }

    #[test]
    fn mutual_exclusion_across_chips_and_nodes() {
        let topo = cmp_machine();
        let lock = Arc::new(fast_lock(Arc::clone(&topo)));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for i in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    let cpu = CpuId(i * 2); // spread over chips/nodes
                    for _ in 0..20_000 {
                        let t = lock.acquire_from(cpu);
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.release(t);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
    }

    #[test]
    fn nuca_lock_impl_uses_first_cpu_of_node() {
        let lock = fast_lock(cmp_machine());
        let t = lock.acquire(NodeId(1));
        assert_eq!(lock.holder(), Some(CpuId(4)), "first CPU of node 1");
        lock.release(t);
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn foreign_cpu_rejected() {
        let lock = fast_lock(cmp_machine());
        let _ = lock.acquire_from(CpuId(99));
    }
}

//! TATAS and TATAS_EXP — the simple test-and-test&set spin locks (§3).

use std::sync::atomic::{AtomicUsize, Ordering};

use nuca_topology::NodeId;

use crate::backoff::{Backoff, BackoffConfig};
use crate::lock::NucaLock;
use crate::pad::CachePadded;

const FREE: usize = 0;
const HELD: usize = 1;

/// Proof that a TATAS-family lock is held; consumed by release.
#[derive(Debug)]
pub struct TatasToken(());

/// The traditional test-and-test&set lock.
///
/// Contenders poll the lock word with plain loads (cheap, cache-local) and
/// only issue the expensive atomic `tas` when the word reads free. Under
/// high contention every release triggers a burst of refill traffic and a
/// stampede of `tas` attempts — exactly the behaviour the paper's Figure 3
/// and Table 2 quantify.
///
/// # Example
///
/// ```
/// use hbo_locks::{NucaLockExt, TatasLock};
/// let lock = TatasLock::new();
/// let guard = lock.lock();
/// drop(guard);
/// ```
#[derive(Debug, Default)]
pub struct TatasLock {
    word: CachePadded<AtomicUsize>,
}

impl TatasLock {
    /// Creates a free lock.
    pub fn new() -> TatasLock {
        TatasLock::default()
    }

    #[inline]
    fn tas(&self) -> bool {
        // `tas` = atomically write nonzero, return the old contents; the
        // lock is ours if the old contents were zero.
        self.word.swap(HELD, Ordering::Acquire) == FREE
    }
}

impl NucaLock for TatasLock {
    type Token = TatasToken;

    fn acquire(&self, _node: NodeId) -> TatasToken {
        // Fast path: a single tas.
        if self.tas() {
            return TatasToken(());
        }
        let mut w = crate::backoff::SpinWait::new();
        loop {
            // Test: spin with plain loads until the word reads free.
            while self.word.load(Ordering::Relaxed) != FREE {
                w.spin();
            }
            w.reset();
            // Test&set.
            if self.tas() {
                return TatasToken(());
            }
        }
    }

    fn try_acquire(&self, _node: NodeId) -> Option<TatasToken> {
        if self.word.load(Ordering::Relaxed) == FREE && self.tas() {
            Some(TatasToken(()))
        } else {
            None
        }
    }

    fn release(&self, _token: TatasToken) {
        self.word.store(FREE, Ordering::Release);
    }

    fn name(&self) -> &'static str {
        "TATAS"
    }
}

/// TATAS with Ethernet-style exponential backoff (the paper's
/// `TATAS_EXP`).
///
/// After each failed `tas`, the contender delays for a geometrically
/// growing, capped period before looking at the lock word again, which
/// spreads the post-release stampede out in time.
///
/// # Example
///
/// ```
/// use hbo_locks::{BackoffConfig, NucaLockExt, TatasExpLock};
/// let lock = TatasExpLock::with_config(BackoffConfig::new(8, 2, 512));
/// let g = lock.lock();
/// drop(g);
/// ```
#[derive(Debug, Default)]
pub struct TatasExpLock {
    word: CachePadded<AtomicUsize>,
    cfg: BackoffConfig,
}

impl TatasExpLock {
    /// Creates a free lock with the default backoff constants.
    pub fn new() -> TatasExpLock {
        TatasExpLock::default()
    }

    /// Creates a free lock with explicit backoff constants.
    pub fn with_config(cfg: BackoffConfig) -> TatasExpLock {
        TatasExpLock {
            word: CachePadded::new(AtomicUsize::new(FREE)),
            cfg,
        }
    }

    #[inline]
    fn tas(&self) -> bool {
        self.word.swap(HELD, Ordering::Acquire) == FREE
    }
}

impl NucaLock for TatasExpLock {
    type Token = TatasToken;

    fn acquire(&self, _node: NodeId) -> TatasToken {
        if self.tas() {
            return TatasToken(());
        }
        // The paper's tatas_exp_acquire_slowpath (§3): delay, grow the
        // delay, re-check with a load, then retry the tas.
        let mut b = Backoff::new(&self.cfg);
        loop {
            b.spin();
            if self.word.load(Ordering::Relaxed) != FREE {
                continue;
            }
            if self.tas() {
                return TatasToken(());
            }
        }
    }

    fn try_acquire(&self, _node: NodeId) -> Option<TatasToken> {
        if self.word.load(Ordering::Relaxed) == FREE && self.tas() {
            Some(TatasToken(()))
        } else {
            None
        }
    }

    fn release(&self, _token: TatasToken) {
        self.word.store(FREE, Ordering::Release);
    }

    fn name(&self) -> &'static str {
        "TATAS_EXP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::NucaLockExt;
    use std::sync::Arc;

    fn hammer<L: NucaLock + 'static>(lock: Arc<L>, threads: usize, iters: usize) -> u64 {
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..threads {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..iters {
                        let g = lock.lock();
                        // Non-atomic-looking RMW under the lock: fetch_add
                        // with Relaxed would hide races, so emulate a plain
                        // increment via load/store while holding the lock.
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        drop(g);
                    }
                });
            }
        });
        counter.load(Ordering::Relaxed)
    }

    #[test]
    fn tatas_mutual_exclusion() {
        let total = hammer(Arc::new(TatasLock::new()), 4, 20_000);
        assert_eq!(total, 80_000);
    }

    #[test]
    fn tatas_exp_mutual_exclusion() {
        let total = hammer(Arc::new(TatasExpLock::new()), 4, 20_000);
        assert_eq!(total, 80_000);
    }

    #[test]
    fn try_acquire_semantics() {
        let lock = TatasLock::new();
        let t = lock.try_acquire(NodeId(0)).expect("free lock");
        assert!(lock.try_acquire(NodeId(0)).is_none());
        lock.release(t);
        assert!(lock.try_acquire(NodeId(0)).is_some());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(TatasLock::new().name(), "TATAS");
        assert_eq!(TatasExpLock::new().name(), "TATAS_EXP");
    }

    #[test]
    fn uncontended_reacquire_is_cheap_smoke() {
        let lock = TatasExpLock::new();
        for _ in 0..100_000 {
            let g = lock.lock();
            drop(g);
        }
    }
}

//! Cache-line padding.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to a cache line (128 bytes, covering the 64-byte
/// lines of most x86/ARM parts and the 128-byte prefetch pairs of some).
///
/// Spin locks live or die by false sharing: a queue node or a per-node
/// `is_spinning` slot sharing a line with unrelated data turns every
/// neighbor write into an invalidation of a spinning reader. Every shared
/// word in this crate is wrapped in `CachePadded`.
///
/// # Example
///
/// ```
/// use hbo_locks::CachePadded;
/// use std::sync::atomic::AtomicUsize;
///
/// let slot = CachePadded::new(AtomicUsize::new(0));
/// assert!(std::mem::align_of_val(&slot) >= 128);
/// assert_eq!(slot.load(std::sync::atomic::Ordering::Relaxed), 0);
/// ```
#[repr(align(128))]
#[derive(Default)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Returns the wrapped value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        CachePadded::new(self.value.clone())
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_size() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(41);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn adjacent_elements_do_not_share_lines() {
        let v = [CachePadded::new(0u8), CachePadded::new(0u8)];
        let a = &*v[0] as *const u8 as usize;
        let b = &*v[1] as *const u8 as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn debug_nonempty() {
        let p = CachePadded::new(7);
        assert!(format!("{p:?}").contains('7'));
    }
}

//! Exponential backoff, the Ethernet-style delay loop of the paper.
//!
//! After a failed attempt to obtain the lock, a contender waits for
//! successively longer periods before retrying, bounded by a cap so that
//! processors do not "remain idle even when the lock becomes free"
//! (HPCA 2003, §3). The HBO family uses *two* (or more) sets of constants:
//! a small set for spinning on a lock held in the contender's own node and
//! a large set for a lock held remotely.

use std::fmt;

/// Bounded spinner for raw wait loops: spins with the architectural hint
/// for a while, then starts yielding the OS thread so an oversubscribed
/// host (more spinners than cores) cannot livelock a descheduled lock
/// holder. The paper's machines dedicate a CPU per thread; a production
/// library cannot assume that.
///
/// # Example
///
/// ```
/// use hbo_locks::SpinWait;
/// let mut w = SpinWait::new();
/// for _ in 0..200 {
///     w.spin(); // first ~64 are spin hints, then OS yields
/// }
/// ```
#[derive(Debug, Default)]
pub struct SpinWait {
    count: u32,
}

impl SpinWait {
    /// Spin-hint iterations before yielding the OS thread.
    const YIELD_THRESHOLD: u32 = 64;

    /// Creates a fresh spinner.
    pub fn new() -> SpinWait {
        SpinWait::default()
    }

    /// One wait step: a spin hint while young, an OS yield once the wait
    /// has dragged on.
    #[inline]
    pub fn spin(&mut self) {
        if self.count < Self::YIELD_THRESHOLD {
            self.count += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }

    /// Resets to the spinning phase (call after observing progress).
    pub fn reset(&mut self) {
        self.count = 0;
    }
}

/// Busy-waits for roughly `cycles` iterations of the architectural spin
/// hint.
///
/// This is the Rust rendering of the paper's `for (i = b; i; i--);` delay
/// loop. [`std::hint::spin_loop`] lowers to `pause`/`yield`-class
/// instructions, which keeps the delay off the coherence fabric.
#[inline]
pub fn spin_cycles(cycles: u32) {
    for _ in 0..cycles {
        std::hint::spin_loop();
    }
}

/// Backoff constants for one contention domain.
///
/// The paper's `BACKOFF_BASE`, `BACKOFF_FACTOR`, `BACKOFF_CAP` (and their
/// `REMOTE_*` counterparts) as one tunable bundle. "Backoff parameters must
/// be tuned by trial and error for each individual architecture" — the
/// defaults here are sensible for current hardware and for the simulator;
/// the sensitivity experiments (`fig9`, `fig10`) sweep them.
///
/// # Example
///
/// ```
/// use hbo_locks::{Backoff, BackoffConfig};
///
/// let cfg = BackoffConfig::new(16, 2, 256);
/// let mut b = Backoff::new(&cfg);
/// assert_eq!(b.current(), 16);
/// b.spin(); // waits ~16 spin hints
/// assert_eq!(b.current(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BackoffConfig {
    /// Initial delay, in spin-hint iterations.
    pub base: u32,
    /// Multiplicative growth factor applied after every delay.
    pub factor: u32,
    /// Upper bound on the delay.
    pub cap: u32,
}

impl BackoffConfig {
    /// Creates a backoff configuration.
    ///
    /// # Panics
    ///
    /// Panics if `base == 0`, `factor == 0`, or `cap < base`; a zero base
    /// would never grow and a cap below the base is almost certainly a
    /// transposed argument.
    pub const fn new(base: u32, factor: u32, cap: u32) -> BackoffConfig {
        assert!(base > 0, "backoff base must be positive");
        assert!(factor > 0, "backoff factor must be positive");
        assert!(cap >= base, "backoff cap must be >= base");
        BackoffConfig { base, factor, cap }
    }

    /// Default constants for spinning on a lock held in the caller's own
    /// node — also the TATAS_EXP constants.
    pub const fn local() -> BackoffConfig {
        BackoffConfig::new(32, 2, 1024)
    }

    /// Default constants for spinning on a lock held in a remote node:
    /// start an order of magnitude lazier and allow a much larger cap, so
    /// remote contenders rarely interfere with a node-local handover.
    pub const fn remote() -> BackoffConfig {
        BackoffConfig::new(512, 2, 16 * 1024)
    }

    /// Returns this configuration with a different cap (used by the
    /// `REMOTE_BACKOFF_CAP` sensitivity study, Fig. 9).
    #[must_use]
    pub const fn with_cap(mut self, cap: u32) -> BackoffConfig {
        assert!(cap >= self.base, "backoff cap must be >= base");
        self.cap = cap;
        self
    }
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig::local()
    }
}

/// Stateful exponential backoff: the paper's
/// `backoff(&b, cap) { delay(b); b = min(b * factor, cap); }`.
pub struct Backoff {
    current: u32,
    factor: u32,
    cap: u32,
}

impl Backoff {
    /// Starts a backoff sequence at `cfg.base`.
    pub fn new(cfg: &BackoffConfig) -> Backoff {
        Backoff {
            current: cfg.base,
            factor: cfg.factor,
            cap: cfg.cap,
        }
    }

    /// The delay the next [`Backoff::spin`] will wait, in spin-hint
    /// iterations.
    pub fn current(&self) -> u32 {
        self.current
    }

    /// Delays for the current period, then grows the period. Once the
    /// period has saturated at the cap the thread has clearly waited a
    /// long time, so each further delay also yields the OS thread — this
    /// keeps backoff locks live when spinners outnumber cores.
    #[inline]
    pub fn spin(&mut self) {
        spin_cycles(self.current);
        if self.current == self.cap {
            std::thread::yield_now();
        }
        self.current = self.current.saturating_mul(self.factor).min(self.cap);
    }

    /// Advances the period without delaying (for use where the caller
    /// interleaves its own waiting, e.g. the simulator).
    pub fn advance(&mut self) -> u32 {
        let d = self.current;
        self.current = self.current.saturating_mul(self.factor).min(self.cap);
        d
    }

    /// Restarts the sequence from `cfg.base` — used when an angry
    /// starvation-detected thread switches to eager spinning.
    pub fn reset(&mut self, cfg: &BackoffConfig) {
        self.current = cfg.base;
        self.factor = cfg.factor;
        self.cap = cfg.cap;
    }
}

impl fmt::Debug for Backoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Backoff")
            .field("current", &self.current)
            .field("factor", &self.factor)
            .field("cap", &self.cap)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_geometrically_to_cap() {
        let cfg = BackoffConfig::new(4, 2, 32);
        let mut b = Backoff::new(&cfg);
        let seq: Vec<u32> = (0..6).map(|_| b.advance()).collect();
        assert_eq!(seq, vec![4, 8, 16, 32, 32, 32]);
    }

    #[test]
    fn factor_one_is_constant() {
        let cfg = BackoffConfig::new(10, 1, 100);
        let mut b = Backoff::new(&cfg);
        for _ in 0..5 {
            assert_eq!(b.advance(), 10);
        }
    }

    #[test]
    fn reset_restarts_sequence() {
        let local = BackoffConfig::new(4, 2, 64);
        let eager = BackoffConfig::new(1, 1, 1);
        let mut b = Backoff::new(&local);
        b.advance();
        b.advance();
        assert!(b.current() > 4);
        b.reset(&eager);
        assert_eq!(b.current(), 1);
        assert_eq!(b.advance(), 1);
        assert_eq!(b.advance(), 1, "eager config never grows");
    }

    #[test]
    fn saturating_growth_does_not_overflow() {
        let cfg = BackoffConfig::new(u32::MAX - 1, 3, u32::MAX);
        let mut b = Backoff::new(&cfg);
        assert_eq!(b.advance(), u32::MAX - 1);
        // Multiplication would overflow; saturation must pin at the cap.
        assert_eq!(b.advance(), u32::MAX);
        assert_eq!(b.advance(), u32::MAX);
    }

    #[test]
    fn remote_is_lazier_than_local() {
        let l = BackoffConfig::local();
        let r = BackoffConfig::remote();
        assert!(r.base > l.base);
        assert!(r.cap > l.cap);
    }

    #[test]
    fn with_cap_adjusts_only_cap() {
        let c = BackoffConfig::remote().with_cap(2048);
        assert_eq!(c.cap, 2048);
        assert_eq!(c.base, BackoffConfig::remote().base);
    }

    #[test]
    #[should_panic(expected = "cap must be >= base")]
    fn cap_below_base_rejected() {
        let _ = BackoffConfig::new(100, 2, 10);
    }

    #[test]
    fn spin_cycles_returns() {
        // Smoke test: the delay loop terminates and is monotone in wall
        // time only approximately; we just check it runs.
        spin_cycles(0);
        spin_cycles(1000);
    }
}

//! HBO_GT — HBO with global traffic throttling (§4.2).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nuca_topology::NodeId;

use crate::backoff::{Backoff, BackoffConfig};
use crate::gt_ctx::GtContext;
use crate::hbo::{tag, FREE};
use crate::lock::NucaLock;
use crate::pad::CachePadded;

/// Proof that an [`HboGtLock`] is held.
#[derive(Debug)]
pub struct HboGtToken(());

/// HBO with *global traffic throttling* (the paper's HBO_GT, Figure 1
/// including the emphasized lines).
///
/// When multiple processors of one node all spin on a remotely-held lock,
/// each of their periodic `cas` attempts crosses the interconnect. HBO_GT
/// elects (approximately) one remote spinner per node: before contending, a
/// thread checks its node's `is_spinning` slot ([`GtContext`]); if the slot
/// already names this lock, the thread waits locally until the slot is
/// cleared by the node's winning spinner.
///
/// Storage cost: one word per lock plus one `is_spinning` word per node
/// (shared by all locks).
///
/// # Example
///
/// ```
/// use hbo_locks::{HboGtLock, NucaLock};
/// use nuca_topology::NodeId;
///
/// let lock = HboGtLock::with_nodes(2);
/// let t = lock.acquire(NodeId(0));
/// lock.release(t);
/// ```
#[derive(Debug)]
pub struct HboGtLock {
    word: CachePadded<AtomicUsize>,
    ctx: Arc<GtContext>,
    local: BackoffConfig,
    remote: BackoffConfig,
}

impl HboGtLock {
    /// Creates a free lock using the process-global [`GtContext`]; `nodes`
    /// is advisory (the global context covers [`crate::MAX_NODES`]).
    pub fn with_nodes(nodes: usize) -> HboGtLock {
        let _ = nodes;
        HboGtLock::with_context(Arc::clone(GtContext::global()))
    }

    /// Creates a free lock bound to a specific throttling context.
    pub fn with_context(ctx: Arc<GtContext>) -> HboGtLock {
        HboGtLock::with_config(ctx, BackoffConfig::local(), BackoffConfig::remote())
    }

    /// Creates a free lock with explicit backoff constants.
    pub fn with_config(
        ctx: Arc<GtContext>,
        local: BackoffConfig,
        remote: BackoffConfig,
    ) -> HboGtLock {
        HboGtLock {
            word: CachePadded::new(AtomicUsize::new(FREE)),
            ctx,
            local,
            remote,
        }
    }

    /// A stable identifier for this lock in `is_spinning` slots.
    #[inline]
    fn addr(&self) -> usize {
        &*self.word as *const AtomicUsize as usize
    }

    #[inline]
    fn cas(&self, node_tag: usize) -> usize {
        match self
            .word
            .compare_exchange(FREE, node_tag, Ordering::Acquire, Ordering::Relaxed)
        {
            Ok(prev) | Err(prev) => prev,
        }
    }

    /// Waits while this node's `is_spinning` slot names this lock
    /// (Fig. 1 lines 5 and 56).
    #[inline]
    fn gate(&self, node: NodeId) {
        let mut w = crate::backoff::SpinWait::new();
        while self.ctx.is_throttled(node, self.addr()) {
            w.spin();
        }
    }

    #[cold]
    fn acquire_slowpath(&self, node: NodeId, mut tmp: usize) {
        let node_tag = tag(node);
        loop {
            // `start:`
            if tmp == node_tag {
                // Local lock: eager spinning, no throttling involved.
                let mut b = Backoff::new(&self.local);
                let migrated_away = loop {
                    b.spin();
                    tmp = self.cas(node_tag);
                    if tmp == FREE {
                        return;
                    }
                    if tmp != node_tag {
                        b.spin();
                        break true;
                    }
                };
                if migrated_away {
                    // `goto restart`: wait at the gate, retry once, then
                    // re-classify.
                    self.gate(node);
                    tmp = self.cas(node_tag);
                    if tmp == FREE {
                        return;
                    }
                }
            } else {
                // Remote lock: become (one of) the node's remote spinners.
                let mut b = Backoff::new(&self.remote);
                self.ctx.start_remote_spin(node, self.addr());
                loop {
                    b.spin();
                    tmp = self.cas(node_tag);
                    if tmp == FREE {
                        // Let waiting neighbors contend again (line 44).
                        self.ctx.stop_remote_spin(node);
                        return;
                    }
                    if tmp == node_tag {
                        // Lock migrated into our node (another neighbor got
                        // it past the gate); stop throttling and restart.
                        self.ctx.stop_remote_spin(node);
                        self.gate(node);
                        tmp = self.cas(node_tag);
                        if tmp == FREE {
                            return;
                        }
                        break;
                    }
                }
            }
        }
    }
}

impl NucaLock for HboGtLock {
    type Token = HboGtToken;

    fn acquire(&self, node: NodeId) -> HboGtToken {
        // Fig. 1 lines 5–9: gate, then a single cas on the fast path.
        self.gate(node);
        let tmp = self.cas(tag(node));
        if tmp != FREE {
            self.acquire_slowpath(node, tmp);
        }
        HboGtToken(())
    }

    fn try_acquire(&self, node: NodeId) -> Option<HboGtToken> {
        if self.ctx.is_throttled(node, self.addr()) {
            return None;
        }
        if self.cas(tag(node)) == FREE {
            Some(HboGtToken(()))
        } else {
            None
        }
    }

    fn release(&self, _token: HboGtToken) {
        self.word.store(FREE, Ordering::Release);
    }

    fn name(&self) -> &'static str {
        "HBO_GT"
    }
}

impl HboGtLock {
    /// Returns the node currently holding the lock, if any.
    pub fn holder(&self) -> Option<NodeId> {
        match self.word.load(Ordering::Relaxed) {
            FREE => None,
            t => Some(NodeId(t - 1)),
        }
    }

    /// The throttling context this lock participates in.
    pub fn context(&self) -> &Arc<GtContext> {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn basic_roundtrip() {
        let lock = HboGtLock::with_nodes(2);
        let t = lock.acquire(NodeId(1));
        assert_eq!(lock.holder(), Some(NodeId(1)));
        assert!(lock.try_acquire(NodeId(0)).is_none());
        lock.release(t);
        assert_eq!(lock.holder(), None);
    }

    #[test]
    fn try_acquire_respects_throttle_gate() {
        let ctx = GtContext::new(2);
        let lock = HboGtLock::with_context(Arc::clone(&ctx));
        ctx.start_remote_spin(NodeId(0), lock.addr());
        assert!(
            lock.try_acquire(NodeId(0)).is_none(),
            "throttled node must not contend"
        );
        assert!(
            lock.try_acquire(NodeId(1)).is_some(),
            "other nodes unaffected"
        );
    }

    #[test]
    fn slot_cleared_after_remote_acquire() {
        let ctx = GtContext::new(2);
        let lock = Arc::new(HboGtLock::with_config(
            Arc::clone(&ctx),
            BackoffConfig::new(4, 2, 64),
            BackoffConfig::new(8, 2, 128),
        ));
        // Node 0 holds the lock; node 1 must go through the remote path.
        let t = lock.acquire(NodeId(0));
        let l2 = Arc::clone(&lock);
        let waiter = std::thread::spawn(move || {
            let t = l2.acquire(NodeId(1));
            l2.release(t);
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        lock.release(t);
        waiter.join().unwrap();
        assert!(
            !ctx.is_throttled(NodeId(1), lock.addr()),
            "is_spinning must be DUMMY once the remote spinner succeeded"
        );
    }

    #[test]
    fn mutual_exclusion_mixed_nodes() {
        let ctx = GtContext::new(2);
        let lock = Arc::new(HboGtLock::with_config(
            Arc::clone(&ctx),
            BackoffConfig::new(4, 2, 64),
            BackoffConfig::new(8, 2, 256),
        ));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for i in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    let node = NodeId(i % 2);
                    for _ in 0..20_000 {
                        let t = lock.acquire(node);
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.release(t);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
    }

    #[test]
    fn distinct_locks_do_not_cross_throttle() {
        let ctx = GtContext::new(2);
        let a = HboGtLock::with_context(Arc::clone(&ctx));
        let b = HboGtLock::with_context(Arc::clone(&ctx));
        ctx.start_remote_spin(NodeId(0), a.addr());
        assert!(b.try_acquire(NodeId(0)).is_some(), "lock B not throttled");
        assert!(a.try_acquire(NodeId(0)).is_none(), "lock A throttled");
        ctx.stop_remote_spin(NodeId(0));
    }
}

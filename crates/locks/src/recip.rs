//! Reciprocating locks (Dice & Kogan, arXiv:2501.02380).
//!
//! The entire lock is **one word** (`arrivals`): free, held-with-no-
//! known-waiters, or the top of a LIFO *arrival stack* of waiters. The
//! holder detaches the stack wholesale and serves it as an **admission
//! segment** in reverse arrival order, each grantee inheriting the rest
//! of the segment as its *continuation*; waiters arriving meanwhile pile
//! onto a fresh stack that becomes the next segment. Consecutive
//! segments therefore run in palindromic admission order (last-in
//! first-out, then the reversal again), which bounds bypass: no waiter
//! sits out more than two segments. Waiters spin on their own stack
//! node — MCS-style local spinning — yet the lock itself needs neither a
//! tail word nor queue-node handshakes on the uncontended path.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use nuca_topology::NodeId;

use crate::lock::NucaLock;
use crate::pad::CachePadded;

/// `arrivals` value: lock free.
const FREE: usize = 0;
/// `arrivals` value: held with an empty arrival stack. Doubles as the
/// segment terminator in `next` chains (node pointers are ≥128-aligned,
/// so 1 is never a node address).
const HELD: usize = 1;

#[repr(align(128))]
struct RecipNode {
    /// 0 while waiting; 1 once granted.
    grant: AtomicUsize,
    /// The `arrivals` value this node was pushed onto: [`HELD`] when the
    /// node is the bottom of its segment, else the previous stack top.
    /// After the grant this is exactly the grantee's continuation.
    next: AtomicUsize,
}

impl RecipNode {
    fn new() -> RecipNode {
        RecipNode {
            grant: AtomicUsize::new(0),
            next: AtomicUsize::new(HELD),
        }
    }
}

thread_local! {
    /// Per-thread freelist. A node is recycled by its owner right after
    /// the grant is observed and the continuation read — past that point
    /// nothing references it (earlier segment members were already
    /// served, and the granter never touches the node after the grant).
    #[allow(clippy::vec_box)]
    static RECIP_POOL: RefCell<Vec<Box<RecipNode>>> = const { RefCell::new(Vec::new()) };
}

fn pool_take() -> Box<RecipNode> {
    RECIP_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_else(|| Box::new(RecipNode::new()))
}

fn pool_put(node: Box<RecipNode>) {
    RECIP_POOL.with(|p| p.borrow_mut().push(node));
}

/// Proof that a [`RecipLock`] is held. Carries the holder's continuation
/// (the not-yet-served remainder of its admission segment).
#[derive(Debug)]
pub struct RecipToken {
    /// [`HELD`] for an empty continuation, else the next segment node.
    cont: usize,
}

// SAFETY: the continuation points at stack nodes owned by still-waiting
// threads; they stay valid until granted, which only the token holder's
// release can do. Sending the token transfers that granting right.
unsafe impl Send for RecipToken {}

/// The reciprocating lock.
///
/// # Example
///
/// ```
/// use hbo_locks::{NucaLockExt, RecipLock};
/// let lock = RecipLock::new();
/// let g = lock.lock();
/// drop(g);
/// ```
#[derive(Debug, Default)]
pub struct RecipLock {
    arrivals: CachePadded<AtomicUsize>,
}

impl RecipLock {
    /// Creates a free lock.
    pub fn new() -> RecipLock {
        RecipLock {
            arrivals: CachePadded::new(AtomicUsize::new(FREE)),
        }
    }
}

impl NucaLock for RecipLock {
    type Token = RecipToken;

    fn acquire(&self, _node: NodeId) -> RecipToken {
        // Uncontended fast path: one CAS, no node.
        if self
            .arrivals
            .compare_exchange(FREE, HELD, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return RecipToken { cont: HELD };
        }
        let n = Box::into_raw(pool_take());
        // SAFETY: exclusively owned until the push CAS publishes it.
        unsafe { (*n).grant.store(0, Ordering::Relaxed) };
        loop {
            let a = self.arrivals.load(Ordering::Relaxed);
            if a == FREE {
                if self
                    .arrivals
                    .compare_exchange(FREE, HELD, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    // SAFETY: never published; still exclusively ours.
                    pool_put(unsafe { Box::from_raw(n) });
                    return RecipToken { cont: HELD };
                }
                continue;
            }
            // Push onto the arrival stack; `next` remembers what we
            // covered — [`HELD`] makes us the segment bottom.
            // SAFETY: still exclusively ours until the CAS succeeds.
            unsafe { (*n).next.store(a, Ordering::Relaxed) };
            if self
                .arrivals
                .compare_exchange(a, n as usize, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
        // SAFETY: the node is published; its granter writes only `grant`.
        let cont = unsafe {
            let mut w = crate::backoff::SpinWait::new();
            while (*n).grant.load(Ordering::Acquire) == 0 {
                w.spin();
            }
            (*n).next.load(Ordering::Relaxed)
        };
        // SAFETY: granted and continuation read — nothing references the
        // node anymore (see the pool's invariant note).
        pool_put(unsafe { Box::from_raw(n) });
        RecipToken { cont }
    }

    fn try_acquire(&self, _node: NodeId) -> Option<RecipToken> {
        self.arrivals
            .compare_exchange(FREE, HELD, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|_| RecipToken { cont: HELD })
    }

    fn release(&self, token: RecipToken) {
        if token.cont != HELD {
            // Serve the rest of our admission segment first: grant the
            // next member; it inherits the remainder via its own `next`.
            let c = token.cont as *mut RecipNode;
            // SAFETY: a continuation node belongs to a waiter that cannot
            // proceed (or recycle) before this grant.
            unsafe { (*c).grant.store(1, Ordering::Release) };
            return;
        }
        // Segment exhausted: detach the arrival stack accumulated during
        // it. The swap leaves `arrivals` at HELD so late arrivals keep
        // stacking for whoever we grant.
        let mut a = self.arrivals.swap(HELD, Ordering::AcqRel);
        loop {
            if a != HELD {
                // Grant the stack top; the chain below it (ending at the
                // HELD terminator) is the new holder's continuation.
                let top = a as *mut RecipNode;
                // SAFETY: stack nodes belong to waiters parked until
                // granted.
                unsafe { (*top).grant.store(1, Ordering::Release) };
                return;
            }
            // No waiters: release for real — unless someone pushed
            // between the swap and this CAS, in which case serve them.
            match self.arrivals.compare_exchange(
                HELD,
                FREE,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(_) => a = self.arrivals.swap(HELD, Ordering::AcqRel),
            }
        }
    }

    fn name(&self) -> &'static str {
        "RECIP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::NucaLockExt;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn mutual_exclusion_under_contention() {
        let lock = Arc::new(RecipLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..20_000 {
                        let g = lock.lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        drop(g);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
    }

    #[test]
    fn try_acquire_only_when_free() {
        let lock = RecipLock::new();
        let t = lock.try_acquire(NodeId(0)).expect("free");
        assert!(lock.try_acquire(NodeId(0)).is_none());
        lock.release(t);
        let t2 = lock.try_acquire(NodeId(1)).expect("released");
        lock.release(t2);
    }

    #[test]
    fn sequential_reacquire_stays_on_fast_path() {
        let lock = RecipLock::new();
        for _ in 0..10_000 {
            let t = lock.acquire(NodeId(0));
            lock.release(t);
        }
        assert_eq!(lock.arrivals.load(Ordering::Relaxed), FREE);
    }

    #[test]
    fn token_moves_across_threads() {
        let lock = Arc::new(RecipLock::new());
        let t = lock.acquire(NodeId(0));
        let l2 = Arc::clone(&lock);
        std::thread::spawn(move || l2.release(t)).join().unwrap();
        let t2 = lock.try_acquire(NodeId(0)).expect("released remotely");
        lock.release(t2);
    }

    #[test]
    fn segment_continuation_serves_every_waiter() {
        // One holder, several stacked waiters: all must get in exactly
        // once per iteration (exclusion plus no lost grants).
        let lock = Arc::new(RecipLock::new());
        let entries = Arc::new(AtomicU64::new(0));
        let t = lock.acquire(NodeId(0));
        std::thread::scope(|s| {
            for _ in 0..5 {
                let lock = Arc::clone(&lock);
                let entries = Arc::clone(&entries);
                s.spawn(move || {
                    let g = lock.lock();
                    entries.fetch_add(1, Ordering::Relaxed);
                    drop(g);
                });
            }
            // Let the waiters stack up, then open the flood gate.
            std::thread::sleep(std::time::Duration::from_millis(50));
            lock.release(t);
        });
        assert_eq!(entries.load(Ordering::Relaxed), 5);
    }
}

//! The lock abstraction: [`NucaLock`], RAII guards, and [`NucaMutex`].

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};

use nuca_topology::{thread_node, NodeId};

/// A mutual-exclusion lock that may use the caller's NUCA node id as an
/// affinity hint.
///
/// Every algorithm in this crate implements `NucaLock`. The `Token`
/// associated type carries whatever the release path needs (queue locks
/// hand back their queue node; the simple locks use `()`-like tokens).
///
/// # Contract
///
/// * [`acquire`](NucaLock::acquire) returns only once the caller holds the
///   lock; the returned token must be passed to exactly one
///   [`release`](NucaLock::release) call on the *same* lock.
/// * The `node` argument is an affinity hint. Passing the wrong node can
///   only cost performance, never correctness.
/// * Dropping a token without releasing leaves the lock held forever
///   (prefer the RAII APIs: [`NucaLockExt::lock`], [`NucaMutex`]).
///
/// # Example
///
/// ```
/// use hbo_locks::{HboLock, NucaLock};
/// use nuca_topology::NodeId;
///
/// let lock = HboLock::new();
/// let token = lock.acquire(NodeId(0));
/// // ... critical section ...
/// lock.release(token);
/// ```
pub trait NucaLock: Send + Sync {
    /// State carried from acquire to release.
    type Token;

    /// Blocks until the lock is held. `node` is the caller's NUCA node.
    fn acquire(&self, node: NodeId) -> Self::Token;

    /// Makes a single attempt to take a free lock, without spinning.
    ///
    /// Returns `None` if the lock was busy (or, for queue locks, if joining
    /// the queue cannot be undone cheaply and the lock was contended).
    fn try_acquire(&self, node: NodeId) -> Option<Self::Token>;

    /// Releases the lock. `token` must come from a prior
    /// [`acquire`](NucaLock::acquire) on this same lock.
    fn release(&self, token: Self::Token);

    /// Short algorithm name matching the paper ("HBO_GT", "MCS", ...).
    fn name(&self) -> &'static str;
}

/// Convenience methods for any [`NucaLock`].
pub trait NucaLockExt: NucaLock + Sized {
    /// Acquires using the calling thread's registered node
    /// ([`nuca_topology::thread_node`]) and returns an RAII guard.
    ///
    /// # Example
    ///
    /// ```
    /// use hbo_locks::{NucaLockExt, TatasLock};
    /// let lock = TatasLock::new();
    /// {
    ///     let _guard = lock.lock();
    ///     // critical section
    /// } // released here
    /// ```
    fn lock(&self) -> NucaLockGuard<'_, Self> {
        self.lock_at(thread_node())
    }

    /// Acquires with an explicit node id and returns an RAII guard.
    fn lock_at(&self, node: NodeId) -> NucaLockGuard<'_, Self> {
        let token = self.acquire(node);
        NucaLockGuard {
            lock: self,
            token: Some(token),
        }
    }

    /// Attempts a non-blocking acquire, returning a guard on success.
    fn try_lock(&self) -> Option<NucaLockGuard<'_, Self>> {
        let token = self.try_acquire(thread_node())?;
        Some(NucaLockGuard {
            lock: self,
            token: Some(token),
        })
    }
}

impl<L: NucaLock> NucaLockExt for L {}

/// RAII guard returned by [`NucaLockExt::lock`]; releases on drop.
pub struct NucaLockGuard<'a, L: NucaLock> {
    lock: &'a L,
    token: Option<L::Token>,
}

impl<L: NucaLock> Drop for NucaLockGuard<'_, L> {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.lock.release(token);
        }
    }
}

impl<L: NucaLock> fmt::Debug for NucaLockGuard<'_, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NucaLockGuard")
            .field("lock", &self.lock.name())
            .finish()
    }
}

/// A value protected by a [`NucaLock`] — the `std::sync::Mutex` shape with
/// a pluggable NUCA-aware locking algorithm.
///
/// # Example
///
/// ```
/// use hbo_locks::{HboGtLock, NucaMutex};
///
/// let m = NucaMutex::new(HboGtLock::with_nodes(2), vec![1, 2, 3]);
/// m.lock().push(4);
/// assert_eq!(m.lock().len(), 4);
/// ```
pub struct NucaMutex<L: NucaLock, T: ?Sized> {
    lock: L,
    data: UnsafeCell<T>,
}

// SAFETY: `NucaMutex` provides mutual exclusion for access to `data`
// (guards borrow the mutex and release on drop), so sharing it between
// threads is safe whenever the protected value itself may be sent.
unsafe impl<L: NucaLock, T: ?Sized + Send> Sync for NucaMutex<L, T> {}
unsafe impl<L: NucaLock, T: ?Sized + Send> Send for NucaMutex<L, T> {}

impl<L: NucaLock, T> NucaMutex<L, T> {
    /// Wraps `data` behind `lock`.
    pub fn new(lock: L, data: T) -> NucaMutex<L, T> {
        NucaMutex {
            lock,
            data: UnsafeCell::new(data),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<L: NucaLock, T: ?Sized> NucaMutex<L, T> {
    /// Acquires the lock (node id from the thread registry) and returns a
    /// guard dereferencing to the protected value.
    pub fn lock(&self) -> NucaMutexGuard<'_, L, T> {
        self.lock_at(thread_node())
    }

    /// Acquires with an explicit node id.
    pub fn lock_at(&self, node: NodeId) -> NucaMutexGuard<'_, L, T> {
        let token = self.lock.acquire(node);
        NucaMutexGuard {
            mutex: self,
            token: Some(token),
        }
    }

    /// Attempts a non-blocking acquire.
    pub fn try_lock(&self) -> Option<NucaMutexGuard<'_, L, T>> {
        let token = self.lock.try_acquire(thread_node())?;
        Some(NucaMutexGuard {
            mutex: self,
            token: Some(token),
        })
    }

    /// Mutable access without locking — safe because `&mut self` proves
    /// exclusive access.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// The underlying locking algorithm.
    pub fn raw_lock(&self) -> &L {
        &self.lock
    }
}

impl<L: NucaLock, T: ?Sized + fmt::Debug> fmt::Debug for NucaMutex<L, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NucaMutex")
            .field("lock", &self.lock.name())
            .finish_non_exhaustive()
    }
}

/// RAII guard for [`NucaMutex`]; dereferences to the protected value.
pub struct NucaMutexGuard<'a, L: NucaLock, T: ?Sized> {
    mutex: &'a NucaMutex<L, T>,
    token: Option<L::Token>,
}

impl<L: NucaLock, T: ?Sized> Deref for NucaMutexGuard<'_, L, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves the lock is held, so no other guard can
        // alias `data` until this guard drops.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<L: NucaLock, T: ?Sized> DerefMut for NucaMutexGuard<'_, L, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `Deref`; the guard also proves unique access.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<L: NucaLock, T: ?Sized> Drop for NucaMutexGuard<'_, L, T> {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.mutex.lock.release(token);
        }
    }
}

impl<L: NucaLock, T: ?Sized + fmt::Debug> fmt::Debug for NucaMutexGuard<'_, L, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NucaMutexGuard")
            .field("data", &&**self)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TatasLock;

    #[test]
    fn mutex_basic_exclusion() {
        let m = NucaMutex::new(TatasLock::new(), 0u32);
        *m.lock() += 1;
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = NucaMutex::new(TatasLock::new(), ());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn get_mut_without_locking() {
        let mut m = NucaMutex::new(TatasLock::new(), 5);
        *m.get_mut() = 6;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn guard_debug_shows_data() {
        let m = NucaMutex::new(TatasLock::new(), 7);
        let g = m.lock();
        assert!(format!("{g:?}").contains('7'));
    }

    #[test]
    fn raw_guard_releases_on_drop() {
        use crate::NucaLockExt;
        let l = TatasLock::new();
        {
            let _g = l.lock();
            assert!(l.try_lock().is_none());
        }
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn mutex_shared_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(NucaMutex::new(TatasLock::new(), 0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 40_000);
    }
}

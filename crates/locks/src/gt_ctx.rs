//! The per-node `is_spinning` slots used for global-traffic throttling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use nuca_topology::NodeId;

use crate::pad::CachePadded;

/// Upper bound on nodes supported by the process-global [`GtContext`].
pub const MAX_NODES: usize = 64;

/// The "dummy value" stored in an `is_spinning` slot when no throttling is
/// in effect. No lock can be at address 0.
const DUMMY: usize = 0;

/// One cache-line-padded `is_spinning` slot per NUCA node.
///
/// The paper's HBO_GT uses one extra variable per node, *shared by all
/// locks*: the slot holds the address of the lock that node is currently
/// remote-spinning on ("there is usually only one thread per node ... that
/// is performing remote spinning", §4.2). A thread about to contend for a
/// lock first checks whether its node is already remote-spinning on that
/// same lock and, if so, waits locally instead of adding global traffic.
///
/// Locks created with `HboGtLock::with_nodes` share the process-global
/// context; tests and multi-tenant embeddings can allocate private contexts
/// with [`GtContext::new`].
///
/// # Example
///
/// ```
/// use hbo_locks::GtContext;
/// use nuca_topology::NodeId;
///
/// let ctx = GtContext::new(2);
/// assert!(!ctx.is_throttled(NodeId(0), 0xdead));
/// ctx.start_remote_spin(NodeId(0), 0xdead);
/// assert!(ctx.is_throttled(NodeId(0), 0xdead));
/// ctx.stop_remote_spin(NodeId(0));
/// assert!(!ctx.is_throttled(NodeId(0), 0xdead));
/// ```
#[derive(Debug)]
pub struct GtContext {
    slots: Vec<CachePadded<AtomicUsize>>,
}

impl GtContext {
    /// Creates a private context for `nodes` NUCA nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize) -> Arc<GtContext> {
        assert!(nodes > 0, "GtContext needs at least one node");
        Arc::new(GtContext {
            slots: (0..nodes)
                .map(|_| CachePadded::new(AtomicUsize::new(DUMMY)))
                .collect(),
        })
    }

    /// The process-global context, sized for [`MAX_NODES`] nodes.
    pub fn global() -> &'static Arc<GtContext> {
        static GLOBAL: OnceLock<Arc<GtContext>> = OnceLock::new();
        GLOBAL.get_or_init(|| GtContext::new(MAX_NODES))
    }

    /// Number of node slots.
    pub fn nodes(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn slot(&self, node: NodeId) -> &AtomicUsize {
        // Out-of-range nodes alias slot 0 rather than panicking: the slots
        // are performance hints, and a hint must never turn a valid lock
        // operation into a crash.
        &self.slots[node.index() % self.slots.len()]
    }

    /// Whether `node` should hold off contending for the lock identified by
    /// `lock_addr` (paper Fig. 1, lines 5 and 56).
    #[inline]
    pub fn is_throttled(&self, node: NodeId, lock_addr: usize) -> bool {
        self.slot(node).load(Ordering::Relaxed) == lock_addr
    }

    /// Publishes that `node` has a remote spinner for `lock_addr`
    /// (Fig. 1, line 39).
    #[inline]
    pub fn start_remote_spin(&self, node: NodeId, lock_addr: usize) {
        self.slot(node).store(lock_addr, Ordering::Relaxed);
    }

    /// Clears `node`'s slot (Fig. 1, lines 44 and 48 — the "dummy value").
    #[inline]
    pub fn stop_remote_spin(&self, node: NodeId) {
        self.slot(node).store(DUMMY, Ordering::Relaxed);
    }

    /// Stops *another* node from contending for `lock_addr` — the
    /// starvation-detection measure of HBO_GT_SD (Fig. 2, line 62).
    #[inline]
    pub fn stop_node(&self, node: NodeId, lock_addr: usize) {
        self.slot(node).store(lock_addr, Ordering::Relaxed);
    }

    /// Releases a node previously stopped with [`GtContext::stop_node`]
    /// (Fig. 2, lines 47–48), but only if the slot still names `lock_addr`
    /// — the node may since have started a legitimate remote spin on
    /// another lock.
    #[inline]
    pub fn release_node(&self, node: NodeId, lock_addr: usize) {
        let _ = self.slot(node).compare_exchange(
            lock_addr,
            DUMMY,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throttle_roundtrip() {
        let ctx = GtContext::new(4);
        assert_eq!(ctx.nodes(), 4);
        for n in 0..4 {
            assert!(!ctx.is_throttled(NodeId(n), 42));
        }
        ctx.start_remote_spin(NodeId(2), 42);
        assert!(ctx.is_throttled(NodeId(2), 42));
        assert!(!ctx.is_throttled(NodeId(2), 43), "different lock unaffected");
        assert!(!ctx.is_throttled(NodeId(1), 42), "different node unaffected");
        ctx.stop_remote_spin(NodeId(2));
        assert!(!ctx.is_throttled(NodeId(2), 42));
    }

    #[test]
    fn release_node_only_if_still_ours() {
        let ctx = GtContext::new(2);
        ctx.stop_node(NodeId(1), 42);
        assert!(ctx.is_throttled(NodeId(1), 42));
        // Node 1 has since moved on to remote-spinning on lock 99.
        ctx.start_remote_spin(NodeId(1), 99);
        ctx.release_node(NodeId(1), 42);
        assert!(
            ctx.is_throttled(NodeId(1), 99),
            "release of a stale stop must not clear a newer spin"
        );
        ctx.release_node(NodeId(1), 99);
        assert!(!ctx.is_throttled(NodeId(1), 99));
    }

    #[test]
    fn out_of_range_node_aliases_instead_of_panicking() {
        let ctx = GtContext::new(2);
        ctx.start_remote_spin(NodeId(5), 7);
        assert!(ctx.is_throttled(NodeId(1), 7), "5 % 2 == 1");
    }

    #[test]
    fn global_context_is_shared() {
        let a = GtContext::global();
        let b = GtContext::global();
        assert!(Arc::ptr_eq(a, b));
        assert_eq!(a.nodes(), MAX_NODES);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = GtContext::new(0);
    }
}

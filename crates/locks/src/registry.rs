//! The open lock registry: [`LockCatalog`], [`LockInfo`], [`LockFamily`].
//!
//! Artifacts, the experiment CLI, the model checker and the test suites
//! all need to enumerate "every lock we have" — and for years that list
//! was a closed 8-entry const array matched by hand in a dozen crates.
//! The catalog replaces those arrays with one registration table: each
//! [`LockKind`] appears exactly once, with the metadata the rest of the
//! system keys off (display name, citation, family, NUCA awareness,
//! FIFO guarantee, whether it consumes per-node GT slots).
//!
//! Ordered kind sets are derived, never duplicated:
//!
//! * [`LockCatalog::kinds`] — every registered kind, registration order
//!   (the paper's eight first, then the extensions, then the post-2003
//!   contenders).
//! * [`LockCatalog::paper`] — the eight algorithms of the 2003 paper, in
//!   its presentation order. Paper-faithful artifacts (Table 1/2, Fig.
//!   3/8/9/10, apps) iterate this set so their outputs keep reproducing
//!   the paper exactly.
//! * [`LockCatalog::modern`] — the post-2003 contenders (CNA, TWA,
//!   Reciprocating), the `showdown` artifact's challengers.
//! * [`LockCatalog::nuca_aware`] — kinds that exploit node locality.
//!
//! Registering a new kind means adding one enum variant, one catalog row
//! and one `build_lock`/`instantiate` arm; every sweep, CLI menu and
//! checker subject list picks it up from here.

use std::fmt;
use std::sync::OnceLock;

use crate::any::{LockKind, ParseLockKindError};

/// Coarse algorithm family: how waiters wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockFamily {
    /// Contenders retry a shared word under (possibly hierarchical)
    /// backoff: TATAS, TATAS_EXP, RH, the HBO family.
    Backoff,
    /// Contenders take a FIFO position and wait their turn: MCS, CLH,
    /// TICKET, TWA.
    Queue,
    /// Queue order deliberately re-shaped for locality or reuse: CNA's
    /// secondary queue, Reciprocating's palindromic segments.
    Hybrid,
}

impl LockFamily {
    /// Lower-case display name (`backoff`, `queue`, `hybrid`).
    pub fn as_str(self) -> &'static str {
        match self {
            LockFamily::Backoff => "backoff",
            LockFamily::Queue => "queue",
            LockFamily::Hybrid => "hybrid",
        }
    }
}

impl fmt::Display for LockFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One catalog row: everything the system knows about a lock kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockInfo {
    /// The registered kind.
    pub kind: LockKind,
    /// Canonical display name (what TSVs, CLIs and parsers use).
    pub name: &'static str,
    /// Where the algorithm comes from.
    pub paper: &'static str,
    /// Publication year (paper kinds ≤ 2003, modern contenders after).
    pub year: u16,
    /// How waiters wait.
    pub family: LockFamily,
    /// Whether the algorithm exploits NUCA node locality.
    pub nuca_aware: bool,
    /// Whether acquisition order is FIFO.
    pub fifo: bool,
    /// Whether instances consume the shared per-node GT `is_spinning`
    /// slots (HBO_GT, HBO_GT_SD).
    pub needs_gt_slots: bool,
}

/// The registration table. Order is the public enumeration order:
/// the paper's eight in presentation order, then the library extensions
/// (TICKET, HIER), then the post-2003 contenders (CNA, TWA, RECIP).
/// `LockKind`'s variant order mirrors this (checked by test).
static CATALOG: [LockInfo; 13] = [
    LockInfo {
        kind: LockKind::Tatas,
        name: "TATAS",
        paper: "test-and-test&set (Rudolph & Segall 1984)",
        year: 1984,
        family: LockFamily::Backoff,
        nuca_aware: false,
        fifo: false,
        needs_gt_slots: false,
    },
    LockInfo {
        kind: LockKind::TatasExp,
        name: "TATAS_EXP",
        paper: "TATAS + exponential backoff (Anderson 1990)",
        year: 1990,
        family: LockFamily::Backoff,
        nuca_aware: false,
        fifo: false,
        needs_gt_slots: false,
    },
    LockInfo {
        kind: LockKind::Mcs,
        name: "MCS",
        paper: "Mellor-Crummey & Scott 1991",
        year: 1991,
        family: LockFamily::Queue,
        nuca_aware: false,
        fifo: true,
        needs_gt_slots: false,
    },
    LockInfo {
        kind: LockKind::Clh,
        name: "CLH",
        paper: "Craig 1993; Landin & Hagersten 1994",
        year: 1993,
        family: LockFamily::Queue,
        nuca_aware: false,
        fifo: true,
        needs_gt_slots: false,
    },
    LockInfo {
        kind: LockKind::Rh,
        name: "RH",
        paper: "Radović & Hagersten 2002 (2-node proof of concept)",
        year: 2002,
        family: LockFamily::Backoff,
        nuca_aware: true,
        fifo: false,
        needs_gt_slots: false,
    },
    LockInfo {
        kind: LockKind::Hbo,
        name: "HBO",
        paper: "Radović & Hagersten, HPCA 2003",
        year: 2003,
        family: LockFamily::Backoff,
        nuca_aware: true,
        fifo: false,
        needs_gt_slots: false,
    },
    LockInfo {
        kind: LockKind::HboGt,
        name: "HBO_GT",
        paper: "HBO + global-traffic throttling (HPCA 2003)",
        year: 2003,
        family: LockFamily::Backoff,
        nuca_aware: true,
        fifo: false,
        needs_gt_slots: true,
    },
    LockInfo {
        kind: LockKind::HboGtSd,
        name: "HBO_GT_SD",
        paper: "HBO_GT + starvation detection (HPCA 2003)",
        year: 2003,
        family: LockFamily::Backoff,
        nuca_aware: true,
        fifo: false,
        needs_gt_slots: true,
    },
    LockInfo {
        kind: LockKind::Ticket,
        name: "TICKET",
        paper: "ticket lock w/ proportional backoff (Anderson 1990)",
        year: 1990,
        family: LockFamily::Queue,
        nuca_aware: false,
        fifo: true,
        needs_gt_slots: false,
    },
    LockInfo {
        kind: LockKind::Hier,
        name: "HIER",
        paper: "the paper's \"expand hierarchically\" remark, realized",
        year: 2003,
        family: LockFamily::Backoff,
        nuca_aware: true,
        fifo: false,
        needs_gt_slots: false,
    },
    LockInfo {
        kind: LockKind::Cna,
        name: "CNA",
        paper: "Compact NUMA-aware locks (Dice & Kogan, arXiv:1810.05600)",
        year: 2019,
        family: LockFamily::Hybrid,
        nuca_aware: true,
        fifo: false,
        needs_gt_slots: false,
    },
    LockInfo {
        kind: LockKind::Twa,
        name: "TWA",
        paper: "ticket lock + waiting array (Dice & Kogan, arXiv:1810.01573)",
        year: 2019,
        family: LockFamily::Queue,
        nuca_aware: false,
        fifo: true,
        needs_gt_slots: false,
    },
    LockInfo {
        kind: LockKind::Recip,
        name: "RECIP",
        paper: "Reciprocating locks (Dice & Kogan, arXiv:2501.02380)",
        year: 2025,
        family: LockFamily::Hybrid,
        nuca_aware: false,
        fifo: false,
        needs_gt_slots: false,
    },
];

/// The number of paper kinds at the head of the catalog.
const PAPER_KINDS: usize = 8;

fn derived(filter: impl Fn(&LockInfo) -> bool) -> Vec<LockKind> {
    CATALOG.iter().filter(|i| filter(i)).map(|i| i.kind).collect()
}

/// The open lock registry. A namespace over the registration table; all
/// methods are associated functions returning `'static` data.
#[derive(Debug, Clone, Copy)]
pub struct LockCatalog;

impl LockCatalog {
    /// Every registration row, in registration order.
    pub fn entries() -> &'static [LockInfo] {
        &CATALOG
    }

    /// The metadata row for `kind`.
    pub fn info(kind: LockKind) -> &'static LockInfo {
        // Variant order mirrors registration order (tested), so this is
        // a direct index, not a scan.
        &CATALOG[kind as usize]
    }

    /// Every registered kind, in registration order.
    pub fn kinds() -> &'static [LockKind] {
        static KINDS: OnceLock<Vec<LockKind>> = OnceLock::new();
        KINDS.get_or_init(|| derived(|_| true))
    }

    /// The eight algorithms of the 2003 paper, in its presentation order.
    pub fn paper() -> &'static [LockKind] {
        &Self::kinds()[..PAPER_KINDS]
    }

    /// The post-2003 contenders (published after the paper).
    pub fn modern() -> &'static [LockKind] {
        static MODERN: OnceLock<Vec<LockKind>> = OnceLock::new();
        MODERN.get_or_init(|| derived(|i| i.year > 2003))
    }

    /// Kinds that exploit NUCA node locality.
    pub fn nuca_aware() -> &'static [LockKind] {
        static NUCA: OnceLock<Vec<LockKind>> = OnceLock::new();
        NUCA.get_or_init(|| derived(|i| i.nuca_aware))
    }

    /// Parses a registered name (case-insensitive).
    pub fn parse(s: &str) -> Result<LockKind, ParseLockKindError> {
        CATALOG
            .iter()
            .find(|i| i.name.eq_ignore_ascii_case(s))
            .map(|i| i.kind)
            .ok_or_else(|| ParseLockKindError::new(s))
    }

    /// The comma-separated menu of registered names (for CLI usage
    /// messages).
    pub fn menu() -> String {
        let names: Vec<&str> = CATALOG.iter().map(|i| i.name).collect();
        names.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::str::FromStr;

    #[test]
    fn catalog_indexes_by_variant_order() {
        for (i, info) in CATALOG.iter().enumerate() {
            assert_eq!(info.kind as usize, i, "{} out of order", info.name);
            assert_eq!(LockCatalog::info(info.kind), info);
        }
    }

    #[test]
    fn names_are_unique_and_parse_back() {
        let mut seen = HashSet::new();
        for info in LockCatalog::entries() {
            assert!(seen.insert(info.name), "duplicate name {}", info.name);
            assert_eq!(LockCatalog::parse(info.name).unwrap(), info.kind);
            assert_eq!(
                LockCatalog::parse(&info.name.to_lowercase()).unwrap(),
                info.kind
            );
            assert_eq!(LockKind::from_str(info.name).unwrap(), info.kind);
        }
        assert!(LockCatalog::parse("QOLB").is_err());
    }

    #[test]
    fn paper_set_is_the_2003_presentation_order() {
        let names: Vec<&str> = LockCatalog::paper()
            .iter()
            .map(|k| k.as_str())
            .collect();
        assert_eq!(
            names,
            ["TATAS", "TATAS_EXP", "MCS", "CLH", "RH", "HBO", "HBO_GT", "HBO_GT_SD"]
        );
        for kind in LockCatalog::paper() {
            assert!(
                LockCatalog::info(*kind).year <= 2003,
                "{kind} is not from the paper era"
            );
        }
    }

    #[test]
    fn modern_set_is_post_2003() {
        let modern = LockCatalog::modern();
        assert_eq!(
            modern,
            [LockKind::Cna, LockKind::Twa, LockKind::Recip]
        );
        for kind in modern {
            assert!(LockCatalog::info(*kind).year > 2003);
        }
    }

    #[test]
    fn derived_sets_preserve_registration_order() {
        // Every derived set must be a subsequence of kinds() — ordering
        // comes from registration, never from the filter.
        let all = LockCatalog::kinds();
        for set in [
            LockCatalog::paper(),
            LockCatalog::modern(),
            LockCatalog::nuca_aware(),
        ] {
            let mut pos = 0;
            for kind in set {
                let at = all[pos..]
                    .iter()
                    .position(|k| k == kind)
                    .expect("derived kind missing from kinds()");
                pos += at + 1;
            }
        }
    }

    #[test]
    fn metadata_is_consistent() {
        assert!(LockCatalog::kinds().len() >= 13);
        for info in LockCatalog::entries() {
            // GT slots are an HBO-family mechanism; anything needing them
            // must be NUCA-aware.
            if info.needs_gt_slots {
                assert!(info.nuca_aware, "{}", info.name);
            }
            // FIFO order is what the Queue family provides; Hybrid kinds
            // deliberately give it up, Backoff kinds never had it.
            if info.family != LockFamily::Queue {
                assert!(!info.fifo, "{}", info.name);
            }
            assert!(!info.name.is_empty() && !info.paper.is_empty());
            assert!((1980..=2030).contains(&info.year), "{}", info.name);
        }
        let menu = LockCatalog::menu();
        assert!(menu.starts_with("TATAS,"));
        assert!(menu.contains("CNA") && menu.contains("RECIP"));
    }
}

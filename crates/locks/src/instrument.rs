//! Lock instrumentation: acquisition counts and node-handoff ratios.
//!
//! The paper's key diagnostic is the *node handoff ratio* — how often the
//! lock migrates between NUCA nodes per acquisition (Figs. 3 and 5, right
//! panels). [`Instrumented`] wraps any [`NucaLock`] and measures it.

use std::sync::atomic::{AtomicUsize, Ordering};

use nuca_topology::NodeId;

use crate::lock::NucaLock;
use crate::pad::CachePadded;

/// Snapshot of an [`Instrumented`] lock's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct LockStats {
    /// Total successful acquisitions.
    pub acquisitions: usize,
    /// Acquisitions whose node differed from the previous holder's node.
    pub node_handoffs: usize,
}

impl LockStats {
    /// Node handoffs per acquisition, in `[0, 1]`; `None` before the first
    /// handover opportunity (fewer than two acquisitions).
    pub fn handoff_ratio(&self) -> Option<f64> {
        if self.acquisitions < 2 {
            None
        } else {
            // The first acquisition has no predecessor, so it is excluded
            // from the denominator.
            Some(self.node_handoffs as f64 / (self.acquisitions - 1) as f64)
        }
    }
}

/// Wraps a [`NucaLock`], counting acquisitions and node handoffs.
///
/// The counters are updated *inside* the critical section (right after
/// acquire), so they are exact, not sampled. The extra cost is two relaxed
/// atomic operations per acquisition.
///
/// # Example
///
/// ```
/// use hbo_locks::{Instrumented, NucaLock, TatasLock};
/// use nuca_topology::NodeId;
///
/// let lock = Instrumented::new(TatasLock::new());
/// let t = lock.acquire(NodeId(0));
/// lock.release(t);
/// let t = lock.acquire(NodeId(1));
/// lock.release(t);
/// let stats = lock.stats();
/// assert_eq!(stats.acquisitions, 2);
/// assert_eq!(stats.node_handoffs, 1);
/// ```
#[derive(Debug)]
pub struct Instrumented<L> {
    inner: L,
    acquisitions: CachePadded<AtomicUsize>,
    handoffs: CachePadded<AtomicUsize>,
    /// `node + 1` of the last holder; 0 = no holder yet.
    last_node: CachePadded<AtomicUsize>,
}

impl<L: NucaLock> Instrumented<L> {
    /// Wraps `inner` with fresh counters.
    pub fn new(inner: L) -> Instrumented<L> {
        Instrumented {
            inner,
            acquisitions: CachePadded::new(AtomicUsize::new(0)),
            handoffs: CachePadded::new(AtomicUsize::new(0)),
            last_node: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Current counter values.
    pub fn stats(&self) -> LockStats {
        LockStats {
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            node_handoffs: self.handoffs.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.acquisitions.store(0, Ordering::Relaxed);
        self.handoffs.store(0, Ordering::Relaxed);
        self.last_node.store(0, Ordering::Relaxed);
    }

    /// The wrapped lock.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Unwraps the lock, discarding the counters.
    pub fn into_inner(self) -> L {
        self.inner
    }

    fn record(&self, node: NodeId) {
        // Runs while the lock is held, so the updates are race-free in
        // practice; Relaxed suffices because the lock's own acquire/release
        // edges order them.
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        let tag = node.index() + 1;
        let prev = self.last_node.swap(tag, Ordering::Relaxed);
        if prev != 0 && prev != tag {
            self.handoffs.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<L: NucaLock> NucaLock for Instrumented<L> {
    type Token = L::Token;

    fn acquire(&self, node: NodeId) -> L::Token {
        let token = self.inner.acquire(node);
        self.record(node);
        token
    }

    fn try_acquire(&self, node: NodeId) -> Option<L::Token> {
        let token = self.inner.try_acquire(node)?;
        self.record(node);
        Some(token)
    }

    fn release(&self, token: L::Token) {
        self.inner.release(token);
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HboLock, TatasLock};

    #[test]
    fn counts_acquisitions_and_handoffs() {
        let lock = Instrumented::new(HboLock::new());
        for node in [0, 0, 1, 1, 0] {
            let t = lock.acquire(NodeId(node));
            lock.release(t);
        }
        let s = lock.stats();
        assert_eq!(s.acquisitions, 5);
        assert_eq!(s.node_handoffs, 2, "0→1 and 1→0");
        assert_eq!(s.handoff_ratio(), Some(0.5));
    }

    #[test]
    fn ratio_undefined_below_two_acquisitions() {
        let lock = Instrumented::new(TatasLock::new());
        assert_eq!(lock.stats().handoff_ratio(), None);
        let t = lock.acquire(NodeId(0));
        lock.release(t);
        assert_eq!(lock.stats().handoff_ratio(), None);
    }

    #[test]
    fn reset_clears_history() {
        let lock = Instrumented::new(TatasLock::new());
        let t = lock.acquire(NodeId(0));
        lock.release(t);
        lock.reset();
        assert_eq!(lock.stats(), LockStats::default());
        // After reset, the next acquisition is "first" again: no handoff
        // even from a different node.
        let t = lock.acquire(NodeId(1));
        lock.release(t);
        assert_eq!(lock.stats().node_handoffs, 0);
    }

    #[test]
    fn try_acquire_also_counted() {
        let lock = Instrumented::new(TatasLock::new());
        let t = lock.try_acquire(NodeId(0)).unwrap();
        assert_eq!(lock.stats().acquisitions, 1);
        lock.release(t);
        assert!(lock.try_acquire(NodeId(1)).is_some());
    }

    #[test]
    fn name_passes_through() {
        assert_eq!(Instrumented::new(HboLock::new()).name(), "HBO");
    }
}

//! The MCS queue lock (Mellor-Crummey & Scott, 1991).
//!
//! Contenders form an explicit linked queue; each spins on a flag in its
//! *own* queue node, so a release invalidates exactly one waiter's cache
//! line. This gives flat, contention-independent traffic (paper Table 2)
//! and strict FIFO fairness (paper Fig. 8) — but no node affinity, and
//! severe sensitivity to preemption of queued threads (paper Table 4).

use std::cell::RefCell;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use nuca_topology::NodeId;

use crate::lock::NucaLock;
use crate::pad::CachePadded;

#[repr(align(128))]
struct McsNode {
    /// Spun on by the owner of this node; cleared by its predecessor.
    locked: AtomicBool,
    /// Link to the successor in the queue.
    next: AtomicPtr<McsNode>,
}

impl McsNode {
    fn new() -> McsNode {
        McsNode {
            locked: AtomicBool::new(false),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

thread_local! {
    /// Per-thread freelist of queue nodes, shared by all `McsLock`s.
    ///
    /// A node is pushed here only after it has fully left a queue (see the
    /// SAFETY discussion in `release`), so reuse across locks is sound. The
    /// freelist bounds allocation to one node per lock a thread holds
    /// concurrently.
    // Boxes are load-bearing: queue nodes need stable addresses while
    // linked into a queue.
    #[allow(clippy::vec_box)]
    static MCS_POOL: RefCell<Vec<Box<McsNode>>> = const { RefCell::new(Vec::new()) };
}

fn pool_take() -> Box<McsNode> {
    MCS_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_else(|| Box::new(McsNode::new()))
}

fn pool_put(node: Box<McsNode>) {
    MCS_POOL.with(|p| p.borrow_mut().push(node));
}

/// Proof that an [`McsLock`] is held. Carries the holder's queue node.
#[derive(Debug)]
pub struct McsToken {
    node: *mut McsNode,
}

// SAFETY: the raw pointer refers to a queue node owned by the token holder;
// the node is only ever touched through the lock protocol, which is what
// makes MCS correct across threads in the first place. Sending the token to
// another thread (e.g. inside a guard) transfers that ownership.
unsafe impl Send for McsToken {}

/// The MCS list-based queue lock.
///
/// # Example
///
/// ```
/// use hbo_locks::{McsLock, NucaLockExt};
/// let lock = McsLock::new();
/// let g = lock.lock();
/// drop(g);
/// ```
#[derive(Debug)]
pub struct McsLock {
    tail: CachePadded<AtomicPtr<McsNode>>,
}

impl Default for McsLock {
    fn default() -> Self {
        McsLock::new()
    }
}

impl McsLock {
    /// Creates a free lock.
    pub fn new() -> McsLock {
        McsLock {
            tail: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
        }
    }
}

impl NucaLock for McsLock {
    type Token = McsToken;

    fn acquire(&self, _node: NodeId) -> McsToken {
        let node = Box::into_raw(pool_take());
        // SAFETY: `node` is a fresh (or recycled-and-quiescent) allocation
        // we exclusively own until it is published via the tail swap.
        unsafe {
            (*node).locked.store(true, Ordering::Relaxed);
            (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        let prev = self.tail.swap(node, Ordering::AcqRel);
        if !prev.is_null() {
            // SAFETY: `prev` stays valid until its owner's release
            // completes, and its owner's release cannot complete before it
            // observes our `next` link — which is exactly the store below.
            unsafe {
                (*prev).next.store(node, Ordering::Release);
                let mut w = crate::backoff::SpinWait::new();
                while (*node).locked.load(Ordering::Acquire) {
                    w.spin();
                }
            }
        }
        McsToken { node }
    }

    fn try_acquire(&self, _node: NodeId) -> Option<McsToken> {
        let node = Box::into_raw(pool_take());
        // SAFETY: exclusively owned until published.
        unsafe {
            (*node).locked.store(false, Ordering::Relaxed);
            (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        // Only take the lock if the queue is empty; never wait.
        match self.tail.compare_exchange(
            ptr::null_mut(),
            node,
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => Some(McsToken { node }),
            Err(_) => {
                // SAFETY: the node was never published; we still own it.
                pool_put(unsafe { Box::from_raw(node) });
                None
            }
        }
    }

    fn release(&self, token: McsToken) {
        let node = token.node;
        // SAFETY: `node` is the queue node we own by virtue of holding the
        // lock. No successor: try to swing tail back to null.
        unsafe {
            if (*node).next.load(Ordering::Acquire).is_null() {
                if self
                    .tail
                    .compare_exchange(node, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // Nobody saw the node; it has fully left the queue.
                    pool_put(Box::from_raw(node));
                    return;
                }
                // A contender swapped itself behind us but has not linked
                // yet; wait for the link.
                let mut w = crate::backoff::SpinWait::new();
                while (*node).next.load(Ordering::Acquire).is_null() {
                    w.spin();
                }
            }
            let next = (*node).next.load(Ordering::Acquire);
            (*next).locked.store(false, Ordering::Release);
            // The successor never touches our node again (it spins on its
            // own node), and the tail no longer points at us, so the node
            // has fully left the queue and is safe to recycle.
            pool_put(Box::from_raw(node));
        }
    }

    fn name(&self) -> &'static str {
        "MCS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::NucaLockExt;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn mutual_exclusion_under_contention() {
        let lock = Arc::new(McsLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..20_000 {
                        let g = lock.lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        drop(g);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
    }

    #[test]
    fn try_acquire_only_when_queue_empty() {
        let lock = McsLock::new();
        let t = lock.try_acquire(NodeId(0)).expect("empty queue");
        assert!(lock.try_acquire(NodeId(0)).is_none());
        lock.release(t);
        let t2 = lock.try_acquire(NodeId(0)).expect("released");
        lock.release(t2);
    }

    #[test]
    fn sequential_reacquire() {
        let lock = McsLock::new();
        for _ in 0..10_000 {
            let t = lock.acquire(NodeId(0));
            lock.release(t);
        }
    }

    #[test]
    fn token_moves_across_threads() {
        // Guard-in-a-box pattern: acquire on one thread, release on another.
        let lock = Arc::new(McsLock::new());
        let t = lock.acquire(NodeId(0));
        let l2 = Arc::clone(&lock);
        std::thread::spawn(move || l2.release(t)).join().unwrap();
        let t2 = lock.try_acquire(NodeId(0)).expect("released remotely");
        lock.release(t2);
    }

    #[test]
    fn fifo_order_two_waiters() {
        // One holder, two queued contenders: they must enter in queue
        // order. We detect order by recording entry sequence.
        let lock = Arc::new(McsLock::new());
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let t = lock.acquire(NodeId(0));
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for i in 0..2 {
                let lock = Arc::clone(&lock);
                let order = Arc::clone(&order);
                handles.push(s.spawn(move || {
                    let g = lock.lock();
                    order.lock().unwrap().push(i);
                    drop(g);
                }));
                // Give thread i time to enqueue before spawning i+1 so the
                // queue order is deterministic.
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            lock.release(t);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1]);
    }
}

//! A reactive lock (Lim & Agarwal, ASPLOS-VI) — the paper's §3
//! "alternative approaches" baseline, provided as an extension.
//!
//! "Reactive algorithms will dynamically switch among several software
//! lock implementations. Typically, spin locks (TATAS_EXP) are used
//! during the low-contention phase, and queue-based locks (MCS) are used
//! during the high-contention phase."
//!
//! # Protocol
//!
//! The lock embeds both a [`TatasExpLock`] and an [`McsLock`] plus a
//! `mode` word. An acquirer reads the mode, acquires that protocol's
//! lock, then *verifies* the mode has not changed; on mismatch it
//! releases and retries. The mode is only ever written by a verified
//! holder at release time, which makes the verified holder unique:
//!
//! * two verified holders would require `mode == Spin` (observed under
//!   the TATAS lock) and `mode == Queue` (observed under the MCS lock)
//!   simultaneously — impossible for a single word;
//! * a holder that flips the mode does so *before* releasing its
//!   protocol lock, so any thread that slipped into the other protocol's
//!   lock early fails verification and retires.
//!
//! # Policy
//!
//! The holder tracks contention signals it can observe for free: failed
//! fast-path attempts (spin mode) switch the lock toward the queue;
//! releases that find the queue empty switch it back toward spinning.
//! Both thresholds are tunable via [`ReactiveConfig`].

use std::sync::atomic::{AtomicUsize, Ordering};

use nuca_topology::NodeId;

use crate::lock::NucaLock;
use crate::mcs::{McsLock, McsToken};
use crate::pad::CachePadded;
use crate::tatas::{TatasExpLock, TatasToken};

const MODE_SPIN: usize = 0;
const MODE_QUEUE: usize = 1;

/// Tunables for the reactive switching policy.
///
/// # Example
///
/// ```
/// use hbo_locks::ReactiveConfig;
/// let cfg = ReactiveConfig { to_queue_threshold: 4, ..ReactiveConfig::default() };
/// assert_eq!(cfg.to_queue_threshold, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactiveConfig {
    /// Contention score (contended acquisitions count +1, uncontended
    /// -1, floored at 0) at which spin mode switches to the queue
    /// protocol.
    pub to_queue_threshold: usize,
    /// Quiescence score (successor-free releases count +1, busy releases
    /// -1, floored at 0) at which queue mode switches back to spinning.
    pub to_spin_threshold: usize,
}

impl Default for ReactiveConfig {
    fn default() -> Self {
        ReactiveConfig {
            to_queue_threshold: 8,
            to_spin_threshold: 16,
        }
    }
}

/// Proof that a [`ReactiveLock`] is held; remembers which protocol won.
#[derive(Debug)]
pub struct ReactiveToken {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    Spin(TatasToken),
    Queue(McsToken),
}

/// A lock that adapts its protocol to the contention level.
///
/// # Example
///
/// ```
/// use hbo_locks::{NucaLockExt, ReactiveLock};
/// let lock = ReactiveLock::new();
/// let g = lock.lock();
/// drop(g);
/// ```
#[derive(Debug)]
pub struct ReactiveLock {
    mode: CachePadded<AtomicUsize>,
    spin: TatasExpLock,
    queue: McsLock,
    /// Threads currently inside `acquire` (the contention signal the
    /// release-time policy samples).
    waiters: CachePadded<AtomicUsize>,
    /// Contention score for spin mode (written by verified holders only).
    hot_streak: AtomicUsize,
    /// Quiescence score for queue mode.
    cold_streak: AtomicUsize,
    cfg: ReactiveConfig,
}

impl Default for ReactiveLock {
    fn default() -> Self {
        ReactiveLock::new()
    }
}

impl ReactiveLock {
    /// Creates a free lock starting in spin mode.
    pub fn new() -> ReactiveLock {
        ReactiveLock::with_config(ReactiveConfig::default())
    }

    /// Creates a free lock with an explicit switching policy.
    pub fn with_config(cfg: ReactiveConfig) -> ReactiveLock {
        ReactiveLock {
            mode: CachePadded::new(AtomicUsize::new(MODE_SPIN)),
            spin: TatasExpLock::new(),
            queue: McsLock::new(),
            waiters: CachePadded::new(AtomicUsize::new(0)),
            hot_streak: AtomicUsize::new(0),
            cold_streak: AtomicUsize::new(0),
            cfg,
        }
    }

    /// Number of threads currently inside [`NucaLock::acquire`] — the
    /// same signal the switching policy samples. Inherently racy;
    /// intended for observability and tests.
    pub fn waiting_threads(&self) -> usize {
        self.waiters.load(Ordering::Relaxed)
    }

    /// The protocol currently in force (`"spin"` or `"queue"`), for
    /// observability; may be stale by the time the caller looks at it.
    pub fn current_mode(&self) -> &'static str {
        if self.mode.load(Ordering::Relaxed) == MODE_SPIN {
            "spin"
        } else {
            "queue"
        }
    }
}

impl NucaLock for ReactiveLock {
    type Token = ReactiveToken;

    fn acquire(&self, node: NodeId) -> ReactiveToken {
        self.waiters.fetch_add(1, Ordering::Relaxed);
        let token = loop {
            let mode = self.mode.load(Ordering::Acquire);
            if mode == MODE_SPIN {
                let token = self.spin.acquire(node);
                if self.mode.load(Ordering::Acquire) == MODE_SPIN {
                    break ReactiveToken {
                        inner: Inner::Spin(token),
                    };
                }
                self.spin.release(token);
            } else {
                let token = self.queue.acquire(node);
                if self.mode.load(Ordering::Acquire) == MODE_QUEUE {
                    break ReactiveToken {
                        inner: Inner::Queue(token),
                    };
                }
                self.queue.release(token);
            }
        };
        self.waiters.fetch_sub(1, Ordering::Relaxed);
        token
    }

    fn try_acquire(&self, node: NodeId) -> Option<ReactiveToken> {
        let mode = self.mode.load(Ordering::Acquire);
        let token = if mode == MODE_SPIN {
            ReactiveToken {
                inner: Inner::Spin(self.spin.try_acquire(node)?),
            }
        } else {
            ReactiveToken {
                inner: Inner::Queue(self.queue.try_acquire(node)?),
            }
        };
        if self.mode.load(Ordering::Acquire) == mode {
            Some(token)
        } else {
            // Verification failed; undo and report busy.
            self.release(token);
            None
        }
    }

    fn release(&self, token: ReactiveToken) {
        // Policy input: how many threads are inside `acquire` right now.
        let waiting = self.waiters.load(Ordering::Relaxed);
        match token.inner {
            Inner::Spin(t) => {
                // Saturating up/down score so a single quiet release does
                // not erase accumulated evidence of contention. Updated by
                // the verified holder only, so plain store suffices.
                let prev = self.hot_streak.load(Ordering::Relaxed);
                let streak = if waiting > 0 {
                    prev + 1
                } else {
                    prev.saturating_sub(1)
                };
                self.hot_streak.store(streak, Ordering::Relaxed);
                if streak >= self.cfg.to_queue_threshold {
                    self.hot_streak.store(0, Ordering::Relaxed);
                    self.cold_streak.store(0, Ordering::Relaxed);
                    // Flip while still holding the spin lock: latecomers
                    // verifying against MODE_QUEUE will requeue properly.
                    self.mode.store(MODE_QUEUE, Ordering::Release);
                }
                self.spin.release(t);
            }
            Inner::Queue(t) => {
                let prev = self.cold_streak.load(Ordering::Relaxed);
                let streak = if waiting == 0 {
                    prev + 1
                } else {
                    prev.saturating_sub(1)
                };
                self.cold_streak.store(streak, Ordering::Relaxed);
                if streak >= self.cfg.to_spin_threshold {
                    self.cold_streak.store(0, Ordering::Relaxed);
                    self.hot_streak.store(0, Ordering::Relaxed);
                    // Flip before releasing the queue lock (see module
                    // docs for why this preserves mutual exclusion).
                    self.mode.store(MODE_SPIN, Ordering::Release);
                }
                self.queue.release(t);
            }
        }
    }

    fn name(&self) -> &'static str {
        "REACTIVE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn starts_in_spin_mode() {
        let lock = ReactiveLock::new();
        assert_eq!(lock.current_mode(), "spin");
        let t = lock.acquire(NodeId(0));
        lock.release(t);
        assert_eq!(lock.current_mode(), "spin", "uncontended stays spin");
    }

    #[test]
    fn try_acquire_semantics() {
        let lock = ReactiveLock::new();
        let t = lock.try_acquire(NodeId(0)).expect("free");
        assert!(lock.try_acquire(NodeId(0)).is_none());
        lock.release(t);
    }

    #[test]
    fn mutual_exclusion_across_mode_switches() {
        // Aggressive thresholds force frequent protocol switches while
        // four threads hammer: any double-hold loses updates.
        let lock = Arc::new(ReactiveLock::with_config(ReactiveConfig {
            to_queue_threshold: 2,
            to_spin_threshold: 2,
        }));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for i in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..4_000 {
                        let t = lock.acquire(NodeId(i % 2));
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.release(t);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16_000);
    }

    #[test]
    fn sustained_contention_switches_to_queue() {
        // Deterministic contention: the holder releases only once another
        // thread is provably inside `acquire`, so the release-time policy
        // must observe a waiter and (threshold 1) flip the protocol.
        let lock = Arc::new(ReactiveLock::with_config(ReactiveConfig {
            to_queue_threshold: 1,
            to_spin_threshold: 1_000_000,
        }));
        let t = lock.acquire(NodeId(0));
        let t2 = std::thread::scope(|s| {
            let lock2 = Arc::clone(&lock);
            let h = s.spawn(move || lock2.acquire(NodeId(1)));
            while lock.waiting_threads() == 0 {
                std::thread::yield_now();
            }
            lock.release(t);
            h.join().unwrap()
        });
        assert_eq!(lock.current_mode(), "queue");
        lock.release(t2);
        // And the lock still works in queue mode under real contention.
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..4_000 {
                        let t = lock.acquire(NodeId(0));
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.release(t);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16_000);
    }

    #[test]
    fn quiescence_switches_back_to_spin() {
        let lock = ReactiveLock::with_config(ReactiveConfig {
            to_queue_threshold: 1,
            to_spin_threshold: 4,
        });
        // Force queue mode via a contended acquisition: wait until the
        // helper is provably inside `acquire` before releasing.
        let t = lock.acquire(NodeId(0));
        let t2 = std::thread::scope(|s| {
            let h = s.spawn(|| lock.acquire(NodeId(1)));
            while lock.waiting_threads() == 0 {
                std::thread::yield_now();
            }
            lock.release(t);
            h.join().unwrap()
        });
        lock.release(t2);
        assert_eq!(lock.current_mode(), "queue");
        // A string of solo acquisitions cools it down.
        for _ in 0..8 {
            let t = lock.acquire(NodeId(0));
            lock.release(t);
        }
        assert_eq!(lock.current_mode(), "spin");
    }
}

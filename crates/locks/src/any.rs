//! Runtime-selectable lock algorithm: [`LockKind`] and [`AnyLock`].
//!
//! Benchmarks and experiments iterate the lock registry
//! ([`crate::LockCatalog`]); `AnyLock` gives them a single concrete type
//! to do it with, at the cost of one `match` per operation. `LockKind`
//! itself carries no metadata — names, families, years and capability
//! flags live in the catalog, which every method here delegates to.

use std::fmt;
use std::sync::Arc;

use nuca_topology::{NodeId, Topology};

use crate::registry::LockCatalog;
use crate::{
    ClhLock, ClhToken, CnaLock, CnaToken, GtContext, HboGtLock, HboGtSdConfig, HboGtSdLock,
    HboGtSdToken, HboGtToken, HboLock, HboToken, HierHboLock, HierHboToken, LevelBackoff,
    LockFamily, McsLock, McsToken, NucaLock, RecipLock, RecipToken, RhLock, RhToken,
    TatasExpLock, TatasLock, TatasToken, TicketLock, TicketToken, TwaLock, TwaToken,
};

/// A registered locking algorithm. Variant order mirrors the catalog's
/// registration order: the paper's eight, the library extensions, then
/// the post-2003 contenders.
///
/// # Example
///
/// ```
/// use hbo_locks::{LockCatalog, LockKind};
/// assert!(LockCatalog::kinds().len() >= 13);
/// assert_eq!(LockKind::HboGtSd.as_str(), "HBO_GT_SD");
/// assert_eq!("CNA".parse::<LockKind>().unwrap(), LockKind::Cna);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockKind {
    /// Traditional test-and-test&set.
    Tatas,
    /// TATAS with exponential backoff.
    TatasExp,
    /// Mellor-Crummey & Scott queue lock.
    Mcs,
    /// Craig / Landin & Hagersten queue lock.
    Clh,
    /// The 2-node proof-of-concept NUCA lock.
    Rh,
    /// Hierarchical backoff lock.
    Hbo,
    /// HBO with global traffic throttling.
    HboGt,
    /// HBO_GT with starvation detection.
    HboGtSd,
    /// FIFO ticket lock with proportional backoff.
    Ticket,
    /// Multi-level HBO (the paper's "expand hierarchically" remark).
    Hier,
    /// Compact NUMA-aware MCS variant (secondary-queue splicing).
    Cna,
    /// Ticket lock with a hashed waiting array.
    Twa,
    /// Reciprocating lock (palindromic admission segments).
    Recip,
}

impl LockKind {
    /// The canonical display name (from the catalog).
    pub fn as_str(self) -> &'static str {
        LockCatalog::info(self).name
    }

    /// Whether this algorithm exploits NUCA node locality.
    pub fn is_nuca_aware(self) -> bool {
        LockCatalog::info(self).nuca_aware
    }

    /// Whether this algorithm guarantees FIFO order.
    pub fn is_fifo(self) -> bool {
        LockCatalog::info(self).fifo
    }

    /// Whether waiters take an explicit queue position (the catalog's
    /// `queue` family).
    pub fn is_queue_lock(self) -> bool {
        LockCatalog::info(self).family == LockFamily::Queue
    }

    /// Instantiates a fresh lock of this kind for a machine with `nodes`
    /// NUCA nodes. HBO_GT/HBO_GT_SD receive a *private* throttling context
    /// so experiments do not interfere.
    pub fn instantiate(self, nodes: usize) -> AnyLock {
        match self {
            LockKind::Tatas => AnyLock::Tatas(TatasLock::new()),
            LockKind::TatasExp => AnyLock::TatasExp(TatasExpLock::new()),
            LockKind::Mcs => AnyLock::Mcs(McsLock::new()),
            LockKind::Clh => AnyLock::Clh(ClhLock::new()),
            LockKind::Rh => AnyLock::Rh(RhLock::new()),
            LockKind::Hbo => AnyLock::Hbo(HboLock::new()),
            LockKind::HboGt => AnyLock::HboGt(HboGtLock::with_context(GtContext::new(
                nodes.max(1),
            ))),
            LockKind::HboGtSd => AnyLock::HboGtSd(HboGtSdLock::with_config(
                GtContext::new(nodes.max(1)),
                HboGtSdConfig::default(),
            )),
            LockKind::Ticket => AnyLock::Ticket(TicketLock::new()),
            // Distance classes: same CPU, same node, cross node.
            LockKind::Hier => AnyLock::Hier(HierHboLock::new(
                Arc::new(Topology::symmetric(nodes.max(1), 2)),
                LevelBackoff::geometric(3, 32, 1024, 4),
            )),
            LockKind::Cna => AnyLock::Cna(CnaLock::new()),
            LockKind::Twa => AnyLock::Twa(TwaLock::new()),
            LockKind::Recip => AnyLock::Recip(RecipLock::new()),
        }
    }
}

impl fmt::Display for LockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing an unknown lock name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLockKindError(String);

impl ParseLockKindError {
    pub(crate) fn new(name: &str) -> ParseLockKindError {
        ParseLockKindError(name.to_owned())
    }
}

impl fmt::Display for ParseLockKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown lock kind `{}`", self.0)
    }
}

impl std::error::Error for ParseLockKindError {}

impl std::str::FromStr for LockKind {
    type Err = ParseLockKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        LockCatalog::parse(s)
    }
}

/// A lock whose algorithm is chosen at runtime.
///
/// # Example
///
/// ```
/// use hbo_locks::{LockCatalog, NucaLock};
/// use nuca_topology::NodeId;
///
/// for &kind in LockCatalog::kinds() {
///     let lock = kind.instantiate(2);
///     let t = lock.acquire(NodeId(0));
///     lock.release(t);
/// }
/// ```
// Variant sizes differ (RH carries two padded lock copies); boxing the
// large variants would put a pointer chase on the lock fast path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum AnyLock {
    /// TATAS.
    Tatas(TatasLock),
    /// TATAS_EXP.
    TatasExp(TatasExpLock),
    /// MCS.
    Mcs(McsLock),
    /// CLH.
    Clh(ClhLock),
    /// RH.
    Rh(RhLock),
    /// HBO.
    Hbo(HboLock),
    /// HBO_GT.
    HboGt(HboGtLock),
    /// HBO_GT_SD.
    HboGtSd(HboGtSdLock),
    /// TICKET.
    Ticket(TicketLock),
    /// HIER.
    Hier(HierHboLock),
    /// CNA.
    Cna(CnaLock),
    /// TWA.
    Twa(TwaLock),
    /// RECIP.
    Recip(RecipLock),
}

/// Token for [`AnyLock`], mirroring its variants.
#[derive(Debug)]
pub enum AnyToken {
    /// TATAS.
    Tatas(TatasToken),
    /// TATAS_EXP.
    TatasExp(TatasToken),
    /// MCS.
    Mcs(McsToken),
    /// CLH.
    Clh(ClhToken),
    /// RH.
    Rh(RhToken),
    /// HBO.
    Hbo(HboToken),
    /// HBO_GT.
    HboGt(HboGtToken),
    /// HBO_GT_SD.
    HboGtSd(HboGtSdToken),
    /// TICKET.
    Ticket(TicketToken),
    /// HIER.
    Hier(HierHboToken),
    /// CNA.
    Cna(CnaToken),
    /// TWA.
    Twa(TwaToken),
    /// RECIP.
    Recip(RecipToken),
}

impl AnyLock {
    /// The kind of the contained algorithm.
    pub fn kind(&self) -> LockKind {
        match self {
            AnyLock::Tatas(_) => LockKind::Tatas,
            AnyLock::TatasExp(_) => LockKind::TatasExp,
            AnyLock::Mcs(_) => LockKind::Mcs,
            AnyLock::Clh(_) => LockKind::Clh,
            AnyLock::Rh(_) => LockKind::Rh,
            AnyLock::Hbo(_) => LockKind::Hbo,
            AnyLock::HboGt(_) => LockKind::HboGt,
            AnyLock::HboGtSd(_) => LockKind::HboGtSd,
            AnyLock::Ticket(_) => LockKind::Ticket,
            AnyLock::Hier(_) => LockKind::Hier,
            AnyLock::Cna(_) => LockKind::Cna,
            AnyLock::Twa(_) => LockKind::Twa,
            AnyLock::Recip(_) => LockKind::Recip,
        }
    }

    /// Convenience: a shared, runtime-chosen lock.
    pub fn shared(kind: LockKind, nodes: usize) -> Arc<AnyLock> {
        Arc::new(kind.instantiate(nodes))
    }
}

impl NucaLock for AnyLock {
    type Token = AnyToken;

    fn acquire(&self, node: NodeId) -> AnyToken {
        match self {
            AnyLock::Tatas(l) => AnyToken::Tatas(l.acquire(node)),
            AnyLock::TatasExp(l) => AnyToken::TatasExp(l.acquire(node)),
            AnyLock::Mcs(l) => AnyToken::Mcs(l.acquire(node)),
            AnyLock::Clh(l) => AnyToken::Clh(l.acquire(node)),
            AnyLock::Rh(l) => AnyToken::Rh(l.acquire(node)),
            AnyLock::Hbo(l) => AnyToken::Hbo(l.acquire(node)),
            AnyLock::HboGt(l) => AnyToken::HboGt(l.acquire(node)),
            AnyLock::HboGtSd(l) => AnyToken::HboGtSd(l.acquire(node)),
            AnyLock::Ticket(l) => AnyToken::Ticket(l.acquire(node)),
            AnyLock::Hier(l) => AnyToken::Hier(l.acquire(node)),
            AnyLock::Cna(l) => AnyToken::Cna(l.acquire(node)),
            AnyLock::Twa(l) => AnyToken::Twa(l.acquire(node)),
            AnyLock::Recip(l) => AnyToken::Recip(l.acquire(node)),
        }
    }

    fn try_acquire(&self, node: NodeId) -> Option<AnyToken> {
        Some(match self {
            AnyLock::Tatas(l) => AnyToken::Tatas(l.try_acquire(node)?),
            AnyLock::TatasExp(l) => AnyToken::TatasExp(l.try_acquire(node)?),
            AnyLock::Mcs(l) => AnyToken::Mcs(l.try_acquire(node)?),
            AnyLock::Clh(l) => AnyToken::Clh(l.try_acquire(node)?),
            AnyLock::Rh(l) => AnyToken::Rh(l.try_acquire(node)?),
            AnyLock::Hbo(l) => AnyToken::Hbo(l.try_acquire(node)?),
            AnyLock::HboGt(l) => AnyToken::HboGt(l.try_acquire(node)?),
            AnyLock::HboGtSd(l) => AnyToken::HboGtSd(l.try_acquire(node)?),
            AnyLock::Ticket(l) => AnyToken::Ticket(l.try_acquire(node)?),
            AnyLock::Hier(l) => AnyToken::Hier(l.try_acquire(node)?),
            AnyLock::Cna(l) => AnyToken::Cna(l.try_acquire(node)?),
            AnyLock::Twa(l) => AnyToken::Twa(l.try_acquire(node)?),
            AnyLock::Recip(l) => AnyToken::Recip(l.try_acquire(node)?),
        })
    }

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Panics if `token` came from a different algorithm than this lock
    /// holds — which can only happen by mixing tokens across locks,
    /// violating the [`NucaLock`] contract.
    fn release(&self, token: AnyToken) {
        match (self, token) {
            (AnyLock::Tatas(l), AnyToken::Tatas(t)) => l.release(t),
            (AnyLock::TatasExp(l), AnyToken::TatasExp(t)) => l.release(t),
            (AnyLock::Mcs(l), AnyToken::Mcs(t)) => l.release(t),
            (AnyLock::Clh(l), AnyToken::Clh(t)) => l.release(t),
            (AnyLock::Rh(l), AnyToken::Rh(t)) => l.release(t),
            (AnyLock::Hbo(l), AnyToken::Hbo(t)) => l.release(t),
            (AnyLock::HboGt(l), AnyToken::HboGt(t)) => l.release(t),
            (AnyLock::HboGtSd(l), AnyToken::HboGtSd(t)) => l.release(t),
            (AnyLock::Ticket(l), AnyToken::Ticket(t)) => l.release(t),
            (AnyLock::Hier(l), AnyToken::Hier(t)) => l.release(t),
            (AnyLock::Cna(l), AnyToken::Cna(t)) => l.release(t),
            (AnyLock::Twa(l), AnyToken::Twa(t)) => l.release(t),
            (AnyLock::Recip(l), AnyToken::Recip(t)) => l.release(t),
            (lock, token) => panic!(
                "token {token:?} does not belong to a {} lock",
                lock.kind()
            ),
        }
    }

    fn name(&self) -> &'static str {
        self.kind().as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn all_kinds_roundtrip() {
        for &kind in LockCatalog::kinds() {
            let lock = kind.instantiate(2);
            assert_eq!(lock.kind(), kind);
            assert_eq!(lock.name(), kind.as_str());
            let t = lock.acquire(NodeId(0));
            lock.release(t);
            // RH's try_acquire deliberately refuses to migrate the lock
            // across nodes, so re-try from the node that just held it.
            let t = lock.try_acquire(NodeId(0)).expect("free after release");
            lock.release(t);
            let t = lock.acquire(NodeId(1));
            lock.release(t);
        }
    }

    #[test]
    fn parse_roundtrip() {
        for &kind in LockCatalog::kinds() {
            assert_eq!(kind.as_str().parse::<LockKind>().unwrap(), kind);
            assert_eq!(
                kind.as_str().to_lowercase().parse::<LockKind>().unwrap(),
                kind
            );
        }
        assert!("QOLB".parse::<LockKind>().is_err());
    }

    #[test]
    fn classification_matches_catalog() {
        assert!(LockKind::HboGtSd.is_nuca_aware());
        assert!(LockKind::Rh.is_nuca_aware());
        assert!(LockKind::Cna.is_nuca_aware());
        assert!(!LockKind::Mcs.is_nuca_aware());
        assert!(!LockKind::Twa.is_nuca_aware());
        assert!(LockKind::Mcs.is_queue_lock());
        assert!(LockKind::Clh.is_queue_lock());
        assert!(LockKind::Twa.is_queue_lock());
        assert!(!LockKind::Hbo.is_queue_lock());
        assert!(!LockKind::Cna.is_queue_lock(), "CNA is hybrid, not queue");
        assert!(LockKind::Twa.is_fifo());
        assert!(!LockKind::Recip.is_fifo());
        // The paper's NUCA-aware set is a strict subset of today's.
        for kind in [LockKind::Rh, LockKind::Hbo, LockKind::HboGt, LockKind::HboGtSd] {
            assert!(LockCatalog::nuca_aware().contains(&kind));
        }
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn mixed_token_panics() {
        let a = LockKind::Tatas.instantiate(2);
        let b = LockKind::Hbo.instantiate(2);
        let t = b.acquire(NodeId(0));
        a.release(t);
    }

    #[test]
    fn contention_every_kind() {
        for &kind in LockCatalog::kinds() {
            let lock = AnyLock::shared(kind, 2);
            let counter = Arc::new(AtomicU64::new(0));
            std::thread::scope(|s| {
                for i in 0..3 {
                    let lock = Arc::clone(&lock);
                    let counter = Arc::clone(&counter);
                    s.spawn(move || {
                        for _ in 0..5_000 {
                            let t = lock.acquire(NodeId(i % 2));
                            let v = counter.load(Ordering::Relaxed);
                            counter.store(v + 1, Ordering::Relaxed);
                            lock.release(t);
                        }
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 15_000, "{kind}");
        }
    }
}

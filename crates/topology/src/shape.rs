//! The shape of a NUCA machine: nodes, CPUs, and deeper hierarchy levels.

use std::error::Error;
use std::fmt;

use crate::{CpuId, NodeId};

/// Error produced when constructing an invalid [`Topology`].
///
/// # Example
///
/// ```
/// use nuca_topology::{Topology, TopologyError};
/// let err = Topology::try_symmetric(0, 4).unwrap_err();
/// assert!(matches!(err, TopologyError::NoNodes));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The topology had zero nodes.
    NoNodes,
    /// A node had zero CPUs.
    EmptyNode(NodeId),
    /// A hierarchy level had arity zero.
    ZeroArity {
        /// Index of the offending level, 0 = outermost.
        level: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoNodes => write!(f, "topology must have at least one node"),
            TopologyError::EmptyNode(n) => write!(f, "{n} has no CPUs"),
            TopologyError::ZeroArity { level } => {
                write!(f, "hierarchy level {level} has arity zero")
            }
        }
    }
}

impl Error for TopologyError {}

/// Description of a NUCA machine: which CPUs exist and how they group into
/// nodes (and, optionally, deeper levels such as CMP chips within NUMA
/// nodes).
///
/// A `Topology` is immutable once built. The common case is a *symmetric*
/// machine — `n` nodes with `k` CPUs each — built with
/// [`Topology::symmetric`]. Asymmetric machines (the paper's 16 + 14
/// WildFire prototype) are built with [`TopologyBuilder`].
///
/// # Example
///
/// ```
/// use nuca_topology::{Topology, CpuId, NodeId};
///
/// // The paper's Sun WildFire: two E6000 cabinets, 14 CPUs used per node.
/// let wildfire = Topology::symmetric(2, 14);
/// assert_eq!(wildfire.num_nodes(), 2);
/// assert_eq!(wildfire.cpus_of(NodeId(1)).count(), 14);
///
/// // The asymmetric 16 + 14 prototype.
/// let proto = Topology::builder().node(16).node(14).build()?;
/// assert_eq!(proto.num_cpus(), 30);
/// assert_eq!(proto.node_of(CpuId(16)), NodeId(1));
/// # Ok::<(), nuca_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// `cpu_node[c]` is the node that CPU `c` belongs to.
    cpu_node: Vec<NodeId>,
    /// `node_cpus[n]` is the ordered list of CPU ids in node `n`.
    node_cpus: Vec<Vec<CpuId>>,
    /// Optional deeper hierarchy: for each CPU, its coordinate per level
    /// (level 0 = NUCA node, level 1 = e.g. CMP chip within the node, ...).
    /// Empty when the machine has a single level of nonuniformity.
    levels: Vec<Vec<usize>>,
}

impl Topology {
    /// Creates a symmetric topology with `nodes` nodes of `cpus_per_node`
    /// CPUs each.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `cpus_per_node == 0`; use
    /// [`Topology::try_symmetric`] for a fallible version.
    pub fn symmetric(nodes: usize, cpus_per_node: usize) -> Topology {
        Topology::try_symmetric(nodes, cpus_per_node).expect("invalid symmetric topology")
    }

    /// Fallible version of [`Topology::symmetric`].
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoNodes`] if `nodes == 0` and
    /// [`TopologyError::EmptyNode`] if `cpus_per_node == 0`.
    pub fn try_symmetric(nodes: usize, cpus_per_node: usize) -> Result<Topology, TopologyError> {
        let mut b = Topology::builder();
        if nodes == 0 {
            return Err(TopologyError::NoNodes);
        }
        for _ in 0..nodes {
            b = b.node(cpus_per_node);
        }
        b.build()
    }

    /// Creates a single-node topology (a UMA machine like the Sun E6000).
    ///
    /// All NUCA-aware locks degenerate gracefully on such a machine: every
    /// contender observes the holder as a neighbor.
    pub fn single_node(cpus: usize) -> Topology {
        Topology::symmetric(1, cpus)
    }

    /// Starts building an asymmetric or hierarchical topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::new()
    }

    /// Number of NUCA nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_cpus.len()
    }

    /// Total number of CPUs.
    pub fn num_cpus(&self) -> usize {
        self.cpu_node.len()
    }

    /// The node that `cpu` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn node_of(&self, cpu: CpuId) -> NodeId {
        self.cpu_node[cpu.index()]
    }

    /// Iterator over the CPUs of `node`, in increasing id order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn cpus_of(&self, node: NodeId) -> impl Iterator<Item = CpuId> + '_ {
        self.node_cpus[node.index()].iter().copied()
    }

    /// Iterator over all CPU ids.
    pub fn cpus(&self) -> impl Iterator<Item = CpuId> {
        (0..self.num_cpus()).map(CpuId)
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes()).map(NodeId)
    }

    /// Whether two CPUs share a NUCA node.
    pub fn same_node(&self, a: CpuId, b: CpuId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Number of hierarchy levels below the node level (0 for a flat,
    /// single-level NUCA).
    pub fn extra_levels(&self) -> usize {
        self.levels.len()
    }

    /// The *communication distance* between two CPUs: 0 if they are the same
    /// CPU, 1 if they share the innermost group at every level, up to
    /// `extra_levels() + 1` if they are in different NUCA nodes.
    ///
    /// Hierarchical locks use this to pick per-level backoff constants: the
    /// paper notes the HBO scheme "can be expanded in a hierarchical way,
    /// using more than two sets of constants, for a hierarchical NUCA".
    pub fn distance(&self, a: CpuId, b: CpuId) -> usize {
        if a == b {
            return 0;
        }
        if self.node_of(a) != self.node_of(b) {
            return self.extra_levels() + 2;
        }
        // Same node: find the innermost level at which they diverge.
        for (i, level) in self.levels.iter().enumerate() {
            if level[a.index()] != level[b.index()] {
                // Diverge at level i (0 = coarsest below node).
                return self.extra_levels() + 1 - i;
            }
        }
        1
    }

    /// Assigns CPUs to `threads` thread slots round-robin across nodes, the
    /// binding the paper uses for its microbenchmarks ("round-robin
    /// scheduling for thread binding to different cabinets").
    ///
    /// Thread 0 gets the first CPU of node 0, thread 1 the first CPU of node
    /// 1, and so on, wrapping around nodes. Returns one `CpuId` per thread.
    ///
    /// # Panics
    ///
    /// Panics if `threads` exceeds [`Topology::num_cpus`].
    pub fn round_robin_binding(&self, threads: usize) -> Vec<CpuId> {
        assert!(
            threads <= self.num_cpus(),
            "cannot bind {threads} threads to {} cpus",
            self.num_cpus()
        );
        let mut cursors = vec![0usize; self.num_nodes()];
        let mut out = Vec::with_capacity(threads);
        let mut node = 0usize;
        while out.len() < threads {
            let cpus = &self.node_cpus[node];
            if cursors[node] < cpus.len() {
                out.push(cpus[cursors[node]]);
                cursors[node] += 1;
            }
            node = (node + 1) % self.num_nodes();
        }
        out
    }

    /// Assigns CPUs to `threads` thread slots filling each node before
    /// moving to the next (block binding).
    ///
    /// # Panics
    ///
    /// Panics if `threads` exceeds [`Topology::num_cpus`].
    pub fn block_binding(&self, threads: usize) -> Vec<CpuId> {
        assert!(
            threads <= self.num_cpus(),
            "cannot bind {threads} threads to {} cpus",
            self.num_cpus()
        );
        self.cpus().take(threads).collect()
    }
}

/// Incremental builder for [`Topology`] values.
///
/// # Example
///
/// ```
/// use nuca_topology::Topology;
///
/// // Two NUMA nodes, each holding two 4-thread CMP chips: a hierarchical
/// // NUCA with an extra level below the node level.
/// let t = Topology::builder()
///     .hierarchical_node(&[2, 4])
///     .hierarchical_node(&[2, 4])
///     .build()?;
/// assert_eq!(t.num_cpus(), 16);
/// assert_eq!(t.extra_levels(), 1);
/// # Ok::<(), nuca_topology::TopologyError>(())
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<NodeSpec>,
}

#[derive(Debug)]
enum NodeSpec {
    Flat(usize),
    /// Arities per extra level, innermost last; total CPUs = product.
    Hier(Vec<usize>),
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Adds a flat node with `cpus` CPUs.
    #[must_use]
    pub fn node(mut self, cpus: usize) -> TopologyBuilder {
        self.nodes.push(NodeSpec::Flat(cpus));
        self
    }

    /// Adds a hierarchical node: `arities[0]` groups, each split into
    /// `arities[1]` sub-groups, and so on; the innermost arity is the number
    /// of CPUs per innermost group.
    ///
    /// All hierarchical nodes in one topology must use the same number of
    /// levels.
    #[must_use]
    pub fn hierarchical_node(mut self, arities: &[usize]) -> TopologyBuilder {
        self.nodes.push(NodeSpec::Hier(arities.to_vec()));
        self
    }

    /// Builds the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if no nodes were added, a node is empty, or
    /// a hierarchy arity is zero.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.nodes.is_empty() {
            return Err(TopologyError::NoNodes);
        }
        let extra_levels = self
            .nodes
            .iter()
            .map(|n| match n {
                NodeSpec::Flat(_) => 0,
                NodeSpec::Hier(a) => a.len().saturating_sub(1),
            })
            .max()
            .unwrap_or(0);

        let mut cpu_node = Vec::new();
        let mut node_cpus = Vec::new();
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); extra_levels];

        for (ni, spec) in self.nodes.iter().enumerate() {
            let node = NodeId(ni);
            let mut cpus_here = Vec::new();
            match spec {
                NodeSpec::Flat(n) => {
                    if *n == 0 {
                        return Err(TopologyError::EmptyNode(node));
                    }
                    for _ in 0..*n {
                        let cpu = CpuId(cpu_node.len());
                        cpu_node.push(node);
                        for level in levels.iter_mut() {
                            level.push(0);
                        }
                        cpus_here.push(cpu);
                    }
                }
                NodeSpec::Hier(arities) => {
                    if arities.is_empty() {
                        return Err(TopologyError::EmptyNode(node));
                    }
                    for (li, a) in arities.iter().enumerate() {
                        if *a == 0 {
                            return Err(TopologyError::ZeroArity { level: li });
                        }
                    }
                    let total: usize = arities.iter().product();
                    // The coordinates of each CPU within this node per level.
                    for idx in 0..total {
                        let cpu = CpuId(cpu_node.len());
                        cpu_node.push(node);
                        // Decompose idx into mixed-radix coordinates,
                        // outermost first; only the first `arities.len()-1`
                        // coordinates are group levels.
                        let mut rem = idx;
                        let mut coords = Vec::with_capacity(arities.len());
                        for a in arities.iter().rev() {
                            coords.push(rem % a);
                            rem /= a;
                        }
                        coords.reverse();
                        for (li, level) in levels.iter_mut().enumerate() {
                            let c = coords.get(li).copied().unwrap_or(0);
                            level.push(c);
                        }
                        cpus_here.push(cpu);
                    }
                }
            }
            node_cpus.push(cpus_here);
        }

        Ok(Topology {
            cpu_node,
            node_cpus,
            levels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_layout() {
        let t = Topology::symmetric(2, 14);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.num_cpus(), 28);
        assert_eq!(t.node_of(CpuId(0)), NodeId(0));
        assert_eq!(t.node_of(CpuId(13)), NodeId(0));
        assert_eq!(t.node_of(CpuId(14)), NodeId(1));
        assert_eq!(t.node_of(CpuId(27)), NodeId(1));
    }

    #[test]
    fn asymmetric_prototype() {
        // The paper's 16 + 14 WildFire prototype.
        let t = Topology::builder().node(16).node(14).build().unwrap();
        assert_eq!(t.num_cpus(), 30);
        assert_eq!(t.cpus_of(NodeId(0)).count(), 16);
        assert_eq!(t.cpus_of(NodeId(1)).count(), 14);
        assert_eq!(t.node_of(CpuId(15)), NodeId(0));
        assert_eq!(t.node_of(CpuId(16)), NodeId(1));
    }

    #[test]
    fn empty_topologies_rejected() {
        assert_eq!(
            Topology::builder().build().unwrap_err(),
            TopologyError::NoNodes
        );
        assert_eq!(
            Topology::builder().node(0).build().unwrap_err(),
            TopologyError::EmptyNode(NodeId(0))
        );
        assert_eq!(Topology::try_symmetric(3, 0).unwrap_err(), TopologyError::EmptyNode(NodeId(0)));
    }

    #[test]
    fn round_robin_alternates_nodes() {
        let t = Topology::symmetric(2, 4);
        let b = t.round_robin_binding(6);
        let nodes: Vec<usize> = b.iter().map(|c| t.node_of(*c).index()).collect();
        assert_eq!(nodes, vec![0, 1, 0, 1, 0, 1]);
        // All CPUs distinct.
        let mut sorted = b.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn round_robin_handles_asymmetry() {
        let t = Topology::builder().node(4).node(2).build().unwrap();
        let b = t.round_robin_binding(6);
        assert_eq!(b.len(), 6);
        let mut sorted = b.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "bindings must be distinct CPUs");
        // Node 1 only has 2 CPUs; the remaining threads must land on node 0.
        let n0 = b.iter().filter(|c| t.node_of(**c) == NodeId(0)).count();
        assert_eq!(n0, 4);
    }

    #[test]
    fn block_binding_fills_first_node_first() {
        let t = Topology::symmetric(2, 4);
        let b = t.block_binding(5);
        let nodes: Vec<usize> = b.iter().map(|c| t.node_of(*c).index()).collect();
        assert_eq!(nodes, vec![0, 0, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "cannot bind")]
    fn binding_too_many_threads_panics() {
        Topology::symmetric(2, 2).round_robin_binding(5);
    }

    #[test]
    fn hierarchical_distance() {
        // 2 NUMA nodes × (2 chips × 4 threads).
        let t = Topology::builder()
            .hierarchical_node(&[2, 4])
            .hierarchical_node(&[2, 4])
            .build()
            .unwrap();
        assert_eq!(t.extra_levels(), 1);
        assert_eq!(t.num_cpus(), 16);
        // Same CPU.
        assert_eq!(t.distance(CpuId(0), CpuId(0)), 0);
        // Same chip.
        assert_eq!(t.distance(CpuId(0), CpuId(3)), 1);
        // Same node, different chip.
        assert_eq!(t.distance(CpuId(0), CpuId(4)), 2);
        // Different node.
        assert_eq!(t.distance(CpuId(0), CpuId(8)), 3);
    }

    #[test]
    fn flat_distance() {
        let t = Topology::symmetric(2, 2);
        assert_eq!(t.distance(CpuId(0), CpuId(1)), 1);
        assert_eq!(t.distance(CpuId(0), CpuId(2)), 2);
    }

    #[test]
    fn single_node_is_uma() {
        let t = Topology::single_node(16);
        assert_eq!(t.num_nodes(), 1);
        assert!(t.same_node(CpuId(0), CpuId(15)));
    }

    #[test]
    fn iterators_cover_everything() {
        let t = Topology::symmetric(3, 5);
        assert_eq!(t.cpus().count(), 15);
        assert_eq!(t.nodes().count(), 3);
        let per_node: usize = t.nodes().map(|n| t.cpus_of(n).count()).sum();
        assert_eq!(per_node, 15);
    }
}

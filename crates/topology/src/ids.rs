//! Typed identifiers for processors and NUCA nodes.

use std::fmt;

/// Identifier of a NUCA node (a group of processors with fast mutual
/// cache-to-cache transfers, e.g. one Sun WildFire cabinet or one CMP chip).
///
/// `NodeId`s are dense indices `0..Topology::num_nodes()`.
///
/// # Example
///
/// ```
/// use nuca_topology::NodeId;
/// let n = NodeId(1);
/// assert_eq!(n.index(), 1);
/// assert_eq!(format!("{n}"), "node1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// Identifier of a single processor (hardware context).
///
/// `CpuId`s are dense indices `0..Topology::num_cpus()`; the topology maps
/// each CPU to the node it belongs to.
///
/// # Example
///
/// ```
/// use nuca_topology::CpuId;
/// let c = CpuId(27);
/// assert_eq!(c.index(), 27);
/// assert_eq!(format!("{c}"), "cpu27");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CpuId(pub usize);

impl CpuId {
    /// Returns the dense index of this CPU.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl From<usize> for CpuId {
    fn from(v: usize) -> Self {
        CpuId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n: NodeId = 3usize.into();
        assert_eq!(n.index(), 3);
        assert_eq!(n, NodeId(3));
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn cpu_id_roundtrip() {
        let c: CpuId = 7usize.into();
        assert_eq!(c.index(), 7);
        assert_eq!(c, CpuId(7));
        assert!(CpuId(0) < CpuId(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(0).to_string(), "node0");
        assert_eq!(CpuId(12).to_string(), "cpu12");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId(0));
        assert_eq!(CpuId::default(), CpuId(0));
    }

    #[test]
    fn hashable() {
        use std::collections::HashSet;
        let s: HashSet<NodeId> = [NodeId(0), NodeId(1), NodeId(0)].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}

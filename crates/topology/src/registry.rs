//! Thread-to-node registration.
//!
//! NUCA-aware locks need the `node_id` of the calling thread ("assuming
//! that the node_id information is easily accessible, e.g., it is stored in
//! a thread-private register" — HPCA 2003, §4.1). On SPARC the paper keeps
//! it in a register; in portable Rust we keep it in a thread-local that the
//! embedding application sets once per thread, typically right after
//! pinning the thread to a CPU.
//!
//! Registration is *explicit* rather than auto-detected: detection via
//! `sched_getcpu` would silently go stale when the OS migrates a thread,
//! whereas an explicit registry is deterministic, portable, and testable.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::{CpuId, NodeId, Topology};

thread_local! {
    static CURRENT_NODE: Cell<Option<NodeId>> = const { Cell::new(None) };
}

/// Registers the calling thread as running on `node` until the returned
/// [`RegistrationGuard`] is dropped (or [`register_thread`] is called
/// again).
///
/// # Example
///
/// ```
/// use nuca_topology::{register_thread, thread_node, NodeId};
///
/// let _guard = register_thread(NodeId(1));
/// assert_eq!(thread_node(), NodeId(1));
/// ```
pub fn register_thread(node: NodeId) -> RegistrationGuard {
    let previous = CURRENT_NODE.with(|c| c.replace(Some(node)));
    RegistrationGuard { previous }
}

/// Returns the node the calling thread registered as running on, or
/// [`NodeId`] `0` if the thread never registered.
///
/// Falling back to node 0 keeps NUCA-aware locks *correct* (they only use
/// the node id as an affinity hint) at the cost of treating unregistered
/// threads as neighbors.
pub fn thread_node() -> NodeId {
    CURRENT_NODE.with(|c| c.get()).unwrap_or(NodeId(0))
}

/// Returns the registered node of the calling thread, or `None` if the
/// thread never called [`register_thread`].
pub fn registered_node() -> Option<NodeId> {
    CURRENT_NODE.with(|c| c.get())
}

/// Restores the previous registration when dropped.
///
/// Guards nest: registering inside an outer registration restores the outer
/// node when the inner guard drops.
#[derive(Debug)]
pub struct RegistrationGuard {
    previous: Option<NodeId>,
}

impl Drop for RegistrationGuard {
    fn drop(&mut self) {
        CURRENT_NODE.with(|c| c.set(self.previous));
    }
}

/// Deterministic dispenser of CPU slots for a fixed [`Topology`], for test
/// harnesses and benchmarks that spawn one thread per simulated CPU.
///
/// Each call to [`ThreadRegistry::next_cpu`] hands out the next CPU of a
/// binding (round-robin across nodes by default) and the caller registers
/// the node with [`register_thread`].
///
/// # Example
///
/// ```
/// use nuca_topology::{ThreadRegistry, Topology};
///
/// let topo = Topology::symmetric(2, 2);
/// let reg = ThreadRegistry::round_robin(&topo);
/// let (cpu0, node0) = reg.next_cpu().expect("slots available");
/// let (cpu1, node1) = reg.next_cpu().expect("slots available");
/// assert_ne!(node0, node1, "round-robin alternates nodes");
/// assert_ne!(cpu0, cpu1);
/// ```
#[derive(Debug)]
pub struct ThreadRegistry {
    binding: Vec<CpuId>,
    nodes: Vec<NodeId>,
    cursor: AtomicUsize,
}

impl ThreadRegistry {
    /// Creates a registry handing out CPUs round-robin across nodes.
    pub fn round_robin(topo: &Topology) -> ThreadRegistry {
        ThreadRegistry::with_binding(topo, topo.round_robin_binding(topo.num_cpus()))
    }

    /// Creates a registry handing out CPUs filling node 0 first.
    pub fn block(topo: &Topology) -> ThreadRegistry {
        ThreadRegistry::with_binding(topo, topo.block_binding(topo.num_cpus()))
    }

    /// Creates a registry with an explicit binding order.
    pub fn with_binding(topo: &Topology, binding: Vec<CpuId>) -> ThreadRegistry {
        let nodes = binding.iter().map(|c| topo.node_of(*c)).collect();
        ThreadRegistry {
            binding,
            nodes,
            cursor: AtomicUsize::new(0),
        }
    }

    /// Hands out the next CPU slot, or `None` when all slots are taken.
    ///
    /// Thread-safe: concurrent callers receive distinct slots.
    pub fn next_cpu(&self) -> Option<(CpuId, NodeId)> {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        if i < self.binding.len() {
            Some((self.binding[i], self.nodes[i]))
        } else {
            None
        }
    }

    /// Number of slots handed out so far (saturating at capacity).
    pub fn claimed(&self) -> usize {
        self.cursor.load(Ordering::Relaxed).min(self.binding.len())
    }

    /// Total number of slots.
    pub fn capacity(&self) -> usize {
        self.binding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unregistered_thread_defaults_to_node0() {
        std::thread::spawn(|| {
            assert_eq!(thread_node(), NodeId(0));
            assert_eq!(registered_node(), None);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn registration_visible_and_restored() {
        std::thread::spawn(|| {
            {
                let _g = register_thread(NodeId(2));
                assert_eq!(thread_node(), NodeId(2));
                {
                    let _inner = register_thread(NodeId(5));
                    assert_eq!(thread_node(), NodeId(5));
                }
                assert_eq!(thread_node(), NodeId(2), "inner guard restores outer");
            }
            assert_eq!(registered_node(), None, "outer guard restores none");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn registry_hands_out_distinct_slots_concurrently() {
        let topo = Topology::symmetric(2, 8);
        let reg = ThreadRegistry::round_robin(&topo);
        let got = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        while let Some((cpu, _)) = reg.next_cpu() {
                            local.push(cpu);
                        }
                        local
                    })
                })
                .collect();
            let mut all: Vec<CpuId> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort();
            all
        });
        assert_eq!(got.len(), 16);
        let mut dedup = got.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 16, "no slot handed out twice");
        assert_eq!(reg.claimed(), 16);
        assert_eq!(reg.capacity(), 16);
    }

    #[test]
    fn registry_exhaustion_returns_none() {
        let topo = Topology::symmetric(1, 2);
        let reg = ThreadRegistry::block(&topo);
        assert!(reg.next_cpu().is_some());
        assert!(reg.next_cpu().is_some());
        assert!(reg.next_cpu().is_none());
        assert!(reg.next_cpu().is_none());
    }
}

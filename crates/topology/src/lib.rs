//! Machine topology description for nonuniform communication architectures.
//!
//! A *nonuniform communication architecture* (NUCA) is a shared-memory
//! machine in which the unloaded latency for a processor accessing data
//! recently modified by another processor differs by at least a factor of
//! two depending on where that processor is located (Radović & Hagersten,
//! HPCA 2003). Node-based CC-NUMA machines (Stanford DASH, Sequent NUMA-Q,
//! Sun WildFire, Compaq DS-320) and large servers built from chip
//! multiprocessors are NUCAs.
//!
//! This crate provides the vocabulary shared by the real-atomics lock
//! library (`hbo-locks`) and the machine simulator (`nucasim`):
//!
//! * [`NodeId`] / [`CpuId`] — typed identifiers for NUCA nodes and
//!   processors.
//! * [`Topology`] — the shape of a machine: how many nodes, which CPUs
//!   belong to which node, and (optionally) deeper hierarchy levels such as
//!   CMP chips inside NUMA nodes.
//! * [`ThreadRegistry`] / [`thread_node`] — an explicit, deterministic
//!   mapping from running threads to NUCA nodes, used by NUCA-aware locks to
//!   learn the `node_id` of the calling thread.
//!
//! # Example
//!
//! ```
//! use nuca_topology::{Topology, NodeId, CpuId};
//!
//! // A 2-node Sun WildFire-like machine with 14 CPUs per node.
//! let topo = Topology::symmetric(2, 14);
//! assert_eq!(topo.num_cpus(), 28);
//! assert_eq!(topo.node_of(CpuId(17)), NodeId(1));
//! assert!(topo.same_node(CpuId(0), CpuId(13)));
//! assert!(!topo.same_node(CpuId(0), CpuId(14)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ids;
mod registry;
mod shape;

pub use ids::{CpuId, NodeId};
pub use registry::{
    register_thread, registered_node, thread_node, RegistrationGuard, ThreadRegistry,
};
pub use shape::{Topology, TopologyBuilder, TopologyError};

//! The traditional microbenchmark (§5.2): a tight acquire-release loop,
//! "slightly modified" with the `last_owner` rule — after releasing, a
//! thread must observe a *different* owner in the critical section before
//! it may contend again (the last remaining thread is exempt so the run
//! terminates).

use std::sync::Arc;

use hbo_locks::LockKind;
use nuca_topology::NodeId;
use nucasim::{Addr, Command, CpuCtx, Machine, MachineConfig, Program, SplitMix64};
use nucasim_locks::{build_lock, DriveResult, GtSlots, SessionDriver, SimLockParams};

use crate::MicroReport;

/// Configuration of one traditional-microbenchmark run.
#[derive(Debug, Clone)]
pub struct TraditionalConfig {
    /// Algorithm under test.
    pub kind: LockKind,
    /// Machine description.
    pub machine: MachineConfig,
    /// Contending threads, bound round-robin across nodes (the paper's
    /// binding).
    pub threads: usize,
    /// Acquire-release iterations per thread.
    pub iterations: u32,
    /// Lock tunables.
    pub params: SimLockParams,
    /// Simulated-cycle budget.
    pub cycle_limit: u64,
}

impl Default for TraditionalConfig {
    fn default() -> Self {
        TraditionalConfig {
            kind: LockKind::TatasExp,
            machine: MachineConfig::wildfire(2, 14),
            threads: 28,
            iterations: 50,
            params: SimLockParams::default(),
            cycle_limit: 50_000_000_000,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Stagger,
    Start,
    Acquiring,
    /// Inside the CS: writing `last_owner = me`.
    SetOwner,
    Releasing,
    /// Outside: reading `last_owner`.
    CheckOwner,
    /// Outside: reading the finished-thread counter.
    CheckDone,
    /// Polling pause before re-checking.
    Pause,
    /// Finishing: bump the finished counter, then done.
    BumpDone,
}

struct TraditionalProgram {
    driver: SessionDriver,
    stagger: u64,
    last_owner: Addr,
    done_count: Addr,
    me: u64,
    others: u64,
    iterations: u32,
    state: State,
}

impl TraditionalProgram {
    fn drive(&mut self, r: DriveResult, _ctx: &mut CpuCtx<'_>) -> Command {
        match r {
            DriveResult::Busy(cmd) => cmd,
            DriveResult::AcquireDone => {
                self.state = State::SetOwner;
                Command::Write(self.last_owner, self.me)
            }
            DriveResult::ReleaseDone => {
                if self.iterations == 0 {
                    self.state = State::BumpDone;
                    Command::FetchAdd {
                        addr: self.done_count,
                        delta: 1,
                    }
                } else {
                    self.state = State::CheckOwner;
                    Command::Read(self.last_owner)
                }
            }
        }
    }
}

impl Program for TraditionalProgram {
    fn resume(&mut self, ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command {
        match self.state {
            State::Stagger => {
                // Random start offset: FIFO queue locks are acutely
                // sensitive to a deterministic initial enqueue order.
                self.state = State::Start;
                Command::Delay(self.stagger)
            }
            State::Start => {
                if self.iterations == 0 {
                    self.state = State::BumpDone;
                    return Command::FetchAdd {
                        addr: self.done_count,
                        delta: 1,
                    };
                }
                self.iterations -= 1;
                self.state = State::Acquiring;
                let r = self.driver.start_acquire(ctx);
                self.drive(r, ctx)
            }
            State::Acquiring => {
                let r = self.driver.on_result(ctx, last);
                self.drive(r, ctx)
            }
            State::SetOwner => {
                self.state = State::Releasing;
                let r = self.driver.start_release(ctx);
                self.drive(r, ctx)
            }
            State::Releasing => {
                let r = self.driver.on_result(ctx, last);
                self.drive(r, ctx)
            }
            State::CheckOwner => {
                if last != Some(self.me) {
                    // A new owner appeared: contend again.
                    self.state = State::Start;
                    return self.resume(ctx, None);
                }
                self.state = State::CheckDone;
                Command::Read(self.done_count)
            }
            State::CheckDone => {
                if last == Some(self.others) {
                    // Everyone else finished: the exemption applies.
                    self.state = State::Start;
                    return self.resume(ctx, None);
                }
                self.state = State::Pause;
                Command::Delay(200)
            }
            State::Pause => {
                self.state = State::CheckOwner;
                Command::Read(self.last_owner)
            }
            State::BumpDone => Command::Done,
        }
    }
}

/// Builds and runs the benchmark.
///
/// # Panics
///
/// Panics if `threads` exceeds the machine's CPU count or is zero.
pub fn run_traditional(cfg: &TraditionalConfig) -> MicroReport {
    let mut machine = Machine::new(cfg.machine.clone());
    let topo = Arc::clone(machine.topology());
    assert!(cfg.threads > 0, "need at least one thread");
    assert!(
        cfg.threads <= topo.num_cpus(),
        "{} threads exceed {} CPUs",
        cfg.threads,
        topo.num_cpus()
    );
    let gt = GtSlots::alloc(machine.mem_mut(), &topo);
    let lock = build_lock(
        cfg.kind,
        machine.mem_mut(),
        &topo,
        &gt,
        NodeId(0),
        &cfg.params,
    );
    let last_owner = machine.mem_mut().alloc(NodeId(0));
    let done_count = machine.mem_mut().alloc(NodeId(0));
    let mut seed = SplitMix64::new(cfg.machine.seed ^ 0x7AAD);

    for (i, cpu) in topo
        .round_robin_binding(cfg.threads)
        .into_iter()
        .enumerate()
    {
        let node = topo.node_of(cpu);
        machine.add_program(
            cpu,
            Box::new(TraditionalProgram {
                driver: SessionDriver::new(lock.session(cpu, node)),
                stagger: seed.next_below(4_000) + 1,
                last_owner,
                done_count,
                me: i as u64 + 1,
                others: cfg.threads as u64 - 1,
                iterations: cfg.iterations,
                state: State::Stagger,
            }),
        );
    }
    machine.run(cfg.cycle_limit);
    let report = machine.into_report();
    MicroReport::from_sim(cfg.kind, cfg.threads, &report, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: LockKind, threads: usize) -> MicroReport {
        run_traditional(&TraditionalConfig {
            kind,
            machine: MachineConfig::wildfire(2, 4),
            threads,
            iterations: 30,
            ..TraditionalConfig::default()
        })
    }

    #[test]
    fn all_kinds_complete() {
        for &kind in hbo_locks::LockCatalog::kinds() {
            let r = quick(kind, 8);
            assert!(r.finished, "{kind} hit the cycle limit");
            assert_eq!(r.total_acquires, 8 * 30, "{kind}");
        }
    }

    #[test]
    fn single_thread_runs_to_completion() {
        // The last-remaining-thread exemption: with one thread the
        // last_owner never changes, yet the run must terminate.
        let r = quick(LockKind::Tatas, 1);
        assert!(r.finished);
        assert_eq!(r.total_acquires, 30);
    }

    #[test]
    fn queue_locks_show_high_node_handoff() {
        // Paper §5.2: queue locks are expected near (N/2)/(N-1) with
        // round-robin binding and the new-owner rule.
        let r = quick(LockKind::Mcs, 8);
        let h = r.handoff_ratio.unwrap();
        assert!(h > 0.3, "MCS handoff {h:.3} should approach 4/7");
    }

    #[test]
    fn nuca_locks_show_low_node_handoff() {
        let r = quick(LockKind::HboGtSd, 8);
        let h = r.handoff_ratio.unwrap();
        let m = quick(LockKind::Mcs, 8).handoff_ratio.unwrap();
        assert!(h < m, "HBO_GT_SD {h:.3} vs MCS {m:.3}");
    }

    #[test]
    fn two_threads_alternate_strictly() {
        // With two threads the new-owner rule forces strict alternation:
        // handoff ratio equals 1 when they sit in different nodes.
        let r = quick(LockKind::Clh, 2);
        assert!(r.finished);
        let h = r.handoff_ratio.unwrap();
        assert!(h > 0.9, "alternating cross-node ownership, got {h:.3}");
    }
}

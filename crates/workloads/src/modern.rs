//! The paper's *new* microbenchmark (Fig. 4): a fixed number of
//! processors, each looping { acquire; touch `critical_work` elements of a
//! shared vector; release; static + random private work }. Contention is
//! controlled by `critical_work`, not by adding processors — "no real
//! applications have a fixed number of processors pounding on a lock"
//! (§5.3).

use std::sync::Arc;

use hbo_locks::LockKind;
use nuca_topology::NodeId;
use nucasim::{
    Addr, Command, CpuCtx, EventLog, Machine, MachineConfig, MemorySystem, Profile,
    ProfileCollector, Program, SimReport, SplitMix64, TraceRecord, TraceSink,
};
use nuca_topology::Topology;
use nucasim_locks::{build_lock, DriveResult, GtSlots, SessionDriver, SimLock, SimLockParams};

use crate::MicroReport;

/// Words per simulated cache line of the `cs_work` vector: the paper's
/// vector is an `int` array, so 8 four-byte elements share a 32-byte...
/// rather, 16 share a 64-byte line; we use 8 to keep per-element cost
/// conservative.
const ELEMS_PER_LINE: u32 = 8;

/// How contending threads are bound to CPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingKind {
    /// Round-robin across nodes — the paper's binding ("round-robin
    /// scheduling for thread binding to different cabinets"). Adjacent
    /// thread ids land on different nodes, so contention is symmetric
    /// from the start.
    RoundRobin,
    /// Fill each node before moving to the next, and start the threads in
    /// per-node waves (all of node 0's threads arrive first, then node
    /// 1's, ...). Models a clustered deployment — a batch scheduler
    /// placing a job's threads densely — where arrivals are bursty and
    /// node-correlated, the regime the hierarchical locks' local-handoff
    /// preference is built for.
    Clustered,
}

impl BindingKind {
    /// Every binding, in menu order.
    pub const ALL: [BindingKind; 2] = [BindingKind::RoundRobin, BindingKind::Clustered];

    /// Stable name (CLI operand and TSV label).
    pub fn name(self) -> &'static str {
        match self {
            BindingKind::RoundRobin => "rr",
            BindingKind::Clustered => "clustered",
        }
    }
}

impl std::fmt::Display for BindingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BindingKind {
    type Err = String;

    fn from_str(s: &str) -> Result<BindingKind, String> {
        match s {
            "rr" => Ok(BindingKind::RoundRobin),
            "clustered" => Ok(BindingKind::Clustered),
            other => Err(format!("unknown binding '{other}' (expected rr or clustered)")),
        }
    }
}

/// Process-wide default binding ([`BindingKind::ALL`] index), read by
/// [`ModernConfig::default`]. The harness `--binding` flag sets it once
/// before any run.
static DEFAULT_BINDING: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Sets the process-wide default thread binding.
pub fn set_default_binding(kind: BindingKind) {
    let idx = BindingKind::ALL.iter().position(|&b| b == kind).expect("binding in ALL");
    DEFAULT_BINDING.store(idx as u8, std::sync::atomic::Ordering::Relaxed);
}

/// The process-wide default thread binding ([`BindingKind::RoundRobin`]
/// unless [`set_default_binding`] changed it).
pub fn default_binding() -> BindingKind {
    BindingKind::ALL[DEFAULT_BINDING.load(std::sync::atomic::Ordering::Relaxed) as usize]
}

/// Configuration of one new-microbenchmark run.
#[derive(Debug, Clone)]
pub struct ModernConfig {
    /// Algorithm under test.
    pub kind: LockKind,
    /// Machine description (defaults to the paper's 2×14 WildFire).
    pub machine: MachineConfig,
    /// Contending threads, bound round-robin across nodes.
    pub threads: usize,
    /// Acquire-release iterations per thread.
    pub iterations: u32,
    /// Elements of the shared vector modified inside the critical section
    /// (the x-axis of Fig. 5; the paper sweeps 0–2100).
    pub critical_work: u32,
    /// Static private-work delay in cycles; a uniformly random delay of
    /// the same magnitude is added ("one static delay and one random delay
    /// of similar sizes").
    pub private_work: u64,
    /// Lock tunables.
    pub params: SimLockParams,
    /// QOLB-style *collocation* (paper §3): allocate the first line of the
    /// protected `cs_work` vector in the same cache line as the lock word,
    /// so the data travels with the lock at handover. Ignored for locks
    /// without a single lock word (the queue locks).
    pub collocate: bool,
    /// Padding words allocated between the lock and the `cs_work` vector.
    /// Zero (the default) leaves the allocation stream exactly as before,
    /// so lock word and first data line typically share a cache line —
    /// invisible to the flat word-granular model, but false sharing under
    /// the set-associative protocols. One line's worth of padding
    /// (geometry `line_words`) separates them.
    pub data_padding: u32,
    /// How threads are bound to CPUs (defaults to the process default —
    /// see [`set_default_binding`] / the harness `--binding` flag).
    pub binding: BindingKind,
    /// Simulated-cycle budget; runs exceeding it report `finished=false`.
    pub cycle_limit: u64,
}

impl Default for ModernConfig {
    fn default() -> Self {
        ModernConfig {
            kind: LockKind::TatasExp,
            machine: MachineConfig::wildfire(2, 14),
            threads: 28,
            iterations: 40,
            critical_work: 0,
            private_work: 20_000,
            params: SimLockParams::default(),
            collocate: false,
            data_padding: 0,
            binding: default_binding(),
            cycle_limit: 50_000_000_000,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Stagger,
    Start,
    Acquiring,
    CsWork { line: u32 },
    Releasing,
    StaticWork,
    RandomWork,
}

struct ModernProgram {
    driver: SessionDriver,
    cs_lines: Arc<[Addr]>,
    iterations: u32,
    cs_line_count: u32,
    private_work: u64,
    /// Line 0 is collocated with the lock word: touch it with a read
    /// (it already arrived with the lock) instead of clobbering the
    /// lock's value with a write.
    collocated: bool,
    /// Fixed delay before the random stagger: zero under round-robin
    /// binding, the thread's node-arrival wave under clustered binding.
    start_offset: u64,
    rng: SplitMix64,
    state: State,
}

impl ModernProgram {
    fn cs_touch(&self, line: u32, now: u64) -> Command {
        if line == 0 && self.collocated {
            Command::Read(self.cs_lines[0])
        } else {
            Command::Write(self.cs_lines[line as usize], now)
        }
    }
}

impl ModernProgram {
    fn drive(&mut self, r: DriveResult, ctx: &mut CpuCtx<'_>) -> Command {
        match r {
            DriveResult::Busy(cmd) => cmd,
            DriveResult::AcquireDone => {
                if self.cs_line_count == 0 {
                    self.state = State::Releasing;
                    return self.release(ctx);
                }
                self.state = State::CsWork { line: 0 };
                self.cs_touch(0, ctx.now)
            }
            DriveResult::ReleaseDone => {
                self.state = State::StaticWork;
                Command::Delay(self.private_work.max(1))
            }
        }
    }

    fn release(&mut self, ctx: &mut CpuCtx<'_>) -> Command {
        let r = self.driver.start_release(ctx);
        self.drive(r, ctx)
    }
}

impl Program for ModernProgram {
    fn resume(&mut self, ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command {
        loop {
            match self.state {
                State::Stagger => {
                    // Random start offset: real threads never arrive in
                    // lockstep, and FIFO queue locks are acutely sensitive
                    // to the initial enqueue order. Clustered binding adds
                    // a per-node wave on top, so same-node threads arrive
                    // together in bursts.
                    self.state = State::Start;
                    let d = self.rng.next_below(self.private_work.max(2)).max(1);
                    return Command::Delay(self.start_offset + d);
                }
                State::Start => {
                    if self.iterations == 0 {
                        return Command::Done;
                    }
                    self.iterations -= 1;
                    self.state = State::Acquiring;
                    let r = self.driver.start_acquire(ctx);
                    return self.drive(r, ctx);
                }
                State::Acquiring => {
                    let r = self.driver.on_result(ctx, last);
                    return self.drive(r, ctx);
                }
                State::CsWork { line } => {
                    let next = line + 1;
                    if next < self.cs_line_count {
                        self.state = State::CsWork { line: next };
                        return self.cs_touch(next, ctx.now);
                    }
                    self.state = State::Releasing;
                    return self.release(ctx);
                }
                State::Releasing => {
                    let r = self.driver.on_result(ctx, last);
                    return self.drive(r, ctx);
                }
                State::StaticWork => {
                    self.state = State::RandomWork;
                    let d = if self.private_work == 0 {
                        1
                    } else {
                        self.rng.next_below(self.private_work).max(1)
                    };
                    return Command::Delay(d);
                }
                State::RandomWork => {
                    self.state = State::Start;
                    continue;
                }
            }
        }
    }
}

/// Builds and runs the benchmark, returning the paper-facing metrics.
///
/// # Panics
///
/// Panics if `threads` exceeds the machine's CPU count, or if `kind` is
/// [`LockKind::Rh`] on a machine that does not have exactly two nodes.
pub fn run_modern(cfg: &ModernConfig) -> MicroReport {
    let (report, _) = run_modern_raw(cfg);
    MicroReport::from_sim(cfg.kind, cfg.threads, &report, 0)
}

/// Like [`run_modern`] but also returns the raw [`SimReport`] for callers
/// needing finish times or final memory values.
pub fn run_modern_raw(cfg: &ModernConfig) -> (SimReport, Vec<Addr>) {
    run_modern_with(cfg, &|mem, topo, gt| {
        build_lock(cfg.kind, mem, topo, gt, NodeId(0), &cfg.params)
    })
}

/// Like [`run_modern_raw`] but with a trace sink installed for the whole
/// run: every lock acquisition/release, backoff sleep, coherence
/// transaction, throttle announcement, anger episode, and preemption is
/// captured as a timestamped [`TraceRecord`]. The simulated run itself is
/// unchanged — tracing only observes.
pub fn run_modern_traced(cfg: &ModernConfig) -> (SimReport, Vec<TraceRecord>) {
    let log = EventLog::new();
    let (report, _) = run_modern_inner(
        cfg,
        &|mem, topo, gt| build_lock(cfg.kind, mem, topo, gt, NodeId(0), &cfg.params),
        Some(Box::new(log.clone())),
        None,
    );
    (report, log.take())
}

/// Like [`run_modern_raw`] but with the streaming profiler
/// ([`nucasim::profile`]) attached: returns the run's [`Profile`] —
/// handoff-chain and acquire-phase analysis — alongside the report.
/// Memory stays bounded by machine shape (no event is buffered), and the
/// simulated run itself is unchanged — profiling only observes.
pub fn run_modern_profiled(cfg: &ModernConfig) -> (SimReport, Profile) {
    let prof = ProfileCollector::new();
    let (report, _) = run_modern_inner(
        cfg,
        &|mem, topo, gt| build_lock(cfg.kind, mem, topo, gt, NodeId(0), &cfg.params),
        Some(Box::new(prof.clone())),
        None,
    );
    (report, prof.finish())
}

/// Like [`run_modern_raw`] but records every scheduler operation the run
/// performs (see [`nucasim::SchedOp`]). The trace replays against any
/// event-queue implementation — `crates/bench` uses it to compare the
/// heap and wheel schedulers in isolation on a genuine event mix.
pub fn run_modern_recorded(cfg: &ModernConfig) -> (SimReport, Vec<nucasim::SchedOp>) {
    let log = nucasim::SchedOpLog::new();
    let (report, _) = run_modern_inner(
        cfg,
        &|mem, topo, gt| build_lock(cfg.kind, mem, topo, gt, NodeId(0), &cfg.params),
        None,
        Some(&log),
    );
    (report, log.take())
}

/// Lock factory signature for [`run_modern_with`]: builds the lock under
/// test in the machine's memory.
pub type LockFactory<'a> =
    dyn Fn(&mut MemorySystem, &Topology, &GtSlots) -> Box<dyn SimLock> + 'a;

/// Runs the benchmark with a caller-supplied lock (e.g. the hierarchical
/// HBO extension, which is not one of the paper's eight
/// [`LockKind`]s). `cfg.kind` is used only for labeling.
pub fn run_modern_with(cfg: &ModernConfig, factory: &LockFactory<'_>) -> (SimReport, Vec<Addr>) {
    run_modern_inner(cfg, factory, None, None)
}

fn run_modern_inner(
    cfg: &ModernConfig,
    factory: &LockFactory<'_>,
    trace: Option<Box<dyn TraceSink>>,
    record_sched: Option<&nucasim::SchedOpLog>,
) -> (SimReport, Vec<Addr>) {
    let mut machine = Machine::new(cfg.machine.clone());
    machine.set_profile_label(cfg.kind.as_str());
    if let Some(log) = record_sched {
        machine.record_sched_ops_into(log.clone());
    }
    if let Some(sink) = trace {
        machine.set_trace_sink(sink);
    }
    let topo = Arc::clone(machine.topology());
    assert!(
        cfg.threads <= topo.num_cpus(),
        "{} threads exceed {} CPUs",
        cfg.threads,
        topo.num_cpus()
    );
    let gt = GtSlots::alloc(machine.mem_mut(), &topo);
    let lock = {
        let mem = machine.mem_mut();
        factory(mem, &topo, &gt)
    };
    let cs_line_count = cfg.critical_work.div_ceil(ELEMS_PER_LINE);
    if cfg.data_padding > 0 {
        // Dead words between the lock and the protected data, pushing the
        // first data line off the lock word's cache line. Never touched:
        // only the allocation cursor moves, so a zero padding leaves the
        // address stream byte-identical to the pre-padding layout.
        let _ = machine
            .mem_mut()
            .alloc_array(NodeId(0), cfg.data_padding as usize);
    }
    let mut lines = machine
        .mem_mut()
        .alloc_array(NodeId(0), cs_line_count.max(1) as usize);
    let mut collocated = false;
    if cfg.collocate {
        if let Some(word) = lock.lock_word() {
            // The first protected line *is* the lock line: whoever wins
            // the lock already holds that data exclusively.
            lines[0] = word;
            collocated = true;
        }
    }
    let cs_lines: Arc<[Addr]> = lines.into();

    let bound = match cfg.binding {
        BindingKind::RoundRobin => topo.round_robin_binding(cfg.threads),
        BindingKind::Clustered => topo.block_binding(cfg.threads),
    };
    // Clustered arrivals come in per-node waves one private-work period
    // apart: node 0's threads contend first, node 1's join a wave later.
    let wave = match cfg.binding {
        BindingKind::RoundRobin => 0,
        BindingKind::Clustered => cfg.private_work.max(2),
    };
    let mut seed = SplitMix64::new(cfg.machine.seed ^ 0xB0B0);
    for (i, cpu) in bound.into_iter().enumerate() {
        let node = topo.node_of(cpu);
        // Stagger start-up a little so contenders do not arrive in
        // lockstep (real threads never do).
        let _ = i;
        machine.add_program(
            cpu,
            Box::new(ModernProgram {
                driver: SessionDriver::new(lock.session(cpu, node)),
                cs_lines: Arc::clone(&cs_lines),
                iterations: cfg.iterations,
                cs_line_count,
                private_work: cfg.private_work,
                collocated,
                start_offset: node.index() as u64 * wave,
                rng: seed.split(),
                state: State::Stagger,
            }),
        );
    }
    machine.run(cfg.cycle_limit);
    let report = machine.into_report();
    (report, cs_lines.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: LockKind, critical_work: u32) -> MicroReport {
        let cfg = ModernConfig {
            kind,
            machine: MachineConfig::wildfire(2, 4),
            threads: 8,
            iterations: 25,
            critical_work,
            private_work: 2_000,
            ..ModernConfig::default()
        };
        run_modern(&cfg)
    }

    #[test]
    fn all_kinds_complete_and_count_acquires() {
        for &kind in hbo_locks::LockCatalog::kinds() {
            let r = quick(kind, 100);
            assert!(r.finished, "{kind} hit the cycle limit");
            assert_eq!(r.total_acquires, 200, "{kind}");
            assert!(r.ns_per_iteration > 0.0);
        }
    }

    #[test]
    fn profiler_spin_accounting_never_clamps_for_in_repo_locks() {
        // Every backoff sleep an in-repo lock kind emits lies inside the
        // acquire window that recorded it, so the profiler's spin residual
        // (wait − backoff) must never saturate. `spin_clamped` counts the
        // windows where it did; any nonzero value here means a lock state
        // machine's backoff accounting has drifted out of its window.
        for &kind in hbo_locks::LockCatalog::kinds() {
            let cfg = ModernConfig {
                kind,
                machine: MachineConfig::wildfire(2, 4),
                threads: 8,
                iterations: 25,
                critical_work: 200,
                private_work: 2_000,
                ..ModernConfig::default()
            };
            let (_, profile) = run_modern_profiled(&cfg);
            assert!(profile.locks[0].acquires > 0, "{kind}: empty profile");
            for (i, lock) in profile.locks.iter().enumerate() {
                debug_assert_eq!(
                    lock.spin_clamped, 0,
                    "{kind} lock {i}: {} acquire windows clamped spin",
                    lock.spin_clamped
                );
                assert_eq!(lock.spin_clamped, 0, "{kind} lock {i}");
            }
        }
    }

    #[test]
    fn more_critical_work_takes_longer() {
        let small = quick(LockKind::HboGt, 0);
        let large = quick(LockKind::HboGt, 1500);
        assert!(large.elapsed_ns > small.elapsed_ns);
    }

    #[test]
    fn nuca_lock_beats_baselines_under_high_contention() {
        // The headline claim (Fig. 5): with large critical sections the
        // NUCA-aware locks win on iteration time against the tuned
        // TATAS_EXP baseline and the queue locks.
        let hbo = quick(LockKind::HboGt, 1500);
        let exp = quick(LockKind::TatasExp, 1500);
        let mcs = quick(LockKind::Mcs, 1500);
        assert!(
            hbo.ns_per_iteration < exp.ns_per_iteration,
            "HBO_GT {:.0} ns/iter vs TATAS_EXP {:.0}",
            hbo.ns_per_iteration,
            exp.ns_per_iteration
        );
        assert!(
            hbo.ns_per_iteration < mcs.ns_per_iteration,
            "HBO_GT {:.0} ns/iter vs MCS {:.0}",
            hbo.ns_per_iteration,
            mcs.ns_per_iteration
        );
    }

    #[test]
    fn nuca_locks_cut_global_traffic() {
        let hbo = quick(LockKind::HboGt, 1500);
        let tatas = quick(LockKind::Tatas, 1500);
        assert!(
            hbo.traffic.global < tatas.traffic.global,
            "HBO_GT global {} vs TATAS {}",
            hbo.traffic.global,
            tatas.traffic.global
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a = quick(LockKind::Clh, 300);
        let b = quick(LockKind::Clh, 300);
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    fn zero_critical_work_supported() {
        let r = quick(LockKind::Mcs, 0);
        assert!(r.finished);
        assert_eq!(r.total_acquires, 200);
    }

    #[test]
    fn fault_layers_flow_through_machine_config() {
        use nucasim::{FaultConfig, HolderPreemptConfig, JitterConfig, MigrationConfig};

        let faults = FaultConfig::none()
            .with_holder_preempt(HolderPreemptConfig {
                per_mille: 150,
                quantum: 20_000,
            })
            .with_migration(MigrationConfig {
                mean_gap: 80_000,
                pause: 5_000,
            })
            .with_jitter(JitterConfig { max_extra: 60 });
        let cfg = ModernConfig {
            kind: LockKind::HboGtSd,
            machine: MachineConfig::wildfire(2, 4).with_faults(faults),
            threads: 8,
            iterations: 25,
            critical_work: 100,
            private_work: 2_000,
            ..ModernConfig::default()
        };
        let (report, _) = run_modern_raw(&cfg);
        assert!(report.finished_all, "faulted run hit the cycle limit");
        assert_eq!(report.lock_traces[0].acquisitions, 200);
        assert!(report.preemptions > 0, "no holder preemption fired");
        assert!(report.migrations > 0, "no migration fired");

        let (again, _) = run_modern_raw(&cfg);
        assert_eq!(report.end_time, again.end_time, "faulted run not reproducible");
        assert_eq!(report.traffic, again.traffic);

        let clean = ModernConfig {
            machine: MachineConfig::wildfire(2, 4),
            ..cfg
        };
        let (clean_report, _) = run_modern_raw(&clean);
        assert_eq!(clean_report.migrations, 0);
        assert_ne!(
            clean_report.end_time, report.end_time,
            "fault layers had no effect on the run"
        );
    }

    #[test]
    fn clustered_binding_completes_for_every_kind_and_differs_from_rr() {
        for &kind in hbo_locks::LockCatalog::kinds() {
            let cfg = ModernConfig {
                kind,
                machine: MachineConfig::wildfire(2, 4),
                threads: 8,
                iterations: 25,
                critical_work: 100,
                private_work: 2_000,
                binding: BindingKind::Clustered,
                ..ModernConfig::default()
            };
            let r = run_modern(&cfg);
            assert!(r.finished, "{kind} clustered run hit the cycle limit");
            assert_eq!(r.total_acquires, 200, "{kind}");
        }
        // The binding genuinely changes the run (placement + waves).
        let rr = quick(LockKind::HboGt, 300);
        let cl = run_modern(&ModernConfig {
            kind: LockKind::HboGt,
            machine: MachineConfig::wildfire(2, 4),
            threads: 8,
            iterations: 25,
            critical_work: 300,
            private_work: 2_000,
            binding: BindingKind::Clustered,
            ..ModernConfig::default()
        });
        assert_ne!(rr.elapsed_ns, cl.elapsed_ns, "binding had no effect");
    }

    #[test]
    fn binding_names_round_trip() {
        for b in BindingKind::ALL {
            assert_eq!(b.name().parse::<BindingKind>(), Ok(b));
        }
        let err = "spread".parse::<BindingKind>().unwrap_err();
        assert!(err.contains("spread") && err.contains("clustered"), "{err}");
    }

    #[test]
    fn data_padding_moves_data_off_the_lock_line() {
        // With the default 8-word line, padding by a full line must place
        // the first protected word on a different line than the lock's
        // last allocated word; zero padding must leave addresses as-is.
        let run = |pad: u32| {
            let cfg = ModernConfig {
                kind: LockKind::Tatas,
                machine: MachineConfig::wildfire(2, 2),
                threads: 4,
                iterations: 5,
                critical_work: 8,
                private_work: 1_000,
                data_padding: pad,
                ..ModernConfig::default()
            };
            let (_, lines) = run_modern_raw(&cfg);
            lines[0].index()
        };
        let unpadded = run(0);
        let padded = run(8);
        assert_eq!(padded, unpadded + 8);
        assert_ne!(unpadded / 8, padded / 8, "padding left data on the lock's line");
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_threads_rejected() {
        let cfg = ModernConfig {
            threads: 99,
            machine: MachineConfig::wildfire(2, 4),
            ..ModernConfig::default()
        };
        let _ = run_modern(&cfg);
    }
}

//! Deterministic Zipfian key sampling for the lockserver workload.
//!
//! Gray's constant-time method (popularized by YCSB): precompute the
//! generalized harmonic number ζ(n, θ) once, then map each uniform draw
//! through a closed-form inverse. Sampling costs two `powf` calls and no
//! table, so a million-key distribution is as cheap as a uniform one.
//! Randomness comes from the in-tree [`SplitMix64`] — same seed, same key
//! sequence, which the byte-identical sweep TSVs rely on.

use nucasim::SplitMix64;

/// Zipfian distribution over keys `0..n` with exponent `theta`: key `k`
/// has probability proportional to `1 / (k + 1)^theta`. Key 0 is the
/// hottest.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    /// 1 / (1 − θ): the exponent of the closed-form inverse CDF.
    alpha: f64,
    /// ζ(n, θ), the normalization constant.
    zetan: f64,
    /// Gray's interpolation constant for the tail of the inverse.
    eta: f64,
}

impl Zipfian {
    /// Builds the distribution. `theta` must lie in `(0, 1)` — 0 would be
    /// uniform (use [`SplitMix64::next_below`] for that) and ≥ 1 breaks
    /// the closed-form inverse. YCSB's default skew is 0.99.
    ///
    /// # Panics
    ///
    /// Panics on `n == 0` or `theta` outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0, "empty key space");
        assert!(
            theta > 0.0 && theta < 1.0,
            "zipf exponent must be in (0, 1), got {theta}"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian { n, theta, alpha, zetan, eta }
    }

    /// Number of keys.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one key in `0..n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        // 53 uniform bits → u in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }
}

/// Generalized harmonic number ζ(n, θ) = Σ_{i=1..n} 1/i^θ.
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| (i as f64).powf(-theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_stay_in_range() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn hot_keys_dominate() {
        // At θ = 0.99 over 10^4 keys, the hottest key alone draws several
        // percent of the mass and the top 10 the large majority of what
        // any 10 consecutive cold keys get.
        let n = 10_000;
        let z = Zipfian::new(n, 0.99);
        let mut rng = SplitMix64::new(42);
        let mut counts = vec![0u64; n as usize];
        let draws = 100_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > draws / 50, "key 0 drew {} of {draws}", counts[0]);
        let top10: u64 = counts[..10].iter().sum();
        let cold10: u64 = counts[5000..5010].iter().sum();
        assert!(top10 > 100 * cold10.max(1), "top {top10} vs cold {cold10}");
    }

    #[test]
    fn lower_theta_is_flatter() {
        let n = 1000;
        let hot = |theta: f64| {
            let z = Zipfian::new(n, theta);
            let mut rng = SplitMix64::new(9);
            (0..50_000).filter(|_| z.sample(&mut rng) == 0).count()
        };
        assert!(hot(0.99) > 2 * hot(0.3));
    }

    #[test]
    fn deterministic_for_seed() {
        let z = Zipfian::new(1 << 20, 0.99);
        let a: Vec<u64> = {
            let mut rng = SplitMix64::new(77);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SplitMix64::new(77);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn theta_one_rejected() {
        let _ = Zipfian::new(10, 1.0);
    }
}

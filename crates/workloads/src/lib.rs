//! Workloads for the HBO-lock reproduction: the paper's microbenchmarks,
//! synthetic SPLASH-2 application models, and fairness/sensitivity
//! drivers, all running on the `nucasim` machine simulator.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`uncontested`] | Table 1 — single acquire-release latency scenarios |
//! | [`traditional`] | Fig. 3 — the classic "all processors pound one lock" benchmark with the `last_owner` rule |
//! | [`modern`] | Fig. 4/5, Table 2 — the paper's new microbenchmark: fixed processors, non-critical work, variable `critical_work` |
//! | [`apps`] | Tables 3–6, Figs. 6–7 — synthetic models of the seven lock-heavy SPLASH-2 programs |
//! | [`barrier`] | sense-free simulated barrier used by the app models |
//! | [`lockserver`] | extension — sharded million-object lock service with open-loop bursty arrivals |
//! | [`zipf`] | deterministic Zipfian key sampling for the lockserver |
//!
//! Every run is deterministic for a given seed.
//!
//! # Example
//!
//! ```
//! use hbo_locks::LockKind;
//! use nuca_workloads::modern::{run_modern, ModernConfig};
//!
//! let mut cfg = ModernConfig::default();
//! cfg.kind = LockKind::HboGt;
//! cfg.threads = 4;
//! cfg.iterations = 20;
//! cfg.critical_work = 200;
//! let out = run_modern(&cfg);
//! assert_eq!(out.total_acquires, 4 * 20);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps;
pub mod barrier;
pub mod lockserver;
pub mod modern;
pub mod traditional;
pub mod uncontested;
pub mod zipf;

use hbo_locks::LockKind;
use nucasim::{SimReport, TrafficCounts};

/// Outcome of a microbenchmark run, in the units the paper plots.
#[derive(Debug, Clone)]
pub struct MicroReport {
    /// Which algorithm ran.
    pub kind: LockKind,
    /// Number of threads that contended.
    pub threads: usize,
    /// Total successful lock acquisitions.
    pub total_acquires: u64,
    /// Wall time of the run in simulated nanoseconds.
    pub elapsed_ns: u64,
    /// Average time per acquire-release iteration, nanoseconds (the y-axis
    /// of Figs. 3 and 5, left panels).
    pub ns_per_iteration: f64,
    /// Node handoff ratio (the y-axis of Figs. 3 and 5, right panels).
    pub handoff_ratio: Option<f64>,
    /// Coherence traffic (Tables 2 and 6).
    pub traffic: TrafficCounts,
    /// Spread between first and last thread to finish (Fig. 8).
    pub finish_spread: Option<f64>,
    /// Whether the run completed within its cycle budget.
    pub finished: bool,
}

impl MicroReport {
    /// Derives the paper-facing metrics from a raw [`SimReport`]; `lock_index`
    /// selects which recorded lock's acquisition trace to read. Used by
    /// custom-lock runs built on [`modern::run_modern_with`].
    pub fn from_sim(
        kind: LockKind,
        threads: usize,
        report: &SimReport,
        lock_index: usize,
    ) -> MicroReport {
        let total_acquires = report
            .lock_traces
            .get(lock_index)
            .map(|t| t.acquisitions)
            .unwrap_or(0);
        let elapsed_ns = nucasim::cycles_to_ns(report.end_time);
        MicroReport {
            kind,
            threads,
            total_acquires,
            elapsed_ns,
            ns_per_iteration: if total_acquires == 0 {
                f64::NAN
            } else {
                elapsed_ns as f64 / total_acquires as f64
            },
            handoff_ratio: report
                .lock_traces
                .get(lock_index)
                .and_then(|t| t.handoff_ratio()),
            traffic: report.traffic,
            finish_spread: report.finish_spread(),
            finished: report.finished_all,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucasim::{Command, CpuCtx, Machine, MachineConfig, Program};

    struct Noop;

    impl Program for Noop {
        fn resume(&mut self, ctx: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
            ctx.record_acquire(0);
            Command::Done
        }
    }

    #[test]
    fn micro_report_from_minimal_sim() {
        let mut m = Machine::new(MachineConfig::wildfire(1, 1));
        m.add_program(nuca_topology::CpuId(0), Box::new(Noop));
        m.run(1_000);
        let report = m.into_report();
        let r = MicroReport::from_sim(LockKind::Tatas, 1, &report, 0);
        assert_eq!(r.total_acquires, 1);
        assert!(r.finished);
        assert_eq!(r.handoff_ratio, None, "one acquisition has no handover");
        // A missing lock index yields zero acquisitions, not a panic.
        let r2 = MicroReport::from_sim(LockKind::Tatas, 1, &report, 9);
        assert_eq!(r2.total_acquires, 0);
        assert!(r2.ns_per_iteration.is_nan());
    }
}

//! Uncontested lock latency (Table 1): the cost of one acquire-release
//! pair when the previous owner was (1) the same processor, (2) a neighbor
//! in the same node, (3) a processor in a remote node.

use std::sync::Arc;

use hbo_locks::LockKind;
use nuca_topology::{CpuId, NodeId};
use nucasim::{Addr, Command, CpuCtx, Machine, MachineConfig, Program};
use nucasim_locks::{build_lock, DriveResult, GtSlots, SessionDriver, SimLockParams};

/// Latencies of one acquire-release pair, in nanoseconds (Table 1's
/// columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UncontestedReport {
    /// Algorithm measured.
    pub kind: LockKind,
    /// Previous owner: the same processor (lock in own cache).
    pub same_processor_ns: u64,
    /// Previous owner: a neighbor in the same node.
    pub same_node_ns: u64,
    /// Previous owner: a processor in a remote node.
    pub remote_node_ns: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    WaitTurn,
    Check,
    Acquiring,
    Releasing,
    WriteOut,
    BumpBaton,
    Finished,
}

/// Performs `pairs` acquire-release pairs when the baton reaches `turn`,
/// writes the last pair's duration (cycles) to `out`, bumps the baton.
struct TurnProgram {
    driver: SessionDriver,
    baton: Addr,
    out: Addr,
    turn: u64,
    pairs: u32,
    state: State,
    started_at: u64,
}

impl TurnProgram {
    fn drive(&mut self, r: DriveResult, ctx: &mut CpuCtx<'_>) -> Command {
        match r {
            DriveResult::Busy(cmd) => cmd,
            DriveResult::AcquireDone => {
                self.state = State::Releasing;
                match self.driver.start_release(ctx) {
                    DriveResult::Busy(cmd) => cmd,
                    _ => unreachable!("release begins with a command"),
                }
            }
            DriveResult::ReleaseDone => {
                self.pairs -= 1;
                if self.pairs == 0 {
                    self.state = State::WriteOut;
                    Command::Write(self.out, ctx.now - self.started_at)
                } else {
                    self.state = State::Check;
                    Command::Delay(1)
                }
            }
        }
    }

    fn begin_pair(&mut self, ctx: &mut CpuCtx<'_>) -> Command {
        self.started_at = ctx.now;
        self.state = State::Acquiring;
        let r = self.driver.start_acquire(ctx);
        self.drive(r, ctx)
    }
}

impl Program for TurnProgram {
    fn resume(&mut self, ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command {
        match self.state {
            State::WaitTurn => {
                self.state = State::Check;
                Command::WaitWhile {
                    addr: self.baton,
                    equals: self.turn.wrapping_sub(1),
                }
            }
            State::Check => {
                // Proceed only when the baton actually shows our turn; the
                // wait may have woken on an earlier transition.
                if let Some(seen) = last {
                    if seen != self.turn {
                        return Command::WaitWhile {
                            addr: self.baton,
                            equals: seen,
                        };
                    }
                }
                self.begin_pair(ctx)
            }
            State::Acquiring | State::Releasing => {
                let r = self.driver.on_result(ctx, last);
                self.drive(r, ctx)
            }
            State::WriteOut => {
                self.state = State::BumpBaton;
                Command::Write(self.baton, self.turn + 1)
            }
            State::BumpBaton => {
                self.state = State::Finished;
                Command::Done
            }
            State::Finished => Command::Done,
        }
    }
}

/// Measures the three Table-1 scenarios for `kind` on `machine`.
///
/// CPU 0 performs two pairs (the second is the same-processor figure),
/// then a same-node neighbor performs one, then a remote CPU.
///
/// # Panics
///
/// Panics if the machine has fewer than two nodes or fewer than two CPUs
/// in node 0.
pub fn run_uncontested(
    kind: LockKind,
    machine_cfg: &MachineConfig,
    params: &SimLockParams,
) -> UncontestedReport {
    let mut machine = Machine::new(machine_cfg.clone());
    let topo = Arc::clone(machine.topology());
    assert!(topo.num_nodes() >= 2, "Table 1 needs a remote node");
    let node0: Vec<CpuId> = topo.cpus_of(NodeId(0)).collect();
    assert!(node0.len() >= 2, "Table 1 needs a same-node neighbor");
    let neighbor = node0[1];
    let remote = topo
        .cpus_of(NodeId(1))
        .next()
        .expect("node 1 is non-empty");

    let gt = GtSlots::alloc(machine.mem_mut(), &topo);
    let lock = build_lock(kind, machine.mem_mut(), &topo, &gt, NodeId(0), params);
    let baton = machine.mem_mut().alloc(NodeId(0));
    let outs: Vec<Addr> = (0..3).map(|_| machine.mem_mut().alloc(NodeId(0))).collect();

    let plan = [
        (node0[0], 0u64, 2u32, State::Check),
        (neighbor, 1, 1, State::WaitTurn),
        (remote, 2, 1, State::WaitTurn),
    ];
    for (cpu, turn, pairs, state) in plan {
        let node = topo.node_of(cpu);
        machine.add_program(
            cpu,
            Box::new(TurnProgram {
                driver: SessionDriver::new(lock.session(cpu, node)),
                baton,
                out: outs[turn as usize],
                turn,
                pairs,
                state,
                started_at: 0,
            }),
        );
    }
    machine.run(1_000_000_000);
    let report = machine.into_report();
    assert!(report.finished_all, "{kind}: uncontested sequence stuck");
    UncontestedReport {
        kind,
        same_processor_ns: nucasim::cycles_to_ns(report.final_value(outs[0])),
        same_node_ns: nucasim::cycles_to_ns(report.final_value(outs[1])),
        remote_node_ns: nucasim::cycles_to_ns(report.final_value(outs[2])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1(kind: LockKind) -> UncontestedReport {
        run_uncontested(
            kind,
            &MachineConfig::wildfire(2, 2),
            &SimLockParams::default(),
        )
    }

    #[test]
    fn all_kinds_measure() {
        for &kind in hbo_locks::LockCatalog::kinds() {
            let r = table1(kind);
            assert!(r.same_processor_ns > 0, "{kind}");
            assert!(r.same_processor_ns < r.same_node_ns, "{kind}");
            assert!(r.same_node_ns < r.remote_node_ns, "{kind}");
        }
    }

    #[test]
    fn hbo_matches_tatas_low_latency_goal() {
        // Table 1's punchline: HBO's uncontested latencies are "almost
        // identical with the simplest locks".
        let hbo = table1(LockKind::Hbo);
        let tatas = table1(LockKind::Tatas);
        assert!(hbo.same_processor_ns <= tatas.same_processor_ns + 50);
        assert!(hbo.remote_node_ns <= tatas.remote_node_ns + 200);
    }

    #[test]
    fn queue_locks_cost_more_uncontested() {
        let mcs = table1(LockKind::Mcs);
        let tatas = table1(LockKind::Tatas);
        assert!(mcs.same_processor_ns > tatas.same_processor_ns);
    }

    #[test]
    fn rh_remote_is_most_expensive() {
        // Table 1: RH 4480 ns remote vs ~2000 ns for everyone else. A
        // paper-set claim — TICKET's remote handoff legitimately costs
        // more, so the modern registrants are out of scope here.
        let rh = table1(LockKind::Rh);
        for &kind in hbo_locks::LockCatalog::paper() {
            if kind == LockKind::Rh {
                continue;
            }
            let other = table1(kind);
            assert!(
                rh.remote_node_ns > other.remote_node_ns,
                "RH {} vs {kind} {}",
                rh.remote_node_ns,
                other.remote_node_ns
            );
        }
    }
}

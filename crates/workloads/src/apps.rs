//! Synthetic models of the lock-heavy SPLASH-2 applications (§5.4).
//!
//! The paper measures seven SPLASH-2 programs whose executions contain
//! more than 10,000 lock calls (Table 3). Running the real SPLASH-2 codes
//! requires the original inputs and a SPARC/Solaris toolchain; what the
//! *locks* see, however, is fully characterized by the programs' lock
//! access patterns: how many locks exist, how skewed the accesses are
//! (task queues vs. fine-grained object locks), how much shared data a
//! critical section touches, and how much computation separates lock
//! calls. Each [`AppModel`] below reproduces that pattern, parameterized
//! from Table 3 and the qualitative descriptions in the paper and the
//! SPLASH-2 characterization study (Woo et al., ISCA'95).
//!
//! The substitution is documented in `DESIGN.md`: identical lock-visible
//! behaviour, synthetic compute.

use std::sync::Arc;

use hbo_locks::LockKind;
use nuca_topology::NodeId;
use nucasim::{
    Addr, Command, CpuCtx, Machine, MachineConfig, Program, SplitMix64, TrafficCounts,
};
use nucasim_locks::{build_lock, DriveResult, GtSlots, SessionDriver, SimLock, SimLockParams};

use crate::barrier::{BarrierClient, BarrierStep, SimBarrier};

/// Behavioural model of one application's lock usage.
#[derive(Debug, Clone)]
pub struct AppModel {
    /// Program name as in Table 3.
    pub name: &'static str,
    /// Problem size as in Table 3.
    pub problem_size: &'static str,
    /// Allocated locks (Table 3, "Total Locks").
    pub total_locks: usize,
    /// Lock calls in the paper's 32-processor runs (Table 3).
    pub lock_calls: u64,
    /// Whether the paper studies the program further (▶ in Table 3).
    pub studied: bool,
    /// Number of *hot* locks (task queues, global counters).
    pub hot_locks: usize,
    /// Probability (per mille) that an acquire targets a hot lock.
    pub hot_per_mille: u32,
    /// Shared data lines written under a hot lock.
    pub cs_lines_hot: u32,
    /// Shared data lines written under a cold lock.
    pub cs_lines_cold: u32,
    /// Mean computation between lock calls, cycles.
    pub think_cycles: u64,
    /// Barrier-separated phases.
    pub phases: u32,
    /// Total lock acquisitions the model performs at scale 1.0 (divided
    /// among the run's threads — fixed problem size, like the originals).
    pub total_acquires: u64,
}

/// The full Table 3, in the paper's order.
///
/// Entries with `studied == false` carry only the statistics columns; they
/// synchronize almost exclusively through barriers (FFT, LU, Ocean, Radix,
/// Water-Sp) so the paper — and this reproduction — does not time them
/// against lock algorithms.
pub fn table3() -> Vec<AppModel> {
    fn row(
        name: &'static str,
        problem_size: &'static str,
        total_locks: usize,
        lock_calls: u64,
        studied: bool,
    ) -> AppModel {
        AppModel {
            name,
            problem_size,
            total_locks,
            lock_calls,
            studied,
            hot_locks: 1,
            hot_per_mille: 0,
            cs_lines_hot: 1,
            cs_lines_cold: 1,
            think_cycles: 1000,
            phases: 1,
            total_acquires: lock_calls,
        }
    }
    let mut rows = vec![
        row("Barnes", "29k particles", 130, 69_193, true),
        row("Cholesky", "tk29.O", 67, 74_284, true),
        row("FFT", "1M points", 1, 32, false),
        row("FMM", "32k particles", 2_052, 80_528, true),
        row("LU-c", "1024x1024 matrices, 16x16 blocks", 1, 32, false),
        row("LU-nc", "1024x1024 matrices, 16x16 blocks", 1, 32, false),
        row("Ocean-c", "514x514", 6, 6_304, false),
        row("Ocean-nc", "258x258", 6, 6_656, false),
        row(
            "Radiosity",
            "room, -ae 5000.0 -en 0.050 -bf 0.10",
            3_975,
            295_627,
            true,
        ),
        row("Radix", "4M integers, radix 1024", 1, 32, false),
        row("Raytrace", "car", 35, 366_450, true),
        row("Volrend", "head", 67, 38_456, true),
        row("Water-Nsq", "2197 molecules", 2_206, 112_415, true),
        row("Water-Sp", "2197 molecules", 222, 510, false),
    ];
    // Behavioural parameters for the studied programs.
    for r in rows.iter_mut() {
        match r.name {
            // Barnes: tree-build cell locks, moderate sharing.
            "Barnes" => {
                r.hot_locks = 2;
                r.hot_per_mille = 250;
                r.cs_lines_hot = 2;
                r.think_cycles = 8_000;
                r.phases = 4;
            }
            // Cholesky: central task queue plus column locks.
            "Cholesky" => {
                r.hot_locks = 1;
                r.hot_per_mille = 350;
                r.cs_lines_hot = 2;
                r.think_cycles = 6_000;
                r.phases = 2;
            }
            // FMM: thousands of fine-grained box locks, little skew.
            "FMM" => {
                r.hot_locks = 3;
                r.hot_per_mille = 150;
                r.cs_lines_hot = 1;
                r.think_cycles = 7_000;
                r.phases = 4;
            }
            // Radiosity: distributed task queues with stealing.
            "Radiosity" => {
                r.hot_locks = 4;
                r.hot_per_mille = 500;
                r.cs_lines_hot = 2;
                r.think_cycles = 2_500;
                r.phases = 3;
            }
            // Raytrace: one central task queue + global stats counters —
            // "one of the most unpredictable SPLASH-2 programs", very high
            // lock contention.
            "Raytrace" => {
                r.hot_locks = 2;
                r.hot_per_mille = 700;
                r.cs_lines_hot = 2;
                r.think_cycles = 2_500;
                r.phases = 2;
            }
            // Volrend: work queue per processor group.
            "Volrend" => {
                r.hot_locks = 2;
                r.hot_per_mille = 500;
                r.cs_lines_hot = 1;
                r.think_cycles = 3_000;
                r.phases = 3;
            }
            // Water-Nsq: per-molecule locks plus a global accumulator.
            "Water-Nsq" => {
                r.hot_locks = 1;
                r.hot_per_mille = 120;
                r.cs_lines_hot = 1;
                r.think_cycles = 5_000;
                r.phases = 4;
            }
            _ => {}
        }
    }
    rows
}

/// The seven programs the paper studies (▶ rows of Table 3).
pub fn studied_apps() -> Vec<AppModel> {
    table3().into_iter().filter(|a| a.studied).collect()
}

/// Looks up a studied app by (case-insensitive) name.
pub fn app_by_name(name: &str) -> Option<AppModel> {
    table3()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

/// Configuration of one application-model run.
#[derive(Debug, Clone)]
pub struct AppRunConfig {
    /// Algorithm under test.
    pub kind: LockKind,
    /// Machine description.
    pub machine: MachineConfig,
    /// Worker threads (round-robin across nodes, like the paper's runs).
    pub threads: usize,
    /// Lock tunables.
    pub params: SimLockParams,
    /// Workload scale: fraction of [`AppModel::total_acquires`] to
    /// perform (1.0 = Table 3 volume).
    pub scale: f64,
    /// Simulated-cycle budget; exceeded runs report `finished = false`
    /// (how the paper's "> 200 s" rows arise).
    pub cycle_limit: u64,
}

impl Default for AppRunConfig {
    fn default() -> Self {
        AppRunConfig {
            kind: LockKind::TatasExp,
            machine: MachineConfig::wildfire(2, 14),
            threads: 28,
            params: SimLockParams::default(),
            scale: 0.1,
            cycle_limit: 100_000_000_000,
        }
    }
}

/// Outcome of an application-model run.
#[derive(Debug, Clone)]
pub struct AppReport {
    /// Program name.
    pub name: &'static str,
    /// Algorithm.
    pub kind: LockKind,
    /// Threads used.
    pub threads: usize,
    /// Simulated execution time, seconds.
    pub seconds: f64,
    /// Whether the run finished inside the cycle budget.
    pub finished: bool,
    /// Coherence traffic.
    pub traffic: TrafficCounts,
    /// Total lock acquisitions performed.
    pub acquires: u64,
    /// Node-handoff ratio of the hottest lock.
    pub hot_handoff: Option<f64>,
}

/// Cold locks actually allocated (cold traffic is spread uniformly, so a
/// few hundred representatives behave like a few thousand).
const MAX_COLD_LOCKS: usize = 192;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Next,
    Acquiring,
    Cs { line: u32 },
    Releasing,
    Think,
    Barrier,
}

struct AppProgram {
    drivers: Vec<SessionDriver>,
    /// Data lines per lock (index-aligned with `drivers`).
    data: Arc<Vec<Vec<Addr>>>,
    hot_locks: usize,
    hot_per_mille: u32,
    cs_lines_hot: u32,
    cs_lines_cold: u32,
    think_cycles: u64,
    barrier: BarrierClient,
    /// Acquires remaining in the current phase.
    phase_left: u32,
    /// Phases remaining after the current one.
    phases_left: u32,
    /// Acquires per phase.
    per_phase: u32,
    current: usize,
    rng: SplitMix64,
    state: State,
}

impl AppProgram {
    fn pick_lock(&mut self) -> usize {
        let total = self.drivers.len();
        if total == self.hot_locks || self.rng.next_below(1000) < u64::from(self.hot_per_mille) {
            (self.rng.next_below(self.hot_locks as u64)) as usize
        } else {
            self.hot_locks + self.rng.next_below((total - self.hot_locks) as u64) as usize
        }
    }

    fn cs_lines(&self) -> u32 {
        if self.current < self.hot_locks {
            self.cs_lines_hot
        } else {
            self.cs_lines_cold
        }
    }

    fn drive(&mut self, r: DriveResult, ctx: &mut CpuCtx<'_>) -> Command {
        match r {
            DriveResult::Busy(cmd) => cmd,
            DriveResult::AcquireDone => {
                self.state = State::Cs { line: 0 };
                Command::Write(self.data[self.current][0], ctx.now)
            }
            DriveResult::ReleaseDone => {
                self.state = State::Think;
                let jitter = self.rng.next_below(self.think_cycles.max(2));
                Command::Delay((self.think_cycles / 2 + jitter).max(1))
            }
        }
    }
}

impl Program for AppProgram {
    fn resume(&mut self, ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command {
        loop {
            match self.state {
                State::Next => {
                    if self.phase_left == 0 {
                        if self.phases_left == 0 {
                            return Command::Done;
                        }
                        self.state = State::Barrier;
                        match self.barrier.start() {
                            BarrierStep::Op(cmd) => return cmd,
                            BarrierStep::Done => unreachable!("barrier starts with a command"),
                        }
                    }
                    self.phase_left -= 1;
                    self.current = self.pick_lock();
                    self.state = State::Acquiring;
                    let r = self.drivers[self.current].start_acquire(ctx);
                    return self.drive(r, ctx);
                }
                State::Acquiring => {
                    let r = self.drivers[self.current].on_result(ctx, last);
                    return self.drive(r, ctx);
                }
                State::Cs { line } => {
                    let next = line + 1;
                    if next < self.cs_lines() {
                        self.state = State::Cs { line: next };
                        return Command::Write(self.data[self.current][next as usize], ctx.now);
                    }
                    self.state = State::Releasing;
                    let r = self.drivers[self.current].start_release(ctx);
                    return self.drive(r, ctx);
                }
                State::Releasing => {
                    let r = self.drivers[self.current].on_result(ctx, last);
                    return self.drive(r, ctx);
                }
                State::Think => {
                    self.state = State::Next;
                    continue;
                }
                State::Barrier => match self.barrier.resume(last) {
                    BarrierStep::Op(cmd) => return cmd,
                    BarrierStep::Done => {
                        self.phases_left -= 1;
                        self.phase_left = self.per_phase;
                        self.state = State::Next;
                        continue;
                    }
                },
            }
        }
    }
}

/// Runs `model` under `cfg` and reports paper-facing metrics.
///
/// # Panics
///
/// Panics if `cfg.threads` exceeds the machine's CPUs or the model was not
/// given behavioural parameters (`hot_per_mille == 0`, i.e. a non-studied
/// Table 3 row).
pub fn run_app(model: &AppModel, cfg: &AppRunConfig) -> AppReport {
    assert!(
        model.hot_per_mille > 0,
        "{} is not a studied application model",
        model.name
    );
    let mut machine = Machine::new(cfg.machine.clone());
    let topo = Arc::clone(machine.topology());
    assert!(
        cfg.threads > 0 && cfg.threads <= topo.num_cpus(),
        "invalid thread count {}",
        cfg.threads
    );

    let gt = GtSlots::alloc(machine.mem_mut(), &topo);
    let lock_count = model
        .hot_locks
        .max(1)
        .saturating_add((model.total_locks.saturating_sub(model.hot_locks)).min(MAX_COLD_LOCKS));
    // Locks and their data, homes striped across nodes like a real
    // first-touch allocation.
    let mut locks: Vec<Box<dyn SimLock>> = Vec::with_capacity(lock_count);
    let mut data: Vec<Vec<Addr>> = Vec::with_capacity(lock_count);
    for i in 0..lock_count {
        let home = NodeId(i % topo.num_nodes());
        locks.push(build_lock(
            cfg.kind,
            machine.mem_mut(),
            &topo,
            &gt,
            home,
            &cfg.params,
        ));
        let lines = if i < model.hot_locks {
            model.cs_lines_hot
        } else {
            model.cs_lines_cold
        };
        data.push(machine.mem_mut().alloc_array(home, lines.max(1) as usize));
    }
    let data = Arc::new(data);

    let total = ((model.total_acquires as f64 * cfg.scale) as u64).max(cfg.threads as u64);
    let per_thread = (total / cfg.threads as u64) as u32;
    let per_phase = (per_thread / model.phases.max(1)).max(1);
    let barrier = SimBarrier::alloc(machine.mem_mut(), NodeId(0), cfg.threads as u64);

    let mut seed = SplitMix64::new(cfg.machine.seed ^ 0xA44A);
    for cpu in topo.round_robin_binding(cfg.threads) {
        let node = topo.node_of(cpu);
        let drivers = locks
            .iter()
            .enumerate()
            .map(|(i, l)| SessionDriver::new(l.session(cpu, node)).with_lock_index(i))
            .collect();
        machine.add_program(
            cpu,
            Box::new(AppProgram {
                drivers,
                data: Arc::clone(&data),
                hot_locks: model.hot_locks,
                hot_per_mille: model.hot_per_mille,
                cs_lines_hot: model.cs_lines_hot,
                cs_lines_cold: model.cs_lines_cold,
                think_cycles: model.think_cycles,
                barrier: BarrierClient::new(barrier),
                phase_left: per_phase,
                phases_left: model.phases.max(1) - 1,
                per_phase,
                current: 0,
                rng: seed.split(),
                state: State::Next,
            }),
        );
    }

    machine.run(cfg.cycle_limit);
    let report = machine.into_report();
    let acquires: u64 = report.lock_traces.iter().map(|t| t.acquisitions).sum();
    AppReport {
        name: model.name,
        kind: cfg.kind,
        threads: cfg.threads,
        seconds: report.seconds(),
        finished: report.finished_all,
        traffic: report.traffic,
        acquires,
        hot_handoff: report.lock_traces.first().and_then(|t| t.handoff_ratio()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(kind: LockKind) -> AppRunConfig {
        AppRunConfig {
            kind,
            machine: MachineConfig::wildfire(2, 4),
            threads: 8,
            scale: 0.004,
            ..AppRunConfig::default()
        }
    }

    #[test]
    fn table3_matches_paper_statistics() {
        let rows = table3();
        assert_eq!(rows.len(), 14);
        assert_eq!(rows.iter().filter(|r| r.studied).count(), 7);
        let ray = app_by_name("raytrace").unwrap();
        assert_eq!(ray.total_locks, 35);
        assert_eq!(ray.lock_calls, 366_450);
        let fmm = app_by_name("FMM").unwrap();
        assert_eq!(fmm.total_locks, 2_052);
        assert!(app_by_name("Doom").is_none());
    }

    #[test]
    fn studied_apps_all_run() {
        for app in studied_apps() {
            let r = run_app(&app, &tiny_cfg(LockKind::HboGt));
            assert!(r.finished, "{} stuck", app.name);
            assert!(r.acquires > 0, "{}", app.name);
        }
    }

    #[test]
    fn apps_survive_fault_injection() {
        use nucasim::{FaultConfig, HolderPreemptConfig, SlowNodeConfig};

        let faults = FaultConfig::none()
            .with_holder_preempt(HolderPreemptConfig {
                per_mille: 100,
                quantum: 25_000,
            })
            .with_slow_node(SlowNodeConfig { node: 1, factor: 3 });
        let mut cfg = tiny_cfg(LockKind::HboGt);
        cfg.machine = cfg.machine.with_faults(faults);
        let ray = app_by_name("Raytrace").unwrap();
        let faulted = run_app(&ray, &cfg);
        assert!(faulted.finished, "faulted raytrace stuck");
        let again = run_app(&ray, &cfg);
        assert_eq!(faulted.seconds, again.seconds, "faulted app run not reproducible");
        let clean = run_app(&ray, &tiny_cfg(LockKind::HboGt));
        assert!(
            faulted.seconds > clean.seconds,
            "faults did not slow the run: {} vs {}",
            faulted.seconds,
            clean.seconds
        );
    }

    #[test]
    #[should_panic(expected = "not a studied application")]
    fn non_studied_app_rejected() {
        let fft = app_by_name("FFT").unwrap();
        let _ = run_app(&fft, &tiny_cfg(LockKind::Tatas));
    }

    #[test]
    fn raytrace_nuca_beats_tatas() {
        let ray = app_by_name("Raytrace").unwrap();
        let tatas = run_app(&ray, &tiny_cfg(LockKind::Tatas));
        let hbo = run_app(&ray, &tiny_cfg(LockKind::HboGt));
        assert!(tatas.finished && hbo.finished);
        assert!(
            hbo.seconds < tatas.seconds,
            "HBO_GT {:.4}s vs TATAS {:.4}s",
            hbo.seconds,
            tatas.seconds
        );
    }

    #[test]
    fn fixed_problem_size_scales_down_per_thread() {
        let vol = app_by_name("Volrend").unwrap();
        let mut cfg = tiny_cfg(LockKind::TatasExp);
        cfg.scale = 0.02;
        let eight = run_app(&vol, &cfg);
        cfg.threads = 1;
        let one = run_app(&vol, &cfg);
        // Same total work, so 1-thread and 8-thread acquire counts are
        // close (rounding aside).
        let ratio = one.acquires as f64 / eight.acquires as f64;
        assert!((0.8..=1.3).contains(&ratio), "ratio {ratio}");
        assert!(one.seconds > eight.seconds, "parallelism speeds it up");
    }

    #[test]
    fn deterministic_runs() {
        let chol = app_by_name("Cholesky").unwrap();
        let a = run_app(&chol, &tiny_cfg(LockKind::Clh));
        let b = run_app(&chol, &tiny_cfg(LockKind::Clh));
        assert_eq!(a.seconds, b.seconds);
        assert_eq!(a.traffic, b.traffic);
    }
}

//! Lockserver: a sharded lock-table service at 10^6-object scale.
//!
//! The paper's microbenchmarks pound a single lock from a fixed set of
//! threads. Real lock *services* (a DLM, a database lock manager) look
//! different: requests for a million lockable objects arrive in bursts
//! whether or not the server has caught up, hash onto a modest number of
//! shard locks, and the interesting metrics are request-latency tails and
//! goodput under overload — not iteration throughput.
//!
//! Three design points matter here:
//!
//! - **Sharding.** Objects hash onto `shards` locks of the swept
//!   [`LockKind`]; the critical section touches the object's word. Only
//!   the shard locks are real [`SimLock`]s — a million queue locks would
//!   need two qnode words per CPU *each* — while per-object statistics go
//!   through the sparse [`nucasim::LockTally`] tier (lock index
//!   `shards + key`), which is what keeps 10^6 objects affordable.
//! - **Open-loop arrivals.** Each CPU draws a deterministic schedule of
//!   request batches (exponential gaps, geometric-ish batch sizes) and
//!   *timestamps requests by that schedule*, not by when the server got
//!   to them. Latency is `completion − scheduled arrival`, so queueing
//!   delay under overload is visible instead of silently absorbed, and
//!   goodput (fraction served within the SLO) degrades honestly.
//! - **Reader/writer mix.** `write_pct` of requests write the object
//!   word; the rest read it. Readers still take the shard lock exclusively
//!   (this models a simple DLM, not an RW lock) but generate different
//!   coherence traffic on the object line.
//!
//! Determinism: all randomness (keys, mixes, schedules) comes from
//! [`SplitMix64`] streams split off the machine seed, so a run is a pure
//! function of its config — the experiments crate byte-compares sweep
//! TSVs across `--jobs` and `--sched` on exactly this property.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use hbo_locks::LockKind;
use nuca_topology::NodeId;
use nucasim::{
    Addr, Command, CpuCtx, Histogram, Machine, MachineConfig, Program, SimReport, SplitMix64,
};
use nucasim_locks::{build_lock, DriveResult, GtSlots, SessionDriver, SimLockParams};

use crate::zipf::Zipfian;

/// Configuration of one lockserver run.
#[derive(Debug, Clone)]
pub struct LockServerConfig {
    /// Shard-lock algorithm under test.
    pub kind: LockKind,
    /// Machine description. Its `hot_locks` bound is overridden to
    /// `shards` for the run, so shard locks keep full histograms while
    /// object indices tally sparsely.
    pub machine: MachineConfig,
    /// Server threads, bound round-robin across nodes.
    pub threads: usize,
    /// Shard locks the object space hashes onto.
    pub shards: usize,
    /// Lockable objects. Object `k` hashes to shard `k % shards`; its
    /// word lives in a contiguous span homed round-robin across nodes.
    pub objects: usize,
    /// Zipf skew of the key popularity distribution, in `(0, 1)`
    /// (YCSB-style; 0.99 is the classic hot-key mix).
    pub zipf_theta: f64,
    /// Percent of requests that write the object word (the rest read).
    pub write_pct: u32,
    /// Requests each thread must serve.
    pub requests: u32,
    /// Mean gap between arrival batches, in cycles. Smaller means a
    /// hotter offered load; well below the per-request service time it
    /// drives the server into overload.
    pub mean_gap: u64,
    /// Maximum batch size: each arrival event brings 1..=burst requests
    /// at the same timestamp (burstiness knob).
    pub burst: u32,
    /// Latency SLO in cycles; requests completing within it count toward
    /// goodput.
    pub slo: u64,
    /// Shard-lock tunables.
    pub params: SimLockParams,
    /// Simulated-cycle budget; runs exceeding it report `finished=false`.
    pub cycle_limit: u64,
}

impl Default for LockServerConfig {
    fn default() -> Self {
        LockServerConfig {
            kind: LockKind::HboGt,
            machine: MachineConfig::wildfire(2, 14),
            threads: 28,
            shards: 16,
            objects: 4096,
            zipf_theta: 0.99,
            write_pct: 50,
            requests: 50,
            mean_gap: 30_000,
            burst: 4,
            slo: 400_000,
            params: SimLockParams::default(),
            cycle_limit: 50_000_000_000,
        }
    }
}

/// Request-level statistics shared by every server thread of one machine.
#[derive(Debug, Default)]
pub struct RequestStats {
    /// Request latency (scheduled arrival → completion), in cycles.
    pub latency: Histogram,
    /// Requests served.
    pub served: u64,
    /// Requests served within the SLO.
    pub within_slo: u64,
    /// Requests served per node (index = node id).
    pub node_served: Vec<u64>,
    /// Write requests served.
    pub writes: u64,
}

/// Paper-facing metrics of one lockserver run.
#[derive(Debug, Clone)]
pub struct LockServerReport {
    /// Algorithm label.
    pub kind: LockKind,
    /// Whether every thread served its quota within the cycle budget.
    pub finished: bool,
    /// Wall-clock of the run in nanoseconds.
    pub elapsed_ns: u64,
    /// Requests served.
    pub served: u64,
    /// Write requests among those served.
    pub writes: u64,
    /// Median request latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile request latency, ns.
    pub p99_ns: u64,
    /// 99.9th-percentile request latency, ns.
    pub p999_ns: u64,
    /// Fraction of requests served within the SLO, in percent.
    pub goodput_pct: f64,
    /// Requests served per node.
    pub node_served: Vec<u64>,
    /// Cross-node fairness: min node share over max node share (1.0 is
    /// perfectly even; NUCA-blind queue locks approach it, throughput-
    /// greedy locks trade it away).
    pub fairness: f64,
    /// Distinct objects that were actually locked.
    pub objects_touched: usize,
    /// Acquisitions of the hottest single object.
    pub hottest_object_acquires: u64,
    /// Raw simulation report (shard traces in `lock_traces`, per-object
    /// tallies in `lock_tallies`).
    pub sim: SimReport,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Between requests: draw the next arrival and sleep until it is due.
    Arrive,
    /// The drawn request is due now: start the shard-lock acquisition.
    Due,
    /// Shard-lock acquisition in flight.
    Acquiring,
    /// Object word access in flight (inside the critical section).
    Touching,
    /// Shard-lock release in flight.
    Releasing,
}

struct ServerProgram {
    /// One driver per shard lock (requests hop between shards).
    drivers: Vec<SessionDriver>,
    /// Object word `k` is `object_base[k % nodes].offset(k / nodes)`.
    object_spans: Arc<[Addr]>,
    zipf: Arc<Zipfian>,
    stats: Rc<RefCell<RequestStats>>,
    rng: SplitMix64,
    shards: usize,
    write_pct: u32,
    requests_left: u32,
    mean_gap: u64,
    burst: u32,
    slo: u64,
    /// Timestamp of the current arrival batch.
    batch_time: u64,
    /// Requests still due in the current batch.
    batch_left: u32,
    /// Scheduled arrival of the in-flight request.
    arrival: u64,
    cur_key: u64,
    cur_shard: usize,
    cur_write: bool,
    state: State,
}

impl ServerProgram {
    /// Advances the open-loop schedule and returns the next request's
    /// scheduled arrival time. Arrivals never depend on service progress:
    /// the batch clock advances by exponential gaps regardless of `now`.
    fn next_arrival(&mut self) -> u64 {
        if self.batch_left == 0 {
            self.batch_time += self.rng.next_exp(self.mean_gap);
            self.batch_left = 1 + (self.rng.next_below(u64::from(self.burst))) as u32;
        }
        self.batch_left -= 1;
        self.batch_time
    }

    fn object_word(&self, key: u64) -> Addr {
        let nodes = self.object_spans.len() as u64;
        self.object_spans[(key % nodes) as usize].offset((key / nodes) as usize)
    }

    /// Handles a driver step during acquisition: pass through busy
    /// commands, enter the critical section on success.
    fn step_acquire(&mut self, r: DriveResult) -> Command {
        match r {
            DriveResult::Busy(cmd) => cmd,
            DriveResult::AcquireDone => {
                self.state = State::Touching;
                let word = self.object_word(self.cur_key);
                if self.cur_write {
                    Command::Write(word, self.cur_key + 1)
                } else {
                    Command::Read(word)
                }
            }
            DriveResult::ReleaseDone => unreachable!("release result while acquiring"),
        }
    }

    /// Handles a driver step during release; on completion records the
    /// request and returns `None` so the state loop starts the next one.
    fn step_release(&mut self, r: DriveResult, ctx: &mut CpuCtx<'_>) -> Option<Command> {
        match r {
            DriveResult::Busy(cmd) => Some(cmd),
            DriveResult::ReleaseDone => {
                let latency = ctx.now - self.arrival;
                {
                    let mut s = self.stats.borrow_mut();
                    s.latency.record(latency);
                    s.served += 1;
                    if latency <= self.slo {
                        s.within_slo += 1;
                    }
                    if s.node_served.len() <= ctx.node.index() {
                        s.node_served.resize(ctx.node.index() + 1, 0);
                    }
                    s.node_served[ctx.node.index()] += 1;
                    if self.cur_write {
                        s.writes += 1;
                    }
                }
                // Per-object statistics: cold-tier tally at index
                // `shards + key` (trace-free, so the profiler's dense
                // per-lock state never sees sparse indices).
                let obj = self.shards + self.cur_key as usize;
                ctx.tally_acquire(obj);
                ctx.record_acquire_latency(obj, latency);
                self.state = State::Arrive;
                None
            }
            DriveResult::AcquireDone => unreachable!("acquire result while releasing"),
        }
    }
}

impl Program for ServerProgram {
    fn resume(&mut self, ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command {
        loop {
            match self.state {
                State::Arrive => {
                    if self.requests_left == 0 {
                        return Command::Done;
                    }
                    self.requests_left -= 1;
                    self.arrival = self.next_arrival();
                    self.cur_key = self.zipf.sample(&mut self.rng);
                    self.cur_shard = (self.cur_key % self.shards as u64) as usize;
                    self.cur_write = self.rng.next_below(100) < u64::from(self.write_pct);
                    self.state = State::Due;
                    if self.arrival > ctx.now {
                        // Ahead of the offered load: idle until the
                        // request is due. Under overload `arrival` is
                        // already in the past and we fall straight
                        // through — the backlog is what the latency
                        // histogram then shows.
                        return Command::Delay(self.arrival - ctx.now);
                    }
                }
                State::Due => {
                    self.state = State::Acquiring;
                    let r = self.drivers[self.cur_shard].start_acquire(ctx);
                    return self.step_acquire(r);
                }
                State::Acquiring => {
                    let r = self.drivers[self.cur_shard].on_result(ctx, last);
                    return self.step_acquire(r);
                }
                State::Touching => {
                    self.state = State::Releasing;
                    let r = self.drivers[self.cur_shard].start_release(ctx);
                    if let Some(cmd) = self.step_release(r, ctx) {
                        return cmd;
                    }
                }
                State::Releasing => {
                    let r = self.drivers[self.cur_shard].on_result(ctx, last);
                    if let Some(cmd) = self.step_release(r, ctx) {
                        return cmd;
                    }
                }
            }
        }
    }
}

/// Builds and runs the lockserver, returning the service-level metrics.
///
/// # Panics
///
/// Panics if `shards` is zero, `objects < shards`, `threads` exceeds the
/// machine's CPU count, or `zipf_theta` is outside `(0, 1)`.
pub fn run_lockserver(cfg: &LockServerConfig) -> LockServerReport {
    run_lockserver_inner(cfg, cfg.shards)
}

/// The worker behind [`run_lockserver`], with an explicit dense/sparse
/// statistics boundary. Production runs pass `shards` (objects tally
/// sparsely); the agreement tests pass `shards + objects` to force every
/// object through the dense path and compare.
fn run_lockserver_inner(cfg: &LockServerConfig, hot_locks: usize) -> LockServerReport {
    assert!(cfg.shards > 0, "lockserver needs at least one shard");
    assert!(
        cfg.objects >= cfg.shards,
        "{} objects cannot cover {} shards",
        cfg.objects,
        cfg.shards
    );
    let mut machine = Machine::new(cfg.machine.clone().with_hot_locks(hot_locks));
    machine.set_profile_label(cfg.kind.as_str());
    let topo = Arc::clone(machine.topology());
    assert!(
        cfg.threads <= topo.num_cpus(),
        "{} threads exceed {} CPUs",
        cfg.threads,
        topo.num_cpus()
    );
    let nodes = topo.num_nodes();
    let gt = GtSlots::alloc(machine.mem_mut(), &topo);
    // Shard locks, homed round-robin across nodes so no node owns every
    // lock line.
    let locks: Vec<_> = (0..cfg.shards)
        .map(|s| {
            build_lock(
                cfg.kind,
                machine.mem_mut(),
                &topo,
                &gt,
                NodeId(s % nodes),
                &cfg.params,
            )
        })
        .collect();
    // Object words: one contiguous span per node, object k homed on node
    // k % nodes. Spans avoid a 10^6-entry Vec<Addr> of handles.
    let per_node = cfg.objects.div_ceil(nodes);
    machine.mem_mut().reserve(per_node * nodes);
    let spans: Arc<[Addr]> = (0..nodes)
        .map(|n| machine.mem_mut().alloc_span(NodeId(n), per_node))
        .collect::<Vec<_>>()
        .into();
    let zipf = Arc::new(Zipfian::new(cfg.objects as u64, cfg.zipf_theta));
    let stats = Rc::new(RefCell::new(RequestStats::default()));

    let mut seed = SplitMix64::new(cfg.machine.seed ^ 0x10C5);
    for cpu in topo.round_robin_binding(cfg.threads) {
        let node = topo.node_of(cpu);
        let drivers = locks
            .iter()
            .enumerate()
            .map(|(s, l)| SessionDriver::new(l.session(cpu, node)).with_lock_index(s))
            .collect();
        machine.add_program(
            cpu,
            Box::new(ServerProgram {
                drivers,
                object_spans: Arc::clone(&spans),
                zipf: Arc::clone(&zipf),
                stats: Rc::clone(&stats),
                rng: seed.split(),
                shards: cfg.shards,
                write_pct: cfg.write_pct,
                requests_left: cfg.requests,
                mean_gap: cfg.mean_gap.max(1),
                burst: cfg.burst.max(1),
                slo: cfg.slo,
                batch_time: 0,
                batch_left: 0,
                arrival: 0,
                cur_key: 0,
                cur_shard: 0,
                cur_write: false,
                state: State::Arrive,
            }),
        );
    }
    machine.run(cfg.cycle_limit);
    let sim = machine.into_report();
    let stats = Rc::try_unwrap(stats)
        .expect("machine dropped, no other stats holders")
        .into_inner();

    let pct = |p: f64| stats.latency.percentile(p).map_or(0, nucasim::cycles_to_ns);
    let mut node_served = stats.node_served.clone();
    node_served.resize(nodes, 0);
    let fairness = match (node_served.iter().min(), node_served.iter().max()) {
        (Some(&min), Some(&max)) if max > 0 => min as f64 / max as f64,
        _ => 0.0,
    };
    let goodput_pct = if stats.served == 0 {
        0.0
    } else {
        100.0 * stats.within_slo as f64 / stats.served as f64
    };
    let hottest_object_acquires = sim
        .lock_tallies
        .iter()
        .map(|(_, t)| t.acquisitions)
        .chain(
            // Dense-path runs (agreement tests) carry objects as traces.
            sim.lock_traces.iter().skip(cfg.shards).map(|t| t.acquisitions),
        )
        .max()
        .unwrap_or(0);
    let objects_touched = sim.lock_tallies.len()
        + sim
            .lock_traces
            .iter()
            .skip(cfg.shards)
            .filter(|t| t.acquisitions > 0)
            .count();
    LockServerReport {
        kind: cfg.kind,
        finished: sim.finished_all,
        elapsed_ns: nucasim::cycles_to_ns(sim.end_time),
        served: stats.served,
        writes: stats.writes,
        p50_ns: pct(50.0),
        p99_ns: pct(99.0),
        p999_ns: pct(99.9),
        goodput_pct,
        node_served,
        fairness,
        objects_touched,
        hottest_object_acquires,
        sim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: LockKind) -> LockServerConfig {
        LockServerConfig {
            kind,
            machine: MachineConfig::wildfire(2, 4),
            threads: 8,
            shards: 4,
            objects: 200,
            requests: 30,
            mean_gap: 20_000,
            ..LockServerConfig::default()
        }
    }

    #[test]
    fn serves_all_requests_and_reports_tails() {
        let r = run_lockserver(&quick(LockKind::HboGt));
        assert!(r.finished, "hit the cycle limit");
        assert_eq!(r.served, 8 * 30);
        assert!(r.p50_ns > 0);
        assert!(r.p50_ns <= r.p99_ns && r.p99_ns <= r.p999_ns);
        assert!(r.goodput_pct > 0.0 && r.goodput_pct <= 100.0);
        assert!(r.objects_touched > 0);
        assert!(r.hottest_object_acquires >= 2, "zipf never repeated a key");
        // Shard locks are hot-tier; objects never leak into the dense
        // traces in a production run.
        assert!(r.sim.lock_traces.len() <= 4);
        assert_eq!(
            r.sim.lock_tallies.iter().map(|(_, t)| t.acquisitions).sum::<u64>(),
            r.served
        );
        let node_sum: u64 = r.node_served.iter().sum();
        assert_eq!(node_sum, r.served);
        assert!(r.fairness > 0.0 && r.fairness <= 1.0);
    }

    #[test]
    fn tiered_stats_agree_with_dense_path_for_every_lock_kind() {
        // Satellite property: per-object tallies from the sparse tier must
        // equal what the dense traces would have recorded, across seeds and
        // lock kinds — and tiering must not perturb the simulation itself.
        for &kind in hbo_locks::LockCatalog::kinds() {
            for seed in [1u64, 99] {
                let mut cfg = quick(kind);
                cfg.machine = cfg.machine.with_seed(seed);
                cfg.requests = 15;
                let tiered = run_lockserver_inner(&cfg, cfg.shards);
                let dense = run_lockserver_inner(&cfg, cfg.shards + cfg.objects);
                assert_eq!(
                    tiered.sim.end_time, dense.sim.end_time,
                    "{kind} seed {seed}: tiering changed the simulation"
                );
                assert_eq!(tiered.served, dense.served);
                assert_eq!(tiered.p99_ns, dense.p99_ns);
                assert!(
                    !tiered.sim.lock_tallies.is_empty(),
                    "{kind} seed {seed}: no cold-tier tallies recorded"
                );
                assert!(dense.sim.lock_tallies.is_empty());
                for &(idx, tally) in &tiered.sim.lock_tallies {
                    let trace = &dense.sim.lock_traces[idx];
                    assert_eq!(
                        trace.tally(),
                        tally,
                        "{kind} seed {seed}: object {idx} disagrees between tiers"
                    );
                }
            }
        }
    }

    #[test]
    fn overload_degrades_goodput_and_tails() {
        let mut hot = quick(LockKind::Mcs);
        hot.mean_gap = 50; // offered load far above service capacity
        hot.burst = 8;
        hot.requests = 120;
        hot.slo = 50_000;
        let mut cool = quick(LockKind::Mcs);
        cool.mean_gap = 200_000;
        cool.requests = 120;
        cool.slo = 50_000;
        let hot_r = run_lockserver(&hot);
        let cool_r = run_lockserver(&cool);
        assert!(
            hot_r.p99_ns > cool_r.p99_ns,
            "overload p99 {} vs idle p99 {}",
            hot_r.p99_ns,
            cool_r.p99_ns
        );
        assert!(
            hot_r.goodput_pct < cool_r.goodput_pct,
            "overload goodput {:.1}% vs idle {:.1}%",
            hot_r.goodput_pct,
            cool_r.goodput_pct
        );
    }

    #[test]
    fn write_mix_is_respected() {
        let mut ro = quick(LockKind::TatasExp);
        ro.write_pct = 0;
        let r = run_lockserver(&ro);
        assert!(r.finished);
        assert_eq!(r.writes, 0, "read-only mix issued writes");

        let mut wo = quick(LockKind::TatasExp);
        wo.write_pct = 100;
        let w = run_lockserver(&wo);
        assert!(w.finished);
        assert_eq!(w.writes, w.served, "write-only mix issued reads");

        let mut mixed = quick(LockKind::TatasExp);
        mixed.write_pct = 50;
        let m = run_lockserver(&mixed);
        assert!(m.writes > 0 && m.writes < m.served, "{}/{}", m.writes, m.served);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = run_lockserver(&quick(LockKind::Clh));
        let b = run_lockserver(&quick(LockKind::Clh));
        assert_eq!(a.sim.end_time, b.sim.end_time);
        assert_eq!(a.p999_ns, b.p999_ns);
        assert_eq!(a.node_served, b.node_served);
        assert_eq!(a.sim.lock_tallies, b.sim.lock_tallies);
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn fewer_objects_than_shards_rejected() {
        let mut cfg = quick(LockKind::Tatas);
        cfg.objects = 2;
        let _ = run_lockserver(&cfg);
    }
}


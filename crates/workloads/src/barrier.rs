//! A simulated barrier built from one counter word and one flag word.
//!
//! The application models synchronize phases with barriers (as the real
//! SPLASH-2 programs do). The barrier uses monotonic episode numbers
//! instead of sense reversal: crossing episode `k` means incrementing the
//! arrival counter and, if last, publishing `k` in the flag; everyone else
//! sleeps until the flag reaches `k`.

use nuca_topology::NodeId;
use nucasim::{Addr, Command, MemorySystem};

/// Shared barrier state (allocate once, copy into every program).
#[derive(Debug, Clone, Copy)]
pub struct SimBarrier {
    arrive: Addr,
    flag: Addr,
    total: u64,
}

impl SimBarrier {
    /// Allocates barrier words homed in `home` for `total` participants.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn alloc(mem: &mut MemorySystem, home: NodeId, total: u64) -> SimBarrier {
        assert!(total > 0, "barrier needs at least one participant");
        SimBarrier {
            arrive: mem.alloc(home),
            flag: mem.alloc(home),
            total,
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> u64 {
        self.total
    }
}

/// Per-program barrier-crossing state machine. Create one per program and
/// reuse it for every episode.
#[derive(Debug, Clone)]
pub struct BarrierClient {
    barrier: SimBarrier,
    /// Episodes completed so far (the next crossing is `episode + 1`).
    episode: u64,
    state: BarState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BarState {
    Idle,
    Arrived,
    Publishing,
    Waiting,
}

/// What the client wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierStep {
    /// Execute this command, then call [`BarrierClient::resume`].
    Op(Command),
    /// The barrier episode completed.
    Done,
}

impl BarrierClient {
    /// Creates a client for `barrier`.
    pub fn new(barrier: SimBarrier) -> BarrierClient {
        BarrierClient {
            barrier,
            episode: 0,
            state: BarState::Idle,
        }
    }

    /// Begins crossing the next episode.
    ///
    /// # Panics
    ///
    /// Panics if a crossing is already in progress.
    pub fn start(&mut self) -> BarrierStep {
        assert_eq!(self.state, BarState::Idle, "barrier crossing in progress");
        self.state = BarState::Arrived;
        BarrierStep::Op(Command::FetchAdd {
            addr: self.barrier.arrive,
            delta: 1,
        })
    }

    /// Continues a crossing with the previous command's result.
    pub fn resume(&mut self, result: Option<u64>) -> BarrierStep {
        match self.state {
            BarState::Arrived => {
                let arrivals = result.expect("fetch_add returns old") + 1;
                let target = self.barrier.total * (self.episode + 1);
                if arrivals == target {
                    // Last arrival: release everyone.
                    self.state = BarState::Publishing;
                    BarrierStep::Op(Command::Write(self.barrier.flag, self.episode + 1))
                } else {
                    self.state = BarState::Waiting;
                    BarrierStep::Op(Command::WaitWhile {
                        addr: self.barrier.flag,
                        equals: self.episode,
                    })
                }
            }
            BarState::Publishing | BarState::Waiting => {
                self.episode += 1;
                self.state = BarState::Idle;
                BarrierStep::Done
            }
            BarState::Idle => panic!("barrier resume while idle"),
        }
    }

    /// Episodes this client has completed.
    pub fn episodes(&self) -> u64 {
        self.episode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuca_topology::CpuId;
    use nucasim::{CpuCtx, Machine, MachineConfig, Program};

    /// Crosses the barrier `rounds` times, writing the observed episode
    /// count into `out` at the end.
    struct Crosser {
        client: BarrierClient,
        rounds: u64,
        out: Addr,
        jitter: u64,
        state: u8, // 0 = think, 1 = crossing, 2 = writing out
    }

    impl Program for Crosser {
        fn resume(&mut self, _ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command {
            loop {
                match self.state {
                    0 => {
                        if self.client.episodes() == self.rounds {
                            self.state = 2;
                            return Command::Write(self.out, self.client.episodes());
                        }
                        self.state = 1;
                        match self.client.start() {
                            BarrierStep::Op(cmd) => return cmd,
                            BarrierStep::Done => continue,
                        }
                    }
                    1 => match self.client.resume(last) {
                        BarrierStep::Op(cmd) => return cmd,
                        BarrierStep::Done => {
                            self.state = 0;
                            return Command::Delay(self.jitter);
                        }
                    },
                    _ => return Command::Done,
                }
            }
        }
    }

    #[test]
    fn all_threads_cross_all_episodes() {
        let mut m = Machine::new(MachineConfig::wildfire(2, 3));
        let bar = SimBarrier::alloc(m.mem_mut(), NodeId(0), 6);
        let outs: Vec<Addr> = (0..6).map(|_| m.mem_mut().alloc(NodeId(0))).collect();
        for (i, cpu) in m.topology().clone().cpus().enumerate() {
            m.add_program(
                cpu,
                Box::new(Crosser {
                    client: BarrierClient::new(bar),
                    rounds: 5,
                    out: outs[i],
                    jitter: 10 + i as u64 * 37,
                    state: 0,
                }),
            );
        }
        let status = m.run(1_000_000_000);
        assert!(status.finished_all, "barrier deadlocked");
        let r = m.into_report();
        for out in outs {
            assert_eq!(r.final_value(out), 5);
        }
    }

    #[test]
    fn single_participant_barrier_is_trivial() {
        let mut m = Machine::new(MachineConfig::wildfire(1, 1));
        let bar = SimBarrier::alloc(m.mem_mut(), NodeId(0), 1);
        let out = m.mem_mut().alloc(NodeId(0));
        m.add_program(
            CpuId(0),
            Box::new(Crosser {
                client: BarrierClient::new(bar),
                rounds: 3,
                out,
                jitter: 5,
                state: 0,
            }),
        );
        let status = m.run(10_000_000);
        assert!(status.finished_all);
        let r = m.into_report();
        assert_eq!(r.final_value(out), 3);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let mut m = Machine::new(MachineConfig::wildfire(1, 1));
        let _ = SimBarrier::alloc(m.mem_mut(), NodeId(0), 0);
    }
}

//! Simulator TWA — ticket lock with a waiting array (Dice & Kogan,
//! ICPP 2019; arXiv:1810.01573).
//!
//! The ticket lock's handover storm comes from every waiter spinning on
//! `now_serving`. TWA parks **long-term** waiters (distance > 1) on a
//! hashed waiting-array slot instead; advancing `now_serving` disturbs
//! only the distance-1 waiter, and a slot bump promotes exactly one
//! long-term waiter to short-term spinning per handoff. Collisions cause
//! spurious wakeups — the woken waiter re-reads `now_serving` and
//! re-parks — never missed ones: a parker reads its slot *then*
//! re-checks the distance, so the promoting bump is observed in one
//! place or the other.
//!
//! One deliberate deviation from the published form: the promote bump is
//! issued by the **incoming** holder right before it enters, not by the
//! outgoing holder right after its `now_serving` store. The bump still
//! strictly follows the store (entry requires observing it), so the
//! missed-wake-freedom argument is unchanged, and the op count per
//! handoff is identical — but the `now_serving` store becomes the single
//! lock-transfer operation. That matters to the model checker, whose
//! mutual-exclusion accounting requires the grant to be the release's
//! final step; the published order would let the successor (correctly)
//! enter while the releaser still owed its bump, a false positive.

use hbo_locks::LockKind;
use nuca_topology::{CpuId, NodeId, Topology};
use nucasim::{Addr, Command, CpuCtx, MemorySystem};

use crate::{LockSession, SimLock, Step, TwaHash};

/// Default waiting-array slots. The real lock shares one 4096-slot array
/// across the process; the simulator scales it down but keeps the
/// collision semantics (two tickets `slots` apart share a slot). The
/// count and the ticket→slot hash are per-lock tunables
/// ([`crate::SimLockParams::twa_slots`] / `twa_hash`).
const WA_SLOTS: usize = 16;

/// Waiters at distance ≤ this spin on `now_serving`; further back parks
/// on the waiting array. The paper's threshold.
const LONG_TERM: u64 = 1;

/// TWA in simulated memory.
#[derive(Debug)]
pub struct SimTwa {
    next_ticket: Addr,
    now_serving: Addr,
    wa: Vec<Addr>,
    hash: TwaHash,
}

impl SimTwa {
    /// Allocates the lock words in `home` and the default-geometry
    /// (16-slot, mod-hashed) waiting array spread round-robin over the
    /// machine's nodes (it is global state, not lock-local, in the
    /// published design).
    pub fn alloc(mem: &mut MemorySystem, topo: &Topology, home: NodeId) -> SimTwa {
        SimTwa::alloc_with(mem, topo, home, WA_SLOTS, TwaHash::Mod)
    }

    /// Like [`SimTwa::alloc`] with an explicit waiting-array geometry:
    /// `slots` array words and the ticket→slot mapping `hash`.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn alloc_with(
        mem: &mut MemorySystem,
        topo: &Topology,
        home: NodeId,
        slots: usize,
        hash: TwaHash,
    ) -> SimTwa {
        assert!(slots >= 1, "TWA needs at least one waiting-array slot");
        let nodes: Vec<NodeId> = topo.nodes().collect();
        let wa = (0..slots)
            .map(|i| mem.alloc(nodes[i % nodes.len()]))
            .collect();
        SimTwa {
            next_ticket: mem.alloc(home),
            now_serving: mem.alloc(home),
            wa,
            hash,
        }
    }
}

impl SimLock for SimTwa {
    fn session(&self, _cpu: CpuId, _node: NodeId) -> Box<dyn LockSession> {
        Box::new(TwaSession {
            next_ticket: self.next_ticket,
            now_serving: self.now_serving,
            wa: self.wa.clone(),
            hash: self.hash,
            ticket: 0,
            seen: 0,
            state: TwaState::Idle,
        })
    }

    fn kind(&self) -> LockKind {
        LockKind::Twa
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TwaState {
    Idle,
    TakeTicket,
    /// Has the latest `now_serving` value; dispatches by distance.
    CheckServing,
    /// Reading the waiting-array slot before parking.
    RdSlot,
    /// Re-checking `now_serving` after the slot read (missed-wake guard).
    ReCheck,
    /// Parked on the waiting-array slot.
    LongWait,
    /// Entry bump: promoting the waiter that becomes distance-1 when we
    /// release (see the module docs on bump placement).
    EntryBump,
    Holding,
    WrServing,
}

#[derive(Debug)]
struct TwaSession {
    next_ticket: Addr,
    now_serving: Addr,
    wa: Vec<Addr>,
    hash: TwaHash,
    ticket: u64,
    /// Slot value read before parking.
    seen: u64,
    state: TwaState,
}

impl TwaSession {
    fn slot_of(&self, ticket: u64) -> Addr {
        self.wa[self.hash.slot(ticket, self.wa.len())]
    }

    /// Dispatch on a freshly read `now_serving` value.
    fn on_serving(&mut self, serving: u64) -> Step {
        let distance = self.ticket.wrapping_sub(serving);
        if distance == 0 {
            // Our turn. Promote the waiter LONG_TERM behind us from the
            // array to short-term spinning, then enter.
            self.state = TwaState::EntryBump;
            Step::Op(Command::FetchAdd {
                addr: self.slot_of(self.ticket.wrapping_add(LONG_TERM)),
                delta: 1,
            })
        } else if distance <= LONG_TERM {
            // Short-term: we are next; spin on `now_serving` itself.
            self.state = TwaState::CheckServing;
            Step::Op(Command::WaitWhile {
                addr: self.now_serving,
                equals: serving,
            })
        } else {
            self.state = TwaState::RdSlot;
            Step::Op(Command::Read(self.slot_of(self.ticket)))
        }
    }
}

impl LockSession for TwaSession {
    fn start_acquire(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, TwaState::Idle);
        self.state = TwaState::TakeTicket;
        Step::Op(Command::FetchAdd {
            addr: self.next_ticket,
            delta: 1,
        })
    }

    fn resume_acquire(&mut self, _ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            TwaState::TakeTicket => {
                self.ticket = result.expect("fetch_add returns old");
                self.state = TwaState::CheckServing;
                Step::Op(Command::Read(self.now_serving))
            }
            TwaState::CheckServing => {
                let serving = result.expect("read/wait returns value");
                self.on_serving(serving)
            }
            TwaState::RdSlot => {
                self.seen = result.expect("read returns value");
                self.state = TwaState::ReCheck;
                Step::Op(Command::Read(self.now_serving))
            }
            TwaState::ReCheck => {
                let serving = result.expect("read returns value");
                if self.ticket.wrapping_sub(serving) <= LONG_TERM {
                    self.on_serving(serving)
                } else {
                    self.state = TwaState::LongWait;
                    Step::Op(Command::WaitWhile {
                        addr: self.slot_of(self.ticket),
                        equals: self.seen,
                    })
                }
            }
            TwaState::LongWait => {
                // Woken (possibly spuriously, by a colliding bump):
                // re-read the ground truth.
                self.state = TwaState::CheckServing;
                Step::Op(Command::Read(self.now_serving))
            }
            TwaState::EntryBump => {
                self.state = TwaState::Holding;
                Step::Acquired
            }
            s => unreachable!("resume_acquire in state {s:?}"),
        }
    }

    fn start_release(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, TwaState::Holding);
        self.state = TwaState::WrServing;
        Step::Op(Command::Write(self.now_serving, self.ticket.wrapping_add(1)))
    }

    fn resume_release(&mut self, _ctx: &mut CpuCtx<'_>, _result: Option<u64>) -> Step {
        match self.state {
            // The store is the whole release: the promote bump for the
            // waiter that just became distance-1 is issued by the incoming
            // holder at entry (see the module docs).
            TwaState::WrServing => {
                self.state = TwaState::Idle;
                Step::Released
            }
            s => unreachable!("resume_release in state {s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{exclusion_test, uncontested_cost};

    #[test]
    fn mutual_exclusion() {
        exclusion_test(LockKind::Twa, 2, 2, 50);
    }

    #[test]
    fn mutual_exclusion_deep_queue() {
        // 8 CPUs: several waiters sit long-term on the array at once.
        exclusion_test(LockKind::Twa, 2, 4, 25);
    }

    #[test]
    fn remote_pair_costs_most() {
        // Table-1 ordering between same-node and remote-node holds; the
        // same-processor scenario is *not* asserted against same-node
        // because the release's waiting-array bump lands on a slot whose
        // node-round-robin home can dominate these tiny uncontested
        // costs either way.
        let c = uncontested_cost(LockKind::Twa);
        assert!(c.same_node < c.remote_node);
        assert!(c.same_processor < c.remote_node);
    }

    #[test]
    fn exclusion_holds_for_every_waiting_array_geometry() {
        // Slot count and hash change only *where* long-term waiters park
        // (and hence collision/false-sharing behavior), never correctness:
        // a 1-slot array degenerates to everyone colliding, 64 slots to
        // nobody colliding, and the stride hash scatters neighbours — the
        // counter must come out exact under all of them.
        use crate::testutil::exclusion_test_params;
        use crate::{SimLockParams, TwaHash};
        use nucasim::MachineConfig;

        for slots in [1usize, 4, 64] {
            for hash in TwaHash::ALL {
                let params = SimLockParams::default().with_twa(slots, hash);
                exclusion_test_params(
                    LockKind::Twa,
                    MachineConfig::wildfire(2, 3),
                    25,
                    &params,
                );
            }
        }
    }

    #[test]
    fn hashes_disagree_on_slots_but_not_collisions_mod_16() {
        use crate::TwaHash;
        // Stride (×7, coprime to any slot count) visits every slot exactly
        // once per `slots` consecutive tickets, like mod — same collision
        // rate — but adjacent tickets land 7 slots apart.
        let slots = 16;
        let mut seen_mod: Vec<usize> = (0..slots as u64).map(|t| TwaHash::Mod.slot(t, slots)).collect();
        let mut seen_str: Vec<usize> =
            (0..slots as u64).map(|t| TwaHash::Stride.slot(t, slots)).collect();
        assert_ne!(seen_mod, seen_str, "hashes must differ in placement");
        seen_mod.sort_unstable();
        seen_str.sort_unstable();
        assert_eq!(seen_mod, seen_str, "both are permutations of the array");
        assert_eq!(TwaHash::Stride.slot(0, slots).abs_diff(TwaHash::Stride.slot(1, slots)), 7);
    }

    #[test]
    fn ticket_fifo_is_preserved() {
        // TWA keeps the ticket lock's FIFO grant order, so handoffs under
        // symmetric contention are node-blind — far more remote traffic
        // than CNA's node-clustered handoffs on the same machine.
        let twa = exclusion_test(LockKind::Twa, 2, 3, 40);
        let cna = exclusion_test(LockKind::Cna, 2, 3, 40);
        let twa_h = twa.lock_traces[0].handoff_ratio().unwrap();
        let cna_h = cna.lock_traces[0].handoff_ratio().unwrap();
        assert!(
            twa_h > cna_h + 0.1,
            "TWA remote-handoff ratio {twa_h:.3} not clearly above CNA's {cna_h:.3}"
        );
    }
}

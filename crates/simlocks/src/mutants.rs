//! Deliberately broken lock state machines for validating correctness
//! tooling.
//!
//! These mutants reintroduce, on purpose, exactly the bugs the paper's
//! algorithms are engineered to avoid. They exist so the `nuca-mcheck`
//! model checker (and any future correctness harness) can prove it
//! *detects* protocol violations rather than vacuously passing: a checker
//! that accepts [`RacyTatas`] or [`LeakyHboGt`] is broken.
//!
//! Never use these outside tests and checker validation.

use hbo_locks::{BackoffConfig, LockKind};
use nuca_topology::{CpuId, NodeId, Topology};
use nucasim::{Addr, BackoffClass, Command, CpuCtx, MemorySystem};

use crate::cna::SimCna;
use crate::hbo::{tag, FREE};
use crate::hbo_gt::DUMMY;
use crate::{GtSlots, LockSession, SimBackoff, SimLock, Step};

const HELD: u64 = 1;

/// TATAS with the test-and-set race reintroduced: the "test" is a plain
/// read and the "set" a plain store, with a full interleaving point in
/// between. Two contenders can both observe the word free and both claim
/// it — the textbook check-then-act mutual-exclusion violation that the
/// atomic `tas` exists to close.
#[derive(Debug)]
pub struct RacyTatas {
    word: Addr,
}

impl RacyTatas {
    /// Allocates the lock word homed in `home`.
    pub fn alloc(mem: &mut MemorySystem, home: NodeId) -> RacyTatas {
        RacyTatas {
            word: mem.alloc(home),
        }
    }
}

impl SimLock for RacyTatas {
    fn session(&self, _cpu: CpuId, _node: NodeId) -> Box<dyn LockSession> {
        Box::new(RacySession {
            word: self.word,
            state: RacyState::Idle,
        })
    }

    fn kind(&self) -> LockKind {
        // Reported as TATAS: it is TATAS minus the atomicity.
        LockKind::Tatas
    }

    fn lock_word(&self) -> Option<Addr> {
        Some(self.word)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RacyState {
    Idle,
    /// Plain read of the lock word issued (the non-atomic "test").
    Checking,
    /// Plain store of `HELD` issued (the non-atomic "set").
    Claiming,
    /// Sleeping until the word stops reading `HELD`.
    Spinning,
    Holding,
    Releasing,
}

#[derive(Debug)]
struct RacySession {
    word: Addr,
    state: RacyState,
}

impl LockSession for RacySession {
    fn start_acquire(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, RacyState::Idle);
        self.state = RacyState::Checking;
        Step::Op(Command::Read(self.word))
    }

    fn resume_acquire(&mut self, _ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            RacyState::Checking => {
                if result == Some(FREE) {
                    // BUG: the claim is a separate, non-atomic store. Any
                    // schedule that interleaves another contender's check
                    // between this read and this write loses an update.
                    self.state = RacyState::Claiming;
                    Step::Op(Command::Write(self.word, HELD))
                } else {
                    self.state = RacyState::Spinning;
                    Step::Op(Command::WaitWhile {
                        addr: self.word,
                        equals: HELD,
                    })
                }
            }
            RacyState::Claiming => {
                self.state = RacyState::Holding;
                Step::Acquired
            }
            RacyState::Spinning => {
                // The word changed: re-run the (still racy) check.
                self.state = RacyState::Checking;
                Step::Op(Command::Read(self.word))
            }
            s => unreachable!("resume_acquire in state {s:?}"),
        }
    }

    fn start_release(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, RacyState::Holding);
        self.state = RacyState::Releasing;
        Step::Op(Command::Write(self.word, FREE))
    }

    fn resume_release(&mut self, _ctx: &mut CpuCtx<'_>, _result: Option<u64>) -> Step {
        debug_assert_eq!(self.state, RacyState::Releasing);
        self.state = RacyState::Idle;
        Step::Released
    }
}

/// HBO_GT that forgets to clear its node's `is_spinning` slot when its
/// remote spin succeeds (paper Fig. 1 line 44 deleted). The slot keeps
/// the lock's address forever, so the node's gate stays shut: later
/// contenders from that node block on the gate (deadlock), and even when
/// no contender remains the slot ends the run dirty — the GT-slot hygiene
/// property the checker verifies on every terminal state.
#[derive(Debug)]
pub struct LeakyHboGt {
    word: Addr,
    gt: GtSlots,
    local: BackoffConfig,
    remote: BackoffConfig,
}

impl LeakyHboGt {
    /// Allocates the lock word homed in `home`; `gt` supplies the shared
    /// per-node `is_spinning` words.
    pub fn alloc(
        mem: &mut MemorySystem,
        home: NodeId,
        gt: GtSlots,
        local: BackoffConfig,
        remote: BackoffConfig,
    ) -> LeakyHboGt {
        LeakyHboGt {
            word: mem.alloc(home),
            gt,
            local,
            remote,
        }
    }
}

impl SimLock for LeakyHboGt {
    fn session(&self, _cpu: CpuId, node: NodeId) -> Box<dyn LockSession> {
        Box::new(LeakySession {
            word: self.word,
            my_slot: self.gt.slot(node),
            my_tag: tag(node),
            local: self.local,
            remote: self.remote,
            backoff: SimBackoff::new(self.local),
            state: LeakyState::Idle,
        })
    }

    fn kind(&self) -> LockKind {
        LockKind::HboGt
    }

    fn lock_word(&self) -> Option<Addr> {
        Some(self.word)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeakyState {
    Idle,
    Gate,
    GateCas,
    LocalDelay,
    LocalCas,
    MigratePause,
    Announce,
    RemoteDelay,
    RemoteCas,
    /// Clearing the slot after observing migration home — the mutant
    /// still performs *this* clear; only the success-path clear is gone.
    ClearThenRestart,
    Holding,
    Releasing,
}

#[derive(Debug)]
struct LeakySession {
    word: Addr,
    my_slot: Addr,
    my_tag: u64,
    local: BackoffConfig,
    remote: BackoffConfig,
    backoff: SimBackoff,
    state: LeakyState,
}

impl LeakySession {
    fn cas(&self) -> Command {
        Command::Cas {
            addr: self.word,
            expected: FREE,
            new: self.my_tag,
        }
    }

    fn gate(&mut self) -> Step {
        self.state = LeakyState::Gate;
        Step::Op(Command::WaitWhile {
            addr: self.my_slot,
            equals: self.word.encode(),
        })
    }
}

impl LockSession for LeakySession {
    fn start_acquire(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, LeakyState::Idle);
        self.gate()
    }

    fn resume_acquire(&mut self, ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            LeakyState::Gate => {
                self.state = LeakyState::GateCas;
                Step::Op(self.cas())
            }
            LeakyState::GateCas => {
                let tmp = result.expect("cas returns old");
                if tmp == FREE {
                    self.state = LeakyState::Holding;
                    Step::Acquired
                } else if tmp == self.my_tag {
                    self.backoff.reset(self.local);
                    self.state = LeakyState::LocalDelay;
                    let d = self.backoff.next_delay();
                    ctx.trace_backoff(d, BackoffClass::Local);
                    Step::Op(Command::Delay(d))
                } else {
                    self.backoff.reset(self.remote);
                    self.state = LeakyState::Announce;
                    ctx.trace_throttle_spin();
                    Step::Op(Command::Write(self.my_slot, self.word.encode()))
                }
            }
            LeakyState::LocalDelay => {
                self.state = LeakyState::LocalCas;
                Step::Op(self.cas())
            }
            LeakyState::LocalCas => {
                let tmp = result.expect("cas returns old");
                if tmp == FREE {
                    self.state = LeakyState::Holding;
                    return Step::Acquired;
                }
                let d = self.backoff.next_delay();
                ctx.trace_backoff(d, BackoffClass::Local);
                if tmp == self.my_tag {
                    self.state = LeakyState::LocalDelay;
                } else {
                    self.state = LeakyState::MigratePause;
                }
                Step::Op(Command::Delay(d))
            }
            LeakyState::MigratePause => self.gate(),
            LeakyState::Announce => {
                self.state = LeakyState::RemoteDelay;
                let d = self.backoff.next_delay();
                ctx.trace_backoff(d, BackoffClass::Remote);
                Step::Op(Command::Delay(d))
            }
            LeakyState::RemoteDelay => {
                self.state = LeakyState::RemoteCas;
                Step::Op(self.cas())
            }
            LeakyState::RemoteCas => {
                let tmp = result.expect("cas returns old");
                if tmp == FREE {
                    // BUG: the correct lock writes `DUMMY` into `my_slot`
                    // here (releasing its node's gate) before reporting
                    // Acquired. The mutant skips straight to Acquired and
                    // leaks the announcement.
                    self.state = LeakyState::Holding;
                    Step::Acquired
                } else if tmp == self.my_tag {
                    self.state = LeakyState::ClearThenRestart;
                    Step::Op(Command::Write(self.my_slot, DUMMY))
                } else {
                    self.state = LeakyState::RemoteDelay;
                    let d = self.backoff.next_delay();
                    ctx.trace_backoff(d, BackoffClass::Remote);
                    Step::Op(Command::Delay(d))
                }
            }
            LeakyState::ClearThenRestart => self.gate(),
            s => unreachable!("resume_acquire in state {s:?}"),
        }
    }

    fn start_release(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, LeakyState::Holding);
        self.state = LeakyState::Releasing;
        Step::Op(Command::Write(self.word, FREE))
    }

    fn resume_release(&mut self, _ctx: &mut CpuCtx<'_>, _result: Option<u64>) -> Step {
        debug_assert_eq!(self.state, LeakyState::Releasing);
        self.state = LeakyState::Idle;
        Step::Released
    }
}

/// CNA whose splice path loses the main queue: when the releaser splices
/// the secondary (remote) queue back in, it grants the secondary head
/// **without** first linking the main-queue successor behind the
/// secondary tail. The orphaned main-queue waiters spin forever and the
/// spliced chain's last node deadlocks in its release (`tail` no longer
/// names it, and the link it waits for never arrives). Needs ≥ 3 CPUs on
/// ≥ 2 nodes to manifest — a secondary queue must exist at splice time.
#[derive(Debug)]
pub struct SpliceLostCna {
    inner: SimCna,
}

impl SpliceLostCna {
    /// Allocates the broken lock; same layout as the real CNA.
    pub fn alloc(
        mem: &mut MemorySystem,
        topo: &Topology,
        home: NodeId,
        splice_threshold: u32,
    ) -> SpliceLostCna {
        SpliceLostCna {
            inner: SimCna::alloc_with_lost_splice_link(mem, topo, home, splice_threshold),
        }
    }
}

impl SimLock for SpliceLostCna {
    fn session(&self, cpu: CpuId, node: NodeId) -> Box<dyn LockSession> {
        self.inner.session(cpu, node)
    }

    fn kind(&self) -> LockKind {
        // Reported as CNA: it is CNA minus one splice-path store.
        LockKind::Cna
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucasim::{Machine, MachineConfig, SimStats};
    use std::sync::Arc;

    #[test]
    fn mutants_build_and_start() {
        let mut m = Machine::new(MachineConfig::wildfire(2, 2));
        let topo = Arc::clone(m.topology());
        let gt = GtSlots::alloc(m.mem_mut(), &topo);
        let racy = RacyTatas::alloc(m.mem_mut(), NodeId(0));
        let leaky = LeakyHboGt::alloc(
            m.mem_mut(),
            NodeId(0),
            gt,
            BackoffConfig::new(1, 2, 2),
            BackoffConfig::new(1, 2, 2),
        );
        let mut stats = SimStats::default();
        let mut ctx = CpuCtx::new(CpuId(0), NodeId(0), 0, &mut stats);
        let mut s1 = racy.session(CpuId(0), NodeId(0));
        assert!(matches!(s1.start_acquire(&mut ctx), Step::Op(_)));
        let mut s2 = leaky.session(CpuId(2), NodeId(1));
        assert!(matches!(s2.start_acquire(&mut ctx), Step::Op(_)));
        assert!(racy.lock_word().is_some());
        assert_eq!(leaky.kind(), LockKind::HboGt);
        let lossy = SpliceLostCna::alloc(m.mem_mut(), &topo, NodeId(0), 2);
        let mut s3 = lossy.session(CpuId(1), NodeId(0));
        assert!(matches!(s3.start_acquire(&mut ctx), Step::Op(_)));
        assert_eq!(lossy.kind(), LockKind::Cna);
    }
}

//! Simulator TATAS and TATAS_EXP.

use hbo_locks::{BackoffConfig, LockKind};
use nuca_topology::{CpuId, NodeId};
use nucasim::{Addr, BackoffClass, Command, CpuCtx, MemorySystem};

use crate::{LockSession, SimBackoff, SimLock, Step};

const FREE: u64 = 0;
const HELD: u64 = 1;

/// Traditional test-and-test&set in simulated memory: `tas`, then spin
/// with plain (cached) loads until the word reads free, then `tas` again.
#[derive(Debug)]
pub struct SimTatas {
    word: Addr,
}

impl SimTatas {
    /// Allocates the lock word homed in `home`.
    pub fn alloc(mem: &mut MemorySystem, home: NodeId) -> SimTatas {
        SimTatas {
            word: mem.alloc(home),
        }
    }
}

impl SimLock for SimTatas {
    fn session(&self, _cpu: CpuId, _node: NodeId) -> Box<dyn LockSession> {
        Box::new(TatasSession {
            word: self.word,
            state: TatasState::Idle,
        })
    }

    fn kind(&self) -> LockKind {
        LockKind::Tatas
    }

    fn lock_word(&self) -> Option<Addr> {
        Some(self.word)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TatasState {
    Idle,
    TasIssued,
    Spinning,
    Holding,
    Releasing,
}

#[derive(Debug)]
struct TatasSession {
    word: Addr,
    state: TatasState,
}

impl LockSession for TatasSession {
    fn start_acquire(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, TatasState::Idle);
        self.state = TatasState::TasIssued;
        Step::Op(Command::Tas(self.word))
    }

    fn resume_acquire(&mut self, _ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            TatasState::TasIssued => {
                if result == Some(FREE) {
                    self.state = TatasState::Holding;
                    Step::Acquired
                } else {
                    // Spin on the cached copy until the holder's release
                    // invalidates it.
                    self.state = TatasState::Spinning;
                    Step::Op(Command::WaitWhile {
                        addr: self.word,
                        equals: HELD,
                    })
                }
            }
            TatasState::Spinning => {
                // The word changed (presumably to FREE): stampede.
                self.state = TatasState::TasIssued;
                Step::Op(Command::Tas(self.word))
            }
            s => unreachable!("resume_acquire in state {s:?}"),
        }
    }

    fn start_release(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, TatasState::Holding);
        self.state = TatasState::Releasing;
        Step::Op(Command::Write(self.word, FREE))
    }

    fn resume_release(&mut self, _ctx: &mut CpuCtx<'_>, _result: Option<u64>) -> Step {
        debug_assert_eq!(self.state, TatasState::Releasing);
        self.state = TatasState::Idle;
        Step::Released
    }
}

/// TATAS with exponential backoff in simulated memory — the paper's §3
/// listing: delay, re-check with a load, retry the `tas`.
#[derive(Debug)]
pub struct SimTatasExp {
    word: Addr,
    cfg: BackoffConfig,
}

impl SimTatasExp {
    /// Allocates the lock word homed in `home` with backoff `cfg`.
    pub fn alloc(mem: &mut MemorySystem, home: NodeId, cfg: BackoffConfig) -> SimTatasExp {
        SimTatasExp {
            word: mem.alloc(home),
            cfg,
        }
    }
}

impl SimLock for SimTatasExp {
    fn session(&self, _cpu: CpuId, _node: NodeId) -> Box<dyn LockSession> {
        Box::new(TatasExpSession {
            word: self.word,
            cfg: self.cfg,
            backoff: SimBackoff::new(self.cfg),
            state: ExpState::Idle,
        })
    }

    fn kind(&self) -> LockKind {
        LockKind::TatasExp
    }

    fn lock_word(&self) -> Option<Addr> {
        Some(self.word)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExpState {
    Idle,
    TasIssued,
    Delaying,
    ReadCheck,
    Holding,
    Releasing,
}

#[derive(Debug)]
struct TatasExpSession {
    word: Addr,
    cfg: BackoffConfig,
    backoff: SimBackoff,
    state: ExpState,
}

impl LockSession for TatasExpSession {
    fn start_acquire(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, ExpState::Idle);
        self.backoff.reset(self.cfg);
        self.state = ExpState::TasIssued;
        Step::Op(Command::Tas(self.word))
    }

    fn resume_acquire(&mut self, ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            ExpState::TasIssued => {
                if result == Some(FREE) {
                    self.state = ExpState::Holding;
                    Step::Acquired
                } else {
                    self.state = ExpState::Delaying;
                    let d = self.backoff.next_delay();
                    ctx.trace_backoff(d, BackoffClass::Local);
                    Step::Op(Command::Delay(d))
                }
            }
            ExpState::Delaying => {
                self.state = ExpState::ReadCheck;
                Step::Op(Command::Read(self.word))
            }
            ExpState::ReadCheck => {
                if result == Some(FREE) {
                    self.state = ExpState::TasIssued;
                    Step::Op(Command::Tas(self.word))
                } else {
                    self.state = ExpState::Delaying;
                    let d = self.backoff.next_delay();
                    ctx.trace_backoff(d, BackoffClass::Local);
                    Step::Op(Command::Delay(d))
                }
            }
            s => unreachable!("resume_acquire in state {s:?}"),
        }
    }

    fn start_release(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, ExpState::Holding);
        self.state = ExpState::Releasing;
        Step::Op(Command::Write(self.word, FREE))
    }

    fn resume_release(&mut self, _ctx: &mut CpuCtx<'_>, _result: Option<u64>) -> Step {
        debug_assert_eq!(self.state, ExpState::Releasing);
        self.state = ExpState::Idle;
        Step::Released
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::{exclusion_test, uncontested_cost};
    use hbo_locks::LockKind;

    #[test]
    fn tatas_mutual_exclusion() {
        exclusion_test(LockKind::Tatas, 2, 2, 50);
    }

    #[test]
    fn tatas_exp_mutual_exclusion() {
        exclusion_test(LockKind::TatasExp, 2, 2, 50);
    }

    #[test]
    fn tatas_exp_generates_less_traffic_under_contention() {
        let plain = exclusion_test(LockKind::Tatas, 2, 4, 40);
        let exp = exclusion_test(LockKind::TatasExp, 2, 4, 40);
        assert!(
            exp.traffic.total() < plain.traffic.total(),
            "backoff must reduce traffic: {:?} vs {:?}",
            exp.traffic,
            plain.traffic
        );
    }

    #[test]
    fn uncontested_latency_is_one_tas_plus_store() {
        let c = uncontested_cost(LockKind::Tatas);
        // tas hit (2 + 30 atomic) + release store hit (2): small.
        assert!(c.same_processor < 100, "got {}", c.same_processor);
        assert!(c.remote_node > 3 * c.same_node, "NUCA ratio visible");
    }
}

//! Simulator ticket lock (library extension, not one of the paper's
//! eight algorithms).
//!
//! The ticket lock is FIFO like MCS/CLH but all waiters spin on one
//! shared `now_serving` word, so every release invalidates and refills
//! *every* waiter — an O(waiters) storm per handover that the list-based
//! queue locks were invented to avoid. Running it through the simulator
//! (`experiments -- ticket`) shows exactly that contrast.

use hbo_locks::LockKind;
use nuca_topology::{CpuId, NodeId};
use nucasim::{Addr, Command, CpuCtx, MemorySystem};

use crate::{LockSession, SimLock, Step};

/// Ticket lock in simulated memory: a `next_ticket` dispenser word and a
/// `now_serving` word, both homed in `home`.
#[derive(Debug)]
pub struct SimTicket {
    next_ticket: Addr,
    now_serving: Addr,
}

impl SimTicket {
    /// Allocates the two lock words homed in `home`.
    pub fn alloc(mem: &mut MemorySystem, home: NodeId) -> SimTicket {
        SimTicket {
            next_ticket: mem.alloc(home),
            now_serving: mem.alloc(home),
        }
    }
}

impl SimLock for SimTicket {
    fn session(&self, _cpu: CpuId, _node: NodeId) -> Box<dyn LockSession> {
        Box::new(TicketSession {
            next_ticket: self.next_ticket,
            now_serving: self.now_serving,
            my_ticket: 0,
            state: TkState::Idle,
        })
    }

    fn kind(&self) -> LockKind {
        LockKind::Ticket
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TkState {
    Idle,
    /// `fetch_add` on the dispenser issued.
    TakeTicket,
    /// Reading `now_serving`.
    CheckServing,
    /// Sleeping until `now_serving` changes.
    Spinning,
    Holding,
    Releasing,
}

#[derive(Debug)]
struct TicketSession {
    next_ticket: Addr,
    now_serving: Addr,
    my_ticket: u64,
    state: TkState,
}

impl LockSession for TicketSession {
    fn start_acquire(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, TkState::Idle);
        self.state = TkState::TakeTicket;
        Step::Op(Command::FetchAdd {
            addr: self.next_ticket,
            delta: 1,
        })
    }

    fn resume_acquire(&mut self, _ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            TkState::TakeTicket => {
                self.my_ticket = result.expect("fetch_add returns old");
                self.state = TkState::CheckServing;
                Step::Op(Command::Read(self.now_serving))
            }
            TkState::CheckServing | TkState::Spinning => {
                let serving = result.expect("read/wait returns value");
                if serving == self.my_ticket {
                    self.state = TkState::Holding;
                    Step::Acquired
                } else {
                    // Spin on the cached copy; every release invalidates
                    // all of us — the ticket storm.
                    self.state = TkState::Spinning;
                    Step::Op(Command::WaitWhile {
                        addr: self.now_serving,
                        equals: serving,
                    })
                }
            }
            s => unreachable!("resume_acquire in state {s:?}"),
        }
    }

    fn start_release(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, TkState::Holding);
        self.state = TkState::Releasing;
        Step::Op(Command::Write(self.now_serving, self.my_ticket + 1))
    }

    fn resume_release(&mut self, _ctx: &mut CpuCtx<'_>, _result: Option<u64>) -> Step {
        debug_assert_eq!(self.state, TkState::Releasing);
        self.state = TkState::Idle;
        Step::Released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DriveResult, SessionDriver};
    use nucasim::{CpuCtx, Machine, MachineConfig, Program};
    use std::sync::Arc;

    /// Minimal exclusion harness for a custom (non-LockKind) sim lock.
    struct Prog {
        driver: SessionDriver,
        counter: Addr,
        iters: u32,
        state: u8,
        saved: u64,
    }

    impl Program for Prog {
        fn resume(&mut self, ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command {
            match self.state {
                0 => {
                    if self.iters == 0 {
                        return Command::Done;
                    }
                    self.iters -= 1;
                    self.state = 1;
                    match self.driver.start_acquire(ctx) {
                        DriveResult::Busy(cmd) => cmd,
                        _ => unreachable!(),
                    }
                }
                1 => match self.driver.on_result(ctx, last) {
                    DriveResult::Busy(cmd) => cmd,
                    DriveResult::AcquireDone => {
                        self.state = 2;
                        Command::Read(self.counter)
                    }
                    DriveResult::ReleaseDone => unreachable!(),
                },
                2 => {
                    self.saved = last.expect("read");
                    self.state = 3;
                    Command::Write(self.counter, self.saved + 1)
                }
                3 => {
                    self.state = 4;
                    match self.driver.start_release(ctx) {
                        DriveResult::Busy(cmd) => cmd,
                        _ => unreachable!(),
                    }
                }
                4 => match self.driver.on_result(ctx, last) {
                    DriveResult::Busy(cmd) => cmd,
                    DriveResult::ReleaseDone => {
                        self.state = 0;
                        Command::Delay(40 + ctx.cpu.index() as u64 * 13)
                    }
                    DriveResult::AcquireDone => unreachable!(),
                },
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn mutual_exclusion_and_exact_count() {
        let mut m = Machine::new(MachineConfig::wildfire(2, 3));
        let topo = Arc::clone(m.topology());
        let lock = SimTicket::alloc(m.mem_mut(), NodeId(0));
        let counter = m.mem_mut().alloc(NodeId(0));
        for cpu in topo.cpus() {
            m.add_program(
                cpu,
                Box::new(Prog {
                    driver: SessionDriver::new(lock.session(cpu, topo.node_of(cpu))),
                    counter,
                    iters: 40,
                    state: 0,
                    saved: 0,
                }),
            );
        }
        let status = m.run(10_000_000_000);
        assert!(status.finished_all, "ticket lock stuck");
        let r = m.into_report();
        assert_eq!(r.final_value(counter), 6 * 40);
        // FIFO: handoff ratio should be near the queue-lock expectation,
        // not near zero.
        let h = r.lock_traces[0].handoff_ratio().unwrap();
        assert!(h > 0.3, "ticket lock is FIFO; handoff {h:.3}");
    }
}

//! Simulator RH lock (2 nodes) — reconstruction per `hbo_locks::RhLock`.

use hbo_locks::{BackoffConfig, LockKind};
use nuca_topology::{CpuId, NodeId, Topology};
use nucasim::{Addr, BackoffClass, Command, CpuCtx, MemorySystem};

use crate::{LockSession, SimBackoff, SimLock, Step};

const FREE: u64 = 0;
const L_FREE: u64 = 1;
const REMOTE: u64 = 2;
const FISHING: u64 = 3;
const HELD: u64 = 4;

/// Failed remote captures tolerated before the fisher may take `L_FREE`.
const REMOTE_PATIENCE: u32 = 2;

/// RH in simulated memory: one lock copy per node (the paper's "every node
/// contains a copy of a lock — the lock storage cost is twice that of
/// simple locking algorithms"), with `L_FREE` local handover and a
/// node-winner election for remote capture.
#[derive(Debug)]
pub struct SimRh {
    /// `copies[n]` is node `n`'s lock copy, homed in node `n`.
    copies: [Addr; 2],
    /// Shared consecutive-local-handover counter.
    handovers: Addr,
    max_handovers: u64,
    local: BackoffConfig,
    remote: BackoffConfig,
}

impl SimRh {
    /// Allocates the lock; the machine must have exactly two nodes.
    ///
    /// # Panics
    ///
    /// Panics if `topo` does not have exactly 2 nodes.
    pub fn alloc(
        mem: &mut MemorySystem,
        topo: &Topology,
        local: BackoffConfig,
        remote: BackoffConfig,
        max_handovers: u64,
    ) -> SimRh {
        assert_eq!(topo.num_nodes(), 2, "RH supports exactly two nodes");
        let c0 = mem.alloc(NodeId(0));
        let c1 = mem.alloc(NodeId(1));
        mem.poke(c0, FREE);
        mem.poke(c1, REMOTE);
        let handovers = mem.alloc(NodeId(0));
        SimRh {
            copies: [c0, c1],
            handovers,
            max_handovers: max_handovers.max(1),
            local,
            remote,
        }
    }
}

impl SimLock for SimRh {
    fn session(&self, _cpu: CpuId, node: NodeId) -> Box<dyn LockSession> {
        assert!(node.index() < 2, "RH session outside its two nodes");
        Box::new(RhSession {
            my_copy: self.copies[node.index()],
            other_copy: self.copies[1 - node.index()],
            handovers: self.handovers,
            max_handovers: self.max_handovers,
            local: self.local,
            remote: self.remote,
            backoff: SimBackoff::new(self.local),
            failures: 0,
            state: RhState::Idle,
        })
    }

    fn kind(&self) -> LockKind {
        LockKind::Rh
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RhState {
    Idle,
    /// `cas(my_copy, FREE, HELD)` issued.
    TryFree,
    /// `cas(my_copy, L_FREE, HELD)` issued.
    TryLFree,
    /// `cas(my_copy, REMOTE, FISHING)` issued (node-winner election).
    TryElect,
    /// Backing off locally (copy HELD or FISHING by a neighbor).
    LocalPause,
    /// Fishing: `cas(other, FREE, REMOTE)` issued.
    FishFree,
    /// Fishing: `cas(other, L_FREE, REMOTE)` issued (after patience).
    FishLFree,
    /// Fishing backoff.
    FishPause,
    /// Migration bookkeeping: reset handover counter.
    MigrateReset,
    /// Migration bookkeeping: mark our copy HELD.
    MigrateMark,
    /// Bump the handover counter after an L_FREE take.
    BumpHandover,
    /// Reset the handover counter after a fresh FREE take.
    FreshReset,
    Holding,
    /// Release: reading the handover counter.
    ReadHandovers,
    /// Release: writing the chosen tag.
    WriteTag,
}

#[derive(Debug)]
struct RhSession {
    my_copy: Addr,
    other_copy: Addr,
    handovers: Addr,
    max_handovers: u64,
    local: BackoffConfig,
    remote: BackoffConfig,
    backoff: SimBackoff,
    failures: u32,
    state: RhState,
}

impl RhSession {
    fn try_free(&mut self) -> Step {
        self.state = RhState::TryFree;
        Step::Op(Command::Cas {
            addr: self.my_copy,
            expected: FREE,
            new: HELD,
        })
    }

    fn fish(&mut self) -> Step {
        if self.failures >= REMOTE_PATIENCE {
            self.state = RhState::FishLFree;
            Step::Op(Command::Cas {
                addr: self.other_copy,
                expected: L_FREE,
                new: REMOTE,
            })
        } else {
            self.state = RhState::FishFree;
            Step::Op(Command::Cas {
                addr: self.other_copy,
                expected: FREE,
                new: REMOTE,
            })
        }
    }
}

impl LockSession for RhSession {
    fn start_acquire(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, RhState::Idle);
        self.backoff.reset(self.local);
        self.failures = 0;
        self.try_free()
    }

    fn resume_acquire(&mut self, ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            RhState::TryFree => {
                let old = result.expect("cas returns old");
                match old {
                    FREE => {
                        // Fresh global capture: restart the budget.
                        self.state = RhState::FreshReset;
                        Step::Op(Command::Write(self.handovers, 0))
                    }
                    L_FREE => {
                        self.state = RhState::TryLFree;
                        Step::Op(Command::Cas {
                            addr: self.my_copy,
                            expected: L_FREE,
                            new: HELD,
                        })
                    }
                    REMOTE => {
                        self.state = RhState::TryElect;
                        Step::Op(Command::Cas {
                            addr: self.my_copy,
                            expected: REMOTE,
                            new: FISHING,
                        })
                    }
                    _ => {
                        // HELD or FISHING: a neighbor owns/fetches it.
                        self.state = RhState::LocalPause;
                        let d = self.backoff.next_delay();
                        ctx.trace_backoff(d, BackoffClass::Local);
                        Step::Op(Command::Delay(d))
                    }
                }
            }
            RhState::FreshReset => {
                self.state = RhState::Holding;
                Step::Acquired
            }
            RhState::TryLFree => {
                let old = result.expect("cas returns old");
                if old == L_FREE {
                    // Local handover: consume budget.
                    self.state = RhState::BumpHandover;
                    Step::Op(Command::FetchAdd {
                        addr: self.handovers,
                        delta: 1,
                    })
                } else {
                    // Raced; re-classify.
                    self.try_free()
                }
            }
            RhState::BumpHandover => {
                self.state = RhState::Holding;
                Step::Acquired
            }
            RhState::TryElect => {
                let old = result.expect("cas returns old");
                if old == REMOTE {
                    // We are the node winner: fish the other node's copy.
                    self.backoff.reset(self.remote);
                    self.failures = 0;
                    self.fish()
                } else {
                    self.try_free()
                }
            }
            RhState::LocalPause => self.try_free(),
            RhState::FishFree | RhState::FishLFree => {
                let old = result.expect("cas returns old");
                let captured = (self.state == RhState::FishFree && old == FREE)
                    || (self.state == RhState::FishLFree && old == L_FREE);
                if captured {
                    // Lock migrated here: reset budget, mark our copy HELD.
                    self.state = RhState::MigrateReset;
                    Step::Op(Command::Write(self.handovers, 0))
                } else if self.state == RhState::FishFree && old == L_FREE {
                    // The copy is offered to locals only; after a failed
                    // FREE capture that *observed* L_FREE, claim it
                    // directly (locals had their window).
                    self.state = RhState::FishLFree;
                    Step::Op(Command::Cas {
                        addr: self.other_copy,
                        expected: L_FREE,
                        new: REMOTE,
                    })
                } else if self.state == RhState::FishLFree {
                    // The L_FREE attempt missed; fall back to FREE capture
                    // after a pause.
                    self.failures = 0;
                    self.state = RhState::FishPause;
                    let d = self.backoff.next_delay();
                    ctx.trace_backoff(d, BackoffClass::Remote);
                    Step::Op(Command::Delay(d))
                } else {
                    // Saturate at the patience threshold: only `>=
                    // REMOTE_PATIENCE` is ever observed, and a bounded
                    // counter keeps the session's state space finite for
                    // the `nuca-mcheck` model checker.
                    self.failures = (self.failures + 1).min(REMOTE_PATIENCE);
                    self.state = RhState::FishPause;
                    let d = self.backoff.next_delay();
                    ctx.trace_backoff(d, BackoffClass::Remote);
                    Step::Op(Command::Delay(d))
                }
            }
            RhState::FishPause => self.fish(),
            RhState::MigrateReset => {
                self.state = RhState::MigrateMark;
                Step::Op(Command::Write(self.my_copy, HELD))
            }
            RhState::MigrateMark => {
                self.state = RhState::Holding;
                Step::Acquired
            }
            s => unreachable!("resume_acquire in state {s:?}"),
        }
    }

    fn start_release(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, RhState::Holding);
        self.state = RhState::ReadHandovers;
        Step::Op(Command::Read(self.handovers))
    }

    fn resume_release(&mut self, _ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            RhState::ReadHandovers => {
                let h = result.expect("read returns value");
                let tag = if h < self.max_handovers { L_FREE } else { FREE };
                self.state = RhState::WriteTag;
                Step::Op(Command::Write(self.my_copy, tag))
            }
            RhState::WriteTag => {
                self.state = RhState::Idle;
                Step::Released
            }
            s => unreachable!("resume_release in state {s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{exclusion_test, uncontested_cost};

    #[test]
    fn mutual_exclusion() {
        exclusion_test(LockKind::Rh, 2, 2, 50);
    }

    #[test]
    fn mutual_exclusion_many_cpus() {
        exclusion_test(LockKind::Rh, 2, 6, 20);
    }

    #[test]
    fn remote_acquire_costs_more_than_other_locks() {
        // Paper Table 1: RH's remote-node acquire is the most expensive of
        // all locks (4480 ns vs ~2000 ns) because of the migration dance.
        let rh = uncontested_cost(LockKind::Rh);
        let hbo = uncontested_cost(LockKind::Hbo);
        assert!(rh.remote_node > hbo.remote_node);
        // But its local costs stay in the spin-lock class.
        assert!(rh.same_processor < 2 * hbo.same_processor + 200);
    }

    #[test]
    fn strong_node_affinity() {
        let rh = exclusion_test(LockKind::Rh, 2, 4, 40);
        let tatas = exclusion_test(LockKind::TatasExp, 2, 4, 40);
        let r = rh.lock_traces[0].handoff_ratio().unwrap();
        let t = tatas.lock_traces[0].handoff_ratio().unwrap();
        assert!(r < t, "RH handoff {r:.3} vs TATAS_EXP {t:.3}");
    }
}

//! Simulator CLH queue lock.

use hbo_locks::LockKind;
use nuca_topology::{CpuId, NodeId, Topology};
use nucasim::{Addr, Command, CpuCtx, MemorySystem};

use crate::{LockSession, SimLock, Step};

const LOCKED: u64 = 1;
const UNLOCKED: u64 = 0;

/// CLH in simulated memory.
///
/// The queue is implicit: the tail word holds the index+1 of the most
/// recent contender's node; each contender spins on its *predecessor's*
/// node. Node ownership transfers down the queue, so a session adopts its
/// predecessor's node after each release — exactly the recycling scheme of
/// the real algorithm.
#[derive(Debug)]
pub struct SimClh {
    tail: Addr,
    /// One flag word per CPU plus one initial dummy (index `cpus`).
    nodes: Vec<Addr>,
}

impl SimClh {
    /// Allocates the lock: tail and dummy homed in `home`, per-CPU nodes
    /// homed in their CPU's node.
    pub fn alloc(mem: &mut MemorySystem, topo: &Topology, home: NodeId) -> SimClh {
        let tail = mem.alloc(home);
        let mut nodes: Vec<Addr> = topo
            .cpus()
            .map(|c| mem.alloc(topo.node_of(c)))
            .collect();
        let dummy = mem.alloc(home);
        mem.poke(dummy, UNLOCKED);
        nodes.push(dummy);
        // Tail initially points at the dummy (encoded index+1).
        mem.poke(tail, nodes.len() as u64);
        SimClh { tail, nodes }
    }
}

impl SimLock for SimClh {
    fn session(&self, cpu: CpuId, _node: NodeId) -> Box<dyn LockSession> {
        Box::new(ClhSession {
            tail: self.tail,
            nodes: self.nodes.clone(),
            mine: cpu.index(),
            pred: usize::MAX,
            state: ClhState::Idle,
        })
    }

    fn kind(&self) -> LockKind {
        LockKind::Clh
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClhState {
    Idle,
    SetLocked,
    Swapped,
    SpinPred,
    Holding,
    Releasing,
}

#[derive(Debug)]
struct ClhSession {
    tail: Addr,
    nodes: Vec<Addr>,
    /// Index of the node this session currently owns.
    mine: usize,
    /// Index of the predecessor node (adopted at release).
    pred: usize,
    state: ClhState,
}

impl LockSession for ClhSession {
    fn start_acquire(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, ClhState::Idle);
        self.state = ClhState::SetLocked;
        Step::Op(Command::Write(self.nodes[self.mine], LOCKED))
    }

    fn resume_acquire(&mut self, _ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            ClhState::SetLocked => {
                self.state = ClhState::Swapped;
                Step::Op(Command::Swap {
                    addr: self.tail,
                    value: self.mine as u64 + 1,
                })
            }
            ClhState::Swapped => {
                let prev = result.expect("swap returns old tail");
                debug_assert_ne!(prev, 0, "CLH tail always points at a node");
                self.pred = (prev - 1) as usize;
                self.state = ClhState::SpinPred;
                Step::Op(Command::WaitWhile {
                    addr: self.nodes[self.pred],
                    equals: LOCKED,
                })
            }
            ClhState::SpinPred => {
                self.state = ClhState::Holding;
                Step::Acquired
            }
            s => unreachable!("resume_acquire in state {s:?}"),
        }
    }

    fn start_release(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, ClhState::Holding);
        self.state = ClhState::Releasing;
        Step::Op(Command::Write(self.nodes[self.mine], UNLOCKED))
    }

    fn resume_release(&mut self, _ctx: &mut CpuCtx<'_>, _result: Option<u64>) -> Step {
        debug_assert_eq!(self.state, ClhState::Releasing);
        // Adopt the predecessor's (now quiescent) node for the next
        // acquisition.
        self.mine = self.pred;
        self.pred = usize::MAX;
        self.state = ClhState::Idle;
        Step::Released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{exclusion_test, uncontested_cost};

    #[test]
    fn mutual_exclusion() {
        exclusion_test(LockKind::Clh, 2, 2, 50);
    }

    #[test]
    fn mutual_exclusion_many_cpus() {
        exclusion_test(LockKind::Clh, 2, 6, 20);
    }

    #[test]
    fn uncontested_costs_ordered() {
        let c = uncontested_cost(LockKind::Clh);
        assert!(c.same_processor < c.same_node);
        assert!(c.same_node < c.remote_node);
    }

    #[test]
    fn node_recycling_sustains_repeat_acquisitions() {
        // A long single-CPU run cycles nodes through the implicit queue;
        // any recycling bug deadlocks or corrupts the flag values.
        exclusion_test(LockKind::Clh, 1, 1, 500);
    }
}

//! Simulator HBO — paper Figure 1 without the emphasized (GT) lines.

use hbo_locks::{BackoffConfig, LockKind};
use nuca_topology::{CpuId, NodeId};
use nucasim::{Addr, BackoffClass, Command, CpuCtx, MemorySystem};

use crate::{LockSession, SimBackoff, SimLock, Step};

pub(crate) const FREE: u64 = 0;

#[inline]
pub(crate) fn tag(node: NodeId) -> u64 {
    node.index() as u64 + 1
}

/// HBO in simulated memory: one lock word holding the holder's node id;
/// contenders back off eagerly (same node) or lazily (remote node).
#[derive(Debug)]
pub struct SimHbo {
    word: Addr,
    local: BackoffConfig,
    remote: BackoffConfig,
}

impl SimHbo {
    /// Allocates the lock word homed in `home`.
    pub fn alloc(
        mem: &mut MemorySystem,
        home: NodeId,
        local: BackoffConfig,
        remote: BackoffConfig,
    ) -> SimHbo {
        SimHbo {
            word: mem.alloc(home),
            local,
            remote,
        }
    }
}

impl SimLock for SimHbo {
    fn session(&self, _cpu: CpuId, node: NodeId) -> Box<dyn LockSession> {
        Box::new(HboSession {
            word: self.word,
            my_tag: tag(node),
            local: self.local,
            remote: self.remote,
            backoff: SimBackoff::new(self.local),
            state: HboState::Idle,
        })
    }

    fn kind(&self) -> LockKind {
        LockKind::Hbo
    }

    fn lock_word(&self) -> Option<Addr> {
        Some(self.word)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HboState {
    Idle,
    /// Fast-path `cas` issued (Fig. 1 line 6).
    FastCas,
    /// Delaying before a local-loop `cas` (lines 26–27).
    LocalDelay,
    /// Local-loop `cas` issued (line 28).
    LocalCas,
    /// Extra backoff after observing migration away (line 32).
    MigratePause,
    /// Delaying before a remote-loop `cas` (lines 40–41).
    RemoteDelay,
    /// Remote-loop `cas` issued (line 42).
    RemoteCas,
    Holding,
    Releasing,
}

#[derive(Debug)]
struct HboSession {
    word: Addr,
    my_tag: u64,
    local: BackoffConfig,
    remote: BackoffConfig,
    backoff: SimBackoff,
    state: HboState,
}

impl HboSession {
    fn cas(&self) -> Command {
        Command::Cas {
            addr: self.word,
            expected: FREE,
            new: self.my_tag,
        }
    }

    /// `start:` — classify by the last observed holder tag.
    fn classify(&mut self, ctx: &mut CpuCtx<'_>, tmp: u64) -> Step {
        let class = if tmp == self.my_tag {
            self.backoff.reset(self.local);
            self.state = HboState::LocalDelay;
            BackoffClass::Local
        } else {
            self.backoff.reset(self.remote);
            self.state = HboState::RemoteDelay;
            BackoffClass::Remote
        };
        let d = self.backoff.next_delay();
        ctx.trace_backoff(d, class);
        Step::Op(Command::Delay(d))
    }
}

impl LockSession for HboSession {
    fn start_acquire(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, HboState::Idle);
        self.state = HboState::FastCas;
        Step::Op(self.cas())
    }

    fn resume_acquire(&mut self, ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            HboState::FastCas => {
                let tmp = result.expect("cas returns old");
                if tmp == FREE {
                    self.state = HboState::Holding;
                    Step::Acquired
                } else {
                    self.classify(ctx, tmp)
                }
            }
            HboState::LocalDelay => {
                self.state = HboState::LocalCas;
                Step::Op(self.cas())
            }
            HboState::LocalCas => {
                let tmp = result.expect("cas returns old");
                if tmp == FREE {
                    self.state = HboState::Holding;
                    return Step::Acquired;
                }
                if tmp == self.my_tag {
                    // Still local: keep the eager loop going.
                    self.state = HboState::LocalDelay;
                    let d = self.backoff.next_delay();
                    ctx.trace_backoff(d, BackoffClass::Local);
                    Step::Op(Command::Delay(d))
                } else {
                    // Migrated to a remote node: extra backoff, then
                    // re-classify (lines 31–33).
                    self.state = HboState::MigratePause;
                    let d = self.backoff.next_delay();
                    ctx.trace_backoff(d, BackoffClass::Local);
                    Step::Op(Command::Delay(d))
                }
            }
            HboState::MigratePause => {
                self.backoff.reset(self.remote);
                self.state = HboState::RemoteDelay;
                let d = self.backoff.next_delay();
                ctx.trace_backoff(d, BackoffClass::Remote);
                Step::Op(Command::Delay(d))
            }
            HboState::RemoteDelay => {
                self.state = HboState::RemoteCas;
                Step::Op(self.cas())
            }
            HboState::RemoteCas => {
                let tmp = result.expect("cas returns old");
                if tmp == FREE {
                    self.state = HboState::Holding;
                    return Step::Acquired;
                }
                if tmp == self.my_tag {
                    // Lock moved into our node: switch to eager spinning.
                    self.classify(ctx, tmp)
                } else {
                    self.state = HboState::RemoteDelay;
                    let d = self.backoff.next_delay();
                    ctx.trace_backoff(d, BackoffClass::Remote);
                    Step::Op(Command::Delay(d))
                }
            }
            s => unreachable!("resume_acquire in state {s:?}"),
        }
    }

    fn start_release(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, HboState::Holding);
        self.state = HboState::Releasing;
        Step::Op(Command::Write(self.word, FREE))
    }

    fn resume_release(&mut self, _ctx: &mut CpuCtx<'_>, _result: Option<u64>) -> Step {
        debug_assert_eq!(self.state, HboState::Releasing);
        self.state = HboState::Idle;
        Step::Released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{exclusion_test, uncontested_cost};

    #[test]
    fn mutual_exclusion() {
        exclusion_test(LockKind::Hbo, 2, 2, 50);
    }

    #[test]
    fn mutual_exclusion_many_cpus() {
        exclusion_test(LockKind::Hbo, 2, 6, 20);
    }

    #[test]
    fn uncontested_matches_tatas_class() {
        // The paper's design goal: HBO's uncontested cost is a single cas,
        // within a few cycles of TATAS (Table 1).
        let h = uncontested_cost(LockKind::Hbo);
        let t = uncontested_cost(LockKind::Tatas);
        let near = |a: u64, b: u64| a.abs_diff(b) <= 10;
        assert!(near(h.same_processor, t.same_processor));
        assert!(near(h.same_node, t.same_node));
        assert!(near(h.remote_node, t.remote_node));
    }

    #[test]
    fn node_affinity_under_contention() {
        // With contenders in both nodes, the HBO lock must migrate between
        // nodes far less often than the FIFO queue locks, whose handoff
        // ratio approaches (N/2)/(N-1) (paper §5.2).
        let hbo = exclusion_test(LockKind::Hbo, 2, 4, 40);
        let mcs = exclusion_test(LockKind::Mcs, 2, 4, 40);
        let h = hbo.lock_traces[0].handoff_ratio().unwrap();
        let m = mcs.lock_traces[0].handoff_ratio().unwrap();
        assert!(h < 0.25, "HBO handoff ratio {h:.3} must stay low");
        assert!(
            h < m / 2.0,
            "HBO handoff ratio {h:.3} must undercut MCS {m:.3}"
        );
    }
}

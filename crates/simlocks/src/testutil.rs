//! Shared test harnesses: mutual-exclusion stress and Table-1-style
//! uncontested latency scenarios, both inside the simulator.

use std::sync::Arc;

use hbo_locks::LockKind;
use nuca_topology::{CpuId, NodeId};
use nucasim::{Addr, Command, CpuCtx, Machine, MachineConfig, Program, SimReport};

use crate::{build_lock, DriveResult, GtSlots, SessionDriver, SimLockParams};

/// Workload: loop `iters` times { acquire; read counter; delay; write
/// counter+1; release; think }. A mutual-exclusion violation loses an
/// update and the final counter comes up short.
struct ExclusionProgram {
    driver: SessionDriver,
    counter: Addr,
    iters: u32,
    state: ExState,
    saved: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExState {
    Start,
    Acquiring,
    CsRead,
    CsDelay,
    CsWrite,
    Releasing,
    Think,
}

impl ExclusionProgram {
    fn drive(&mut self, r: DriveResult, ctx: &mut CpuCtx<'_>) -> Command {
        match r {
            DriveResult::Busy(cmd) => cmd,
            DriveResult::AcquireDone => {
                self.state = ExState::CsRead;
                Command::Read(self.counter)
            }
            DriveResult::ReleaseDone => {
                self.state = ExState::Think;
                // Per-CPU think time breaks deterministic lockstep between
                // identical contenders.
                Command::Delay(40 + 13 * (ctx.cpu.index() as u64 % 7))
            }
        }
    }
}

impl Program for ExclusionProgram {
    fn resume(&mut self, ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command {
        loop {
            match self.state {
                ExState::Start => {
                    if self.iters == 0 {
                        return Command::Done;
                    }
                    self.iters -= 1;
                    self.state = ExState::Acquiring;
                    let r = self.driver.start_acquire(ctx);
                    return self.drive(r, ctx);
                }
                ExState::Acquiring => {
                    let r = self.driver.on_result(ctx, last);
                    return self.drive(r, ctx);
                }
                ExState::CsRead => {
                    self.saved = last.expect("read returns value");
                    self.state = ExState::CsDelay;
                    return Command::Delay(20);
                }
                ExState::CsDelay => {
                    self.state = ExState::CsWrite;
                    return Command::Write(self.counter, self.saved + 1);
                }
                ExState::CsWrite => {
                    self.state = ExState::Releasing;
                    let r = self.driver.start_release(ctx);
                    return self.drive(r, ctx);
                }
                ExState::Releasing => {
                    let r = self.driver.on_result(ctx, last);
                    return self.drive(r, ctx);
                }
                ExState::Think => {
                    self.state = ExState::Start;
                    // Loop around without consuming an event.
                    continue;
                }
            }
        }
    }
}

/// Runs the exclusion stress for `kind` and asserts no update was lost.
/// Returns the run's report for traffic comparisons.
pub(crate) fn exclusion_test(
    kind: LockKind,
    nodes: usize,
    cpus_per_node: usize,
    iters: u32,
) -> SimReport {
    let mut m = Machine::new(MachineConfig::wildfire(nodes, cpus_per_node));
    let topo = Arc::clone(m.topology());
    let gt = GtSlots::alloc(m.mem_mut(), &topo);
    let lock = build_lock(
        kind,
        m.mem_mut(),
        &topo,
        &gt,
        NodeId(0),
        &SimLockParams::default(),
    );
    let counter = m.mem_mut().alloc(NodeId(0));
    for cpu in topo.cpus() {
        let node = topo.node_of(cpu);
        m.add_program(
            cpu,
            Box::new(ExclusionProgram {
                driver: SessionDriver::new(lock.session(cpu, node)),
                counter,
                iters,
                state: ExState::Start,
                saved: 0,
            }),
        );
    }
    let status = m.run(20_000_000_000);
    assert!(status.finished_all, "{kind}: run did not finish");
    let report = m.into_report();
    let expected = (nodes * cpus_per_node) as u64 * u64::from(iters);
    assert_eq!(
        report.final_value(counter),
        expected,
        "{kind}: lost updates — mutual exclusion violated"
    );
    assert_eq!(report.lock_traces[0].acquisitions, expected);
    report
}

/// Costs of one acquire+release in the three Table-1 scenarios.
#[derive(Debug, Clone, Copy)]
pub(crate) struct UncontestedCost {
    pub same_processor: u64,
    pub same_node: u64,
    pub remote_node: u64,
}

/// One CPU performs `pairs` acquire+release pairs when `baton` reaches
/// `turn`, writes the duration of the *last* pair to `out`, then
/// increments the baton.
struct TurnProgram {
    driver: SessionDriver,
    baton: Addr,
    out: Addr,
    turn: u64,
    pairs: u32,
    state: TurnState,
    started_at: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TurnState {
    WaitTurn,
    Begin,
    Acquiring,
    Releasing,
    WriteOut,
    BumpBaton,
    Finished,
}

impl TurnProgram {
    fn drive(&mut self, r: DriveResult, ctx: &mut CpuCtx<'_>) -> Command {
        match r {
            DriveResult::Busy(cmd) => cmd,
            DriveResult::AcquireDone => {
                self.state = TurnState::Releasing;
                match self.driver.start_release(ctx) {
                    DriveResult::Busy(cmd) => cmd,
                    _ => unreachable!("release begins with a command"),
                }
            }
            DriveResult::ReleaseDone => {
                self.pairs -= 1;
                if self.pairs == 0 {
                    self.state = TurnState::WriteOut;
                    Command::Write(self.out, ctx.now - self.started_at)
                } else {
                    self.state = TurnState::Begin;
                    Command::Delay(1)
                }
            }
        }
    }
}

impl Program for TurnProgram {
    fn resume(&mut self, ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command {
        match self.state {
            TurnState::WaitTurn => {
                self.state = TurnState::Begin;
                Command::WaitWhile {
                    addr: self.baton,
                    equals: self.turn.wrapping_sub(1),
                }
            }
            TurnState::Begin => {
                // Only proceed when it is actually our turn (the baton may
                // have woken us at an earlier value change).
                if self.pairs > 0 && last.is_some() && last != Some(self.turn) {
                    return Command::WaitWhile {
                        addr: self.baton,
                        equals: last.unwrap_or(0),
                    };
                }
                self.started_at = ctx.now;
                self.state = TurnState::Acquiring;
                let r = self.driver.start_acquire(ctx);
                self.drive(r, ctx)
            }
            TurnState::Acquiring | TurnState::Releasing => {
                let r = self.driver.on_result(ctx, last);
                self.drive(r, ctx)
            }
            TurnState::WriteOut => {
                self.state = TurnState::BumpBaton;
                Command::Write(self.baton, self.turn + 1)
            }
            TurnState::BumpBaton => {
                self.state = TurnState::Finished;
                Command::Done
            }
            TurnState::Finished => Command::Done,
        }
    }
}

/// Measures the Table-1 scenarios for `kind` on a 2×2 WildFire.
///
/// CPU 0 warms the lock (2 pairs: the second is the same-processor cost),
/// then CPU 1 (same node) does one pair, then CPU 2 (remote node).
pub(crate) fn uncontested_cost(kind: LockKind) -> UncontestedCost {
    let mut m = Machine::new(MachineConfig::wildfire(2, 2));
    let topo = Arc::clone(m.topology());
    let gt = GtSlots::alloc(m.mem_mut(), &topo);
    let lock = build_lock(
        kind,
        m.mem_mut(),
        &topo,
        &gt,
        NodeId(0),
        &SimLockParams::default(),
    );
    let baton = m.mem_mut().alloc(NodeId(0));
    m.mem_mut().poke(baton, 0);
    let outs: Vec<Addr> = (0..3).map(|_| m.mem_mut().alloc(NodeId(0))).collect();

    // Turn 0: cpu0 (two pairs — the second is a pure cache-hit reacquire).
    // Turn 1: cpu1 (same node). Turn 2: cpu2 (remote node).
    let plan = [(CpuId(0), 0u64, 2u32), (CpuId(1), 1, 1), (CpuId(2), 2, 1)];
    for (cpu, turn, pairs) in plan {
        let node = topo.node_of(cpu);
        let state = if turn == 0 {
            TurnState::Begin
        } else {
            TurnState::WaitTurn
        };
        m.add_program(
            cpu,
            Box::new(TurnProgram {
                driver: SessionDriver::new(lock.session(cpu, node)),
                baton,
                out: outs[turn as usize],
                turn,
                pairs,
                state,
                started_at: 0,
            }),
        );
    }
    let status = m.run(1_000_000_000);
    assert!(status.finished_all, "{kind}: uncontested run stuck");
    let report = m.into_report();
    UncontestedCost {
        same_processor: report.final_value(outs[0]),
        same_node: report.final_value(outs[1]),
        remote_node: report.final_value(outs[2]),
    }
}

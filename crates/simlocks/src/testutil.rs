//! Shared test harnesses: mutual-exclusion stress and Table-1-style
//! uncontested latency scenarios, both inside the simulator.

use std::sync::Arc;

use hbo_locks::LockKind;
use nuca_topology::{CpuId, NodeId};
use nucasim::{Addr, Command, CpuCtx, Machine, MachineConfig, Program, SimReport};

use crate::{build_lock, DriveResult, GtSlots, SessionDriver, SimLockParams};

/// Workload: loop `iters` times { acquire; read counter; delay; write
/// counter+1; release; think }. A mutual-exclusion violation loses an
/// update and the final counter comes up short.
struct ExclusionProgram {
    driver: SessionDriver,
    counter: Addr,
    iters: u32,
    state: ExState,
    saved: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExState {
    Start,
    Acquiring,
    CsRead,
    CsDelay,
    CsWrite,
    Releasing,
    Think,
}

impl ExclusionProgram {
    fn drive(&mut self, r: DriveResult, ctx: &mut CpuCtx<'_>) -> Command {
        match r {
            DriveResult::Busy(cmd) => cmd,
            DriveResult::AcquireDone => {
                self.state = ExState::CsRead;
                Command::Read(self.counter)
            }
            DriveResult::ReleaseDone => {
                self.state = ExState::Think;
                // Per-CPU think time breaks deterministic lockstep between
                // identical contenders.
                Command::Delay(40 + 13 * (ctx.cpu.index() as u64 % 7))
            }
        }
    }
}

impl Program for ExclusionProgram {
    fn resume(&mut self, ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command {
        loop {
            match self.state {
                ExState::Start => {
                    if self.iters == 0 {
                        return Command::Done;
                    }
                    self.iters -= 1;
                    self.state = ExState::Acquiring;
                    let r = self.driver.start_acquire(ctx);
                    return self.drive(r, ctx);
                }
                ExState::Acquiring => {
                    let r = self.driver.on_result(ctx, last);
                    return self.drive(r, ctx);
                }
                ExState::CsRead => {
                    self.saved = last.expect("read returns value");
                    self.state = ExState::CsDelay;
                    return Command::Delay(20);
                }
                ExState::CsDelay => {
                    self.state = ExState::CsWrite;
                    return Command::Write(self.counter, self.saved + 1);
                }
                ExState::CsWrite => {
                    self.state = ExState::Releasing;
                    let r = self.driver.start_release(ctx);
                    return self.drive(r, ctx);
                }
                ExState::Releasing => {
                    let r = self.driver.on_result(ctx, last);
                    return self.drive(r, ctx);
                }
                ExState::Think => {
                    self.state = ExState::Start;
                    // Loop around without consuming an event.
                    continue;
                }
            }
        }
    }
}

/// Runs the exclusion stress for `kind` and asserts no update was lost.
/// Returns the run's report for traffic comparisons.
pub(crate) fn exclusion_test(
    kind: LockKind,
    nodes: usize,
    cpus_per_node: usize,
    iters: u32,
) -> SimReport {
    exclusion_test_with(kind, MachineConfig::wildfire(nodes, cpus_per_node), iters)
}

/// [`exclusion_test`] on an arbitrary machine config — the fault-injection
/// and coherence-protocol contract suites run the same stress under each
/// disturbance layer / protocol.
pub(crate) fn exclusion_test_with(
    kind: LockKind,
    cfg: MachineConfig,
    iters: u32,
) -> SimReport {
    exclusion_test_params(kind, cfg, iters, &SimLockParams::default())
}

/// [`exclusion_test_with`] with explicit lock tunables (the TWA geometry
/// sweep exercises non-default waiting arrays).
pub(crate) fn exclusion_test_params(
    kind: LockKind,
    cfg: MachineConfig,
    iters: u32,
    params: &SimLockParams,
) -> SimReport {
    let mut m = Machine::new(cfg);
    let topo = Arc::clone(m.topology());
    let gt = GtSlots::alloc(m.mem_mut(), &topo);
    let lock = build_lock(kind, m.mem_mut(), &topo, &gt, NodeId(0), params);
    let counter = m.mem_mut().alloc(NodeId(0));
    for cpu in topo.cpus() {
        let node = topo.node_of(cpu);
        m.add_program(
            cpu,
            Box::new(ExclusionProgram {
                driver: SessionDriver::new(lock.session(cpu, node)),
                counter,
                iters,
                state: ExState::Start,
                saved: 0,
            }),
        );
    }
    let status = m.run(20_000_000_000);
    assert!(status.finished_all, "{kind}: run did not finish");
    let report = m.into_report();
    let expected = topo.num_cpus() as u64 * u64::from(iters);
    assert_eq!(
        report.final_value(counter),
        expected,
        "{kind}: lost updates — mutual exclusion violated"
    );
    assert_eq!(report.lock_traces[0].acquisitions, expected);
    report
}

/// Costs of one acquire+release in the three Table-1 scenarios.
#[derive(Debug, Clone, Copy)]
pub(crate) struct UncontestedCost {
    pub same_processor: u64,
    pub same_node: u64,
    pub remote_node: u64,
}

/// One CPU performs `pairs` acquire+release pairs when `baton` reaches
/// `turn`, writes the duration of the *last* pair to `out`, then
/// increments the baton.
struct TurnProgram {
    driver: SessionDriver,
    baton: Addr,
    out: Addr,
    turn: u64,
    pairs: u32,
    state: TurnState,
    started_at: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TurnState {
    WaitTurn,
    Begin,
    Acquiring,
    Releasing,
    WriteOut,
    BumpBaton,
    Finished,
}

impl TurnProgram {
    fn drive(&mut self, r: DriveResult, ctx: &mut CpuCtx<'_>) -> Command {
        match r {
            DriveResult::Busy(cmd) => cmd,
            DriveResult::AcquireDone => {
                self.state = TurnState::Releasing;
                match self.driver.start_release(ctx) {
                    DriveResult::Busy(cmd) => cmd,
                    _ => unreachable!("release begins with a command"),
                }
            }
            DriveResult::ReleaseDone => {
                self.pairs -= 1;
                if self.pairs == 0 {
                    self.state = TurnState::WriteOut;
                    Command::Write(self.out, ctx.now - self.started_at)
                } else {
                    self.state = TurnState::Begin;
                    Command::Delay(1)
                }
            }
        }
    }
}

impl Program for TurnProgram {
    fn resume(&mut self, ctx: &mut CpuCtx<'_>, last: Option<u64>) -> Command {
        match self.state {
            TurnState::WaitTurn => {
                self.state = TurnState::Begin;
                Command::WaitWhile {
                    addr: self.baton,
                    equals: self.turn.wrapping_sub(1),
                }
            }
            TurnState::Begin => {
                // Only proceed when it is actually our turn (the baton may
                // have woken us at an earlier value change).
                if self.pairs > 0 && last.is_some() && last != Some(self.turn) {
                    return Command::WaitWhile {
                        addr: self.baton,
                        equals: last.unwrap_or(0),
                    };
                }
                self.started_at = ctx.now;
                self.state = TurnState::Acquiring;
                let r = self.driver.start_acquire(ctx);
                self.drive(r, ctx)
            }
            TurnState::Acquiring | TurnState::Releasing => {
                let r = self.driver.on_result(ctx, last);
                self.drive(r, ctx)
            }
            TurnState::WriteOut => {
                self.state = TurnState::BumpBaton;
                Command::Write(self.baton, self.turn + 1)
            }
            TurnState::BumpBaton => {
                self.state = TurnState::Finished;
                Command::Done
            }
            TurnState::Finished => Command::Done,
        }
    }
}

/// Measures the Table-1 scenarios for `kind` on a 2×2 WildFire.
///
/// CPU 0 warms the lock (2 pairs: the second is the same-processor cost),
/// then CPU 1 (same node) does one pair, then CPU 2 (remote node).
pub(crate) fn uncontested_cost(kind: LockKind) -> UncontestedCost {
    let mut m = Machine::new(MachineConfig::wildfire(2, 2));
    let topo = Arc::clone(m.topology());
    let gt = GtSlots::alloc(m.mem_mut(), &topo);
    let lock = build_lock(
        kind,
        m.mem_mut(),
        &topo,
        &gt,
        NodeId(0),
        &SimLockParams::default(),
    );
    let baton = m.mem_mut().alloc(NodeId(0));
    m.mem_mut().poke(baton, 0);
    let outs: Vec<Addr> = (0..3).map(|_| m.mem_mut().alloc(NodeId(0))).collect();

    // Turn 0: cpu0 (two pairs — the second is a pure cache-hit reacquire).
    // Turn 1: cpu1 (same node). Turn 2: cpu2 (remote node).
    let plan = [(CpuId(0), 0u64, 2u32), (CpuId(1), 1, 1), (CpuId(2), 2, 1)];
    for (cpu, turn, pairs) in plan {
        let node = topo.node_of(cpu);
        let state = if turn == 0 {
            TurnState::Begin
        } else {
            TurnState::WaitTurn
        };
        m.add_program(
            cpu,
            Box::new(TurnProgram {
                driver: SessionDriver::new(lock.session(cpu, node)),
                baton,
                out: outs[turn as usize],
                turn,
                pairs,
                state,
                started_at: 0,
            }),
        );
    }
    let status = m.run(1_000_000_000);
    assert!(status.finished_all, "{kind}: uncontested run stuck");
    let report = m.into_report();
    UncontestedCost {
        same_processor: report.final_value(outs[0]),
        same_node: report.final_value(outs[1]),
        remote_node: report.final_value(outs[2]),
    }
}

#[cfg(test)]
mod fault_contract {
    //! The lock contract under injected faults: for every simlock kind and
    //! every fault layer (and all of them at once), mutual exclusion must
    //! hold and every thread must eventually acquire — i.e. the exclusion
    //! stress finishes with an exact counter. Holder preemption stalls the
    //! critical section, migration invalidates HBO's node affinity and the
    //! `is_spinning` slots mid-acquire, the slow node skews the NUCA
    //! ratio, and jitter denies any latency assumption.

    use super::*;
    use nucasim::{
        FaultConfig, HolderPreemptConfig, JitterConfig, MigrationConfig, SlowNodeConfig,
    };

    fn layers() -> Vec<(&'static str, FaultConfig)> {
        vec![
            (
                "holder_preempt",
                FaultConfig::none().with_holder_preempt(HolderPreemptConfig {
                    per_mille: 200,
                    quantum: 30_000,
                }),
            ),
            (
                "migration",
                FaultConfig::none().with_migration(MigrationConfig {
                    mean_gap: 60_000,
                    pause: 10_000,
                }),
            ),
            (
                "slow_node",
                FaultConfig::none().with_slow_node(SlowNodeConfig { node: 1, factor: 4 }),
            ),
            ("jitter", FaultConfig::none().with_jitter(JitterConfig { max_extra: 80 })),
            (
                "all_combined",
                FaultConfig::none()
                    .with_holder_preempt(HolderPreemptConfig {
                        per_mille: 100,
                        quantum: 30_000,
                    })
                    .with_migration(MigrationConfig {
                        mean_gap: 100_000,
                        pause: 10_000,
                    })
                    .with_slow_node(SlowNodeConfig { node: 0, factor: 2 })
                    .with_jitter(JitterConfig { max_extra: 40 }),
            ),
        ]
    }

    fn contract_under(name: &str, faults: FaultConfig) {
        for &kind in hbo_locks::LockCatalog::kinds() {
            let cfg = MachineConfig::wildfire(2, 2).with_faults(faults);
            let report = exclusion_test_with(kind, cfg, 30);
            // The disturbance must actually have happened where observable.
            if faults.holder_preempt.is_some() {
                assert!(report.preemptions > 0, "{kind}/{name}: no burst fired");
            }
            if faults.migration.is_some() {
                assert!(report.migrations > 0, "{kind}/{name}: no migration fired");
            }
        }
    }

    #[test]
    fn exclusion_survives_holder_preemption() {
        let (name, f) = layers().remove(0);
        contract_under(name, f);
    }

    #[test]
    fn exclusion_survives_migration() {
        let (name, f) = layers().remove(1);
        contract_under(name, f);
    }

    #[test]
    fn exclusion_survives_slow_node() {
        let (name, f) = layers().remove(2);
        contract_under(name, f);
    }

    #[test]
    fn exclusion_survives_jitter() {
        let (name, f) = layers().remove(3);
        contract_under(name, f);
    }

    #[test]
    fn exclusion_survives_all_layers_combined() {
        let (name, f) = layers().remove(4);
        contract_under(name, f);
    }

    #[test]
    fn faulted_run_reproducible_for_seed() {
        let (_, f) = layers().remove(4);
        let run = || {
            exclusion_test_with(
                LockKind::HboGtSd,
                MachineConfig::wildfire(2, 2).with_faults(f),
                30,
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.preemptions, b.preemptions);
        assert_eq!(a.migrations, b.migrations);
    }
}

#[cfg(test)]
mod protocol_contract {
    //! The lock contract under every coherence protocol: for every catalog
    //! kind and every [`ProtocolKind`] (flat word-granular, MESI, Dragon)
    //! across seeds, mutual exclusion must hold and every thread must
    //! complete. The set-associative protocols change what an access
    //! *costs* — line-granular invalidations, update broadcasts, capacity
    //! evictions, false sharing between a lock word and its neighbours —
    //! but never what it *returns*; any lost update or stuck waiter here
    //! means a protocol state machine broke the memory contract the lock
    //! state machines rely on.

    use super::*;
    use nucasim::ProtocolKind;

    fn contract_under(proto: ProtocolKind) {
        for &kind in hbo_locks::LockCatalog::kinds() {
            for seed in [1u64, 42] {
                let cfg = MachineConfig::wildfire(2, 2)
                    .with_protocol(proto)
                    .with_seed(seed);
                exclusion_test_with(kind, cfg, 30);
            }
        }
    }

    #[test]
    fn exclusion_holds_under_flat() {
        contract_under(ProtocolKind::Flat);
    }

    #[test]
    fn exclusion_holds_under_mesi() {
        contract_under(ProtocolKind::Mesi);
    }

    #[test]
    fn exclusion_holds_under_dragon() {
        contract_under(ProtocolKind::Dragon);
    }

    #[test]
    fn protocol_runs_reproducible_for_seed() {
        for proto in [ProtocolKind::Mesi, ProtocolKind::Dragon] {
            for kind in [LockKind::HboGt, LockKind::Twa, LockKind::Mcs] {
                let run = || {
                    exclusion_test_with(
                        kind,
                        MachineConfig::wildfire(2, 2).with_protocol(proto).with_seed(9),
                        30,
                    )
                };
                let (a, b) = (run(), run());
                assert_eq!(a.end_time, b.end_time, "{kind}/{proto}");
                assert_eq!(a.traffic, b.traffic, "{kind}/{proto}");
            }
        }
    }

    #[test]
    fn exclusion_survives_faults_under_mesi() {
        // Protocols compose with the fault layers: the full disturbance
        // stack on top of line-granular coherence still upholds the
        // contract.
        use nucasim::{FaultConfig, HolderPreemptConfig, JitterConfig};
        let faults = FaultConfig::none()
            .with_holder_preempt(HolderPreemptConfig { per_mille: 100, quantum: 30_000 })
            .with_jitter(JitterConfig { max_extra: 40 });
        for kind in [LockKind::HboGtSd, LockKind::Clh, LockKind::Recip] {
            let cfg = MachineConfig::wildfire(2, 2)
                .with_protocol(ProtocolKind::Mesi)
                .with_faults(faults);
            exclusion_test_with(kind, cfg, 30);
        }
    }
}

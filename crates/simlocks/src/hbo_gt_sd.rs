//! Simulator HBO_GT_SD — paper Figure 2 grafted onto Figure 1.

use hbo_locks::{BackoffConfig, LockKind};
use nuca_topology::{CpuId, NodeId};
use nucasim::{Addr, BackoffClass, Command, CpuCtx, MemorySystem};

use crate::hbo::{tag, FREE};
use crate::hbo_gt::DUMMY;
use crate::{GtSlots, LockSession, SimBackoff, SimLock, Step};

/// HBO_GT_SD in simulated memory: HBO_GT plus node-centric starvation
/// detection. A remote spinner that fails `get_angry_limit` times spins
/// eagerly from then on and writes the lock address into the `is_spinning`
/// slot of each node it observes holding the lock, gating new contenders
/// from those nodes until the angry thread finally acquires.
#[derive(Debug)]
pub struct SimHboGtSd {
    word: Addr,
    gt: GtSlots,
    local: BackoffConfig,
    remote: BackoffConfig,
    get_angry_limit: u32,
}

impl SimHboGtSd {
    /// Allocates the lock word homed in `home`.
    pub fn alloc(
        mem: &mut MemorySystem,
        home: NodeId,
        gt: GtSlots,
        local: BackoffConfig,
        remote: BackoffConfig,
        get_angry_limit: u32,
    ) -> SimHboGtSd {
        SimHboGtSd {
            word: mem.alloc(home),
            gt,
            local,
            remote,
            get_angry_limit: get_angry_limit.max(1),
        }
    }
}

impl SimLock for SimHboGtSd {
    fn session(&self, _cpu: CpuId, node: NodeId) -> Box<dyn LockSession> {
        Box::new(SdSession {
            word: self.word,
            gt: self.gt.clone(),
            my_node: node,
            my_tag: tag(node),
            local: self.local,
            remote: self.remote,
            limit: self.get_angry_limit,
            backoff: SimBackoff::new(self.local),
            get_angry: 0,
            stopped: Vec::new(),
            pending_clears: Vec::new(),
            after_clears: AfterClears::Acquired,
            state: SdState::Idle,
        })
    }

    fn kind(&self) -> LockKind {
        LockKind::HboGtSd
    }

    fn lock_word(&self) -> Option<Addr> {
        Some(self.word)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SdState {
    Idle,
    Gate,
    GateCas,
    LocalDelay,
    LocalCas,
    MigratePause,
    Announce,
    RemoteDelay,
    RemoteCas,
    /// Writing the lock address into a stopped node's slot (Fig. 2 line
    /// 62), then back to remote spinning.
    StopNode,
    /// Draining `pending_clears` (our slot + stopped nodes), then
    /// proceeding per `after_clears`.
    Clearing,
    Holding,
    Releasing,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AfterClears {
    Acquired,
    Restart,
}

#[derive(Debug)]
struct SdSession {
    word: Addr,
    gt: GtSlots,
    my_node: NodeId,
    my_tag: u64,
    local: BackoffConfig,
    remote: BackoffConfig,
    limit: u32,
    backoff: SimBackoff,
    get_angry: u32,
    /// Nodes we have stopped (Fig. 2's `stopped_node_id[]`).
    stopped: Vec<NodeId>,
    /// Slots still to clear before finishing the current transition.
    pending_clears: Vec<Addr>,
    after_clears: AfterClears,
    state: SdState,
}

impl SdSession {
    fn cas(&self) -> Command {
        Command::Cas {
            addr: self.word,
            expected: FREE,
            new: self.my_tag,
        }
    }

    fn gate(&mut self) -> Step {
        self.state = SdState::Gate;
        Step::Op(Command::WaitWhile {
            addr: self.my_slot(),
            equals: self.word.encode(),
        })
    }

    fn my_slot(&self) -> Addr {
        self.gt.slot(self.my_node)
    }

    fn classify(&mut self, ctx: &mut CpuCtx<'_>, tmp: u64) -> Step {
        if tmp == self.my_tag {
            self.backoff.reset(self.local);
            self.state = SdState::LocalDelay;
            let d = self.backoff.next_delay();
            ctx.trace_backoff(d, BackoffClass::Local);
            Step::Op(Command::Delay(d))
        } else {
            self.backoff.reset(self.remote);
            self.get_angry = 0;
            self.state = SdState::Announce;
            ctx.trace_throttle_spin();
            Step::Op(Command::Write(self.my_slot(), self.word.encode()))
        }
    }

    /// Queues the slot clears for lines 43–49 / 51–55 of Fig. 2 and emits
    /// the first one.
    fn begin_clears(&mut self, after: AfterClears) -> Step {
        self.pending_clears.push(self.my_slot());
        for n in self.stopped.drain(..) {
            self.pending_clears.push(self.gt.slot(n));
        }
        self.after_clears = after;
        self.state = SdState::Clearing;
        let slot = self.pending_clears.pop().expect("just pushed");
        Step::Op(Command::Write(slot, DUMMY))
    }

    fn continue_clears(&mut self) -> Step {
        if let Some(slot) = self.pending_clears.pop() {
            return Step::Op(Command::Write(slot, DUMMY));
        }
        match self.after_clears {
            AfterClears::Acquired => {
                self.state = SdState::Holding;
                Step::Acquired
            }
            AfterClears::Restart => self.gate(),
        }
    }
}

impl LockSession for SdSession {
    fn start_acquire(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, SdState::Idle);
        self.get_angry = 0;
        self.gate()
    }

    fn resume_acquire(&mut self, ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            SdState::Gate => {
                self.state = SdState::GateCas;
                Step::Op(self.cas())
            }
            SdState::GateCas => {
                let tmp = result.expect("cas returns old");
                if tmp == FREE {
                    self.state = SdState::Holding;
                    Step::Acquired
                } else {
                    self.classify(ctx, tmp)
                }
            }
            SdState::LocalDelay => {
                self.state = SdState::LocalCas;
                Step::Op(self.cas())
            }
            SdState::LocalCas => {
                let tmp = result.expect("cas returns old");
                if tmp == FREE {
                    self.state = SdState::Holding;
                    return Step::Acquired;
                }
                if tmp == self.my_tag {
                    self.state = SdState::LocalDelay;
                    let d = self.backoff.next_delay();
                    ctx.trace_backoff(d, BackoffClass::Local);
                    Step::Op(Command::Delay(d))
                } else {
                    self.state = SdState::MigratePause;
                    let d = self.backoff.next_delay();
                    ctx.trace_backoff(d, BackoffClass::Local);
                    Step::Op(Command::Delay(d))
                }
            }
            SdState::MigratePause => self.gate(),
            SdState::Announce => {
                self.state = SdState::RemoteDelay;
                let d = self.backoff.next_delay();
                ctx.trace_backoff(d, BackoffClass::Remote);
                Step::Op(Command::Delay(d))
            }
            SdState::RemoteDelay => {
                self.state = SdState::RemoteCas;
                Step::Op(self.cas())
            }
            SdState::RemoteCas => {
                let tmp = result.expect("cas returns old");
                if tmp == FREE {
                    // Fig. 2 lines 43–49.
                    return self.begin_clears(AfterClears::Acquired);
                }
                if tmp == self.my_tag {
                    // Fig. 2 lines 51–55.
                    return self.begin_clears(AfterClears::Restart);
                }
                // Fig. 2 lines 57–63: still remote — get angrier. The
                // counter resets on each episode rather than growing
                // forever: `n == limit` after a reset fires at exactly the
                // same attempts as `n % limit == 0` on a monotone counter,
                // and a bounded counter keeps the session's state space
                // finite (required by the `nuca-mcheck` model checker's
                // state-hash dedup to terminate).
                self.get_angry += 1;
                if self.get_angry == self.limit {
                    self.get_angry = 0;
                    ctx.record_got_angry();
                    // Measure 1: spin more frequently.
                    self.backoff.reset(self.local);
                    // Measure 2: stop the observed holder node.
                    let holder = NodeId((tmp - 1) as usize);
                    if holder.index() < self.gt.nodes() && !self.stopped.contains(&holder) {
                        self.stopped.push(holder);
                        self.state = SdState::StopNode;
                        return Step::Op(Command::Write(
                            self.gt.slot(holder),
                            self.word.encode(),
                        ));
                    }
                }
                self.state = SdState::RemoteDelay;
                let d = self.backoff.next_delay();
                ctx.trace_backoff(d, BackoffClass::Remote);
                Step::Op(Command::Delay(d))
            }
            SdState::StopNode => {
                self.state = SdState::RemoteDelay;
                let d = self.backoff.next_delay();
                ctx.trace_backoff(d, BackoffClass::Remote);
                Step::Op(Command::Delay(d))
            }
            SdState::Clearing => self.continue_clears(),
            s => unreachable!("resume_acquire in state {s:?}"),
        }
    }

    fn start_release(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, SdState::Holding);
        self.state = SdState::Releasing;
        Step::Op(Command::Write(self.word, FREE))
    }

    fn resume_release(&mut self, _ctx: &mut CpuCtx<'_>, _result: Option<u64>) -> Step {
        debug_assert_eq!(self.state, SdState::Releasing);
        self.state = SdState::Idle;
        Step::Released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{exclusion_test, uncontested_cost};

    #[test]
    fn mutual_exclusion() {
        exclusion_test(LockKind::HboGtSd, 2, 2, 50);
    }

    #[test]
    fn mutual_exclusion_many_cpus() {
        exclusion_test(LockKind::HboGtSd, 2, 6, 20);
    }

    #[test]
    fn mutual_exclusion_four_nodes() {
        exclusion_test(LockKind::HboGtSd, 4, 3, 15);
    }

    #[test]
    fn uncontested_cost_close_to_tatas() {
        let s = uncontested_cost(LockKind::HboGtSd);
        let t = uncontested_cost(LockKind::Tatas);
        assert!(s.same_processor <= t.same_processor + 80);
    }

    #[test]
    fn retains_node_affinity() {
        let sd = exclusion_test(LockKind::HboGtSd, 2, 4, 40);
        let mcs = exclusion_test(LockKind::Mcs, 2, 4, 40);
        let s = sd.lock_traces[0].handoff_ratio().unwrap();
        let m = mcs.lock_traces[0].handoff_ratio().unwrap();
        assert!(s < 0.25, "SD handoff ratio {s:.3} must stay low");
        assert!(s < m, "SD handoff {s:.3} vs MCS {m:.3}");
    }
}

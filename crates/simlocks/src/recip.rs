//! Simulator Reciprocating lock (Dice & Kogan, arXiv:2501.02380).
//!
//! The lock is one word (`arrivals`): free, held-with-no-known-waiters,
//! or the top of a LIFO arrival stack. The holder detaches the stack
//! wholesale at segment end and serves it in reverse arrival order, each
//! grantee inheriting the remainder as its *continuation*; arrivals
//! during a segment stack up for the next one, giving palindromic
//! admission order and a two-segment bypass bound.
//!
//! Per-CPU stack nodes (`grant`, `next`) are homed node-locally, so
//! waiters spin locally MCS-style; the uncontended path touches only
//! `arrivals`.

use hbo_locks::LockKind;
use nuca_topology::{CpuId, NodeId, Topology};
use nucasim::{Addr, Command, CpuCtx, MemorySystem};

use crate::{LockSession, SimLock, Step};

/// `arrivals` value: lock free.
const FREE: u64 = 0;
/// `arrivals` value: held with an empty arrival stack. Doubles as the
/// segment terminator in `next` chains (CPU codes start at 2).
const HELD: u64 = 1;

/// Reciprocating lock in simulated memory.
#[derive(Debug)]
pub struct SimRecip {
    arrivals: Addr,
    /// Per-CPU `(grant, next)` stack-node words, homed in the CPU's node.
    qnodes: Vec<(Addr, Addr)>,
}

impl SimRecip {
    /// Allocates the lock word in `home` and one stack node per CPU in
    /// that CPU's own node.
    pub fn alloc(mem: &mut MemorySystem, topo: &Topology, home: NodeId) -> SimRecip {
        let qnodes = topo
            .cpus()
            .map(|c| {
                let n = topo.node_of(c);
                (mem.alloc(n), mem.alloc(n))
            })
            .collect();
        SimRecip {
            arrivals: mem.alloc(home),
            qnodes,
        }
    }
}

impl SimLock for SimRecip {
    fn session(&self, cpu: CpuId, _node: NodeId) -> Box<dyn LockSession> {
        Box::new(RecipSession {
            arrivals: self.arrivals,
            qnodes: self.qnodes.clone(),
            me: cpu.index() as u64 + 2,
            a: 0,
            cont: HELD,
            state: RecipState::Idle,
        })
    }

    fn kind(&self) -> LockKind {
        LockKind::Recip
    }

    fn lock_word(&self) -> Option<Addr> {
        Some(self.arrivals)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecipState {
    Idle,
    FastCas,
    InitGrant,
    /// Retrying the free→held CAS after observing `arrivals == FREE`.
    FreeCas,
    /// Recording the covered `arrivals` value in our `next` word.
    WrNext,
    /// Publishing ourselves as the new stack top.
    PushCas,
    SpinGrant,
    Holding,
    // Release.
    GrantCont,
    SwapDetach,
    GrantTop,
    FreeCasRel,
}

#[derive(Debug)]
struct RecipSession {
    arrivals: Addr,
    qnodes: Vec<(Addr, Addr)>,
    /// This CPU's code in `arrivals`/`next` words (index + 2, clear of
    /// [`FREE`] and [`HELD`]).
    me: u64,
    /// Last observed `arrivals` value (the push CAS's expected value; on
    /// success it is exactly the continuation stored in our `next`).
    a: u64,
    /// The holder's continuation: [`HELD`] for an empty segment
    /// remainder, else the next segment member's code.
    cont: u64,
    state: RecipState,
}

impl RecipSession {
    fn grant_of(&self, code: u64) -> Addr {
        self.qnodes[(code - 2) as usize].0
    }

    fn next_of(&self, code: u64) -> Addr {
        self.qnodes[(code - 2) as usize].1
    }

    /// Dispatch on an observed `arrivals` value during the push loop.
    fn on_arrivals(&mut self, a: u64) -> Step {
        if a == FREE {
            self.state = RecipState::FreeCas;
            Step::Op(Command::Cas {
                addr: self.arrivals,
                expected: FREE,
                new: HELD,
            })
        } else {
            // Push onto the arrival stack; `next` remembers what we
            // covered — HELD makes us the bottom of our segment.
            self.a = a;
            self.state = RecipState::WrNext;
            Step::Op(Command::Write(self.next_of(self.me), a))
        }
    }
}

impl LockSession for RecipSession {
    fn start_acquire(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, RecipState::Idle);
        self.state = RecipState::FastCas;
        Step::Op(Command::Cas {
            addr: self.arrivals,
            expected: FREE,
            new: HELD,
        })
    }

    fn resume_acquire(&mut self, _ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            RecipState::FastCas => {
                let old = result.expect("cas returns old");
                if old == FREE {
                    self.cont = HELD;
                    self.state = RecipState::Holding;
                    Step::Acquired
                } else {
                    // Contended: reset our grant word (the previous
                    // grant left it at 1), then join the stack.
                    self.a = old;
                    self.state = RecipState::InitGrant;
                    Step::Op(Command::Write(self.grant_of(self.me), 0))
                }
            }
            RecipState::InitGrant => {
                let a = self.a;
                self.on_arrivals(a)
            }
            RecipState::FreeCas => {
                let old = result.expect("cas returns old");
                if old == FREE {
                    self.cont = HELD;
                    self.state = RecipState::Holding;
                    Step::Acquired
                } else {
                    self.on_arrivals(old)
                }
            }
            RecipState::WrNext => {
                self.state = RecipState::PushCas;
                Step::Op(Command::Cas {
                    addr: self.arrivals,
                    expected: self.a,
                    new: self.me,
                })
            }
            RecipState::PushCas => {
                let old = result.expect("cas returns old");
                if old == self.a {
                    self.state = RecipState::SpinGrant;
                    Step::Op(Command::WaitWhile {
                        addr: self.grant_of(self.me),
                        equals: 0,
                    })
                } else {
                    self.on_arrivals(old)
                }
            }
            RecipState::SpinGrant => {
                // Granted: our continuation is the value we pushed over
                // (our own `next` word, which only we wrote).
                self.cont = self.a;
                self.state = RecipState::Holding;
                Step::Acquired
            }
            s => unreachable!("resume_acquire in state {s:?}"),
        }
    }

    fn start_release(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, RecipState::Holding);
        if self.cont != HELD {
            // Serve the rest of our admission segment first.
            self.state = RecipState::GrantCont;
            Step::Op(Command::Write(self.grant_of(self.cont), 1))
        } else {
            // Segment exhausted: detach the stack accumulated during it.
            // The swap leaves HELD so late arrivals keep stacking for
            // whoever we grant.
            self.state = RecipState::SwapDetach;
            Step::Op(Command::Swap {
                addr: self.arrivals,
                value: HELD,
            })
        }
    }

    fn resume_release(&mut self, _ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            RecipState::GrantCont | RecipState::GrantTop => {
                self.state = RecipState::Idle;
                Step::Released
            }
            RecipState::SwapDetach => {
                let a = result.expect("swap returns old");
                debug_assert_ne!(a, FREE, "holder saw a free lock");
                if a == HELD {
                    // No waiters: release for real — unless someone
                    // pushes between the swap and this CAS.
                    self.state = RecipState::FreeCasRel;
                    Step::Op(Command::Cas {
                        addr: self.arrivals,
                        expected: HELD,
                        new: FREE,
                    })
                } else {
                    // Grant the detached stack top; the chain below it is
                    // the new holder's continuation.
                    self.state = RecipState::GrantTop;
                    Step::Op(Command::Write(self.grant_of(a), 1))
                }
            }
            RecipState::FreeCasRel => {
                let old = result.expect("cas returns old");
                if old == HELD {
                    self.state = RecipState::Idle;
                    Step::Released
                } else {
                    self.state = RecipState::SwapDetach;
                    Step::Op(Command::Swap {
                        addr: self.arrivals,
                        value: HELD,
                    })
                }
            }
            s => unreachable!("resume_release in state {s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{exclusion_test, uncontested_cost};

    #[test]
    fn mutual_exclusion() {
        exclusion_test(LockKind::Recip, 2, 2, 50);
    }

    #[test]
    fn mutual_exclusion_many_cpus() {
        exclusion_test(LockKind::Recip, 2, 6, 20);
    }

    #[test]
    fn uncontested_costs_ordered() {
        let c = uncontested_cost(LockKind::Recip);
        assert!(c.same_processor < c.same_node);
        assert!(c.same_node < c.remote_node);
        // One CAS on the fast path: cheaper than MCS's swap + self-link
        // dance on every scenario.
        let m = uncontested_cost(LockKind::Mcs);
        assert!(c.same_processor <= m.same_processor);
    }

    #[test]
    fn lock_word_is_arrivals() {
        let mut m = nucasim::Machine::new(nucasim::MachineConfig::wildfire(2, 2));
        let topo = std::sync::Arc::clone(m.topology());
        let lock = SimRecip::alloc(m.mem_mut(), &topo, NodeId(0));
        assert_eq!(lock.lock_word(), Some(lock.arrivals));
    }
}

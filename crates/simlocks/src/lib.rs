//! Lock-algorithm state machines for the `nucasim` NUCA simulator.
//!
//! Every algorithm in the [`hbo_locks::LockCatalog`] — the paper's eight
//! (TATAS, TATAS_EXP, MCS, CLH, RH, HBO, HBO_GT, HBO_GT_SD), the TICKET
//! and HIER extensions, and the modern NUMA-aware generation (CNA, TWA,
//! RECIP) — is expressed here as a resumable state machine over simulated
//! memory, issuing exactly the memory-operation sequences of the
//! published pseudocode (Figures 1 and 2 of the paper for the HBO
//! family). Workload programs drive a [`LockSession`] per CPU.
//!
//! The split from `hbo-locks` is deliberate: that crate is the *real*
//! library on real atomics; this crate is the *measurement* form the
//! simulator executes to regenerate the paper's tables and figures. The
//! two share tuning types ([`hbo_locks::BackoffConfig`]) and the
//! [`hbo_locks::LockKind`] registry. In the simulator, backoff delays are
//! in cycles (4 ns each).
//!
//! # Example
//!
//! ```
//! use hbo_locks::LockKind;
//! use nucasim::{Machine, MachineConfig};
//! use nucasim_locks::{build_lock, GtSlots, SimLockParams};
//! use nuca_topology::NodeId;
//! use std::sync::Arc;
//!
//! let mut machine = Machine::new(MachineConfig::wildfire(2, 2));
//! let topo = Arc::clone(machine.topology());
//! let gt = GtSlots::alloc(machine.mem_mut(), &topo);
//! let lock = build_lock(
//!     LockKind::HboGtSd,
//!     machine.mem_mut(),
//!     &topo,
//!     &gt,
//!     NodeId(0),
//!     &SimLockParams::default(),
//! );
//! // One session per simulated CPU:
//! let session = lock.session(nuca_topology::CpuId(3), NodeId(1));
//! drop(session);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clh;
mod cna;
mod driver;
mod hbo;
mod hbo_gt;
mod hbo_gt_sd;
mod hier;
mod mcs;
pub mod mutants;
mod recip;
mod rh;
mod tatas;
mod ticket;
mod twa;

#[cfg(test)]
pub(crate) mod testutil;

use std::fmt;
use std::sync::Arc;

use hbo_locks::{BackoffConfig, LockKind};
use nuca_topology::{CpuId, NodeId, Topology};
use nucasim::{Addr, Command, CpuCtx, MemorySystem};

pub use clh::SimClh;
pub use cna::SimCna;
pub use driver::{DriveResult, SessionDriver};
pub use hbo::SimHbo;
pub use hbo_gt::SimHboGt;
pub use hbo_gt_sd::SimHboGtSd;
pub use hier::SimHierHbo;
pub use mcs::SimMcs;
pub use recip::SimRecip;
pub use rh::SimRh;
pub use tatas::{SimTatas, SimTatasExp};
pub use ticket::SimTicket;
pub use twa::SimTwa;

/// One step of a lock session: either a memory/delay command to execute,
/// or completion of the current phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Execute this command and feed the result back via
    /// [`LockSession::resume_acquire`] / [`LockSession::resume_release`].
    Op(Command),
    /// The lock is now held.
    Acquired,
    /// The lock is now released.
    Released,
}

/// A per-CPU lock client: a resumable acquire/release state machine.
///
/// # Contract
///
/// * Create **one session per simulated CPU per lock** and reuse it for
///   every acquisition (CLH transfers queue-node ownership across
///   acquisitions, so sessions are stateful).
/// * Drive acquisition with [`start_acquire`](LockSession::start_acquire)
///   then [`resume_acquire`](LockSession::resume_acquire) until
///   [`Step::Acquired`]; drive release analogously. Phases must alternate.
/// * Every step receives the executing CPU's [`CpuCtx`], through which the
///   state machines report observability events (backoff sleeps, throttle
///   announcements, anger episodes) — free when no trace sink is installed.
pub trait LockSession: fmt::Debug {
    /// Begins an acquisition.
    fn start_acquire(&mut self, ctx: &mut CpuCtx<'_>) -> Step;
    /// Continues an acquisition with the result of the previous command
    /// (`None` after a `Delay`).
    fn resume_acquire(&mut self, ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step;
    /// Begins a release.
    fn start_release(&mut self, ctx: &mut CpuCtx<'_>) -> Step;
    /// Continues a release.
    fn resume_release(&mut self, ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step;
}

/// A lock instance living in simulated memory; a factory for sessions.
pub trait SimLock: fmt::Debug {
    /// Creates the session for `cpu` (in `node`). Call once per CPU.
    fn session(&self, cpu: CpuId, node: NodeId) -> Box<dyn LockSession>;
    /// Which algorithm this is.
    fn kind(&self) -> LockKind;
    /// The single word contended for, when the algorithm has one —
    /// enables QOLB-style *collocation* experiments (allocating protected
    /// data in the same line as the lock, paper §3). Queue locks return
    /// `None`.
    fn lock_word(&self) -> Option<Addr> {
        None
    }
}

/// The per-node `is_spinning` words shared by all HBO_GT/HBO_GT_SD locks
/// of one machine (the paper's "one extra variable per NUCA node").
#[derive(Debug, Clone)]
pub struct GtSlots {
    slots: Arc<[Addr]>,
}

impl GtSlots {
    /// Allocates one slot per node, each homed in its own node.
    pub fn alloc(mem: &mut MemorySystem, topo: &Topology) -> GtSlots {
        let slots: Vec<Addr> = topo.nodes().map(|n| mem.alloc(n)).collect();
        GtSlots {
            slots: slots.into(),
        }
    }

    /// The `is_spinning` word of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the topology this was allocated for.
    pub fn slot(&self, node: NodeId) -> Addr {
        self.slots[node.index()]
    }

    /// Number of nodes covered.
    pub fn nodes(&self) -> usize {
        self.slots.len()
    }
}

/// How TWA maps a ticket to a waiting-array slot.
///
/// The choice matters under line-granular coherence: with [`TwaHash::Mod`]
/// consecutive tickets park on *adjacent* slots, so a promote bump falsely
/// shares its cache line with the neighbours' slots; [`TwaHash::Stride`]
/// spreads consecutive tickets across the array, putting neighbouring
/// tickets on different lines at the cost of less predictable collisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TwaHash {
    /// `slot = ticket % slots` — the published TWA mapping.
    #[default]
    Mod,
    /// `slot = (ticket * 7) % slots` — a coprime stride that separates
    /// consecutive tickets by several slots (and usually several lines).
    Stride,
}

impl TwaHash {
    /// Every hash, in menu order.
    pub const ALL: [TwaHash; 2] = [TwaHash::Mod, TwaHash::Stride];

    /// Stable lowercase name (CLI operand and TSV label).
    pub fn name(self) -> &'static str {
        match self {
            TwaHash::Mod => "mod",
            TwaHash::Stride => "stride",
        }
    }

    /// The waiting-array index for `ticket` out of `slots`.
    pub fn slot(self, ticket: u64, slots: usize) -> usize {
        let s = slots as u64;
        let i = match self {
            TwaHash::Mod => ticket % s,
            TwaHash::Stride => ticket.wrapping_mul(7) % s,
        };
        i as usize
    }
}

impl fmt::Display for TwaHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for TwaHash {
    type Err = String;

    fn from_str(s: &str) -> Result<TwaHash, String> {
        match s {
            "mod" => Ok(TwaHash::Mod),
            "stride" => Ok(TwaHash::Stride),
            other => Err(format!("unknown TWA hash '{other}' (expected mod or stride)")),
        }
    }
}

/// Tunables shared by the simulator lock implementations.
///
/// Backoff delays are simulated cycles. The defaults are tuned for the
/// WildFire latency preset: the local backoff is a small multiple of a
/// same-node transfer (70 cycles), the remote backoff a multiple of a
/// remote transfer (420 cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimLockParams {
    /// Backoff for spinning on a lock held in the caller's node; also the
    /// TATAS_EXP constants.
    pub local: BackoffConfig,
    /// Backoff for spinning on a remotely held lock.
    pub remote: BackoffConfig,
    /// HBO_GT_SD anger threshold (failed remote attempts before starvation
    /// countermeasures kick in).
    pub get_angry_limit: u32,
    /// RH consecutive local handovers before the releaser publishes the
    /// lock globally.
    pub rh_max_handovers: u64,
    /// CNA consecutive local handoffs before the releaser splices the
    /// secondary (remote) queue back ahead of the main queue.
    pub cna_splice_threshold: u32,
    /// TWA waiting-array slots (the published lock uses 4096 process-wide;
    /// the simulator default is 16, keeping the collision semantics).
    pub twa_slots: usize,
    /// TWA ticket→slot mapping.
    pub twa_hash: TwaHash,
}

impl Default for SimLockParams {
    fn default() -> Self {
        SimLockParams {
            local: BackoffConfig::new(100, 2, 1_600),
            remote: BackoffConfig::new(1_600, 2, 51_200),
            get_angry_limit: 16,
            rh_max_handovers: 64,
            cna_splice_threshold: 64,
            twa_slots: default_twa_slots(),
            twa_hash: default_twa_hash(),
        }
    }
}

impl SimLockParams {
    /// Returns the params with a different remote backoff cap (the
    /// `REMOTE_BACKOFF_CAP` sensitivity study, Fig. 9).
    #[must_use]
    pub fn with_remote_cap(mut self, cap: u32) -> SimLockParams {
        self.remote = self.remote.with_cap(cap);
        self
    }

    /// Returns the params with a different anger threshold (Fig. 10).
    #[must_use]
    pub fn with_get_angry_limit(mut self, limit: u32) -> SimLockParams {
        self.get_angry_limit = limit;
        self
    }

    /// Returns the params with a different CNA splice threshold
    /// (clamped to ≥ 1 at allocation).
    #[must_use]
    pub fn with_cna_splice_threshold(mut self, threshold: u32) -> SimLockParams {
        self.cna_splice_threshold = threshold;
        self
    }

    /// Returns the params with a different TWA waiting-array geometry.
    #[must_use]
    pub fn with_twa(mut self, slots: usize, hash: TwaHash) -> SimLockParams {
        assert!(slots >= 1, "TWA needs at least one waiting-array slot");
        self.twa_slots = slots;
        self.twa_hash = hash;
        self
    }
}

/// Process-wide default TWA waiting-array slot count, read by
/// [`SimLockParams::default`]. The harness `--twa-slots` flag sets it once
/// before any run.
static DEFAULT_TWA_SLOTS: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(16);

/// Process-wide default TWA hash ([`TwaHash::ALL`] index), read by
/// [`SimLockParams::default`]. The harness `--twa-hash` flag sets it.
static DEFAULT_TWA_HASH: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Sets the process-wide default TWA waiting-array slot count.
///
/// # Panics
///
/// Panics on `slots == 0` — a slotless array has nowhere to park.
pub fn set_default_twa_slots(slots: usize) {
    assert!(slots >= 1, "TWA needs at least one waiting-array slot");
    DEFAULT_TWA_SLOTS.store(slots, std::sync::atomic::Ordering::Relaxed);
}

/// The process-wide default TWA waiting-array slot count (16 unless
/// [`set_default_twa_slots`] changed it).
pub fn default_twa_slots() -> usize {
    DEFAULT_TWA_SLOTS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Sets the process-wide default TWA ticket→slot hash.
pub fn set_default_twa_hash(hash: TwaHash) {
    let idx = TwaHash::ALL.iter().position(|&h| h == hash).expect("hash in ALL");
    DEFAULT_TWA_HASH.store(idx as u8, std::sync::atomic::Ordering::Relaxed);
}

/// The process-wide default TWA ticket→slot hash ([`TwaHash::Mod`] unless
/// [`set_default_twa_hash`] changed it).
pub fn default_twa_hash() -> TwaHash {
    TwaHash::ALL[DEFAULT_TWA_HASH.load(std::sync::atomic::Ordering::Relaxed) as usize]
}

/// Allocates a lock of `kind` in simulated memory, homed in `home`.
///
/// `gt` supplies the shared per-node `is_spinning` words (used only by
/// HBO_GT and HBO_GT_SD).
pub fn build_lock(
    kind: LockKind,
    mem: &mut MemorySystem,
    topo: &Topology,
    gt: &GtSlots,
    home: NodeId,
    params: &SimLockParams,
) -> Box<dyn SimLock> {
    match kind {
        LockKind::Tatas => Box::new(SimTatas::alloc(mem, home)),
        LockKind::TatasExp => Box::new(SimTatasExp::alloc(mem, home, params.local)),
        LockKind::Mcs => Box::new(SimMcs::alloc(mem, topo, home)),
        LockKind::Clh => Box::new(SimClh::alloc(mem, topo, home)),
        LockKind::Rh => Box::new(SimRh::alloc(
            mem,
            topo,
            params.local,
            params.remote,
            params.rh_max_handovers,
        )),
        LockKind::Hbo => Box::new(SimHbo::alloc(mem, home, params.local, params.remote)),
        LockKind::HboGt => Box::new(SimHboGt::alloc(
            mem,
            home,
            gt.clone(),
            params.local,
            params.remote,
        )),
        LockKind::HboGtSd => Box::new(SimHboGtSd::alloc(
            mem,
            home,
            gt.clone(),
            params.local,
            params.remote,
            params.get_angry_limit,
        )),
        LockKind::Ticket => Box::new(SimTicket::alloc(mem, home)),
        LockKind::Hier => Box::new(SimHierHbo::alloc(
            mem,
            Arc::new(topo.clone()),
            home,
            hier_levels(topo, params),
        )),
        LockKind::Cna => Box::new(SimCna::alloc(
            mem,
            topo,
            home,
            params.cna_splice_threshold,
        )),
        LockKind::Twa => Box::new(SimTwa::alloc_with(
            mem,
            topo,
            home,
            params.twa_slots,
            params.twa_hash,
        )),
        LockKind::Recip => Box::new(SimRecip::alloc(mem, topo, home)),
    }
}

/// Per-distance backoff ladder for the hierarchical lock: distances 0
/// and 1 (same processor / same node) use the local config, distance 2
/// the remote config, and each extra topology level doubles from there —
/// so on two-level machines HIER degenerates to HBO's two-tier scheme,
/// as the paper's "expand hierarchically" remark intends.
fn hier_levels(topo: &Topology, params: &SimLockParams) -> hbo_locks::LevelBackoff {
    let mut cfgs = vec![params.local, params.local, params.remote];
    let mut b = params.remote;
    for _ in 0..topo.extra_levels() {
        b = BackoffConfig::new(b.base.saturating_mul(2), b.factor, b.cap.saturating_mul(2));
        cfgs.push(b);
    }
    hbo_locks::LevelBackoff::new(cfgs)
}

/// Simulated-cycle exponential backoff helper shared by the state
/// machines: yields the next delay and grows the period.
#[derive(Debug, Clone)]
pub(crate) struct SimBackoff {
    current: u32,
    cfg: BackoffConfig,
}

impl SimBackoff {
    pub(crate) fn new(cfg: BackoffConfig) -> SimBackoff {
        SimBackoff {
            current: cfg.base,
            cfg,
        }
    }

    /// The paper's `backoff(&b, cap)`: returns the delay to wait, then
    /// grows the period.
    pub(crate) fn next_delay(&mut self) -> u64 {
        let d = self.current;
        self.current = self
            .current
            .saturating_mul(self.cfg.factor)
            .min(self.cfg.cap);
        u64::from(d)
    }

    pub(crate) fn reset(&mut self, cfg: BackoffConfig) {
        self.current = cfg.base;
        self.cfg = cfg;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucasim::MachineConfig;

    #[test]
    fn gt_slots_one_per_node() {
        let mut m = nucasim::Machine::new(MachineConfig::wildfire(3, 2));
        let topo = Arc::clone(m.topology());
        let gt = GtSlots::alloc(m.mem_mut(), &topo);
        assert_eq!(gt.nodes(), 3);
        let a = gt.slot(NodeId(0));
        let b = gt.slot(NodeId(1));
        assert_ne!(a, b);
        assert_eq!(m.mem().home(b), NodeId(1), "slot homed in its node");
    }

    #[test]
    fn build_all_kinds() {
        let mut m = nucasim::Machine::new(MachineConfig::wildfire(2, 2));
        let topo = Arc::clone(m.topology());
        let gt = GtSlots::alloc(m.mem_mut(), &topo);
        for &kind in hbo_locks::LockCatalog::kinds() {
            let lock = build_lock(
                kind,
                m.mem_mut(),
                &topo,
                &gt,
                NodeId(0),
                &SimLockParams::default(),
            );
            assert_eq!(lock.kind(), kind);
            let _session = lock.session(CpuId(0), NodeId(0));
        }
    }

    #[test]
    fn sim_backoff_grows_and_resets() {
        let mut b = SimBackoff::new(BackoffConfig::new(10, 2, 40));
        assert_eq!(b.next_delay(), 10);
        assert_eq!(b.next_delay(), 20);
        assert_eq!(b.next_delay(), 40);
        assert_eq!(b.next_delay(), 40);
        b.reset(BackoffConfig::new(5, 2, 40));
        assert_eq!(b.next_delay(), 5);
    }

    #[test]
    fn params_builders() {
        let p = SimLockParams::default()
            .with_remote_cap(9_999)
            .with_get_angry_limit(3);
        assert_eq!(p.remote.cap, 9_999);
        assert_eq!(p.get_angry_limit, 3);
    }
}
